//! Vendored, offline stand-in for the `criterion` benchmarking API.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of criterion's surface the PGB benches use — enough for
//! `cargo bench` to produce wall-clock numbers and for `cargo test` to stay
//! fast:
//!
//! * **Bench mode** (invoked with `--bench`, as `cargo bench` does): each
//!   benchmark is warmed up, then timed over adaptively chosen iteration
//!   counts for roughly the configured measurement time; mean and min/max
//!   per-iteration times are printed.
//! * **Test mode** (any other invocation, e.g. `cargo test` running the
//!   bench target): benchmarks are registered but *not* executed, so the
//!   test suite's runtime is unaffected. Upstream criterion runs each once;
//!   skipping entirely is the cheaper choice for CI boxes.
//!
//! No statistics, plotting, or comparison against saved baselines.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark registry/driver.
pub struct Criterion {
    bench_mode: bool,
    default_measurement: Duration,
    default_warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            bench_mode: std::env::args().any(|a| a == "--bench"),
            default_measurement: Duration::from_secs(3),
            default_warm_up: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if self.bench_mode {
            let mut b = Bencher {
                measurement: self.default_measurement,
                warm_up: self.default_warm_up,
                report: None,
            };
            f(&mut b);
            print_report(&id.0, b.report);
        }
        self
    }

    /// Opens a named group of benchmarks sharing timing configuration.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, measurement: None, warm_up: None }
    }
}

/// A group of related benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    measurement: Option<Duration>,
    warm_up: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count. Accepted for API compatibility; the
    /// shim sizes iteration counts from the measurement time instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = Some(d);
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = Some(d);
        self
    }

    /// Sets a throughput hint. Accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if self.criterion.bench_mode {
            let mut b = Bencher {
                measurement: self.measurement.unwrap_or(self.criterion.default_measurement),
                warm_up: self.warm_up.unwrap_or(self.criterion.default_warm_up),
                report: None,
            };
            f(&mut b);
            print_report(&format!("{}/{}", self.name, id.0), b.report);
        }
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier; `new(function, parameter)` renders as
/// `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput hints (accepted, not reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Collected timing numbers for one benchmark.
#[derive(Clone, Copy, Debug)]
struct Report {
    iterations: u64,
    mean: Duration,
    min: Duration,
    max: Duration,
}

/// Hands the routine under measurement to the timing loop.
pub struct Bencher {
    measurement: Duration,
    warm_up: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling batches until the
    /// measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: at least one call, then until the warm-up budget is used.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Choose a batch size so each sample is ≥ ~1 ms of work.
        let batch = if per_iter >= Duration::from_millis(1) {
            1
        } else {
            (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64
        };

        let mut samples: Vec<Duration> = Vec::new();
        let mut total_iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < self.measurement || samples.is_empty() {
            let s = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(s.elapsed() / batch as u32);
            total_iters += batch;
        }
        let sum: Duration = samples.iter().sum();
        self.report = Some(Report {
            iterations: total_iters,
            mean: sum / samples.len() as u32,
            min: *samples.iter().min().expect("at least one sample"),
            max: *samples.iter().max().expect("at least one sample"),
        });
    }
}

fn print_report(id: &str, report: Option<Report>) {
    let mut line = String::new();
    match report {
        Some(r) => {
            let _ = write!(
                line,
                "{id:<60} time: [{} {} {}]  ({} iters)",
                fmt_duration(r.min),
                fmt_duration(r.mean),
                fmt_duration(r.max),
                r.iterations
            );
        }
        None => {
            let _ = write!(line, "{id:<60} (no measurement)");
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`. In test mode (no `--bench` argument) the
/// groups still run, but `Criterion` skips every measurement, so the binary
/// exits immediately.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
