//! Named generator types. [`StdRng`] is the workspace's deterministic
//! workhorse, backed by xoshiro256++.

use crate::{RngCore, SeedableRng, SplitMix64};

/// A deterministic, seedable PRNG with 256 bits of state.
///
/// Upstream `rand 0.8` backs `StdRng` with ChaCha12; offline we use
/// xoshiro256++ (Blackman & Vigna), which passes BigCrush and is more than
/// adequate for simulation workloads. Streams are stable across runs and
/// platforms for a fixed seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
const fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // xoshiro must not start from the all-zero state.
            let mut sm = SplitMix64::new(0x9E37_79B9_7F4A_7C15);
            for w in &mut s {
                *w = sm.next_u64();
            }
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_escapes_fixed_point() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
