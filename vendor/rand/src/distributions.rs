//! Minimal distributions module: the [`Distribution`] trait and the
//! [`Standard`] distribution used by [`Rng::gen`](crate::Rng::gen).

use crate::Rng;

/// A sampling distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: full bit range for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($ty:ty),+ $(,)?) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A Bernoulli distribution with success probability `p`.
#[derive(Clone, Copy, Debug)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates the distribution; fails unless `0 ≤ p ≤ 1`.
    pub fn new(p: f64) -> Result<Self, BernoulliError> {
        if (0.0..=1.0).contains(&p) {
            Ok(Bernoulli { p })
        } else {
            Err(BernoulliError::InvalidProbability)
        }
    }
}

/// Error for an out-of-range Bernoulli probability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BernoulliError {
    /// `p` was outside `[0, 1]`.
    InvalidProbability,
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.p)
    }
}
