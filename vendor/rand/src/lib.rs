//! Vendored, offline stand-in for the `rand 0.8` API surface PGB uses.
//!
//! The build environment has no access to a crates registry, so this crate
//! re-implements the subset of `rand 0.8` the workspace depends on with the
//! same method signatures and range semantics:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` (half-open `a..b` and
//!   inclusive `a..=b`), and `gen_bool`;
//! * [`SeedableRng`] with the SplitMix64-based `seed_from_u64` scheme;
//! * [`rngs::StdRng`], here backed by xoshiro256++ (not ChaCha12 as in
//!   upstream rand — streams differ from upstream but are fully
//!   deterministic and stable within this workspace);
//! * a minimal [`distributions`] module (`Distribution`, `Standard`).
//!
//! Integer sampling is unbiased (rejection sampling over a widened span)
//! and float sampling uses the standard 53-bit mantissa construction, so
//! statistical properties match what the generators and property tests
//! expect.

pub mod distributions;
pub mod rngs;

use distributions::{Distribution, Standard};

/// The core of a random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, mirroring `rand 0.8`.
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (`a..b` half-open, `a..=b` inclusive).
    ///
    /// Panics if the range is empty, matching `rand 0.8`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53 random mantissa bits in [0, 1); strictly below p, so p = 0
        // never fires and p = 1 always does.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            denominator > 0 && numerator <= denominator,
            "gen_ratio: invalid ratio {numerator}/{denominator}"
        );
        self.gen_range(0..denominator) < numerator
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64, as `rand 0.8` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the seed-expansion PRNG (also used to escape all-zero states).
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A type that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a single value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Unbiased `[0, span)` for a nonzero span (rejection sampling).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Reject the tail so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty => $unsigned:ty),+ $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $unsigned).wrapping_sub(low as $unsigned) as u64;
                low.wrapping_add(uniform_u64_below(rng, span) as $ty)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $unsigned).wrapping_sub(low as $unsigned) as u64;
                if span == <$unsigned>::MAX as u64 {
                    // Full type range: every bit pattern is valid.
                    return rng.next_u64() as $ty;
                }
                low.wrapping_add(uniform_u64_below(rng, span + 1) as $ty)
            }
        }
    )+};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + (high - low) * unit;
        // Guard against rounding up to `high` at representability limits.
        if v >= high {
            low
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        (low + (high - low) * unit).min(high)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = low + (high - low) * unit;
        if v >= high {
            low
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 / ((1u32 << 24) - 1) as f32;
        (low + (high - low) * unit).min(high)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_half_open_hits_all_residues() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..7);
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_inclusive_reaches_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..2000 {
            match rng.gen_range(0u32..=3) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn signed_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }
}
