//! Self-tests for the vendored engine: generated values respect their
//! strategies, failing properties actually fail, and rejection works.

use proptest::prelude::*;

proptest! {
    #[test]
    fn ranges_respect_bounds(x in 3usize..17, y in -4i32..=4, z in 0.25f64..0.75) {
        prop_assert!((3..17).contains(&x));
        prop_assert!((-4..=4).contains(&y));
        prop_assert!((0.25..0.75).contains(&z));
    }

    #[test]
    fn vec_strategy_respects_size(v in proptest::collection::vec(0u32..10, 2..6)) {
        prop_assert!((2..6).contains(&v.len()));
        prop_assert!(v.iter().all(|&x| x < 10));
    }

    #[test]
    fn flat_map_sees_outer_value(
        (n, v) in (1usize..20).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec(0..n as u32, 0..8))
        })
    ) {
        prop_assert!(v.iter().all(|&x| (x as usize) < n));
    }

    #[test]
    fn assume_discards_cases(n in 0usize..100) {
        prop_assume!(n % 2 == 0);
        prop_assert_eq!(n % 2, 0);
    }

    #[test]
    fn map_applies(n in (0usize..10).prop_map(|n| n * 3)) {
        prop_assert_eq!(n % 3, 0);
    }
}

#[test]
fn failing_property_panics() {
    let result = std::panic::catch_unwind(|| {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x = {x} is never > 100");
            }
        }
        always_fails();
    });
    let err = result.expect_err("a failing property must panic");
    let msg = err.downcast_ref::<String>().expect("panic carries a message");
    assert!(msg.contains("never > 100"), "unexpected message: {msg}");
}

#[test]
fn case_streams_are_deterministic() {
    use proptest::strategy::Strategy;
    let strat = proptest::collection::vec(0u64..1000, 3..10);
    let a: Vec<Vec<u64>> =
        (0..20).map(|i| strat.generate(&mut TestRng::for_case("stream", i))).collect();
    let b: Vec<Vec<u64>> =
        (0..20).map(|i| strat.generate(&mut TestRng::for_case("stream", i))).collect();
    assert_eq!(a, b);
    // Different tests see different streams.
    let c: Vec<u64> = strat.generate(&mut TestRng::for_case("other", 0));
    assert_ne!(a[0], c);
}
