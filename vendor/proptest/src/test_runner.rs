//! Test execution support: per-case RNG derivation, configuration, and the
//! case-level error type the assertion macros return.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The RNG handed to strategies. Wraps the workspace [`StdRng`] and derives
/// one independent stream per (test name, case index), so each test is
/// deterministic in isolation and insensitive to the order tests run in.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Derives the RNG for case `case` of the test named `test`.
    pub fn for_case(test: &str, case: u64) -> Self {
        // FNV-1a over the test path keeps streams distinct between tests.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Access to the underlying RNG for strategies.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion; the message describes it.
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration. Only the fields the PGB suites touch are modelled.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Cap on total `prop_assume!` discards before the test errors out.
    pub max_global_rejects: u32,
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases, ..Config::default() }
    }

    /// The case count, honouring a `PROPTEST_CASES` override. A malformed
    /// override panics rather than silently running the compiled-in count.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .trim()
                .parse()
                .unwrap_or_else(|e| panic!("invalid PROPTEST_CASES value {v:?}: {e}")),
            Err(_) => self.cases,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, max_global_rejects: 65_536 }
    }
}
