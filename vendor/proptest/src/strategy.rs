//! The [`Strategy`] trait and the combinators the PGB suites use.

use crate::test_runner::TestRng;
use rand::{Rng, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply produces a value from an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Maps generated values through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let outer = self.source.generate(rng);
        (self.f)(outer).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

impl<T: SampleUniform + Clone> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng_mut().gen_range(self.clone())
    }
}

impl<T: SampleUniform + Clone> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng_mut().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}
