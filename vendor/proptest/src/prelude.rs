//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::collection;
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
