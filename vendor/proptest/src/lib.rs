//! Vendored, offline stand-in for the subset of the `proptest` API the PGB
//! property suites use.
//!
//! Because the build environment cannot reach a crates registry, this crate
//! re-implements the pieces the tests need:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! * [`strategy::Strategy`] with range / tuple / [`strategy::Just`] /
//!   `prop_flat_map` / `prop_map` combinators,
//! * [`collection::vec`],
//! * [`test_runner::Config`] (exported as `ProptestConfig`).
//!
//! Differences from upstream, chosen deliberately for an offline CI:
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug` in
//!   the assertion message) but is not minimised.
//! * **Deterministic seeding.** Case `i` of every test derives its RNG from
//!   a fixed base seed and `i`, so failures reproduce exactly; set
//!   `PROPTEST_CASES` to change the case count (default 256).

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// The `proptest!` macro: wraps each `fn name(bindings in strategies)` in a
/// deterministic multi-case runner.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let cases = config.effective_cases();
            let mut rejects: u32 = 0;
            let mut case: u64 = 0;
            let mut run: u32 = 0;
            while run < cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                case += 1;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => { run += 1; }
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejects += 1;
                        if rejects > config.max_global_rejects {
                            panic!(
                                "proptest: too many prop_assume! rejections ({rejects}) in {}",
                                stringify!($name)
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            case - 1,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // Entry: with a leading config attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // Entry: without a config attribute, use the default.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) so the harness can report which inputs broke it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right
                );
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                    stringify!($left), stringify!($right), left, right, format!($($fmt)*)
                );
            }
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                );
            }
        }
    }};
}

/// Discards the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
