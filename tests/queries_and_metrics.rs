//! Cross-crate integration of queries with metrics: the error of a graph
//! against itself is zero for every query, the metric pairing follows
//! Table IV, and perturbation strictly increases error.

use pgb_core::benchmark::{compute_error, metric_for, ErrorMetric};
use pgb_queries::{Query, QueryParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn self_comparison_is_zero_error() {
    let mut rng = StdRng::seed_from_u64(41);
    let g = pgb_models::erdos_renyi_gnp(150, 0.05, &mut rng);
    let params = QueryParams::default();
    for q in Query::ALL {
        // Same rng stream per evaluation would desynchronise Louvain; use
        // identical seeds instead so randomised queries agree.
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = q.evaluate(&g, &params, &mut r1);
        let b = q.evaluate(&g, &params, &mut r2);
        let err = compute_error(q, &a, &b);
        assert!(err.abs() < 1e-6, "{q:?} self-error {err}");
    }
}

#[test]
fn metric_pairing_is_total() {
    // Every query must map to a metric and produce a finite error on
    // arbitrary valid graph pairs.
    let mut rng = StdRng::seed_from_u64(43);
    let g1 = pgb_models::erdos_renyi_gnp(100, 0.08, &mut rng);
    let g2 = pgb_models::barabasi_albert(90, 3, &mut rng);
    let params = QueryParams::default();
    for q in Query::ALL {
        let _ = metric_for(q);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let a = q.evaluate(&g1, &params, &mut r1);
        let b = q.evaluate(&g2, &params, &mut r2);
        let err = compute_error(q, &a, &b);
        assert!(err.is_finite() && err >= 0.0, "{q:?} error {err}");
    }
}

#[test]
fn distribution_queries_use_kl() {
    assert_eq!(metric_for(Query::DegreeDistribution), ErrorMetric::KlDivergence);
    assert_eq!(metric_for(Query::DistanceDistribution), ErrorMetric::KlDivergence);
}

#[test]
fn heavier_perturbation_larger_error() {
    // Remove 5% vs 50% of edges: every scalar query's error should not
    // decrease (checked with a tolerance for the stochastic queries).
    let mut rng = StdRng::seed_from_u64(47);
    let g = pgb_models::erdos_renyi_gnp(200, 0.06, &mut rng);
    let edges = g.edge_vec();
    let drop = |fraction: f64| {
        let keep = ((1.0 - fraction) * edges.len() as f64) as usize;
        pgb_graph::Graph::from_edges(200, edges.iter().take(keep).copied()).unwrap()
    };
    let light = drop(0.05);
    let heavy = drop(0.5);
    let params = QueryParams::default();
    for q in [Query::EdgeCount, Query::AverageDegree, Query::Triangles] {
        let mut r = StdRng::seed_from_u64(1);
        let truth = q.evaluate(&g, &params, &mut r);
        let e_light = compute_error(q, &truth, &q.evaluate(&light, &params, &mut r));
        let e_heavy = compute_error(q, &truth, &q.evaluate(&heavy, &params, &mut r));
        assert!(e_heavy >= e_light, "{q:?}: light {e_light} heavy {e_heavy}");
    }
}

#[test]
fn path_queries_consistent_between_modes() {
    let mut rng = StdRng::seed_from_u64(53);
    let g = pgb_models::erdos_renyi_gnp(300, 0.03, &mut rng);
    let exact = QueryParams::default();
    let sampled = QueryParams {
        path_mode: pgb_queries::PathMode::Sampled { sources: 128 },
        ..QueryParams::default()
    };
    let mut r1 = StdRng::seed_from_u64(1);
    let mut r2 = StdRng::seed_from_u64(1);
    let a = Query::AveragePathLength.evaluate(&g, &exact, &mut r1).as_scalar().unwrap();
    let b = Query::AveragePathLength.evaluate(&g, &sampled, &mut r2).as_scalar().unwrap();
    assert!((a - b).abs() / a < 0.05, "exact {a} vs sampled {b}");
}
