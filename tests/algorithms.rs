//! Cross-crate algorithm contracts: every mechanism in the suite (plus
//! DER) must produce valid graphs on every miniature dataset shape, be
//! reproducible from a seed, validate ε, and respect the common
//! framework's structure.

use pgb::prelude::*;
use pgb_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_algorithms() -> Vec<Box<dyn GraphGenerator>> {
    let mut suite = standard_suite();
    suite.push(Box::new(Der::default()));
    suite
}

fn shapes() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(17);
    vec![
        ("sparse-er", pgb_models::erdos_renyi_gnp(150, 0.02, &mut rng)),
        ("dense-er", pgb_models::erdos_renyi_gnp(80, 0.3, &mut rng)),
        ("power-law", pgb_models::barabasi_albert(150, 2, &mut rng)),
        ("grid", pgb_models::grid_graph(12, 12)),
        ("star", Graph::from_edges(50, (1..50).map(|v| (0u32, v))).unwrap()),
        ("edgeless", Graph::new(40)),
    ]
}

#[test]
fn every_algorithm_on_every_shape() {
    for algo in all_algorithms() {
        for (shape, g) in shapes() {
            for eps in [0.2, 2.0] {
                let mut rng = StdRng::seed_from_u64(5);
                let out = algo
                    .generate(&g, eps, &mut rng)
                    .unwrap_or_else(|e| panic!("{} on {shape} at ε={eps}: {e}", algo.name()));
                assert!(
                    out.check_invariants(),
                    "{} on {shape} at ε={eps}: invalid output",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn node_preserving_algorithms_keep_node_count() {
    // All mechanisms except DP-dK (whose dK reconstruction re-derives the
    // node set from the noisy series) keep the input node set.
    let mut rng = StdRng::seed_from_u64(23);
    let g = pgb_models::erdos_renyi_gnp(200, 0.04, &mut rng);
    for algo in all_algorithms() {
        if algo.name().starts_with("DP-") {
            continue;
        }
        let out = algo.generate(&g, 1.0, &mut rng).expect("valid inputs");
        assert_eq!(out.node_count(), 200, "{}", algo.name());
    }
}

#[test]
fn deterministic_given_seed() {
    let mut rng = StdRng::seed_from_u64(29);
    let g = pgb_models::erdos_renyi_gnp(120, 0.05, &mut rng);
    for algo in all_algorithms() {
        let run = |seed: u64| {
            let mut r = StdRng::seed_from_u64(seed);
            algo.generate(&g, 1.0, &mut r).expect("valid inputs").edge_vec()
        };
        assert_eq!(run(77), run(77), "{} not reproducible", algo.name());
    }
}

#[test]
fn epsilon_validation_uniform() {
    let g = Graph::new(10);
    for algo in all_algorithms() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut rng = StdRng::seed_from_u64(0);
            assert!(
                algo.generate(&g, bad, &mut rng).is_err(),
                "{} accepted ε = {bad}",
                algo.name()
            );
        }
    }
}

#[test]
fn deltas_match_table_v() {
    // §V-C: DP-dK and PrivSKG are (ε, 0.01); everything else pure.
    for algo in standard_suite() {
        let expected = match algo.name() {
            "DP-dK" | "PrivSKG" => 0.01,
            _ => 0.0,
        };
        assert_eq!(algo.delta(), expected, "{}", algo.name());
    }
}

#[test]
fn utility_improves_with_epsilon_for_edge_count() {
    // The fundamental DP trade-off, checked on the |E| query with enough
    // repetitions to be robust: mean RE at ε = 20 must beat ε = 0.1 for
    // the mechanisms that control the edge count directly.
    let mut rng = StdRng::seed_from_u64(31);
    let g = pgb_models::erdos_renyi_gnp(200, 0.05, &mut rng);
    let m = g.edge_count() as f64;
    for algo in [&TmF::default() as &dyn GraphGenerator, &Dgg::default()] {
        let mean_re = |eps: f64| {
            let mut total = 0.0;
            for rep in 0..6 {
                let mut r = StdRng::seed_from_u64(1000 + rep);
                let out = algo.generate(&g, eps, &mut r).expect("valid inputs");
                total += (out.edge_count() as f64 - m).abs() / m;
            }
            total / 6.0
        };
        let (loose, tight) = (mean_re(0.1), mean_re(20.0));
        assert!(
            tight <= loose + 1e-9,
            "{}: RE at ε=20 ({tight}) worse than at ε=0.1 ({loose})",
            algo.name()
        );
    }
}
