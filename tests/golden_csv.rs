//! Golden-file regression over the full pipeline: a small fixed-seed
//! benchmark grid rendered with `BenchmarkResults::to_csv()` must match
//! the committed CSV byte-for-byte. Anything that shifts the numbers —
//! generator RNG-stream drift, query/scoring changes, CSV formatting —
//! fails loudly here instead of silently moving the benchmark's results.
//!
//! The grid deliberately runs under `threads: 0` (auto parallelism): the
//! bytes must be reproducible on any machine at any core count, which is
//! exactly the derived-stream guarantee the runner and `pgb_core::par`
//! make. To regenerate after an *intentional* change, re-bless with:
//!
//! ```sh
//! PGB_BLESS=1 cargo test --test golden_csv
//! ```
//!
//! and review the diff of `tests/golden/small_grid.csv` like any other
//! code change.

use pgb::prelude::*;
use pgb_core::benchmark::run_benchmark;
use pgb_queries::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/small_grid.csv");

fn golden_grid_csv() -> String {
    let mut rng = StdRng::seed_from_u64(42);
    let datasets = vec![
        ("er".to_string(), pgb_models::erdos_renyi_gnp(50, 0.1, &mut rng)),
        ("ba".to_string(), pgb_models::barabasi_albert(50, 2, &mut rng)),
    ];
    // Two parallelised generators (TmF, DER) and one serial baseline
    // (DGG): the golden bytes pin the intra-cell derived-stream discipline
    // as well as the runner's own.
    let algorithms: Vec<Box<dyn GraphGenerator>> =
        vec![Box::new(TmF::default()), Box::new(Der::default()), Box::new(Dgg::default())];
    let config = BenchmarkConfig {
        epsilons: vec![0.5, 5.0],
        repetitions: 2,
        queries: vec![
            Query::EdgeCount,
            Query::Triangles,
            Query::DegreeDistribution,
            Query::GlobalClustering,
        ],
        seed: 42,
        threads: 0, // auto: the bytes must not depend on the machine
        ..Default::default()
    };
    run_benchmark(&algorithms, &datasets, &config).to_csv()
}

#[test]
fn benchmark_csv_matches_golden_file() {
    let csv = golden_grid_csv();
    if std::env::var_os("PGB_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &csv).expect("write golden file");
        eprintln!("blessed {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — regenerate with PGB_BLESS=1 cargo test --test golden_csv");
    // 2 datasets × 3 algorithms × 2 ε × 4 queries + header.
    assert_eq!(golden.lines().count(), 49, "golden file has unexpected shape");
    assert_eq!(
        csv, golden,
        "benchmark CSV drifted from tests/golden/small_grid.csv; if the change is intentional, \
         re-bless with PGB_BLESS=1 and review the diff"
    );
}
