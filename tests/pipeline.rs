//! End-to-end integration: the full benchmark pipeline — datasets →
//! suite → runner → scoring → reports — at miniature scale.

use pgb::prelude::*;
use pgb_core::benchmark::report::{render_table12, render_table7};
use pgb_core::benchmark::run_benchmark;
use pgb_core::benchmark::scoring::{best_counts_per_case, best_counts_per_query};
use pgb_queries::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mini_datasets() -> Vec<(String, pgb_graph::Graph)> {
    let mut rng = StdRng::seed_from_u64(3);
    vec![
        ("er".to_string(), pgb_models::erdos_renyi_gnp(120, 0.08, &mut rng)),
        ("ba".to_string(), pgb_models::barabasi_albert(120, 3, &mut rng)),
    ]
}

fn mini_config() -> BenchmarkConfig {
    BenchmarkConfig {
        epsilons: vec![0.5, 5.0],
        repetitions: 2,
        queries: vec![
            Query::EdgeCount,
            Query::Triangles,
            Query::DegreeDistribution,
            Query::CommunityDetection,
        ],
        seed: 11,
        threads: 2,
        ..Default::default()
    }
}

#[test]
fn full_suite_runs_end_to_end() {
    let results = run_benchmark(&standard_suite(), &mini_datasets(), &mini_config());
    // 6 algorithms × 2 datasets × 2 ε × 4 queries.
    assert_eq!(results.outcomes.len(), 6 * 2 * 2 * 4);
    for o in &results.outcomes {
        assert!(o.mean_error.is_finite(), "{o:?}");
        assert!(o.mean_error >= 0.0, "{o:?}");
    }
}

#[test]
fn scoring_tables_cover_every_cell() {
    let results = run_benchmark(&standard_suite(), &mini_datasets(), &mini_config());
    // Definition 5: for each (dataset, ε), total credits ≥ #queries
    // (ties can only add credits, never remove).
    let per_case = best_counts_per_case(&results);
    for (ei, _) in results.epsilons.iter().enumerate() {
        for ds in &results.datasets {
            let total: usize = results
                .algorithms
                .iter()
                .filter_map(|a| per_case.get(&(a.clone(), ds.clone(), ei)))
                .sum();
            assert!(total >= results.queries.len(), "dataset {ds} ε-index {ei}: {total}");
        }
    }
    // Definition 6: per query, credits over the whole grid ≥ #cells.
    let per_query = best_counts_per_query(&results);
    for &q in &results.queries {
        let total: usize =
            results.algorithms.iter().filter_map(|a| per_query.get(&(a.clone(), q))).sum();
        assert!(total >= results.epsilons.len() * results.datasets.len(), "query {q:?}");
    }
}

#[test]
fn reports_render_all_sections() {
    let results = run_benchmark(&standard_suite(), &mini_datasets(), &mini_config());
    let t7 = render_table7(&results);
    assert!(t7.contains("ε = 0.5") && t7.contains("ε = 5"));
    for algo in &results.algorithms {
        assert!(t7.contains(algo.as_str()), "table7 missing {algo}");
    }
    let t12 = render_table12(&results);
    for &q in &results.queries {
        assert!(t12.contains(q.symbol()), "table12 missing {}", q.symbol());
    }
    let csv = results.to_csv();
    assert_eq!(csv.lines().count(), results.outcomes.len() + 1);
}

#[test]
fn benchmark_is_reproducible() {
    let a = run_benchmark(&standard_suite(), &mini_datasets(), &mini_config());
    let b = run_benchmark(&standard_suite(), &mini_datasets(), &mini_config());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.algorithm, y.algorithm);
        assert!((x.mean_error - y.mean_error).abs() < 1e-12);
    }
}

#[test]
fn meta_crate_reexports_work() {
    // The `pgb` facade must expose every subsystem.
    let g = pgb::graph::Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
    assert_eq!(g.edge_count(), 2);
    let mut rng = StdRng::seed_from_u64(0);
    let _ = pgb::models::erdos_renyi_gnp(10, 0.5, &mut rng);
    let _ = pgb::datasets::Dataset::Minnesota.target();
    let _ = pgb::metrics::relative_error(1.0, 2.0);
    let p = pgb::community::Partition::singletons(4);
    assert_eq!(p.community_count(), 4);
}
