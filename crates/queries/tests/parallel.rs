//! Parallel ≡ sequential equivalence for the query-suite hot passes.
//!
//! The chunked passes (triangle counting via the degree-ordered forward
//! orientation, the BFS sweep, the degree histogram) must return *exactly*
//! the sequential reference's values — same integers, same float bits — at
//! every thread budget, including 1 (inline), oversubscribed (8 on any
//! machine), and 0 (reset to the ambient available-parallelism default).
//! This is the evaluation-side mirror of `pgb-core`'s generator
//! thread-invariance suite.

use pgb_graph::degree::{degree_histogram, degree_histogram_seq};
use pgb_graph::Graph;
use pgb_par::with_parallelism;
use pgb_queries::counting::{self, triangle_count, triangles_per_node, wedge_count};
use pgb_queries::path::{path_stats, path_stats_seq};
use pgb_queries::{ApproxConfig, EvalMode, PathMode, Query, QueryParams, QuerySuite, QueryValue};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The budgets every pass is swept over: inline, parallel, oversubscribed,
/// and the ambient default.
const BUDGETS: [usize; 4] = [1, 2, 8, 0];

fn random_graph(n: usize, p_mille: u64, seed: u64) -> Graph {
    // Dense-ish ER graph built from a hash so the proptest case fully
    // determines it: edge {u, v} exists iff the mixed pair hash lands
    // below `p_mille`/1000.
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            let mut h = seed ^ ((u as u64) << 32 | v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 29;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 32;
            if h % 1000 < p_mille {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, edges).unwrap()
}

proptest! {
    #[test]
    fn triangle_pass_matches_seq_at_all_budgets(
        n in 2usize..120,
        p in 0u64..400,
        seed in 0u64..1 << 32,
    ) {
        let g = random_graph(n, p, seed);
        let seq_per_node = counting::seq::triangles_per_node(&g);
        let seq_total = counting::seq::triangle_count(&g);
        let seq_wedges = counting::seq::wedge_count(&g);
        for threads in BUDGETS {
            let (per_node, total, wedges) = with_parallelism(threads, || {
                (triangles_per_node(&g), triangle_count(&g), wedge_count(&g))
            });
            prop_assert_eq!(&per_node, &seq_per_node, "per-node, threads = {}", threads);
            prop_assert_eq!(total, seq_total, "total, threads = {}", threads);
            prop_assert_eq!(wedges, seq_wedges, "wedges, threads = {}", threads);
        }
    }

    #[test]
    fn bfs_sweep_matches_seq_at_all_budgets(
        n in 2usize..100,
        p in 0u64..120,
        seed in 0u64..1 << 32,
        sources in 1usize..24,
    ) {
        let g = random_graph(n, p, seed);
        for mode in [PathMode::Exact, PathMode::Sampled { sources }] {
            let reference = path_stats_seq(&g, mode, &mut StdRng::seed_from_u64(seed));
            for threads in BUDGETS {
                let stats = with_parallelism(threads, || {
                    path_stats(&g, mode, &mut StdRng::seed_from_u64(seed))
                });
                prop_assert_eq!(&stats, &reference, "{:?}, threads = {}", mode, threads);
            }
        }
    }

    #[test]
    fn degree_histogram_matches_seq_at_all_budgets(
        n in 1usize..200,
        p in 0u64..300,
        seed in 0u64..1 << 32,
    ) {
        let g = random_graph(n, p, seed);
        let reference = degree_histogram_seq(&g);
        for threads in BUDGETS {
            let hist = with_parallelism(threads, || degree_histogram(&g));
            prop_assert_eq!(&hist, &reference, "threads = {}", threads);
        }
    }

    #[test]
    fn evaluate_all_bit_identical_at_all_budgets(
        n in 2usize..80,
        p in 0u64..250,
        seed in 0u64..1 << 32,
    ) {
        // End-to-end over the full 15-query suite (sampled BFS so the
        // PATH stream is exercised): every QueryValue — scalars, float
        // distributions, Louvain partitions — must be identical bits at
        // every budget.
        let g = random_graph(n, p, seed);
        let params = QueryParams {
            path_mode: PathMode::Sampled { sources: 8 },
            ..QueryParams::default()
        };
        let run = |threads: usize| {
            with_parallelism(threads, || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
                let values = QuerySuite::evaluate_all(&g, &Query::ALL, &params, &mut rng);
                (values, rng.gen::<u64>())
            })
        };
        let reference = run(1);
        for threads in [2, 8, 0] {
            let got = run(threads);
            prop_assert_eq!(&got.0, &reference.0, "values drifted at threads = {}", threads);
            prop_assert_eq!(got.1, reference.1, "caller RNG position, threads = {}", threads);
        }
    }

    #[test]
    fn approx_evaluate_all_bit_identical_at_all_budgets(
        n in 2usize..80,
        p in 0u64..250,
        seed in 0u64..1 << 32,
    ) {
        // The sketch-backed evaluation path (HyperANF sweep, wedge
        // sampling, degree sampling) must honour the same bit-identity
        // contract as the exact passes: identical QueryValues and caller
        // RNG position at every thread budget. Small sketch sizes keep the
        // case cheap — bit-identity is size-independent.
        let g = random_graph(n, p, seed);
        let params = QueryParams {
            eval: EvalMode::Approx(ApproxConfig {
                hll_precision: 5,
                max_sweep_iters: 32,
                wedge_samples: 4096,
                histogram_samples: 4096,
                confidence: 0.95,
            }),
            ..QueryParams::default()
        };
        let run = |threads: usize| {
            with_parallelism(threads, || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
                let values = QuerySuite::evaluate_all(&g, &Query::ALL, &params, &mut rng);
                (values, rng.gen::<u64>())
            })
        };
        let reference = run(1);
        for threads in [2, 8, 0] {
            let got = run(threads);
            prop_assert_eq!(&got.0, &reference.0, "approx values drifted at threads = {}", threads);
            prop_assert_eq!(got.1, reference.1, "caller RNG position, threads = {}", threads);
        }
    }
}

/// Pulls the scalar value of `q` out of a full-suite result vector.
fn scalar_of(values: &[QueryValue], q: Query) -> f64 {
    values[q.id() - 1].as_scalar().expect("scalar query")
}

/// Accuracy harness: evaluates the full suite exactly and approximately
/// over `seeds` independent ER graphs and returns, per checked query, the
/// fraction of runs whose approximation error stayed within the sketch's
/// *own reported bound*. The bounds are probabilistic (Hoeffding at the
/// configured confidence, HLL's normal-approximation RSE), so the test
/// asserts the hit *fraction*, not every individual case.
fn bound_hit_fractions(seeds: u64) -> (f64, f64, f64, f64) {
    let params_exact = QueryParams::default();
    let cfg = ApproxConfig::default();
    let params_approx = QueryParams { eval: EvalMode::Approx(cfg), ..QueryParams::default() };
    let (mut tri_hits, mut gcc_hits, mut acc_hits, mut path_hits) = (0u32, 0u32, 0u32, 0u32);
    for seed in 0..seeds {
        let mut model_rng = StdRng::seed_from_u64(1000 + seed);
        let g = pgb_models::erdos_renyi_gnp(300, 0.03, &mut model_rng);
        let exact = QuerySuite::evaluate_all(
            &g,
            &Query::ALL,
            &params_exact,
            &mut StdRng::seed_from_u64(seed),
        );
        let (approx, _, report) = QuerySuite::evaluate_all_with_report(
            &g,
            &Query::ALL,
            &params_approx,
            &mut StdRng::seed_from_u64(seed),
        );
        let within =
            |q: Query, bound: f64| (scalar_of(&approx, q) - scalar_of(&exact, q)).abs() <= bound;
        tri_hits += u32::from(within(Query::Triangles, report.triangles_bound.unwrap()));
        gcc_hits += u32::from(within(Query::GlobalClustering, report.gcc_bound.unwrap()));
        acc_hits += u32::from(within(Query::AverageClustering, report.acc_bound.unwrap()));
        // The HLL bound is *relative* and covers the neighbourhood-function
        // values the path statistics derive from; the derived average adds
        // cancellation across levels, so a 2× allowance is the honest
        // per-run check (the assert below is on the hit fraction).
        let exact_avg = scalar_of(&exact, Query::AveragePathLength);
        let approx_avg = scalar_of(&approx, Query::AveragePathLength);
        let rel = (approx_avg - exact_avg).abs() / exact_avg.max(f64::MIN_POSITIVE);
        path_hits += u32::from(rel <= 2.0 * report.path_rel_bound.unwrap());
        // Diameter is a lower bound by construction, like sampled BFS.
        assert!(
            scalar_of(&approx, Query::Diameter) <= scalar_of(&exact, Query::Diameter),
            "HLL diameter must lower-bound the exact diameter (seed {seed})"
        );
    }
    let frac = |hits: u32| hits as f64 / seeds as f64;
    (frac(tri_hits), frac(gcc_hits), frac(acc_hits), frac(path_hits))
}

#[test]
fn approx_estimates_stay_within_reported_bounds() {
    // 40 independent graphs; at 99% configured confidence the expected
    // miss count is < 1 per query, so requiring ≥ 90% hits leaves room
    // for binomial noise without letting a broken bound slip through.
    let (tri, gcc, acc, path) = bound_hit_fractions(40);
    assert!(tri >= 0.9, "triangle bound hit fraction {tri}");
    assert!(gcc >= 0.9, "GCC bound hit fraction {gcc}");
    assert!(acc >= 0.9, "ACC bound hit fraction {acc}");
    assert!(path >= 0.9, "path bound hit fraction {path}");
}

#[test]
fn approx_degree_distribution_converges_on_exact() {
    // The sampled histogram is unbiased; at 2^16 samples its total
    // variation distance from the exact distribution on a 300-node ER
    // graph must be small.
    let mut model_rng = StdRng::seed_from_u64(77);
    let g = pgb_models::erdos_renyi_gnp(300, 0.03, &mut model_rng);
    let exact = QuerySuite::evaluate_all(
        &g,
        &[Query::DegreeDistribution],
        &QueryParams::default(),
        &mut StdRng::seed_from_u64(1),
    );
    let approx = QuerySuite::evaluate_all(
        &g,
        &[Query::DegreeDistribution],
        &QueryParams { eval: EvalMode::Approx(ApproxConfig::default()), ..QueryParams::default() },
        &mut StdRng::seed_from_u64(1),
    );
    let (QueryValue::Distribution(e), QueryValue::Distribution(a)) = (&exact[0], &approx[0]) else {
        panic!("expected distributions");
    };
    let len = e.len().max(a.len());
    let at = |v: &Vec<f64>, i: usize| v.get(i).copied().unwrap_or(0.0);
    let tv: f64 = (0..len).map(|i| (at(e, i) - at(a, i)).abs()).sum::<f64>() / 2.0;
    assert!(tv < 0.05, "total variation distance {tv}");
}
