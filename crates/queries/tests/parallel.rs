//! Parallel ≡ sequential equivalence for the query-suite hot passes.
//!
//! The chunked passes (triangle counting via the degree-ordered forward
//! orientation, the BFS sweep, the degree histogram) must return *exactly*
//! the sequential reference's values — same integers, same float bits — at
//! every thread budget, including 1 (inline), oversubscribed (8 on any
//! machine), and 0 (reset to the ambient available-parallelism default).
//! This is the evaluation-side mirror of `pgb-core`'s generator
//! thread-invariance suite.

use pgb_graph::degree::{degree_histogram, degree_histogram_seq};
use pgb_graph::Graph;
use pgb_par::with_parallelism;
use pgb_queries::counting::{self, triangle_count, triangles_per_node, wedge_count};
use pgb_queries::path::{path_stats, path_stats_seq};
use pgb_queries::{PathMode, Query, QueryParams, QuerySuite};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The budgets every pass is swept over: inline, parallel, oversubscribed,
/// and the ambient default.
const BUDGETS: [usize; 4] = [1, 2, 8, 0];

fn random_graph(n: usize, p_mille: u64, seed: u64) -> Graph {
    // Dense-ish ER graph built from a hash so the proptest case fully
    // determines it: edge {u, v} exists iff the mixed pair hash lands
    // below `p_mille`/1000.
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            let mut h = seed ^ ((u as u64) << 32 | v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 29;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 32;
            if h % 1000 < p_mille {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, edges).unwrap()
}

proptest! {
    #[test]
    fn triangle_pass_matches_seq_at_all_budgets(
        n in 2usize..120,
        p in 0u64..400,
        seed in 0u64..1 << 32,
    ) {
        let g = random_graph(n, p, seed);
        let seq_per_node = counting::seq::triangles_per_node(&g);
        let seq_total = counting::seq::triangle_count(&g);
        let seq_wedges = counting::seq::wedge_count(&g);
        for threads in BUDGETS {
            let (per_node, total, wedges) = with_parallelism(threads, || {
                (triangles_per_node(&g), triangle_count(&g), wedge_count(&g))
            });
            prop_assert_eq!(&per_node, &seq_per_node, "per-node, threads = {}", threads);
            prop_assert_eq!(total, seq_total, "total, threads = {}", threads);
            prop_assert_eq!(wedges, seq_wedges, "wedges, threads = {}", threads);
        }
    }

    #[test]
    fn bfs_sweep_matches_seq_at_all_budgets(
        n in 2usize..100,
        p in 0u64..120,
        seed in 0u64..1 << 32,
        sources in 1usize..24,
    ) {
        let g = random_graph(n, p, seed);
        for mode in [PathMode::Exact, PathMode::Sampled { sources }] {
            let reference = path_stats_seq(&g, mode, &mut StdRng::seed_from_u64(seed));
            for threads in BUDGETS {
                let stats = with_parallelism(threads, || {
                    path_stats(&g, mode, &mut StdRng::seed_from_u64(seed))
                });
                prop_assert_eq!(&stats, &reference, "{:?}, threads = {}", mode, threads);
            }
        }
    }

    #[test]
    fn degree_histogram_matches_seq_at_all_budgets(
        n in 1usize..200,
        p in 0u64..300,
        seed in 0u64..1 << 32,
    ) {
        let g = random_graph(n, p, seed);
        let reference = degree_histogram_seq(&g);
        for threads in BUDGETS {
            let hist = with_parallelism(threads, || degree_histogram(&g));
            prop_assert_eq!(&hist, &reference, "threads = {}", threads);
        }
    }

    #[test]
    fn evaluate_all_bit_identical_at_all_budgets(
        n in 2usize..80,
        p in 0u64..250,
        seed in 0u64..1 << 32,
    ) {
        // End-to-end over the full 15-query suite (sampled BFS so the
        // PATH stream is exercised): every QueryValue — scalars, float
        // distributions, Louvain partitions — must be identical bits at
        // every budget.
        let g = random_graph(n, p, seed);
        let params = QueryParams {
            path_mode: PathMode::Sampled { sources: 8 },
            ..QueryParams::default()
        };
        let run = |threads: usize| {
            with_parallelism(threads, || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
                let values = QuerySuite::evaluate_all(&g, &Query::ALL, &params, &mut rng);
                (values, rng.gen::<u64>())
            })
        };
        let reference = run(1);
        for threads in [2, 8, 0] {
            let got = run(threads);
            prop_assert_eq!(&got.0, &reference.0, "values drifted at threads = {}", threads);
            prop_assert_eq!(got.1, reference.1, "caller RNG position, threads = {}", threads);
        }
    }
}
