//! Property-based tests for the query layer: structural invariants that
//! must hold on any graph.

use pgb_graph::Graph;
use pgb_queries::counting::{triangle_count, wedge_count};
use pgb_queries::path::path_stats;
use pgb_queries::{PathMode, Query, QueryParams, QuerySuite, QueryValue};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn raw_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..35).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..100))
    })
}

/// The queries whose value does not depend on the RNG under
/// `PathMode::Exact`: everything except the Louvain-backed Q12/Q13.
const DETERMINISTIC: [Query; 13] = [
    Query::NodeCount,
    Query::EdgeCount,
    Query::Triangles,
    Query::AverageDegree,
    Query::DegreeVariance,
    Query::DegreeDistribution,
    Query::Diameter,
    Query::AveragePathLength,
    Query::DistanceDistribution,
    Query::GlobalClustering,
    Query::AverageClustering,
    Query::Assortativity,
    Query::EigenvectorCentrality,
];

proptest! {
    #[test]
    fn clustering_coefficients_bounded((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let gcc = pgb_queries::clustering::global_clustering(&g);
        let acc = pgb_queries::clustering::average_clustering(&g);
        prop_assert!((0.0..=1.0).contains(&gcc), "GCC {gcc}");
        prop_assert!((0.0..=1.0).contains(&acc), "ACC {acc}");
    }

    #[test]
    fn triangles_bounded_by_wedges((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        // Each triangle uses 3 wedges, so 3△ ≤ wedges.
        prop_assert!(3 * triangle_count(&g) <= wedge_count(&g));
    }

    #[test]
    fn path_invariants((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = path_stats(&g, PathMode::Exact, &mut rng);
        // Average ≤ diameter; distribution sums to 1 (or graph is edgeless).
        prop_assert!(s.average_length <= s.diameter as f64 + 1e-9);
        let mass: f64 = s.distance_distribution.iter().sum();
        if g.edge_count() > 0 {
            prop_assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
            prop_assert!(s.average_length >= 1.0);
        } else {
            prop_assert_eq!(s.diameter, 0);
        }
    }

    #[test]
    fn evc_normalised((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let x = pgb_queries::centrality::eigenvector_centrality(&g, 300, 1e-10);
        prop_assert_eq!(x.len(), n);
        prop_assert!(x.iter().all(|&v| v >= 0.0 && v.is_finite()));
        let norm: f64 = x.iter().map(|v| v * v).sum();
        if g.edge_count() > 0 {
            prop_assert!((norm - 1.0).abs() < 1e-6, "norm {norm}");
        } else {
            prop_assert!(norm.abs() < 1e-12);
        }
    }

    #[test]
    fn every_query_shape_stable((n, edges) in raw_edges(), seed in 0u64..200) {
        let g = Graph::from_edges(n, edges).unwrap();
        let params = QueryParams::default();
        let mut rng = StdRng::seed_from_u64(seed);
        for q in Query::ALL {
            match q.evaluate(&g, &params, &mut rng) {
                QueryValue::Scalar(x) => prop_assert!(x.is_finite(), "{q:?}"),
                QueryValue::Distribution(d) => prop_assert!(!d.is_empty(), "{q:?}"),
                QueryValue::Partition(p) => prop_assert_eq!(p.len(), n, "query {:?}", q),
                QueryValue::Vector(v) => prop_assert_eq!(v.len(), n, "query {:?}", q),
            }
        }
    }

    #[test]
    fn sampled_paths_lower_bound_diameter((n, edges) in raw_edges(), seed in 0u64..200) {
        let g = Graph::from_edges(n, edges).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let exact = path_stats(&g, PathMode::Exact, &mut rng);
        let sampled = path_stats(&g, PathMode::Sampled { sources: 5 }, &mut rng);
        prop_assert!(sampled.diameter <= exact.diameter);
    }

    #[test]
    fn evaluate_all_matches_per_query_for_deterministic_queries(
        (n, edges) in raw_edges(),
        seed in 0u64..200,
    ) {
        // In exact path mode, every query except Louvain-backed Q12/Q13 is
        // RNG-independent, and the suite evaluator reduces each shared
        // intermediate through the same helpers as the per-query path —
        // so the values must be *identical*, not merely close.
        let g = Graph::from_edges(n, edges).unwrap();
        let params = QueryParams::default();
        let all = QuerySuite::evaluate_all(
            &g,
            &DETERMINISTIC,
            &params,
            &mut StdRng::seed_from_u64(seed),
        );
        for (&q, suite_value) in DETERMINISTIC.iter().zip(&all) {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
            let single = q.evaluate(&g, &params, &mut rng);
            prop_assert_eq!(&single, suite_value, "query {:?}", q);
        }
    }

    #[test]
    fn evaluate_all_subset_independence((n, edges) in raw_edges(), seed in 0u64..200) {
        // Randomised queries included: the per-intermediate RNG streams
        // make each query's value independent of the requested subset.
        let g = Graph::from_edges(n, edges).unwrap();
        let params = QueryParams { path_mode: PathMode::Sampled { sources: 4 }, ..Default::default() };
        let full = QuerySuite::evaluate_all(
            &g,
            &Query::ALL,
            &params,
            &mut StdRng::seed_from_u64(seed),
        );
        for (i, &q) in Query::ALL.iter().enumerate() {
            let alone = QuerySuite::evaluate_all(
                &g,
                &[q],
                &params,
                &mut StdRng::seed_from_u64(seed),
            );
            prop_assert_eq!(&alone[0], &full[i], "query {:?}", q);
        }
    }
}
