//! Property-based tests for the query layer: structural invariants that
//! must hold on any graph.

use pgb_graph::Graph;
use pgb_queries::counting::{triangle_count, wedge_count};
use pgb_queries::path::path_stats;
use pgb_queries::{PathMode, Query, QueryParams, QueryValue};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn raw_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..35).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..100))
    })
}

proptest! {
    #[test]
    fn clustering_coefficients_bounded((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let gcc = pgb_queries::clustering::global_clustering(&g);
        let acc = pgb_queries::clustering::average_clustering(&g);
        prop_assert!((0.0..=1.0).contains(&gcc), "GCC {gcc}");
        prop_assert!((0.0..=1.0).contains(&acc), "ACC {acc}");
    }

    #[test]
    fn triangles_bounded_by_wedges((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        // Each triangle uses 3 wedges, so 3△ ≤ wedges.
        prop_assert!(3 * triangle_count(&g) <= wedge_count(&g));
    }

    #[test]
    fn path_invariants((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = path_stats(&g, PathMode::Exact, &mut rng);
        // Average ≤ diameter; distribution sums to 1 (or graph is edgeless).
        prop_assert!(s.average_length <= s.diameter as f64 + 1e-9);
        let mass: f64 = s.distance_distribution.iter().sum();
        if g.edge_count() > 0 {
            prop_assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
            prop_assert!(s.average_length >= 1.0);
        } else {
            prop_assert_eq!(s.diameter, 0);
        }
    }

    #[test]
    fn evc_normalised((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let x = pgb_queries::centrality::eigenvector_centrality(&g, 300, 1e-10);
        prop_assert_eq!(x.len(), n);
        prop_assert!(x.iter().all(|&v| v >= 0.0 && v.is_finite()));
        let norm: f64 = x.iter().map(|v| v * v).sum();
        if g.edge_count() > 0 {
            prop_assert!((norm - 1.0).abs() < 1e-6, "norm {norm}");
        } else {
            prop_assert!(norm.abs() < 1e-12);
        }
    }

    #[test]
    fn every_query_shape_stable((n, edges) in raw_edges(), seed in 0u64..200) {
        let g = Graph::from_edges(n, edges).unwrap();
        let params = QueryParams::default();
        let mut rng = StdRng::seed_from_u64(seed);
        for q in Query::ALL {
            match q.evaluate(&g, &params, &mut rng) {
                QueryValue::Scalar(x) => prop_assert!(x.is_finite(), "{q:?}"),
                QueryValue::Distribution(d) => prop_assert!(!d.is_empty(), "{q:?}"),
                QueryValue::Partition(p) => prop_assert_eq!(p.len(), n, "query {:?}", q),
                QueryValue::Vector(v) => prop_assert_eq!(v.len(), n, "query {:?}", q),
            }
        }
    }

    #[test]
    fn sampled_paths_lower_bound_diameter((n, edges) in raw_edges(), seed in 0u64..200) {
        let g = Graph::from_edges(n, edges).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let exact = path_stats(&g, PathMode::Exact, &mut rng);
        let sampled = path_stats(&g, PathMode::Sampled { sources: 5 }, &mut rng);
        prop_assert!(sampled.diameter <= exact.diameter);
    }
}
