//! Eigenvector centrality (Q15) by power iteration.

use pgb_graph::Graph;

/// Eigenvector centrality: the principal eigenvector of the adjacency
/// matrix, L2-normalised with non-negative entries.
///
/// Power iteration with a uniform start vector; on disconnected graphs the
/// limit concentrates on the component with the largest spectral radius
/// and other components go to ~0 — the same behaviour as the NetworkX
/// implementation the paper's evaluation code uses. Returns the all-zero
/// vector for edgeless graphs.
pub fn eigenvector_centrality(g: &Graph, max_iters: usize, tolerance: f64) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 || g.edge_count() == 0 {
        return vec![0.0; n];
    }
    let mut x = vec![1.0f64 / (n as f64).sqrt(); n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iters {
        // Iterate with (A + I): the spectral shift prevents the sign
        // oscillation of plain power iteration on bipartite graphs
        // (same device as the NetworkX implementation).
        next.copy_from_slice(&x);
        for u in g.nodes() {
            let xu = x[u as usize];
            for &v in g.neighbors(u) {
                next[v as usize] += xu;
            }
        }
        let norm = next.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            return vec![0.0; n];
        }
        for v in next.iter_mut() {
            *v /= norm;
        }
        let delta: f64 = x.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut x, &mut next);
        if delta < tolerance {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::Graph;

    fn evc(g: &Graph) -> Vec<f64> {
        eigenvector_centrality(g, 500, 1e-12)
    }

    #[test]
    fn regular_graph_uniform_centrality() {
        let cycle = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let x = evc(&cycle);
        let expected = 1.0 / 5.0f64.sqrt();
        for (u, &v) in x.iter().enumerate() {
            assert!((v - expected).abs() < 1e-9, "node {u}: {v}");
        }
    }

    #[test]
    fn star_center_dominates() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let x = evc(&g);
        // Known: centre = 1/√2, each leaf = 1/(2√2).
        assert!((x[0] - 1.0 / 2.0f64.sqrt()).abs() < 1e-6, "centre {}", x[0]);
        for (leaf, &v) in x.iter().enumerate().skip(1) {
            assert!((v - 1.0 / (2.0 * 2.0f64.sqrt())).abs() < 1e-6, "leaf {leaf}");
        }
    }

    #[test]
    fn normalised_output() {
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]).unwrap();
        let x = evc(&g);
        let norm: f64 = x.iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-9);
        assert!(x.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn edgeless_graph_zero_vector() {
        assert_eq!(evc(&Graph::new(4)), vec![0.0; 4]);
        assert!(evc(&Graph::new(0)).is_empty());
    }

    #[test]
    fn dominant_component_wins() {
        // K4 plus a far-away edge: the K4 (spectral radius 3) dominates
        // the pair (radius 1).
        let g =
            Graph::from_edges(6, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (4, 5)]).unwrap();
        let x = evc(&g);
        assert!(x[0] > 0.4);
        assert!(x[4] < 1e-6, "minor component should vanish, got {}", x[4]);
    }
}
