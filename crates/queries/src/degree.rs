//! Degree queries (Q4–Q6). The heavy lifting lives in
//! [`pgb_graph::degree`]; this module re-exports the pieces the query
//! enum dispatches to and adds the log-binned view used for plotting
//! power-law distributions (Fig. 5 of the paper).

pub use pgb_graph::degree::{degree_distribution, degree_variance};

/// Log₂-binned degree histogram: bin `i` counts nodes with degree in
/// `[2^i, 2^(i+1))`; degree-0 nodes land in a leading bin of their own.
/// Log binning is what makes power-law degree plots readable (Fig. 5).
pub fn log_binned_degree_histogram(g: &pgb_graph::Graph) -> Vec<u64> {
    let hist = pgb_graph::degree::degree_histogram(g);
    if hist.is_empty() {
        return vec![0];
    }
    let max_d = hist.len() - 1;
    let bins = if max_d == 0 { 1 } else { (max_d as f64).log2() as usize + 2 };
    let mut out = vec![0u64; bins + 1];
    for (d, &c) in hist.iter().enumerate() {
        let bin = if d == 0 { 0 } else { (d as f64).log2() as usize + 1 };
        out[bin] += c;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::Graph;

    #[test]
    fn log_binning_boundaries() {
        // Degrees: 0, 1, 2, 3, 4 → bins 0, 1, 2, 2, 3.
        let g =
            Graph::from_edges(8, [(1, 2), (2, 3), (3, 4), (3, 1), (4, 5), (4, 6), (4, 7), (4, 1)])
                .unwrap();
        let binned = log_binned_degree_histogram(&g);
        let total: u64 = binned.iter().sum();
        assert_eq!(total, 8);
        assert_eq!(binned[0], 1); // node 0 has degree 0
    }

    #[test]
    fn empty_graph_binning() {
        assert_eq!(log_binned_degree_histogram(&Graph::new(0)), vec![0, 0]);
    }
}
