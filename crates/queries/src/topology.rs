//! Topology queries built on community structure: community detection
//! (Q12) and modularity (Q13). Assortativity (Q14) lives in
//! [`pgb_graph::degree::assortativity`].

use pgb_community::{louvain, modularity, LouvainParams, Partition};
use pgb_graph::Graph;
use rand::Rng;

/// Detects communities with Louvain and returns the label vector — the
/// value the CD query (Q12) compares across true and synthetic graphs via
/// NMI.
pub fn detect_communities<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Vec<u32> {
    louvain(g, &LouvainParams::default(), rng).labels().to_vec()
}

/// The modularity (Q13) of the Louvain-detected partition — the "Mod"
/// statistic the paper reports is the modularity *achieved on* each graph,
/// so synthetic graphs that destroy community structure score low.
pub fn detected_modularity<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> f64 {
    let p = louvain(g, &LouvainParams::default(), rng);
    modularity(g, &p)
}

/// Convenience wrapper returning both the partition and its modularity
/// from a single Louvain run.
pub fn communities_with_modularity<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> (Partition, f64) {
    let p = louvain(g, &LouvainParams::default(), rng);
    let q = modularity(g, &p);
    (p, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_triangles() -> Graph {
        Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn detects_the_two_triangles() {
        let mut rng = StdRng::seed_from_u64(320);
        let labels = detect_communities(&two_triangles(), &mut rng);
        assert_eq!(labels.len(), 6);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn modularity_positive_on_structured_graph() {
        let mut rng = StdRng::seed_from_u64(321);
        let q = detected_modularity(&two_triangles(), &mut rng);
        assert!((q - 5.0 / 14.0).abs() < 1e-9, "q = {q}");
    }

    #[test]
    fn combined_wrapper_consistent() {
        let mut rng1 = StdRng::seed_from_u64(322);
        let mut rng2 = StdRng::seed_from_u64(322);
        let g = two_triangles();
        let (p, q) = communities_with_modularity(&g, &mut rng1);
        let labels = detect_communities(&g, &mut rng2);
        assert_eq!(p.labels(), labels.as_slice());
        assert!(q > 0.0);
    }

    #[test]
    fn edgeless_graph_zero_modularity() {
        let mut rng = StdRng::seed_from_u64(323);
        assert_eq!(detected_modularity(&Graph::new(5), &mut rng), 0.0);
    }
}
