//! Counting queries: triangles (Q3) and wedge counts (shared with the
//! clustering queries).

use pgb_graph::{Graph, NodeId};

/// Exact triangle count via the forward (node-ordering) algorithm:
/// each triangle `u < v < w` is found once by intersecting the
/// higher-neighbour lists of `u` and `v`. Runs in
/// `O(Σ_edges min(d⁺(u), d⁺(v)))`.
pub fn triangle_count(g: &Graph) -> u64 {
    let n = g.node_count();
    // forward[u] = sorted neighbours of u that are > u.
    let forward: Vec<&[NodeId]> = (0..n as u32)
        .map(|u| {
            let nbrs = g.neighbors(u);
            let start = nbrs.partition_point(|&v| v <= u);
            &nbrs[start..]
        })
        .collect();
    let mut count = 0u64;
    for u in 0..n {
        for &v in forward[u] {
            count += sorted_intersection_count(forward[u], forward[v as usize]);
        }
    }
    count
}

/// Number of elements common to two sorted slices.
fn sorted_intersection_count(a: &[NodeId], b: &[NodeId]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Number of wedges (paths of length 2): `Σ_u C(dᵤ, 2)`.
pub fn wedge_count(g: &Graph) -> u64 {
    g.nodes()
        .map(|u| {
            let d = g.degree(u) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Per-node triangle participation: `t[u]` = number of triangles through
/// `u`. Used by the local clustering coefficients.
pub fn triangles_per_node(g: &Graph) -> Vec<u64> {
    let n = g.node_count();
    let mut t = vec![0u64; n];
    let forward: Vec<&[NodeId]> = (0..n as u32)
        .map(|u| {
            let nbrs = g.neighbors(u);
            let start = nbrs.partition_point(|&v| v <= u);
            &nbrs[start..]
        })
        .collect();
    for u in 0..n {
        for &v in forward[u] {
            // Intersect and credit all three corners.
            let (a, b) = (forward[u], forward[v as usize]);
            let (mut i, mut j) = (0usize, 0usize);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = a[i];
                        t[u] += 1;
                        t[v as usize] += 1;
                        t[w as usize] += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::Graph;

    #[test]
    fn triangle_counts_on_known_graphs() {
        let tri = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(triangle_count(&tri), 1);
        let k4 = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(triangle_count(&k4), 4);
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(triangle_count(&path), 0);
        let star = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(triangle_count(&star), 0);
    }

    #[test]
    fn k5_has_ten_triangles() {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, edges).unwrap();
        assert_eq!(triangle_count(&g), 10);
    }

    #[test]
    fn wedge_counts() {
        let star = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(wedge_count(&star), 6); // C(4,2)
        let tri = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(wedge_count(&tri), 3);
        assert_eq!(wedge_count(&Graph::new(5)), 0);
    }

    #[test]
    fn per_node_triangles_sum_to_three_times_total() {
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (4, 5)]).unwrap();
        let per = triangles_per_node(&g);
        let total: u64 = per.iter().sum();
        assert_eq!(total, 3 * triangle_count(&g));
        assert_eq!(per[5], 0);
        assert_eq!(per[2], 2); // node 2 is in both triangles
    }

    #[test]
    fn agrees_with_bruteforce_on_random_graph() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(300);
        let g = pgb_models::erdos_renyi_gnp(80, 0.15, &mut rng);
        let mut brute = 0u64;
        for u in 0..80u32 {
            for v in (u + 1)..80 {
                for w in (v + 1)..80 {
                    if g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(triangle_count(&g), brute);
    }
}
