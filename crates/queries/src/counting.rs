//! Counting queries: triangles (Q3) and wedge counts (shared with the
//! clustering queries).
//!
//! All triangle work goes through one [`ForwardOrientation`]: the
//! degree-ordered forward orientation of the graph, built **once** and
//! shared by [`triangle_count`] and [`triangles_per_node`] (the suite
//! evaluator additionally derives the total from the per-node pass, so the
//! full 15-query suite orients and intersects exactly once per graph).
//!
//! The intersection loops are chunked over pivot nodes and run on the
//! ambient [`pgb_par::current_parallelism`] budget. Per-chunk credit
//! arrays are merged in chunk order, and because every count is an exact
//! integer the result is bit-identical to the sequential reference
//! ([`seq`]) at any thread count — the same discipline the generators
//! follow in `pgb-core`.

use pgb_graph::{Graph, NodeId};

/// Pivot nodes per chunk for the parallel triangle pass. Coarse on
/// purpose: every chunk produces a full `n`-length credit array that
/// lives until the chunk-order merge, so the chunk count (at most
/// `TRIANGLE_CHUNK_DIVISOR`, the divisor of `n` that sets the chunk
/// size) bounds transient memory at
/// `(TRIANGLE_CHUNK_DIVISOR + 1) × n × 8` bytes (≈ 13.6 MB at n = 10⁵)
/// while still leaving an 8-way budget enough chunks to load-balance
/// skewed pivots. Depends only on `n` — never on the thread count.
const TRIANGLE_CHUNK_DIVISOR: usize = 16;

/// Floor for the triangle chunk size: below this many pivots the pass is
/// too cheap to be worth splitting.
const TRIANGLE_CHUNK_MIN: usize = 1024;

fn triangle_chunk(n: usize) -> usize {
    n.div_ceil(TRIANGLE_CHUNK_DIVISOR).max(TRIANGLE_CHUNK_MIN)
}

/// Nodes per chunk for linear scans (orientation build, wedge counting).
const NODE_CHUNK: usize = 16_384;

/// The degree-ordered forward orientation of a graph: each undirected edge
/// `{u, v}` is kept only at its lower-ranked endpoint, where node rank is
/// the lexicographic pair `(degree, id)`.
///
/// Orienting towards higher degree bounds every forward list by roughly
/// `O(√m)` on skewed (power-law) graphs, so the intersection cost
/// `Σ_edges min(|F(u)|, |F(v)|)` drops well below the id-ordered variant —
/// the standard forward/“compact-forward” trick. Forward lists preserve
/// the CSR id-sort, so two lists intersect with one linear merge.
///
/// Counts are orientation-independent graph properties, so everything
/// derived here is bit-identical to the id-ordered sequential reference in
/// [`seq`].
pub struct ForwardOrientation {
    /// `offsets[u]..offsets[u + 1]` is node `u`'s forward segment in
    /// `targets`; `n + 1` entries, `offsets[n] == m`.
    offsets: Vec<u32>,
    /// Concatenated forward lists, id-sorted within each segment.
    targets: Vec<NodeId>,
}

impl ForwardOrientation {
    /// Builds the orientation in one chunked parallel pass over the CSR
    /// adjacency (per-node forward lists concatenate in node order, so the
    /// arrays are identical at any thread count).
    pub fn new(g: &Graph) -> Self {
        let n = g.node_count();
        let (counts, targets) = pgb_par::par_fold_chunks(
            n,
            NODE_CHUNK,
            || (Vec::new(), Vec::new()),
            |(counts, targets): &mut (Vec<u32>, Vec<NodeId>), range| {
                for u in range {
                    let u = u as NodeId;
                    let du = g.degree(u);
                    let before = targets.len();
                    for &v in g.neighbors(u) {
                        if (g.degree(v), v) > (du, u) {
                            targets.push(v);
                        }
                    }
                    counts.push((targets.len() - before) as u32);
                }
            },
            |acc, mut other| {
                acc.0.append(&mut other.0);
                acc.1.append(&mut other.1);
            },
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut running = 0u32;
        offsets.push(0);
        for c in counts {
            running += c;
            offsets.push(running);
        }
        ForwardOrientation { offsets, targets }
    }

    /// Number of nodes of the underlying graph.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The forward (higher-ranked) neighbours of `u`, id-sorted. Shared
    /// with the wedge-sampling triangle sketch in [`crate::approx`].
    pub(crate) fn forward(&self, u: usize) -> &[NodeId] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Exact triangle count: each triangle is found exactly once, at its
    /// minimum-rank corner, by intersecting two forward lists.
    pub fn triangle_count(&self) -> u64 {
        let n = self.node_count();
        pgb_par::par_fold_chunks(
            n,
            triangle_chunk(n),
            || 0u64,
            |count, range| {
                for u in range {
                    let fu = self.forward(u);
                    for &v in fu {
                        *count += sorted_intersection_count(fu, self.forward(v as usize));
                    }
                }
            },
            |count, other| *count += other,
        )
    }

    /// Per-node triangle participation: `t[u]` = number of triangles
    /// through `u`. Each chunk of pivots credits all three corners into
    /// its own array; chunk arrays merge in chunk order (exact `u64`
    /// adds, so the merge grouping cannot change the bits).
    pub fn triangles_per_node(&self) -> Vec<u64> {
        let n = self.node_count();
        pgb_par::par_fold_chunks(
            n,
            triangle_chunk(n),
            || vec![0u64; n],
            |t, range| {
                for u in range {
                    let fu = self.forward(u);
                    for &v in fu {
                        let fv = self.forward(v as usize);
                        let (mut i, mut j) = (0usize, 0usize);
                        while i < fu.len() && j < fv.len() {
                            match fu[i].cmp(&fv[j]) {
                                std::cmp::Ordering::Less => i += 1,
                                std::cmp::Ordering::Greater => j += 1,
                                std::cmp::Ordering::Equal => {
                                    let w = fu[i];
                                    t[u] += 1;
                                    t[v as usize] += 1;
                                    t[w as usize] += 1;
                                    i += 1;
                                    j += 1;
                                }
                            }
                        }
                    }
                }
            },
            |t, other| {
                for (a, b) in t.iter_mut().zip(other) {
                    *a += b;
                }
            },
        )
    }
}

/// Exact triangle count via the degree-ordered forward orientation; see
/// [`ForwardOrientation`]. Callers that also need per-node counts should
/// build the orientation once and call both methods on it.
pub fn triangle_count(g: &Graph) -> u64 {
    ForwardOrientation::new(g).triangle_count()
}

/// Per-node triangle participation: `t[u]` = number of triangles through
/// `u`. Used by the local clustering coefficients. Builds a fresh
/// [`ForwardOrientation`]; share one across calls where possible.
pub fn triangles_per_node(g: &Graph) -> Vec<u64> {
    ForwardOrientation::new(g).triangles_per_node()
}

/// Number of elements common to two sorted slices.
fn sorted_intersection_count(a: &[NodeId], b: &[NodeId]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Number of wedges (paths of length 2): `Σ_u C(dᵤ, 2)`. Chunked over
/// nodes; exact `u64` partial sums merge in chunk order.
pub fn wedge_count(g: &Graph) -> u64 {
    pgb_par::par_fold_chunks(
        g.node_count(),
        NODE_CHUNK,
        || 0u64,
        |sum, range| {
            for u in range {
                let d = g.degree(u as NodeId) as u64;
                *sum += d * d.saturating_sub(1) / 2;
            }
        },
        |sum, other| *sum += other,
    )
}

/// Sequential reference implementations (the pre-refactor id-ordered
/// forward algorithm). Kept public so the parallel-equivalence property
/// tests and the `suite_scaling` bench can pin the chunked passes against
/// the exact code that used to run.
pub mod seq {
    use super::sorted_intersection_count;
    use pgb_graph::{Graph, NodeId};

    /// Sequential [`super::triangle_count`]: id-ordered forward lists,
    /// one thread, no chunking.
    pub fn triangle_count(g: &Graph) -> u64 {
        let n = g.node_count();
        // forward[u] = sorted neighbours of u that are > u.
        let forward: Vec<&[NodeId]> = (0..n as u32)
            .map(|u| {
                let nbrs = g.neighbors(u);
                let start = nbrs.partition_point(|&v| v <= u);
                &nbrs[start..]
            })
            .collect();
        let mut count = 0u64;
        for u in 0..n {
            for &v in forward[u] {
                count += sorted_intersection_count(forward[u], forward[v as usize]);
            }
        }
        count
    }

    /// Sequential [`super::triangles_per_node`].
    pub fn triangles_per_node(g: &Graph) -> Vec<u64> {
        let n = g.node_count();
        let mut t = vec![0u64; n];
        let forward: Vec<&[NodeId]> = (0..n as u32)
            .map(|u| {
                let nbrs = g.neighbors(u);
                let start = nbrs.partition_point(|&v| v <= u);
                &nbrs[start..]
            })
            .collect();
        for u in 0..n {
            for &v in forward[u] {
                // Intersect and credit all three corners.
                let (a, b) = (forward[u], forward[v as usize]);
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let w = a[i];
                            t[u] += 1;
                            t[v as usize] += 1;
                            t[w as usize] += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
        t
    }

    /// Sequential [`super::wedge_count`].
    pub fn wedge_count(g: &Graph) -> u64 {
        g.nodes()
            .map(|u| {
                let d = g.degree(u) as u64;
                d * d.saturating_sub(1) / 2
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::Graph;

    #[test]
    fn triangle_counts_on_known_graphs() {
        let tri = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(triangle_count(&tri), 1);
        let k4 = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(triangle_count(&k4), 4);
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(triangle_count(&path), 0);
        let star = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(triangle_count(&star), 0);
    }

    #[test]
    fn k5_has_ten_triangles() {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, edges).unwrap();
        assert_eq!(triangle_count(&g), 10);
    }

    #[test]
    fn wedge_counts() {
        let star = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(wedge_count(&star), 6); // C(4,2)
        let tri = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(wedge_count(&tri), 3);
        assert_eq!(wedge_count(&Graph::new(5)), 0);
    }

    #[test]
    fn per_node_triangles_sum_to_three_times_total() {
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (4, 5)]).unwrap();
        let per = triangles_per_node(&g);
        let total: u64 = per.iter().sum();
        assert_eq!(total, 3 * triangle_count(&g));
        assert_eq!(per[5], 0);
        assert_eq!(per[2], 2); // node 2 is in both triangles
    }

    #[test]
    fn shared_orientation_feeds_both_counts() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let fwd = ForwardOrientation::new(&g);
        assert_eq!(fwd.node_count(), 4);
        assert_eq!(fwd.triangle_count(), 4);
        assert_eq!(fwd.triangles_per_node().iter().sum::<u64>(), 12);
    }

    #[test]
    fn orientation_keeps_every_edge_once() {
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (4, 5)]).unwrap();
        let fwd = ForwardOrientation::new(&g);
        let kept: usize = (0..6).map(|u| fwd.forward(u).len()).collect::<Vec<_>>().iter().sum();
        assert_eq!(kept, g.edge_count());
        // Forward lists are id-sorted and only hold higher-ranked nodes.
        for u in 0..6usize {
            let f = fwd.forward(u);
            assert!(f.windows(2).all(|w| w[0] < w[1]), "unsorted forward list at {u}");
            for &v in f {
                assert!(
                    (g.degree(v), v) > (g.degree(u as u32), u as u32),
                    "edge ({u},{v}) oriented against the degree order"
                );
            }
        }
    }

    #[test]
    fn matches_seq_reference_on_known_graphs() {
        for (n, edges) in [
            (6, vec![(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (4, 5)]),
            (5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]),
            (4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
        ] {
            let g = Graph::from_edges(n, edges).unwrap();
            assert_eq!(triangle_count(&g), seq::triangle_count(&g));
            assert_eq!(triangles_per_node(&g), seq::triangles_per_node(&g));
            assert_eq!(wedge_count(&g), seq::wedge_count(&g));
        }
    }

    #[test]
    fn agrees_with_bruteforce_on_random_graph() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(300);
        let g = pgb_models::erdos_renyi_gnp(80, 0.15, &mut rng);
        let mut brute = 0u64;
        for u in 0..80u32 {
            for v in (u + 1)..80 {
                for w in (v + 1)..80 {
                    if g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(triangle_count(&g), brute);
        assert_eq!(seq::triangle_count(&g), brute);
    }
}
