//! Sketch-backed estimators for [`crate::EvalMode::Approx`]: the three
//! super-linear shared intermediates of the suite replaced by sublinear or
//! near-linear sketches, each with a stated concentration bound.
//!
//! * **HyperANF** ([`hll_path_stats`]): per-node HyperLogLog counters,
//!   swept once per distance level — `B(u, t+1)` is the union of the
//!   neighbours' `B(·, t)`, and HLL union is a register-wise `max`, an
//!   exact-integer merge that satisfies `pgb_par::par_fold_chunks`'
//!   merge-algebra contract. Feeds Q7 (diameter, a lower bound exactly
//!   like sampled BFS), Q8 (average path length), and Q9 (distance
//!   distribution) in `O((n + m) · 2^p · diameter)` time and
//!   `O(n · 2^p)` memory, independent of the `O(n·m)` BFS sweep.
//! * **Wedge sampling** ([`triangle_sketch`]): a fixed number of uniform
//!   forward-wedge samples over the shared
//!   [`crate::counting::ForwardOrientation`] estimates the triangle count
//!   (each triangle closes exactly one forward wedge, at its minimum-rank
//!   corner), and uniform node-wedge samples estimate the average local
//!   clustering. Both are means of Bernoulli indicators, so the reported
//!   bounds are Hoeffding: `ε = sqrt(ln(2/δ) / 2k)` at confidence
//!   `1 − δ`. Feeds Q3, Q10, Q11 in `O(n + m + k log d)` time.
//! * **Sampled degree histogram** ([`sampled_degree_histogram`]): a
//!   fixed-size uniform sample of node degrees. The population size is
//!   known, so the classic streaming reservoir degenerates to direct
//!   uniform index sampling — the same estimator without the `O(n)` RNG
//!   pass. Feeds Q5 and Q6.
//!
//! ## Determinism
//!
//! Every estimator draws from the RNG handed to it (the suite derives one
//! stream per sketch — see `suite.rs`) through `pgb_par::par_collect` /
//! `par_fold_chunks`, so chunk boundaries depend only on input sizes and
//! all merges are exact-integer or order-preserving appends. Floating
//! point only ever accumulates *within* a chunk (fixed iteration order)
//! and across the chunk-sum list in chunk order — results are
//! byte-identical at any thread budget.

use crate::counting::{self, ForwardOrientation};
use crate::path::PathStats;
use crate::ApproxConfig;
use pgb_graph::{Graph, NodeId};
use rand::Rng;
use std::sync::Mutex;

/// Samples per chunk for the sampling passes: each sample is a few RNG
/// draws plus a binary search, so the default fine-grained chunk fits.
const SAMPLE_CHUNK: usize = pgb_par::DEFAULT_CHUNK;

/// Nodes per chunk for the register sweep (matches the other linear
/// node scans in the suite).
const NODE_CHUNK: usize = 16_384;

/// Normal-quantile factor for a two-sided interval at `confidence` —
/// coarse thresholds are plenty for a reported error bound.
fn z_for_confidence(confidence: f64) -> f64 {
    if confidence >= 0.997 {
        3.0
    } else if confidence >= 0.99 {
        2.576
    } else if confidence >= 0.95 {
        1.96
    } else {
        1.645
    }
}

/// Hoeffding half-width for a mean of `k` indicator samples at the given
/// confidence: `P(|p̂ − p| ≥ ε) ≤ 2 exp(−2kε²)`.
fn hoeffding_eps(k: usize, confidence: f64) -> f64 {
    let delta = (1.0 - confidence).clamp(1e-12, 1.0);
    ((2.0 / delta).ln() / (2.0 * k as f64)).sqrt()
}

/// splitmix64 finaliser: the stateless node-id hash behind the HLL
/// registers (seeded per evaluation, see [`hll_path_stats`]).
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// `2^{-r}` via exponent-field construction (exact for `r ≤ 1022`); the
/// register loop is the sweep's inner loop, so no `powi` here.
#[inline]
fn inv_pow2(r: u8) -> f64 {
    f64::from_bits((1023u64 - r as u64) << 52)
}

/// Byte-wise unsigned `max` of two 8-register words — the compiler lowers
/// the fixed-size byte loop to a single vector `max`, which is what makes
/// the word-packed sweep cheap per neighbour.
#[inline]
fn bytewise_max(x: u64, y: u64) -> u64 {
    let a = x.to_le_bytes();
    let b = y.to_le_bytes();
    let mut o = [0u8; 8];
    for i in 0..8 {
        o[i] = a[i].max(b[i]);
    }
    u64::from_le_bytes(o)
}

/// Best-effort cache prefetch of the element at `idx` — purely a latency
/// hint with no architectural effect, so determinism is untouched. The
/// sweep's neighbour lookups are random reads over the whole register
/// array; issuing the load a few neighbours ahead hides most of that
/// latency.
#[inline(always)]
fn prefetch_at<T>(slice: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    if idx < slice.len() {
        // SAFETY: `idx` is in bounds so the pointer is valid, and prefetch
        // has no effect beyond the cache.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                slice.as_ptr().add(idx) as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (slice, idx);
}

/// The standard HLL cardinality estimate from one node's register block
/// (packed 8 registers per `u64` word, little-endian), with the
/// small-range (linear-counting) correction. The harmonic sum uses four
/// fixed partial-sum chains folded in a fixed tree — still one exact
/// deterministic summation order (the dependency chains just overlap),
/// so the estimate is identical on every run and thread budget.
fn hll_estimate(words: &[u64]) -> f64 {
    let m = (words.len() * 8) as f64;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut zeros = 0u32;
    for &w in words {
        let b = w.to_le_bytes();
        s0 += inv_pow2(b[0]) + inv_pow2(b[1]);
        s1 += inv_pow2(b[2]) + inv_pow2(b[3]);
        s2 += inv_pow2(b[4]) + inv_pow2(b[5]);
        s3 += inv_pow2(b[6]) + inv_pow2(b[7]);
        for r in b {
            zeros += u32::from(r == 0);
        }
    }
    let sum = (s0 + s1) + (s2 + s3);
    let alpha = match words.len() * 8 {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        l => 0.7213 / (1.0 + 1.079 / l as f64),
    };
    let e = alpha * m * m / sum;
    if e <= 2.5 * m && zeros > 0 {
        m * (m / zeros as f64).ln()
    } else {
        e
    }
}

/// One node's union step with a register-resident `[u64; W]` accumulator:
/// the neighbour loop never round-trips the accumulator through memory.
/// `edges` is the flat CSR neighbour array *starting at this node's first
/// edge* and running to the end of the graph — the first `deg` entries are
/// this node's neighbours, and in dense sweeps the prefetcher reads `pf`
/// entries ahead into it, crossing node boundaries so the lookahead stays
/// ahead of the unions even on low-degree nodes (prefetch is a pure cache
/// hint, so warming another chunk's registers is harmless). Appends the
/// result to `out` and returns `(start, touched)`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn union_node<const W: usize>(
    out: &mut Vec<u64>,
    cur: &[u64],
    base: usize,
    edges: &[NodeId],
    deg: usize,
    dense: bool,
    changed: &[bool],
    pf: usize,
) -> (usize, bool) {
    let mut dst = [0u64; W];
    dst.copy_from_slice(&cur[base..base + W]);
    let mut touched = false;
    if dense {
        touched = deg > 0;
        for i in 0..deg {
            if let Some(&vp) = edges.get(i + pf) {
                prefetch_at(cur, vp as usize * W);
            }
            let v = edges[i] as usize;
            let src = &cur[v * W..(v + 1) * W];
            for j in 0..W {
                dst[j] = bytewise_max(dst[j], src[j]);
            }
        }
    } else {
        for i in 0..deg {
            if let Some(&vp) = edges.get(i + pf) {
                let vp = vp as usize;
                if changed[vp] {
                    prefetch_at(cur, vp * W);
                }
            }
            let v = edges[i] as usize;
            if !changed[v] {
                continue;
            }
            touched = true;
            let src = &cur[v * W..(v + 1) * W];
            for j in 0..W {
                dst[j] = bytewise_max(dst[j], src[j]);
            }
        }
    }
    let start = out.len();
    out.extend_from_slice(&dst);
    (start, touched)
}

/// Fallback union step for larger register blocks (p > 6): unions in
/// place in the output buffer.
fn union_node_dyn(
    out: &mut Vec<u64>,
    cur: &[u64],
    base: usize,
    words: usize,
    nbrs: &[NodeId],
    dense: bool,
    changed: &[bool],
) -> (usize, bool) {
    let start = out.len();
    out.extend_from_slice(&cur[base..base + words]);
    let mut touched = false;
    for &v in nbrs {
        let v = v as usize;
        if !dense && !changed[v] {
            continue;
        }
        touched = true;
        let src = &cur[v * words..(v + 1) * words];
        for (a, &b) in out[start..].iter_mut().zip(src) {
            *a = bytewise_max(*a, b);
        }
    }
    (start, touched)
}

/// The register sweep's rotating per-iteration state: the register
/// array, the per-node grew flags, and the cached per-node estimates.
type SweepBufs = (Vec<u64>, Vec<bool>, Vec<f64>);

/// [`SweepBufs`] plus the per-chunk partial estimate sums — one fold
/// accumulator of the sweep's `par_fold_chunks`.
type SweepAcc = (Vec<u64>, Vec<bool>, Vec<f64>, Vec<f64>);

/// Splits a seed-table entry back into `(register index, rho)`.
#[inline(always)]
fn unpack_seed(e: u32) -> (usize, u64) {
    ((e >> 8) as usize, (e & 0xFF) as u64)
}

/// Union step for the *first* sweep only: at t = 0 every neighbour's
/// counter holds exactly one nonzero register, so the union is a single
/// byte `max` against the 4-bytes-per-node seed table — a far smaller
/// random-access footprint than the register array, and bit-identical to
/// the generic union by construction.
#[inline(always)]
fn union_node_first<const W: usize>(
    out: &mut Vec<u64>,
    cur: &[u64],
    base: usize,
    edges: &[NodeId],
    deg: usize,
    seeds: &[u32],
    pf: usize,
) -> (usize, bool) {
    let mut dst = [0u64; W];
    dst.copy_from_slice(&cur[base..base + W]);
    for i in 0..deg {
        if let Some(&vp) = edges.get(i + pf) {
            prefetch_at(seeds, vp as usize);
        }
        let (idx, rho) = unpack_seed(seeds[edges[i] as usize]);
        let w = idx / 8;
        let sh = 8 * (idx % 8);
        if ((dst[w] >> sh) & 0xFF) < rho {
            dst[w] = (dst[w] & !(0xFFu64 << sh)) | (rho << sh);
        }
    }
    let start = out.len();
    out.extend_from_slice(&dst);
    (start, deg > 0)
}

/// First-sweep union for larger register blocks (p > 6), in place in the
/// output buffer.
fn union_node_first_dyn(
    out: &mut Vec<u64>,
    cur: &[u64],
    base: usize,
    words: usize,
    nbrs: &[NodeId],
    seeds: &[u32],
) -> (usize, bool) {
    let start = out.len();
    out.extend_from_slice(&cur[base..base + words]);
    for &v in nbrs {
        let (idx, rho) = unpack_seed(seeds[v as usize]);
        let w = start + idx / 8;
        let sh = 8 * (idx % 8);
        if ((out[w] >> sh) & 0xFF) < rho {
            out[w] = (out[w] & !(0xFFu64 << sh)) | (rho << sh);
        }
    }
    (start, !nbrs.is_empty())
}

/// [`hll_path_stats`]' result: the [`PathStats`] estimate plus its
/// reported error bound.
#[derive(Clone, Debug, PartialEq)]
pub struct HllPathSketch {
    /// Diameter (a lower bound, like sampled BFS), average path length,
    /// and distance distribution — same shape as the exact sweep.
    pub stats: PathStats,
    /// Relative error bound on every neighbourhood-function value the
    /// statistics derive from: `z(confidence) · 1.04 / sqrt(2^p)`.
    pub rel_bound: f64,
    /// Whether the sweep hit `max_sweep_iters` before the registers
    /// reached their fixpoint (the statistics then cover distances up to
    /// the cap only).
    pub saturated: bool,
}

/// HyperANF: estimates the Q7–Q9 path statistics with one HLL register
/// block per node, swept level-by-level until the registers stop changing.
///
/// Draws one hash seed from `rng`. Register updates and per-level
/// neighbourhood-function sums are chunked over nodes; register unions are
/// byte-wise `max` and the float level sum is assembled from per-chunk
/// partial sums in chunk order, so the sketch is byte-identical at any
/// thread budget.
pub fn hll_path_stats<R: Rng + ?Sized>(
    g: &Graph,
    cfg: &ApproxConfig,
    rng: &mut R,
) -> HllPathSketch {
    let n = g.node_count();
    let p = cfg.hll_precision.clamp(4, 16) as u32;
    let m_regs = 1usize << p;
    let rel_bound = z_for_confidence(cfg.confidence) * 1.04 / (m_regs as f64).sqrt();
    let hash_seed: u64 = rng.gen();
    if n == 0 {
        return HllPathSketch {
            stats: PathStats { diameter: 0, average_length: 0.0, distance_distribution: vec![0.0] },
            rel_bound,
            saturated: false,
        };
    }

    // t = 0: each node's ball is itself — a single nonzero register. The
    // seed table keeps that one register as `(idx << 8) | rho` per node
    // (idx < 2^16 and rho ≤ 61, so a u32 holds any `p ≤ 16`): the first
    // sweep unions against this 4-bytes-per-node table instead of the full
    // register array, a much smaller random-access footprint.
    let seeds: Vec<u32> = pgb_par::par_map_chunks(n, NODE_CHUNK, |range, out| {
        for u in range {
            let h = mix64(hash_seed ^ u as u64);
            let idx = (h & (m_regs as u64 - 1)) as u32;
            let rho = (h >> p).trailing_zeros().min(64 - p) + 1;
            out.push((idx << 8) | rho);
        }
    });
    // The same seeds expanded into register blocks, packed 8 registers per
    // u64 word (`m_regs` is a power of two ≥ 16, so every node owns
    // exactly `words` full words).
    let words = m_regs / 8;
    let mut cur: Vec<u64> = pgb_par::par_map_chunks(n, NODE_CHUNK, |range, out| {
        for u in range {
            let (idx, rho) = unpack_seed(seeds[u]);
            let start = out.len();
            out.resize(start + words, 0);
            out[start + idx / 8] = rho << (8 * (idx % 8));
        }
    });
    // Systolic state: which counters grew last sweep (all did, trivially,
    // at t = 0) and each node's cached cardinality estimate. A neighbour
    // whose counter did not change contributed everything it has to offer
    // in an earlier sweep (cur[u] ⊇ cur[v] whenever v stayed fixed), so
    // unchanged neighbours are skipped and unchanged nodes keep their
    // cached estimate — the registers and sums come out bit-identical to
    // the dense sweep, the tail iterations just stop paying for it.
    let mut changed: Vec<bool> = vec![true; n];
    let mut est: Vec<f64> = pgb_par::par_map_chunks(n, NODE_CHUNK, |range, out| {
        for u in range {
            out.push(hll_estimate(&cur[u * words..(u + 1) * words]));
        }
    });

    // N(0) = n exactly (every ball is a singleton); per-level deltas give
    // the pairs at each distance. HLL noise can make the raw estimates
    // dip, so the running value is kept monotone and deltas clamped ≥ 0.
    let mut hist: Vec<f64> = vec![0.0];
    let mut n_prev = n as f64;
    let mut saturated = true;
    let mut num_changed = n;
    // The buffers rotated out two sweeps ago seed the next sweep's first
    // accumulator, so the steady-state loop recycles the same three big
    // allocations instead of faulting in ~`25 · n / 10⁶` MB of fresh
    // pages per iteration. Purely an allocation concern: the buffers are
    // cleared on reuse and capacity never affects contents, so whichever
    // worker wins the take() changes nothing downstream.
    let spare: Mutex<Option<SweepBufs>> = Mutex::new(None);
    let take_spare = || -> SweepAcc {
        match spare.lock().expect("spare-buffer lock").take() {
            Some((mut regs, mut grew, mut ests)) => {
                regs.clear();
                grew.clear();
                ests.clear();
                (regs, grew, ests, Vec::new())
            }
            None => (Vec::new(), Vec::new(), Vec::new(), Vec::new()),
        }
    };
    for t in 1..=cfg.max_sweep_iters.max(1) {
        // When most counters are still growing, checking the changed flag
        // per neighbour costs more than the unions it saves (an extra
        // dependent random load in the hot loop) — take a dense sweep with
        // prefetching instead. The cutover depends only on the global
        // changed count, so it is thread-independent, and unioning an
        // unchanged neighbour is a register no-op either way.
        let dense = num_changed >= n / 2;
        // The first sweep unions single-register seeds (see the seed
        // table above); `t` is the same on every thread, so the dispatch
        // is deterministic.
        let first = t == 1;
        const PF: usize = 24;
        let (next, next_changed, next_est, chunk_sums) = pgb_par::par_fold_chunks(
            n,
            NODE_CHUNK,
            take_spare,
            |acc, range| {
                acc.0.reserve(range.len() * words);
                let mut sum = 0.0;
                let (offsets, flat) = g.csr();
                for u in range {
                    let base = u * words;
                    let beg = offsets[u] as usize;
                    let deg = offsets[u + 1] as usize - beg;
                    let edges = &flat[beg..];
                    // Register-resident accumulator for the common word
                    // counts (p = 4/5/6), generic spill path otherwise.
                    let (start, touched) = match (first, words) {
                        (true, 2) => {
                            union_node_first::<2>(&mut acc.0, &cur, base, edges, deg, &seeds, PF)
                        }
                        (true, 4) => {
                            union_node_first::<4>(&mut acc.0, &cur, base, edges, deg, &seeds, PF)
                        }
                        (true, 8) => {
                            union_node_first::<8>(&mut acc.0, &cur, base, edges, deg, &seeds, PF)
                        }
                        (true, _) => union_node_first_dyn(
                            &mut acc.0,
                            &cur,
                            base,
                            words,
                            &edges[..deg],
                            &seeds,
                        ),
                        (false, 2) => {
                            union_node::<2>(&mut acc.0, &cur, base, edges, deg, dense, &changed, PF)
                        }
                        (false, 4) => {
                            union_node::<4>(&mut acc.0, &cur, base, edges, deg, dense, &changed, PF)
                        }
                        (false, 8) => {
                            union_node::<8>(&mut acc.0, &cur, base, edges, deg, dense, &changed, PF)
                        }
                        (false, _) => union_node_dyn(
                            &mut acc.0,
                            &cur,
                            base,
                            words,
                            &edges[..deg],
                            dense,
                            &changed,
                        ),
                    };
                    let grew = touched && acc.0[start..] != cur[base..base + words];
                    let e = if grew { hll_estimate(&acc.0[start..start + words]) } else { est[u] };
                    acc.1.push(grew);
                    acc.2.push(e);
                    sum += e;
                }
                acc.3.push(sum);
            },
            |acc, mut other| {
                acc.0.append(&mut other.0);
                acc.1.append(&mut other.1);
                acc.2.append(&mut other.2);
                acc.3.append(&mut other.3);
            },
        );
        num_changed = next_changed.iter().filter(|&&c| c).count();
        if num_changed == 0 {
            // Fixpoint: no ball grew in a way the registers can see.
            saturated = false;
            break;
        }
        // Fixed-order reduction of the chunk partial sums.
        let nt: f64 = chunk_sums.iter().sum::<f64>().max(n_prev);
        hist.push(nt - n_prev);
        n_prev = nt;
        let old_regs = std::mem::replace(&mut cur, next);
        let old_grew = std::mem::replace(&mut changed, next_changed);
        let old_ests = std::mem::replace(&mut est, next_est);
        *spare.lock().expect("spare-buffer lock") = Some((old_regs, old_grew, old_ests));
    }

    // Trailing zero-growth levels carry no distance mass; the diameter is
    // the last level where the estimate actually grew.
    while hist.len() > 1 && hist[hist.len() - 1] == 0.0 {
        hist.pop();
    }
    let pairs: f64 = hist.iter().sum();
    let stats = if pairs <= 0.0 {
        PathStats { diameter: 0, average_length: 0.0, distance_distribution: vec![0.0] }
    } else {
        let total: f64 = hist.iter().enumerate().map(|(t, &c)| t as f64 * c).sum();
        PathStats {
            diameter: (hist.len() - 1) as u32,
            average_length: total / pairs,
            distance_distribution: hist.iter().map(|&c| c / pairs).collect(),
        }
    };
    HllPathSketch { stats, rel_bound, saturated }
}

/// [`triangle_sketch`]'s result: the three clustering-family estimates
/// with their Hoeffding bounds (absolute, at the configured confidence).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TriangleSketch {
    /// Estimated triangle count (Q3).
    pub triangles: f64,
    /// Absolute Hoeffding bound on the triangle estimate.
    pub triangles_bound: f64,
    /// Estimated global clustering coefficient (Q10).
    pub gcc: f64,
    /// Absolute Hoeffding bound on the GCC estimate.
    pub gcc_bound: f64,
    /// Estimated average local clustering coefficient (Q11).
    pub acc: f64,
    /// Absolute Hoeffding bound on the ACC estimate.
    pub acc_bound: f64,
}

/// Wedge-sampled estimates for Q3/Q10/Q11 over the shared degree-ordered
/// forward orientation.
///
/// Two fixed-size sampling passes draw from `rng` (each pass takes one
/// base draw via `pgb_par::par_collect`; per-chunk hit counts are exact
/// `u64`s):
///
/// * **forward wedges** — a uniform forward wedge `(v, w) ∈ F(u)²` closes
///   iff `{v, w}` is an edge, and each triangle closes exactly one forward
///   wedge, so `t̂ = p̂ · W_fwd`. GCC follows as `3 t̂ / W` with the exact
///   wedge count `W`.
/// * **node wedges** — for a uniform node `u`, a uniform wedge at `u`
///   closes with probability `c_u` (local clustering), and nodes with
///   degree < 2 contribute 0, so the hit fraction estimates the ACC.
pub fn triangle_sketch<R: Rng>(
    g: &Graph,
    fwd: &ForwardOrientation,
    cfg: &ApproxConfig,
    rng: &mut R,
) -> TriangleSketch {
    let n = g.node_count();
    let k = cfg.wedge_samples.max(1);
    let eps = hoeffding_eps(k, cfg.confidence);
    if n == 0 {
        return TriangleSketch::default();
    }

    // Prefix sums of per-node forward wedge counts C(|F(u)|, 2): sampling
    // an index uniformly in [0, W_fwd) and binary-searching lands on node
    // u with probability proportional to its forward wedge count.
    let mut prefix: Vec<u64> = Vec::with_capacity(n + 1);
    prefix.push(0);
    for u in 0..n {
        let f = fwd.forward(u).len() as u64;
        prefix.push(prefix[u] + f * f.saturating_sub(1) / 2);
    }
    let w_fwd = prefix[n];

    let (triangles, triangles_bound) = if w_fwd == 0 {
        // No forward wedges ⇒ no triangles, exactly.
        (0.0, 0.0)
    } else {
        let chunk_hits: Vec<u64> = pgb_par::par_collect(k, SAMPLE_CHUNK, rng, |range, rng, out| {
            let mut hits = 0u64;
            for _ in range {
                let r = rng.gen_range(0..w_fwd);
                let u = prefix.partition_point(|&x| x <= r) - 1;
                let flist = fwd.forward(u);
                let (a, b) = distinct_pair(flist.len(), rng);
                if g.has_edge(flist[a], flist[b]) {
                    hits += 1;
                }
            }
            out.push(hits);
        });
        let hits: u64 = chunk_hits.iter().sum();
        let p_hat = hits as f64 / k as f64;
        (p_hat * w_fwd as f64, eps * w_fwd as f64)
    };

    let wedges = counting::wedge_count(g);
    let (gcc, gcc_bound) = if wedges == 0 {
        (0.0, 0.0)
    } else {
        (3.0 * triangles / wedges as f64, 3.0 * triangles_bound / wedges as f64)
    };

    // ACC: uniform node, uniform wedge at that node.
    let chunk_hits: Vec<u64> = pgb_par::par_collect(k, SAMPLE_CHUNK, rng, |range, rng, out| {
        let mut hits = 0u64;
        for _ in range {
            let u = rng.gen_range(0..n as u64) as NodeId;
            let nbrs = g.neighbors(u);
            if nbrs.len() < 2 {
                continue;
            }
            let (a, b) = distinct_pair(nbrs.len(), rng);
            if g.has_edge(nbrs[a], nbrs[b]) {
                hits += 1;
            }
        }
        out.push(hits);
    });
    let hits: u64 = chunk_hits.iter().sum();
    let acc = hits as f64 / k as f64;

    TriangleSketch { triangles, triangles_bound, gcc, gcc_bound, acc, acc_bound: eps }
}

/// A uniform unordered pair of distinct indices in `0..len` (requires
/// `len ≥ 2`), as two draws.
fn distinct_pair<R: Rng + ?Sized>(len: usize, rng: &mut R) -> (usize, usize) {
    let a = rng.gen_range(0..len);
    let b = rng.gen_range(0..len - 1);
    (a, if b >= a { b + 1 } else { b })
}

/// [`sampled_degree_histogram`]'s result: histogram counts over `samples`
/// uniformly sampled nodes — feed the `*_from_histogram` helpers with
/// `samples` as the population size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampledDegreeHistogram {
    /// `hist[d]` = number of *sampled* nodes with degree `d`.
    pub hist: Vec<u64>,
    /// The sample count the histogram is normalised by (0 for the empty
    /// graph, mirroring the exact path's empty-distribution shape).
    pub samples: usize,
}

/// Uniform degree sample for Q5/Q6: `samples` node draws (with
/// replacement) from one derived stream, histogrammed. The known
/// population size makes this the degenerate (single-pass-free) form of a
/// reservoir sample — same estimator, no `O(n)` stream scan.
pub fn sampled_degree_histogram<R: Rng>(
    g: &Graph,
    samples: usize,
    rng: &mut R,
) -> SampledDegreeHistogram {
    let n = g.node_count();
    if n == 0 {
        // One rng draw either way, so the suite stream discipline is
        // shape-independent.
        let _: u64 = rng.gen();
        return SampledDegreeHistogram { hist: vec![0], samples: 0 };
    }
    let k = samples.max(1);
    let degrees: Vec<u32> = pgb_par::par_collect(k, SAMPLE_CHUNK, rng, |range, rng, out| {
        for _ in range {
            let u = rng.gen_range(0..n as u64) as NodeId;
            out.push(g.degree(u) as u32);
        }
    });
    let max_d = degrees.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0u64; max_d + 1];
    for d in degrees {
        hist[d as usize] += 1;
    }
    SampledDegreeHistogram { hist, samples: k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{path_stats, PathStats};
    use crate::PathMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> ApproxConfig {
        ApproxConfig::default()
    }

    fn exact_paths(g: &Graph) -> PathStats {
        path_stats(g, PathMode::Exact, &mut StdRng::seed_from_u64(0))
    }

    #[test]
    fn inv_pow2_matches_powi() {
        for r in 0u8..40 {
            assert_eq!(inv_pow2(r), 2f64.powi(-(r as i32)), "r = {r}");
        }
    }

    #[test]
    fn hll_estimate_tracks_cardinality() {
        // Distinct hashed items into 64 registers: the estimate should be
        // within the 3σ band (1.04/√64 ≈ 13% rse) for a mid-size set.
        let m = 64usize;
        let mut regs = vec![0u8; m];
        let count = 5_000u64;
        for x in 0..count {
            let h = mix64(0xDEAD_BEEF ^ x);
            let idx = (h & (m as u64 - 1)) as usize;
            let rho = ((h >> 6).trailing_zeros().min(58) + 1) as u8;
            regs[idx] = regs[idx].max(rho);
        }
        let words: Vec<u64> =
            regs.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        let e = hll_estimate(&words);
        let rel = (e - count as f64).abs() / count as f64;
        assert!(rel < 0.40, "estimate {e} for {count} (rel {rel})");
    }

    #[test]
    fn hll_path_stats_on_path_graph() {
        // Path 0-1-2-3: diameter 3; the registers must reach their
        // fixpoint after exactly 3 growing sweeps.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let sk = hll_path_stats(&g, &cfg(), &mut StdRng::seed_from_u64(1));
        assert_eq!(sk.stats.diameter, 3);
        assert!(!sk.saturated);
        assert!(sk.rel_bound > 0.0);
        let sum: f64 = sk.stats.distance_distribution.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hll_path_stats_tracks_exact_on_er() {
        let mut rng = StdRng::seed_from_u64(40);
        let g = pgb_models::erdos_renyi_gnp(300, 0.03, &mut rng);
        let ex = exact_paths(&g);
        let sk = hll_path_stats(&g, &cfg(), &mut StdRng::seed_from_u64(41));
        assert!(sk.stats.diameter <= ex.diameter);
        let rel = (sk.stats.average_length - ex.average_length).abs() / ex.average_length;
        assert!(rel < 2.0 * sk.rel_bound + 0.05, "rel {rel} bound {}", sk.rel_bound);
    }

    #[test]
    fn hll_edgeless_and_empty() {
        for g in [Graph::new(0), Graph::new(5)] {
            let sk = hll_path_stats(&g, &cfg(), &mut StdRng::seed_from_u64(2));
            assert_eq!(sk.stats.diameter, 0);
            assert_eq!(sk.stats.average_length, 0.0);
            assert_eq!(sk.stats.distance_distribution, vec![0.0]);
        }
    }

    #[test]
    fn hll_thread_invariant() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = pgb_models::erdos_renyi_gnp(400, 0.02, &mut rng);
        let run = |threads| {
            pgb_par::with_parallelism(threads, || {
                hll_path_stats(&g, &cfg(), &mut StdRng::seed_from_u64(7))
            })
        };
        let base = run(1);
        for threads in [2, 8, 0] {
            assert_eq!(run(threads), base, "threads = {threads}");
        }
    }

    #[test]
    fn triangle_sketch_exact_on_triangle_free_graph() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let fwd = ForwardOrientation::new(&g);
        let sk = triangle_sketch(&g, &fwd, &cfg(), &mut StdRng::seed_from_u64(3));
        // A star has no forward wedges at all (every edge is kept at the
        // leaf), so the triangle estimate is exactly zero.
        assert_eq!(sk.triangles, 0.0);
        assert_eq!(sk.gcc, 0.0);
        assert_eq!(sk.acc, 0.0);
    }

    #[test]
    fn triangle_sketch_exact_on_complete_graph() {
        // K5: every wedge closes, so sampling is noise-free: t̂ = W_fwd,
        // GCC = ACC = 1 with zero sampling variance.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, edges).unwrap();
        let fwd = ForwardOrientation::new(&g);
        let sk = triangle_sketch(&g, &fwd, &cfg(), &mut StdRng::seed_from_u64(4));
        assert_eq!(sk.triangles, 10.0);
        assert!((sk.gcc - 1.0).abs() < 1e-12);
        assert!((sk.acc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_sketch_tracks_exact_counts() {
        let mut rng = StdRng::seed_from_u64(50);
        let g = pgb_models::erdos_renyi_gnp(200, 0.08, &mut rng);
        let fwd = ForwardOrientation::new(&g);
        let exact_t = fwd.triangle_count() as f64;
        let sk = triangle_sketch(&g, &fwd, &cfg(), &mut StdRng::seed_from_u64(51));
        assert!(
            (sk.triangles - exact_t).abs() <= sk.triangles_bound,
            "estimate {} exact {exact_t} bound {}",
            sk.triangles,
            sk.triangles_bound
        );
        let exact_acc = crate::clustering::average_clustering(&g);
        assert!((sk.acc - exact_acc).abs() <= sk.acc_bound, "acc {} vs {exact_acc}", sk.acc);
    }

    #[test]
    fn triangle_sketch_thread_invariant() {
        let mut rng = StdRng::seed_from_u64(52);
        let g = pgb_models::erdos_renyi_gnp(300, 0.05, &mut rng);
        let fwd = ForwardOrientation::new(&g);
        let run = |threads| {
            pgb_par::with_parallelism(threads, || {
                triangle_sketch(&g, &fwd, &cfg(), &mut StdRng::seed_from_u64(8))
            })
        };
        let base = run(1);
        for threads in [2, 8, 0] {
            assert_eq!(run(threads), base, "threads = {threads}");
        }
    }

    #[test]
    fn sampled_histogram_normalises() {
        let mut rng = StdRng::seed_from_u64(60);
        let g = pgb_models::erdos_renyi_gnp(500, 0.02, &mut rng);
        let s = sampled_degree_histogram(&g, 4096, &mut StdRng::seed_from_u64(61));
        assert_eq!(s.samples, 4096);
        assert_eq!(s.hist.iter().sum::<u64>(), 4096);
        let dist = pgb_graph::degree::distribution_from_histogram(&s.hist, s.samples);
        let sum: f64 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_histogram_empty_graph_matches_exact_shape() {
        let s = sampled_degree_histogram(&Graph::new(0), 128, &mut StdRng::seed_from_u64(62));
        assert_eq!(s.samples, 0);
        assert!(pgb_graph::degree::distribution_from_histogram(&s.hist, s.samples).is_empty());
    }

    #[test]
    fn sampled_histogram_thread_invariant() {
        let mut rng = StdRng::seed_from_u64(63);
        let g = pgb_models::erdos_renyi_gnp(300, 0.03, &mut rng);
        let run = |threads| {
            pgb_par::with_parallelism(threads, || {
                sampled_degree_histogram(&g, 2048, &mut StdRng::seed_from_u64(9))
            })
        };
        let base = run(1);
        for threads in [2, 8, 0] {
            assert_eq!(run(threads), base, "threads = {threads}");
        }
    }

    #[test]
    fn hoeffding_eps_shrinks_with_samples() {
        assert!(hoeffding_eps(100, 0.95) > hoeffding_eps(10_000, 0.95));
        assert!(hoeffding_eps(1000, 0.999) > hoeffding_eps(1000, 0.9));
    }
}
