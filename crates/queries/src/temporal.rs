//! Temporal queries over snapshot sequences: the inter-event-time
//! histogram of the raw event log, and snapshot-wise drift of the static
//! query suite.
//!
//! The drift evaluation deliberately adds **no new passes**: each snapshot
//! goes through [`QuerySuite::evaluate_all_with_stats`], so every shared
//! intermediate (degree histogram, BFS sweep, triangle pass, Louvain run)
//! is computed at most once *per snapshot*, and the returned
//! [`SuiteStats`] prove it. RNG discipline matches the suite's: one `u64`
//! is drawn from the caller and each window evaluates on its own derived
//! stream, so drift results are independent of evaluation order and thread
//! budget.

use crate::suite::{QuerySuite, SuiteStats};
use crate::{Query, QueryParams, QueryValue};
use pgb_graph::temporal::{SnapshotSequence, Timestamp};
use pgb_graph::Graph;
use rand::Rng;

/// Histogram of gaps between consecutive events: entry `g` counts ordered
/// timestamp pairs at distance `g` (index 0 counts simultaneous events).
/// Fewer than two events yield an empty histogram.
///
/// ```
/// use pgb_queries::temporal::inter_event_time_histogram;
///
/// let hist = inter_event_time_histogram(&[0, 0, 1, 4]);
/// assert_eq!(hist, vec![1, 1, 0, 1]); // gaps 0, 1, 3
/// ```
pub fn inter_event_time_histogram(timestamps: &[Timestamp]) -> Vec<u64> {
    if timestamps.len() < 2 {
        return Vec::new();
    }
    let mut ts = timestamps.to_vec();
    ts.sort_unstable();
    let max_gap = ts.windows(2).map(|w| w[1] - w[0]).max().expect("len ≥ 2");
    let mut hist = vec![0u64; max_gap as usize + 1];
    for w in ts.windows(2) {
        hist[(w[1] - w[0]) as usize] += 1;
    }
    hist
}

/// [`inter_event_time_histogram`] normalised to a probability
/// distribution, in the same shape the suite's distributional queries use
/// (so `pgb-core`'s KL metric applies directly).
pub fn inter_event_time_distribution(timestamps: &[Timestamp]) -> Vec<f64> {
    let hist = inter_event_time_histogram(timestamps);
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    hist.iter().map(|&c| c as f64 / total as f64).collect()
}

/// Per-window suite values plus the per-window [`SuiteStats`] proving the
/// shared-intermediate reuse, from one [`suite_drift`] call.
#[derive(Clone, Debug)]
pub struct SuiteDrift {
    /// `per_window[w][qi]` is query `queries[qi]` evaluated on snapshot `w`.
    pub per_window: Vec<Vec<QueryValue>>,
    /// One stats record per snapshot; each shared pass runs at most once
    /// per snapshot, never once per query.
    pub stats: Vec<SuiteStats>,
}

/// Evaluates the query suite on every snapshot, one
/// [`QuerySuite::evaluate_all_with_stats`] call per snapshot on a derived
/// RNG stream. Draws exactly one `u64` from `rng`.
pub fn suite_drift<R: Rng + ?Sized>(
    snapshots: &[Graph],
    queries: &[Query],
    params: &QueryParams,
    rng: &mut R,
) -> SuiteDrift {
    let base: u64 = rng.gen();
    let (per_window, stats) = snapshots
        .iter()
        .enumerate()
        .map(|(w, g)| {
            let mut wrng = pgb_par::derive_stream(base, w as u64);
            QuerySuite::evaluate_all_with_stats(g, queries, params, &mut wrng)
        })
        .unzip();
    SuiteDrift { per_window, stats }
}

/// [`suite_drift`] over a [`SnapshotSequence`]'s windows.
pub fn suite_drift_sequence<R: Rng + ?Sized>(
    seq: &SnapshotSequence,
    queries: &[Query],
    params: &QueryParams,
    rng: &mut R,
) -> SuiteDrift {
    suite_drift(seq.snapshots(), queries, params, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn iet_histogram_counts_gaps() {
        assert_eq!(inter_event_time_histogram(&[]), Vec::<u64>::new());
        assert_eq!(inter_event_time_histogram(&[7]), Vec::<u64>::new());
        assert_eq!(inter_event_time_histogram(&[3, 1, 1, 6]), vec![1, 0, 1, 1]);
        let d = inter_event_time_distribution(&[0, 1, 2, 3]);
        assert_eq!(d, vec![0.0, 1.0]);
    }

    #[test]
    fn iet_distribution_sums_to_one() {
        let d = inter_event_time_distribution(&[0, 0, 5, 9, 14, 14]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    fn ring_events(n: u32, per_window: u32) -> Vec<(u32, u32, u64)> {
        (0..n).map(|i| (i, (i + 1) % n, (i / per_window) as u64 * 10)).collect()
    }

    #[test]
    fn suite_drift_reuses_shared_intermediates_per_snapshot() {
        // The acceptance-criterion assertion: evaluating the FULL suite on
        // every snapshot runs each shared pass exactly once per snapshot.
        let seq = SnapshotSequence::build(24, &ring_events(24, 8), 3).unwrap();
        let params = QueryParams::default();
        let mut rng = StdRng::seed_from_u64(11);
        let drift = suite_drift_sequence(&seq, &Query::ALL, &params, &mut rng);
        assert_eq!(drift.per_window.len(), 3);
        assert_eq!(drift.stats.len(), 3);
        for stats in &drift.stats {
            assert_eq!(
                *stats,
                SuiteStats { degree_passes: 1, bfs_sweeps: 1, triangle_passes: 1, louvain_runs: 1 }
            );
        }
    }

    #[test]
    fn suite_drift_draws_one_u64_and_is_order_independent() {
        let seq = SnapshotSequence::build(24, &ring_events(24, 8), 3).unwrap();
        let params = QueryParams::default();
        let queries = [Query::EdgeCount, Query::CommunityDetection];
        let mut rng = StdRng::seed_from_u64(5);
        let drift = suite_drift_sequence(&seq, &queries, &params, &mut rng);
        // Exactly one draw: the caller RNG has advanced by a single u64.
        let mut probe = StdRng::seed_from_u64(5);
        let base = probe.next_u64();
        assert_eq!(rng.next_u64(), probe.next_u64());
        // And each window matches a standalone evaluation on its derived
        // stream — window results don't depend on their position in the
        // sweep.
        for (w, g) in seq.snapshots().iter().enumerate() {
            let mut wrng = pgb_par::derive_stream(base, w as u64);
            let standalone = QuerySuite::evaluate_all(g, &queries, &params, &mut wrng);
            assert_eq!(drift.per_window[w], standalone);
        }
    }

    #[test]
    fn suite_drift_handles_empty_snapshots() {
        let events = [(0u32, 1u32, 0u64), (1, 2, 0)];
        let seq = SnapshotSequence::build(4, &events, 3).unwrap();
        let params = QueryParams::default();
        let mut rng = StdRng::seed_from_u64(3);
        let drift = suite_drift_sequence(&seq, &[Query::EdgeCount], &params, &mut rng);
        assert_eq!(drift.per_window[0][0], QueryValue::Scalar(2.0));
        assert_eq!(drift.per_window[1][0], QueryValue::Scalar(0.0));
        assert_eq!(drift.per_window[2][0], QueryValue::Scalar(0.0));
    }
}
