//! Single-pass evaluation of a query subset: [`QuerySuite::evaluate_all`].
//!
//! The benchmark evaluates the full 15-query suite on every synthetic graph
//! (algorithms × datasets × ε × repetitions), and several queries share an
//! expensive intermediate:
//!
//! * one **degree histogram** feeds Q5 (variance) and Q6 (distribution);
//! * one **BFS sweep** ([`path::path_stats`]) feeds Q7 (diameter), Q8
//!   (average path length), and Q9 (distance distribution);
//! * one **triangle pass** ([`counting::triangles_per_node`]) feeds Q3
//!   (triangles), Q10 (GCC), and Q11 (ACC);
//! * one **Louvain run** feeds Q12 (community detection) and Q13
//!   (modularity).
//!
//! Evaluating queries independently via [`Query::evaluate`] recomputes each
//! of these once per dependent query — three BFS sweeps, three triangle
//! passes, two Louvain runs for the full suite. `evaluate_all` computes each
//! shared intermediate lazily and at most once, and every reduction goes
//! through the same helper functions as the per-query path, so deterministic
//! queries (everything except Louvain-backed Q12/Q13, and Q7–Q9 under
//! [`crate::PathMode::Sampled`]) return bit-identical values either way.
//!
//! ## Parallelism
//!
//! The shared passes themselves are parallel: the degree histogram, the
//! triangle pass (via the degree-ordered [`counting::ForwardOrientation`]),
//! the BFS sweep, and Louvain's init/aggregation scans are chunked on
//! `pgb-par`'s fixed-boundary discipline and pick up the **ambient**
//! [`pgb_par::current_parallelism`] budget — the benchmark runner's
//! schedulers already scope every repetition with
//! `pgb_par::with_parallelism`, so evaluation scales with the intra-cell
//! thread budget without any new plumbing, and every pass is bit-identical
//! at any thread count (chunk merges are exact-integer or order-preserving
//! appends only).
//!
//! ## RNG-stream discipline
//!
//! Randomised components must not make results depend on which other queries
//! run, or in what order. `evaluate_all` therefore draws **one** `u64` base
//! seed from the caller's RNG and gives every randomised intermediate its
//! own deterministic stream derived from `(base, intermediate tag)`:
//!
//! * the BFS source sample (only drawn upon under `PathMode::Sampled`) uses
//!   the `PATH` stream;
//! * the Louvain node order uses the `LOUVAIN` stream;
//! * under [`EvalMode::Approx`], the HyperANF hash seed, the wedge-sample
//!   draws, and the degree-sample draws use the `HLL`, `TRI_SKETCH`, and
//!   `HIST` streams respectively — *never* the exact path's streams, so
//!   toggling the mode cannot perturb an exact evaluation's RNG cursor
//!   (the golden CSVs only exercise `Exact`).
//!
//! Consequences: (1) the caller's RNG advances by exactly one draw no matter
//! which queries are requested, (2) the value computed for a query is
//! identical whether it is evaluated alone or as part of the full suite, and
//! (3) a benchmark harness that seeds the caller RNG per cell gets results
//! that are independent of thread count and query-subset choice — the
//! property behind `pgb-core`'s byte-identical-CSV guarantee.
//!
//! ## Approximate evaluation
//!
//! With [`QueryParams::eval`] set to [`EvalMode::Approx`], the three
//! super-linear shared intermediates are replaced by the sketches in
//! [`crate::approx`] (HyperANF for the BFS sweep, wedge sampling for the
//! triangle pass, degree sampling for the histogram), each at most once,
//! under the same subset-independence and thread-count guarantees. The
//! sketches' reported error bounds are surfaced through
//! [`QuerySuite::evaluate_all_with_report`].

use crate::approx;
use crate::{centrality, counting, path, topology, EvalMode, Query, QueryParams, QueryValue};
use pgb_community::Partition;
use pgb_graph::degree::{distribution_from_histogram, variance_from_histogram};
use pgb_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stream tag for the BFS source sample (Q7–Q9 under sampled mode).
const PATH_STREAM: u64 = 1;
/// Stream tag for the Louvain node order (Q12/Q13).
const LOUVAIN_STREAM: u64 = 2;
/// Stream tag for the HyperANF hash seed (Q7–Q9 under [`EvalMode::Approx`]).
const HLL_STREAM: u64 = 3;
/// Stream tag for the wedge-sampling triangle sketch (Q3/Q10/Q11 under
/// [`EvalMode::Approx`]).
const TRI_SKETCH_STREAM: u64 = 4;
/// Stream tag for the sampled degree histogram (Q5/Q6 under
/// [`EvalMode::Approx`]).
const HIST_STREAM: u64 = 5;

/// Derives the deterministic RNG for one randomised intermediate from the
/// per-evaluation base seed (same mixer family as `pgb-core`'s per-cell
/// derivation).
fn stream(base: u64, tag: u64) -> StdRng {
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15;
    h ^= tag.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(h << 6).wrapping_add(h >> 2);
    h = h.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    h ^= h >> 32;
    StdRng::seed_from_u64(h)
}

/// Instrumentation counters: how many times each shared pass actually ran
/// during one [`QuerySuite::evaluate_all_with_stats`] call. Each is at most
/// 1 by construction; a pass whose dependent queries were not requested
/// stays at 0.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SuiteStats {
    /// Degree-histogram passes (Q5/Q6).
    pub degree_passes: usize,
    /// All-sources/sampled BFS sweeps (Q7–Q9).
    pub bfs_sweeps: usize,
    /// Triangle-per-node passes (Q3/Q10/Q11).
    pub triangle_passes: usize,
    /// Louvain runs (Q12/Q13).
    pub louvain_runs: usize,
}

/// Error bounds reported by one [`QuerySuite::evaluate_all_with_report`]
/// call under [`EvalMode::Approx`]. Every field is `None`/default until the
/// sketch that produces it actually runs (and always under
/// [`EvalMode::Exact`]); bounds hold at [`ApproxReport::confidence`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ApproxReport {
    /// Confidence level of every bound below (0 until a sketch runs).
    pub confidence: f64,
    /// Absolute Hoeffding bound on the Q3 triangle estimate.
    pub triangles_bound: Option<f64>,
    /// Absolute Hoeffding bound on the Q10 GCC estimate.
    pub gcc_bound: Option<f64>,
    /// Absolute Hoeffding bound on the Q11 ACC estimate.
    pub acc_bound: Option<f64>,
    /// Relative HLL bound on the neighbourhood-function values behind
    /// Q7–Q9.
    pub path_rel_bound: Option<f64>,
    /// Whether the HyperANF sweep hit its iteration cap before its
    /// register fixpoint.
    pub path_saturated: bool,
}

/// Lazily computed shared intermediates for one graph. The histogram is
/// stored with the population count the `*_from_histogram` helpers divide
/// by (`n` exactly, the sample count under [`EvalMode::Approx`]).
struct SharedPasses<'g> {
    g: &'g Graph,
    params: QueryParams,
    base: u64,
    degree_hist: Option<(Vec<u64>, usize)>,
    path: Option<path::PathStats>,
    triangles: Option<Vec<u64>>,
    tri_sketch: Option<approx::TriangleSketch>,
    louvain: Option<(Partition, f64)>,
    stats: SuiteStats,
    report: ApproxReport,
}

impl<'g> SharedPasses<'g> {
    fn new(g: &'g Graph, params: QueryParams, base: u64) -> Self {
        SharedPasses {
            g,
            params,
            base,
            degree_hist: None,
            path: None,
            triangles: None,
            tri_sketch: None,
            louvain: None,
            stats: SuiteStats::default(),
            report: ApproxReport::default(),
        }
    }

    /// The approx configuration, if this evaluation is sketch-backed.
    fn approx_cfg(&self) -> Option<crate::ApproxConfig> {
        match self.params.eval {
            EvalMode::Exact => None,
            EvalMode::Approx(cfg) => Some(cfg),
        }
    }

    fn degree_hist(&mut self) -> (&[u64], usize) {
        if self.degree_hist.is_none() {
            self.stats.degree_passes += 1;
            self.degree_hist = Some(match self.approx_cfg() {
                None => (pgb_graph::degree::degree_histogram(self.g), self.g.node_count()),
                Some(cfg) => {
                    self.report.confidence = cfg.confidence;
                    let mut rng = stream(self.base, HIST_STREAM);
                    let s =
                        approx::sampled_degree_histogram(self.g, cfg.histogram_samples, &mut rng);
                    (s.hist, s.samples)
                }
            });
        }
        let (hist, denom) = self.degree_hist.as_ref().expect("filled above");
        (hist, *denom)
    }

    fn path_stats(&mut self) -> &path::PathStats {
        if self.path.is_none() {
            self.stats.bfs_sweeps += 1;
            self.path = Some(match self.approx_cfg() {
                None => {
                    let mut rng = stream(self.base, PATH_STREAM);
                    path::path_stats(self.g, self.params.path_mode, &mut rng)
                }
                Some(cfg) => {
                    let mut rng = stream(self.base, HLL_STREAM);
                    let sk = approx::hll_path_stats(self.g, &cfg, &mut rng);
                    self.report.confidence = cfg.confidence;
                    self.report.path_rel_bound = Some(sk.rel_bound);
                    self.report.path_saturated = sk.saturated;
                    sk.stats
                }
            });
        }
        self.path.as_ref().expect("filled above")
    }

    fn triangles_per_node(&mut self) -> &[u64] {
        if self.triangles.is_none() {
            self.stats.triangle_passes += 1;
            self.triangles = Some(counting::triangles_per_node(self.g));
        }
        self.triangles.as_deref().expect("filled above")
    }

    fn triangle_total(&mut self) -> u64 {
        self.triangles_per_node().iter().sum::<u64>() / 3
    }

    /// The shared wedge-sampling sketch (Q3/Q10/Q11 under approx mode).
    /// Counted as the evaluation's one triangle pass.
    fn tri_sketch(&mut self, cfg: &crate::ApproxConfig) -> approx::TriangleSketch {
        if self.tri_sketch.is_none() {
            self.stats.triangle_passes += 1;
            let fwd = counting::ForwardOrientation::new(self.g);
            let mut rng = stream(self.base, TRI_SKETCH_STREAM);
            let sk = approx::triangle_sketch(self.g, &fwd, cfg, &mut rng);
            self.report.confidence = cfg.confidence;
            self.report.triangles_bound = Some(sk.triangles_bound);
            self.report.gcc_bound = Some(sk.gcc_bound);
            self.report.acc_bound = Some(sk.acc_bound);
            self.tri_sketch = Some(sk);
        }
        self.tri_sketch.expect("filled above")
    }

    fn louvain(&mut self) -> &(Partition, f64) {
        if self.louvain.is_none() {
            self.stats.louvain_runs += 1;
            let mut rng = stream(self.base, LOUVAIN_STREAM);
            self.louvain = Some(topology::communities_with_modularity(self.g, &mut rng));
        }
        self.louvain.as_ref().expect("filled above")
    }

    fn evaluate(&mut self, q: Query) -> QueryValue {
        let g = self.g;
        match q {
            Query::NodeCount => QueryValue::Scalar(g.node_count() as f64),
            Query::EdgeCount => QueryValue::Scalar(g.edge_count() as f64),
            Query::Triangles => match self.approx_cfg() {
                None => QueryValue::Scalar(self.triangle_total() as f64),
                Some(cfg) => QueryValue::Scalar(self.tri_sketch(&cfg).triangles),
            },
            Query::AverageDegree => QueryValue::Scalar(g.average_degree()),
            Query::DegreeVariance => {
                let (hist, denom) = self.degree_hist();
                QueryValue::Scalar(variance_from_histogram(hist, denom))
            }
            Query::DegreeDistribution => {
                let (hist, denom) = self.degree_hist();
                QueryValue::Distribution(distribution_from_histogram(hist, denom))
            }
            Query::Diameter => QueryValue::Scalar(self.path_stats().diameter as f64),
            Query::AveragePathLength => QueryValue::Scalar(self.path_stats().average_length),
            Query::DistanceDistribution => {
                QueryValue::Distribution(self.path_stats().distance_distribution.clone())
            }
            Query::GlobalClustering => match self.approx_cfg() {
                None => {
                    let triangles = self.triangle_total();
                    QueryValue::Scalar(crate::clustering::global_clustering_from_counts(
                        triangles,
                        counting::wedge_count(g),
                    ))
                }
                Some(cfg) => QueryValue::Scalar(self.tri_sketch(&cfg).gcc),
            },
            Query::AverageClustering => match self.approx_cfg() {
                None => {
                    let per_node = self.triangles_per_node();
                    QueryValue::Scalar(crate::clustering::average_clustering_from_triangles(
                        g, per_node,
                    ))
                }
                Some(cfg) => QueryValue::Scalar(self.tri_sketch(&cfg).acc),
            },
            Query::CommunityDetection => QueryValue::Partition(self.louvain().0.labels().to_vec()),
            Query::Modularity => QueryValue::Scalar(self.louvain().1),
            Query::Assortativity => {
                QueryValue::Scalar(pgb_graph::degree::assortativity(g).unwrap_or(0.0))
            }
            Query::EigenvectorCentrality => QueryValue::Vector(centrality::eigenvector_centrality(
                g,
                self.params.evc_max_iters,
                self.params.evc_tolerance,
            )),
        }
    }
}

/// One-pass evaluator for a set of queries on one graph.
pub struct QuerySuite;

impl QuerySuite {
    /// Evaluates `queries` on `g`, computing each shared intermediate
    /// (degree histogram, BFS sweep, triangle pass, Louvain run) lazily and
    /// at most once. Returns one [`QueryValue`] per entry of `queries`, in
    /// order.
    ///
    /// `rng` is consumed for exactly one `u64` draw regardless of the query
    /// subset; see the module docs for the stream-derivation discipline.
    pub fn evaluate_all<R: Rng + ?Sized>(
        g: &Graph,
        queries: &[Query],
        params: &QueryParams,
        rng: &mut R,
    ) -> Vec<QueryValue> {
        Self::evaluate_all_with_stats(g, queries, params, rng).0
    }

    /// [`QuerySuite::evaluate_all`] plus the [`SuiteStats`] instrumentation
    /// counters — used by tests to assert the at-most-once guarantee.
    pub fn evaluate_all_with_stats<R: Rng + ?Sized>(
        g: &Graph,
        queries: &[Query],
        params: &QueryParams,
        rng: &mut R,
    ) -> (Vec<QueryValue>, SuiteStats) {
        let (values, stats, _) = Self::evaluate_all_with_report(g, queries, params, rng);
        (values, stats)
    }

    /// [`QuerySuite::evaluate_all_with_stats`] plus the [`ApproxReport`]
    /// error bounds. Under [`EvalMode::Exact`] the report stays at its
    /// default (no bounds); under [`EvalMode::Approx`] each sketch that
    /// runs fills in its bound.
    pub fn evaluate_all_with_report<R: Rng + ?Sized>(
        g: &Graph,
        queries: &[Query],
        params: &QueryParams,
        rng: &mut R,
    ) -> (Vec<QueryValue>, SuiteStats, ApproxReport) {
        let base: u64 = rng.gen();
        let mut passes = SharedPasses::new(g, *params, base);
        let values = queries.iter().map(|&q| passes.evaluate(q)).collect();
        (values, passes.stats, passes.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PathMode;

    fn two_triangles() -> Graph {
        Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn shared_passes_run_at_most_once_for_full_suite() {
        let g = two_triangles();
        let mut rng = StdRng::seed_from_u64(9);
        let (values, stats) =
            QuerySuite::evaluate_all_with_stats(&g, &Query::ALL, &QueryParams::default(), &mut rng);
        assert_eq!(values.len(), 15);
        assert_eq!(
            stats,
            SuiteStats { degree_passes: 1, bfs_sweeps: 1, triangle_passes: 1, louvain_runs: 1 }
        );
    }

    #[test]
    fn unrequested_passes_never_run() {
        let g = two_triangles();
        let mut rng = StdRng::seed_from_u64(10);
        let (_, stats) = QuerySuite::evaluate_all_with_stats(
            &g,
            &[Query::NodeCount, Query::AverageDegree, Query::Assortativity],
            &QueryParams::default(),
            &mut rng,
        );
        assert_eq!(stats, SuiteStats::default());
    }

    #[test]
    fn duplicate_queries_still_one_pass() {
        let g = two_triangles();
        let mut rng = StdRng::seed_from_u64(11);
        let (values, stats) = QuerySuite::evaluate_all_with_stats(
            &g,
            &[Query::Diameter, Query::Diameter, Query::AveragePathLength],
            &QueryParams::default(),
            &mut rng,
        );
        assert_eq!(stats.bfs_sweeps, 1);
        assert_eq!(values[0], values[1]);
    }

    #[test]
    fn subset_independent_results() {
        // The value computed for a query must not depend on which other
        // queries are requested alongside it — the RNG-stream discipline.
        let g = two_triangles();
        let params =
            QueryParams { path_mode: PathMode::Sampled { sources: 3 }, ..Default::default() };
        let full =
            QuerySuite::evaluate_all(&g, &Query::ALL, &params, &mut StdRng::seed_from_u64(77));
        for (i, &q) in Query::ALL.iter().enumerate() {
            let alone = QuerySuite::evaluate_all(&g, &[q], &params, &mut StdRng::seed_from_u64(77));
            assert_eq!(alone[0], full[i], "{q:?} differs alone vs in the full suite");
        }
    }

    #[test]
    fn caller_rng_advances_by_one_draw_regardless_of_subset() {
        let g = two_triangles();
        let params = QueryParams::default();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        QuerySuite::evaluate_all(&g, &Query::ALL, &params, &mut a);
        QuerySuite::evaluate_all(&g, &[Query::NodeCount], &params, &mut b);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn cd_and_mod_come_from_the_same_louvain_run() {
        let g = two_triangles();
        let mut rng = StdRng::seed_from_u64(12);
        let values = QuerySuite::evaluate_all(
            &g,
            &[Query::CommunityDetection, Query::Modularity],
            &QueryParams::default(),
            &mut rng,
        );
        let labels = match &values[0] {
            QueryValue::Partition(p) => p.clone(),
            v => panic!("expected partition, got {v:?}"),
        };
        let q = values[1].as_scalar().unwrap();
        let p = Partition::from_labels(labels);
        assert!((pgb_community::modularity(&g, &p) - q).abs() < 1e-12);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let params = QueryParams::default();
        for g in [Graph::new(0), Graph::new(4)] {
            let mut rng = StdRng::seed_from_u64(13);
            let values = QuerySuite::evaluate_all(&g, &Query::ALL, &params, &mut rng);
            assert_eq!(values.len(), 15);
            for (q, v) in Query::ALL.iter().zip(&values) {
                if let QueryValue::Scalar(x) = v {
                    assert!(x.is_finite(), "{q:?} -> {x}");
                }
            }
        }
    }

    fn approx_params() -> QueryParams {
        QueryParams {
            eval: crate::EvalMode::Approx(crate::ApproxConfig::default()),
            ..Default::default()
        }
    }

    #[test]
    fn approx_shared_passes_run_at_most_once_for_full_suite() {
        let g = two_triangles();
        let mut rng = StdRng::seed_from_u64(20);
        let (values, stats, report) =
            QuerySuite::evaluate_all_with_report(&g, &Query::ALL, &approx_params(), &mut rng);
        assert_eq!(values.len(), 15);
        assert_eq!(
            stats,
            SuiteStats { degree_passes: 1, bfs_sweeps: 1, triangle_passes: 1, louvain_runs: 1 }
        );
        assert_eq!(report.confidence, 0.99);
        assert!(report.triangles_bound.is_some());
        assert!(report.gcc_bound.is_some());
        assert!(report.acc_bound.is_some());
        assert!(report.path_rel_bound.is_some());
        assert!(!report.path_saturated);
    }

    #[test]
    fn approx_deterministic_queries_match_exact() {
        // Q1/Q2/Q4, Q12–Q15 do not go through any sketch: identical values
        // under both modes at the same caller seed.
        let g = two_triangles();
        let exact = QuerySuite::evaluate_all(
            &g,
            &Query::ALL,
            &QueryParams::default(),
            &mut StdRng::seed_from_u64(21),
        );
        let approx = QuerySuite::evaluate_all(
            &g,
            &Query::ALL,
            &approx_params(),
            &mut StdRng::seed_from_u64(21),
        );
        for q in [
            Query::NodeCount,
            Query::EdgeCount,
            Query::AverageDegree,
            Query::CommunityDetection,
            Query::Modularity,
            Query::Assortativity,
            Query::EigenvectorCentrality,
        ] {
            let i = q.id() - 1;
            assert_eq!(exact[i], approx[i], "{q:?} must be mode-independent");
        }
    }

    #[test]
    fn approx_subset_independent_results() {
        let g = two_triangles();
        let params = approx_params();
        let full =
            QuerySuite::evaluate_all(&g, &Query::ALL, &params, &mut StdRng::seed_from_u64(78));
        for (i, &q) in Query::ALL.iter().enumerate() {
            let alone = QuerySuite::evaluate_all(&g, &[q], &params, &mut StdRng::seed_from_u64(78));
            assert_eq!(alone[0], full[i], "{q:?} differs alone vs in the full suite");
        }
    }

    #[test]
    fn approx_rng_advances_by_one_draw() {
        let g = two_triangles();
        let mut a = StdRng::seed_from_u64(22);
        let mut b = StdRng::seed_from_u64(22);
        QuerySuite::evaluate_all(&g, &Query::ALL, &approx_params(), &mut a);
        QuerySuite::evaluate_all(&g, &[Query::NodeCount], &QueryParams::default(), &mut b);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn approx_exact_on_noise_free_cases() {
        // The two-triangles graph is tiny; the sketch's sampling passes see
        // every wedge many times, but exactness is only guaranteed where the
        // estimator has zero variance — the node-count-scaled values.
        let g = two_triangles();
        let mut rng = StdRng::seed_from_u64(23);
        let values = QuerySuite::evaluate_all(
            &g,
            &[Query::NodeCount, Query::EdgeCount, Query::AverageDegree],
            &approx_params(),
            &mut rng,
        );
        assert_eq!(values[0], QueryValue::Scalar(6.0));
        assert_eq!(values[1], QueryValue::Scalar(7.0));
    }

    #[test]
    fn approx_empty_and_edgeless_graphs() {
        for g in [Graph::new(0), Graph::new(4)] {
            let mut rng = StdRng::seed_from_u64(24);
            let values = QuerySuite::evaluate_all(&g, &Query::ALL, &approx_params(), &mut rng);
            assert_eq!(values.len(), 15);
            for (q, v) in Query::ALL.iter().zip(&values) {
                if let QueryValue::Scalar(x) = v {
                    assert!(x.is_finite(), "{q:?} -> {x}");
                }
            }
        }
    }

    #[test]
    fn exact_report_is_empty() {
        let g = two_triangles();
        let mut rng = StdRng::seed_from_u64(25);
        let (_, _, report) = QuerySuite::evaluate_all_with_report(
            &g,
            &Query::ALL,
            &QueryParams::default(),
            &mut rng,
        );
        assert_eq!(report, ApproxReport::default());
    }
}
