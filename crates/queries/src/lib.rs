//! # pgb-queries
//!
//! The 15 graph queries of the PGB benchmark (element U of the 4-tuple;
//! Tables III/IV of the paper), grouped exactly as in the paper:
//!
//! | group | queries |
//! |-------|---------|
//! | counting  | Q1 `\|V\|`, Q2 `\|E\|`, Q3 `△` (triangles) |
//! | degree    | Q4 `d̄` (average degree), Q5 `dσ` (degree variance), Q6 `d` (degree distribution) |
//! | path      | Q7 `lmax` (diameter), Q8 `l̄` (average shortest path), Q9 `l` (distance distribution) |
//! | topology  | Q10 GCC, Q11 ACC, Q12 CD (community detection), Q13 Mod, Q14 Ass |
//! | centrality| Q15 EVC (eigenvector centrality) |
//!
//! [`Query::evaluate`] computes any single query against a graph, returning
//! a [`QueryValue`]. [`QuerySuite::evaluate_all`] evaluates a whole query
//! subset in one pass, computing each shared intermediate (degree histogram,
//! BFS sweep, triangle pass, Louvain run) at most once — see the [`suite`]
//! module for the sharing plan and the RNG-stream discipline that keeps
//! results independent of the requested subset. The error-metric pairing of
//! Table IV lives in `pgb-core`, which compares true-vs-synthetic values.

pub mod approx;
pub mod centrality;
pub mod clustering;
pub mod counting;
pub mod degree;
pub mod path;
pub mod suite;
pub mod temporal;
pub mod topology;

pub use suite::{ApproxReport, QuerySuite, SuiteStats};
pub use temporal::{suite_drift, suite_drift_sequence, SuiteDrift};

use pgb_graph::Graph;
use rand::Rng;

/// How the path queries (Q7–Q9) traverse the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathMode {
    /// BFS from every node — exact, `O(n · m)`.
    Exact,
    /// BFS from a uniform sample of sources — the estimator the harness
    /// uses on graphs above ~10⁴ nodes (§"Substitutions" of DESIGN.md).
    Sampled {
        /// Number of BFS sources.
        sources: usize,
    },
}

/// Sketch parameters for [`EvalMode::Approx`]. See [`approx`] for the
/// estimators each knob feeds and the error bounds they report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApproxConfig {
    /// HyperLogLog precision `p` for the HyperANF path sweep: `2^p`
    /// one-byte registers per node (clamped to `4..=16`). Relative error
    /// scales as `1.04 / sqrt(2^p)`; memory as `2 · n · 2^p` bytes.
    pub hll_precision: u8,
    /// Cap on HyperANF sweep iterations (i.e. on the distance levels
    /// explored). The sweep normally stops at its register fixpoint well
    /// before this.
    pub max_sweep_iters: usize,
    /// Wedge samples per sampling pass for the triangle sketch (Q3/Q10)
    /// and the local-clustering sketch (Q11).
    pub wedge_samples: usize,
    /// Node-degree samples for the sampled degree histogram (Q5/Q6).
    pub histogram_samples: usize,
    /// Confidence level the reported error bounds hold at (e.g. `0.99`).
    pub confidence: f64,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            hll_precision: 4,
            max_sweep_iters: 64,
            wedge_samples: 1 << 16,
            histogram_samples: 1 << 16,
            confidence: 0.99,
        }
    }
}

/// How [`QuerySuite::evaluate_all`] computes the super-linear shared
/// intermediates.
///
/// This is a *suite-level* axis: [`Query::evaluate`] (the single-query
/// path) always evaluates exactly, and the deterministic queries
/// (Q1/Q2/Q4, Q12–Q15) are identical under both modes. Approximate
/// evaluation draws its randomness from dedicated derived streams, so
/// switching modes never perturbs the exact path's RNG cursor (the
/// golden CSVs only exercise `Exact`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum EvalMode {
    /// Every shared intermediate computed exactly (BFS sweep, forward
    /// intersection, full degree histogram). The default.
    #[default]
    Exact,
    /// Sketch-backed intermediates with reported error bounds: a
    /// HyperANF register sweep for Q7–Q9, wedge sampling for Q3/Q10/Q11,
    /// and a sampled degree histogram for Q5/Q6. See [`approx`].
    Approx(ApproxConfig),
}

impl EvalMode {
    /// Harness-facing name (the `--eval` flag value).
    pub fn name(&self) -> &'static str {
        match self {
            EvalMode::Exact => "exact",
            EvalMode::Approx(_) => "approx",
        }
    }
}

impl std::str::FromStr for EvalMode {
    type Err = String;

    /// Parses the harness `--eval` flag: `exact`, or `approx` (with the
    /// default [`ApproxConfig`]).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(EvalMode::Exact),
            "approx" => Ok(EvalMode::Approx(ApproxConfig::default())),
            other => Err(format!("unknown eval mode {other:?} (expected exact|approx)")),
        }
    }
}

/// Evaluation parameters shared by all queries.
#[derive(Clone, Copy, Debug)]
pub struct QueryParams {
    /// Path-query traversal mode.
    pub path_mode: PathMode,
    /// Power-iteration cap for eigenvector centrality.
    pub evc_max_iters: usize,
    /// Convergence threshold (L1 change) for eigenvector centrality.
    pub evc_tolerance: f64,
    /// Exact or sketch-backed evaluation of the suite's shared
    /// intermediates (honoured by [`QuerySuite`]; ignored by the
    /// single-query [`Query::evaluate`] path, which is always exact).
    pub eval: EvalMode,
}

impl Default for QueryParams {
    fn default() -> Self {
        QueryParams {
            path_mode: PathMode::Exact,
            evc_max_iters: 200,
            evc_tolerance: 1e-9,
            eval: EvalMode::Exact,
        }
    }
}

/// The 15 benchmark queries (Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Query {
    /// Q1: number of nodes.
    NodeCount,
    /// Q2: number of edges.
    EdgeCount,
    /// Q3: triangle count.
    Triangles,
    /// Q4: average degree.
    AverageDegree,
    /// Q5: degree variance.
    DegreeVariance,
    /// Q6: degree distribution.
    DegreeDistribution,
    /// Q7: diameter (largest eccentricity in the largest component).
    Diameter,
    /// Q8: average of all shortest paths.
    AveragePathLength,
    /// Q9: distance distribution.
    DistanceDistribution,
    /// Q10: global clustering coefficient.
    GlobalClustering,
    /// Q11: average clustering coefficient.
    AverageClustering,
    /// Q12: community detection (Louvain labels).
    CommunityDetection,
    /// Q13: modularity of the detected communities.
    Modularity,
    /// Q14: degree assortativity coefficient.
    Assortativity,
    /// Q15: eigenvector centrality.
    EigenvectorCentrality,
}

impl Query {
    /// All 15 queries in paper order.
    pub const ALL: [Query; 15] = [
        Query::NodeCount,
        Query::EdgeCount,
        Query::Triangles,
        Query::AverageDegree,
        Query::DegreeVariance,
        Query::DegreeDistribution,
        Query::Diameter,
        Query::AveragePathLength,
        Query::DistanceDistribution,
        Query::GlobalClustering,
        Query::AverageClustering,
        Query::CommunityDetection,
        Query::Modularity,
        Query::Assortativity,
        Query::EigenvectorCentrality,
    ];

    /// The paper's query id (1-based, Table III).
    pub fn id(&self) -> usize {
        Query::ALL.iter().position(|q| q == self).expect("query listed in ALL") + 1
    }

    /// The paper's symbol for this query (Table IV).
    pub fn symbol(&self) -> &'static str {
        match self {
            Query::NodeCount => "|V|",
            Query::EdgeCount => "|E|",
            Query::Triangles => "tri",
            Query::AverageDegree => "d_avg",
            Query::DegreeVariance => "d_var",
            Query::DegreeDistribution => "d_dist",
            Query::Diameter => "l_max",
            Query::AveragePathLength => "l_avg",
            Query::DistanceDistribution => "l_dist",
            Query::GlobalClustering => "GCC",
            Query::AverageClustering => "ACC",
            Query::CommunityDetection => "CD",
            Query::Modularity => "Mod",
            Query::Assortativity => "Ass",
            Query::EigenvectorCentrality => "EVC",
        }
    }

    /// Evaluates this query on `g`.
    ///
    /// `rng` powers the randomised components (Louvain's node order, BFS
    /// source sampling); scalar queries ignore it.
    pub fn evaluate<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        params: &QueryParams,
        rng: &mut R,
    ) -> QueryValue {
        match self {
            Query::NodeCount => QueryValue::Scalar(g.node_count() as f64),
            Query::EdgeCount => QueryValue::Scalar(g.edge_count() as f64),
            Query::Triangles => QueryValue::Scalar(counting::triangle_count(g) as f64),
            Query::AverageDegree => QueryValue::Scalar(g.average_degree()),
            Query::DegreeVariance => QueryValue::Scalar(pgb_graph::degree::degree_variance(g)),
            Query::DegreeDistribution => {
                QueryValue::Distribution(pgb_graph::degree::degree_distribution(g))
            }
            Query::Diameter => {
                QueryValue::Scalar(path::path_stats(g, params.path_mode, rng).diameter as f64)
            }
            Query::AveragePathLength => {
                QueryValue::Scalar(path::path_stats(g, params.path_mode, rng).average_length)
            }
            Query::DistanceDistribution => QueryValue::Distribution(
                path::path_stats(g, params.path_mode, rng).distance_distribution,
            ),
            Query::GlobalClustering => QueryValue::Scalar(clustering::global_clustering(g)),
            Query::AverageClustering => QueryValue::Scalar(clustering::average_clustering(g)),
            Query::CommunityDetection => {
                QueryValue::Partition(topology::detect_communities(g, rng))
            }
            Query::Modularity => QueryValue::Scalar(topology::detected_modularity(g, rng)),
            Query::Assortativity => {
                QueryValue::Scalar(pgb_graph::degree::assortativity(g).unwrap_or(0.0))
            }
            Query::EigenvectorCentrality => QueryValue::Vector(centrality::eigenvector_centrality(
                g,
                params.evc_max_iters,
                params.evc_tolerance,
            )),
        }
    }
}

/// The result of a query: the benchmark compares values of matching shape
/// with the metric Table IV assigns to the query.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryValue {
    /// A single number (counts, coefficients).
    Scalar(f64),
    /// A discrete distribution (degree or distance histogram, normalised).
    Distribution(Vec<f64>),
    /// Community labels per node.
    Partition(Vec<u32>),
    /// A per-node score vector (centrality).
    Vector(Vec<f64>),
}

impl QueryValue {
    /// The scalar payload, if this is a scalar value.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            QueryValue::Scalar(x) => Some(*x),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ids_and_symbols_cover_all_queries() {
        for (i, q) in Query::ALL.iter().enumerate() {
            assert_eq!(q.id(), i + 1);
            assert!(!q.symbol().is_empty());
        }
        let symbols: std::collections::HashSet<_> = Query::ALL.iter().map(|q| q.symbol()).collect();
        assert_eq!(symbols.len(), 15, "symbols must be unique");
    }

    #[test]
    fn evaluate_all_on_small_graph() {
        let g = pgb_graph::Graph::from_edges(
            6,
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
        )
        .unwrap();
        let params = QueryParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        for q in Query::ALL {
            let v = q.evaluate(&g, &params, &mut rng);
            match v {
                QueryValue::Scalar(x) => assert!(x.is_finite(), "{q:?} -> {x}"),
                QueryValue::Distribution(d) => {
                    assert!(!d.is_empty(), "{q:?} empty");
                    let sum: f64 = d.iter().sum();
                    assert!((sum - 1.0).abs() < 1e-9, "{q:?} sums to {sum}");
                }
                QueryValue::Partition(p) => assert_eq!(p.len(), 6, "{q:?}"),
                QueryValue::Vector(v) => assert_eq!(v.len(), 6, "{q:?}"),
            }
        }
    }

    #[test]
    fn scalar_values_on_triangle() {
        let g = pgb_graph::Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let params = QueryParams::default();
        let mut rng = StdRng::seed_from_u64(2);
        let check = |q: Query, expected: f64, rng: &mut StdRng| {
            let got = q.evaluate(&g, &params, rng).as_scalar().unwrap();
            assert!((got - expected).abs() < 1e-9, "{q:?}: {got} vs {expected}");
        };
        check(Query::NodeCount, 3.0, &mut rng);
        check(Query::EdgeCount, 3.0, &mut rng);
        check(Query::Triangles, 1.0, &mut rng);
        check(Query::AverageDegree, 2.0, &mut rng);
        check(Query::DegreeVariance, 0.0, &mut rng);
        check(Query::Diameter, 1.0, &mut rng);
        check(Query::AveragePathLength, 1.0, &mut rng);
        check(Query::GlobalClustering, 1.0, &mut rng);
        check(Query::AverageClustering, 1.0, &mut rng);
    }
}
