//! Path-condition queries: diameter (Q7), average shortest path (Q8), and
//! the distance distribution (Q9), computed in one BFS sweep.
//!
//! The sweep is parallel over sources: the source list is sampled first
//! (same caller-RNG draws as the sequential reference — the BFS itself is
//! deterministic, so no per-source randomness exists to derive), then
//! chunks of sources each run their BFS into a chunk-local accumulator and
//! the distance histograms merge **in source order**. Every merged
//! quantity is an exact integer (`u64` histogram cells, `u128` distance
//! total, `u32` max), so [`path_stats`] is bit-identical to
//! [`path_stats_seq`] at any [`pgb_par::current_parallelism`] budget; the
//! two ratios (`average_length`, the normalised distribution) are computed
//! once from the merged integers.

use crate::PathMode;
use pgb_graph::traversal::{bfs_distances_into, UNREACHABLE};
use pgb_graph::Graph;
use rand::Rng;

/// Sources per chunk for the parallel sweep: one BFS is already `O(n + m)`
/// work, so small chunks load-balance without measurable handoff cost,
/// while each chunk still amortises its distance-buffer allocation over
/// several sources.
const SOURCE_CHUNK: usize = 8;

/// The three path statistics, bundled because they share the BFS sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct PathStats {
    /// Largest finite distance observed (diameter of the covered pairs).
    pub diameter: u32,
    /// Mean distance over reachable (ordered) pairs.
    pub average_length: f64,
    /// Normalised histogram of pairwise distances, indexed by distance
    /// (entry 0 is always 0 — a node is at distance 0 only from itself,
    /// which is excluded).
    pub distance_distribution: Vec<f64>,
}

/// Computes the path statistics of `g`.
///
/// * [`PathMode::Exact`] sweeps every source: exact values in `O(n·m)`.
/// * [`PathMode::Sampled`] sweeps a uniform source sample: each BFS still
///   reaches all nodes, so the estimators are unbiased for the average and
///   the distribution, and the diameter is a lower bound (the standard
///   trade-off the harness documents for its large graphs).
pub fn path_stats<R: Rng + ?Sized>(g: &Graph, mode: PathMode, rng: &mut R) -> PathStats {
    let n = g.node_count();
    if n == 0 {
        return PathStats { diameter: 0, average_length: 0.0, distance_distribution: vec![0.0] };
    }
    let sources = sample_sources(n, mode, rng);

    /// Chunk-local sweep state; `dist` is the reusable BFS scratch buffer
    /// (merges ignore it).
    struct Sweep {
        hist: Vec<u64>,
        total: u128,
        pairs: u64,
        diameter: u32,
        dist: Vec<u32>,
    }
    let merged = pgb_par::par_fold_chunks(
        sources.len(),
        SOURCE_CHUNK,
        || Sweep { hist: Vec::new(), total: 0, pairs: 0, diameter: 0, dist: Vec::new() },
        |acc, range| {
            for si in range {
                let s = sources[si];
                bfs_distances_into(g, s, &mut acc.dist);
                for (v, &d) in acc.dist.iter().enumerate() {
                    if d == UNREACHABLE || d == 0 || v as u32 == s {
                        continue;
                    }
                    if d as usize >= acc.hist.len() {
                        acc.hist.resize(d as usize + 1, 0);
                    }
                    acc.hist[d as usize] += 1;
                    acc.total += d as u128;
                    acc.pairs += 1;
                    acc.diameter = acc.diameter.max(d);
                }
            }
            // Drop the n-length scratch before the accumulator is parked
            // for the chunk-order merge: an Exact-mode sweep has n/8
            // chunks, and keeping every chunk's buffer alive until the
            // merge barrier would cost O(n²/8) transient memory. The
            // inline (1-thread) path re-allocates once per chunk instead
            // of never — noise next to the chunk's 8 BFS traversals.
            acc.dist = Vec::new();
        },
        |acc, other| {
            if other.hist.len() > acc.hist.len() {
                acc.hist.resize(other.hist.len(), 0);
            }
            for (h, o) in acc.hist.iter_mut().zip(other.hist) {
                *h += o;
            }
            acc.total += other.total;
            acc.pairs += other.pairs;
            acc.diameter = acc.diameter.max(other.diameter);
        },
    );
    finalize(merged.hist, merged.total, merged.pairs, merged.diameter)
}

/// The sequential reference implementation of [`path_stats`]: one
/// left-to-right sweep reusing a single distance buffer. Consumes the same
/// RNG draws and returns the same bits as the parallel sweep at any thread
/// budget; kept public for the parallel-equivalence property tests and the
/// `suite_scaling` bench.
pub fn path_stats_seq<R: Rng + ?Sized>(g: &Graph, mode: PathMode, rng: &mut R) -> PathStats {
    let n = g.node_count();
    if n == 0 {
        return PathStats { diameter: 0, average_length: 0.0, distance_distribution: vec![0.0] };
    }
    let sources = sample_sources(n, mode, rng);
    let mut hist: Vec<u64> = Vec::new();
    let mut dist_buf = Vec::new();
    let mut total: u128 = 0;
    let mut pairs: u64 = 0;
    let mut diameter: u32 = 0;
    for &s in &sources {
        bfs_distances_into(g, s, &mut dist_buf);
        for (v, &d) in dist_buf.iter().enumerate() {
            if d == UNREACHABLE || d == 0 || v as u32 == s {
                continue;
            }
            if d as usize >= hist.len() {
                hist.resize(d as usize + 1, 0);
            }
            hist[d as usize] += 1;
            total += d as u128;
            pairs += 1;
            diameter = diameter.max(d);
        }
    }
    finalize(hist, total, pairs, diameter)
}

/// The BFS source list for `mode` — all nodes, or a uniform sample without
/// replacement (partial Fisher–Yates) drawn from `rng`. Shared by the
/// parallel and sequential sweeps so both consume identical draws.
fn sample_sources<R: Rng + ?Sized>(n: usize, mode: PathMode, rng: &mut R) -> Vec<u32> {
    match mode {
        PathMode::Exact => (0..n as u32).collect(),
        PathMode::Sampled { sources } => {
            let k = sources.clamp(1, n);
            let mut ids: Vec<u32> = (0..n as u32).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                ids.swap(i, j);
            }
            ids.truncate(k);
            ids
        }
    }
}

/// Turns the merged integer sweep state into the reported statistics.
fn finalize(hist: Vec<u64>, total: u128, pairs: u64, diameter: u32) -> PathStats {
    let average_length = if pairs == 0 { 0.0 } else { total as f64 / pairs as f64 };
    let distance_distribution = if pairs == 0 {
        vec![0.0]
    } else {
        hist.iter().map(|&c| c as f64 / pairs as f64).collect()
    };
    PathStats { diameter, average_length, distance_distribution }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exact(g: &Graph) -> PathStats {
        let mut rng = StdRng::seed_from_u64(0);
        path_stats(g, PathMode::Exact, &mut rng)
    }

    #[test]
    fn path_graph_statistics() {
        // Path 0-1-2-3: distances 1,2,3,1,2,1 (unordered pairs).
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let s = exact(&g);
        assert_eq!(s.diameter, 3);
        // Mean over ordered pairs equals mean over unordered: 10/6.
        assert!((s.average_length - 10.0 / 6.0).abs() < 1e-12);
        // Distribution: d=1 ×3, d=2 ×2, d=3 ×1 (of 6 unordered pairs).
        assert!((s.distance_distribution[1] - 0.5).abs() < 1e-12);
        assert!((s.distance_distribution[2] - 2.0 / 6.0).abs() < 1e-12);
        assert!((s.distance_distribution[3] - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_diameter_one() {
        let mut edges = Vec::new();
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(6, edges).unwrap();
        let s = exact(&g);
        assert_eq!(s.diameter, 1);
        assert!((s.average_length - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_pairs_excluded() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        let s = exact(&g);
        assert_eq!(s.diameter, 1);
        assert!((s.average_length - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edgeless_graph_zeroes() {
        let s = exact(&Graph::new(4));
        assert_eq!(s.diameter, 0);
        assert_eq!(s.average_length, 0.0);
        assert_eq!(s.distance_distribution, vec![0.0]);
    }

    #[test]
    fn distribution_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(310);
        let g = pgb_models::erdos_renyi_gnp(200, 0.03, &mut rng);
        let s = exact(&g);
        let sum: f64 = s.distance_distribution.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn sampled_estimates_track_exact() {
        let mut rng = StdRng::seed_from_u64(311);
        let g = pgb_models::erdos_renyi_gnp(400, 0.02, &mut rng);
        let ex = exact(&g);
        let sam = path_stats(&g, PathMode::Sampled { sources: 64 }, &mut rng);
        assert!(
            (sam.average_length - ex.average_length).abs() / ex.average_length < 0.08,
            "sampled {} exact {}",
            sam.average_length,
            ex.average_length
        );
        assert!(sam.diameter <= ex.diameter);
        assert!(sam.diameter + 1 >= ex.diameter, "sampled diameter too small");
    }

    #[test]
    fn parallel_sweep_matches_seq_reference() {
        let mut rng = StdRng::seed_from_u64(313);
        let g = pgb_models::erdos_renyi_gnp(150, 0.04, &mut rng);
        for mode in [PathMode::Exact, PathMode::Sampled { sources: 17 }] {
            let par = path_stats(&g, mode, &mut StdRng::seed_from_u64(9));
            let seq = path_stats_seq(&g, mode, &mut StdRng::seed_from_u64(9));
            assert_eq!(par, seq, "{mode:?}");
        }
    }

    #[test]
    fn sampled_with_more_sources_than_nodes() {
        let mut rng = StdRng::seed_from_u64(312);
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let s = path_stats(&g, PathMode::Sampled { sources: 100 }, &mut rng);
        assert_eq!(s.diameter, 2);
    }
}
