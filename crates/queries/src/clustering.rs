//! Clustering-coefficient queries: GCC (Q10) and ACC (Q11).

use crate::counting::{triangles_per_node, wedge_count};
use pgb_graph::Graph;

/// Global clustering coefficient from precomputed counts:
/// `3 × triangles / wedges`, or 0.0 when the graph has no wedges.
///
/// Both GCC entry points (per-query and the shared-pass suite evaluator)
/// reduce through this helper and [`average_clustering_from_triangles`], so
/// one triangle pass can feed Q3, Q10, and Q11 with bit-identical results.
pub fn global_clustering_from_counts(triangles: u64, wedges: u64) -> f64 {
    if wedges == 0 {
        return 0.0;
    }
    3.0 * triangles as f64 / wedges as f64
}

/// Average (local) clustering coefficient from a precomputed per-node
/// triangle count (see [`triangles_per_node`]).
pub fn average_clustering_from_triangles(g: &Graph, per_node: &[u64]) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for u in g.nodes() {
        let d = g.degree(u) as f64;
        if d >= 2.0 {
            total += 2.0 * per_node[u as usize] as f64 / (d * (d - 1.0));
        }
    }
    total / n as f64
}

/// Global clustering coefficient (transitivity):
/// `3 × triangles / wedges`, or 0.0 when the graph has no wedges.
pub fn global_clustering(g: &Graph) -> f64 {
    let triangles: u64 = triangles_per_node(g).iter().sum::<u64>() / 3;
    global_clustering_from_counts(triangles, wedge_count(g))
}

/// Average (local) clustering coefficient, Watts–Strogatz definition:
/// the mean over *all* nodes of `2 tᵤ / (dᵤ (dᵤ − 1))`, with degree < 2
/// nodes contributing 0 — exactly Eq. (1) of the paper.
pub fn average_clustering(g: &Graph) -> f64 {
    average_clustering_from_triangles(g, &triangles_per_node(g))
}

/// Per-degree average local clustering: `out[d]` = mean local clustering
/// over nodes of degree `d` (0.0 where no such node exists). This is the
/// curve of the PrivSKG verification figure (Fig. 6).
pub fn clustering_by_degree(g: &Graph) -> Vec<f64> {
    let max_d = g.max_degree();
    let mut sum = vec![0.0f64; max_d + 1];
    let mut count = vec![0u64; max_d + 1];
    let per_node = triangles_per_node(g);
    for u in g.nodes() {
        let d = g.degree(u);
        count[d] += 1;
        if d >= 2 {
            sum[d] += 2.0 * per_node[u as usize] as f64 / (d as f64 * (d as f64 - 1.0));
        }
    }
    sum.iter().zip(&count).map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::Graph;

    #[test]
    fn complete_graph_fully_clustered() {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, edges).unwrap();
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn paw_graph_values() {
        // Triangle 0-1-2 plus pendant 3 attached to 2.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        // Wedges: deg 2,2,3,1 → 1+1+3+0 = 5; GCC = 3·1/5.
        assert!((global_clustering(&g) - 0.6).abs() < 1e-12);
        // Local: c0 = 1, c1 = 1, c2 = 2·1/(3·2) = 1/3, c3 = 0 → mean 7/12.
        assert!((average_clustering(&g) - 7.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_zero() {
        assert_eq!(global_clustering(&Graph::new(0)), 0.0);
        assert_eq!(average_clustering(&Graph::new(0)), 0.0);
        assert_eq!(average_clustering(&Graph::new(3)), 0.0);
    }

    #[test]
    fn clustering_by_degree_curve() {
        // Paw graph again: degree 1 → 0, degree 2 → mean(1,1) = 1,
        // degree 3 → 1/3.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        let curve = clustering_by_degree(&g);
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[1], 0.0);
        assert!((curve[2] - 1.0).abs() < 1e-12);
        assert!((curve[3] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gcc_acc_differ_on_heterogeneous_graph() {
        // ACC weights low-degree nodes more than GCC does.
        let g =
            Graph::from_edges(7, [(0, 1), (1, 2), (2, 0), (0, 3), (0, 4), (0, 5), (0, 6)]).unwrap();
        let (gcc, acc) = (global_clustering(&g), average_clustering(&g));
        assert!(gcc > 0.0 && acc > 0.0);
        assert!((gcc - acc).abs() > 0.05, "gcc {gcc} acc {acc}");
    }
}
