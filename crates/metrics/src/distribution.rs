//! Distribution-comparison metrics: KL divergence, Hellinger distance, and
//! the Kolmogorov–Smirnov statistic.
//!
//! Inputs are non-negative weight vectors indexed by a common discrete
//! support (e.g. degree). Vectors of different lengths are implicitly
//! zero-padded to the longer support, and every metric normalises its
//! inputs to probability vectors first.
//!
//! **Zero-mass inputs** (an all-zero weight vector — e.g. the degree
//! distribution of an edgeless synthetic graph at tiny ε) are valid for
//! the bounded metrics: [`hellinger_distance`] and [`ks_statistic`] treat
//! zero-mass-vs-anything as the maximal distance `1.0` and
//! zero-vs-zero as `0.0`, instead of panicking and aborting a whole
//! benchmark run. [`kl_divergence`] is already total over zero-mass
//! inputs via its additive smoothing (a zero vector smooths to uniform).

/// Additive smoothing applied before KL so that empty bins on either side
/// stay finite; matches the evaluation convention of the PGB reference
/// implementation.
const KL_SMOOTHING: f64 = 1e-9;

fn validate_weights(weights: &[f64]) {
    assert!(
        weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
        "weights must be non-negative and finite"
    );
}

fn normalized(weights: &[f64], len: usize, smoothing: f64) -> Vec<f64> {
    validate_weights(weights);
    let mut p: Vec<f64> =
        (0..len).map(|i| weights.get(i).copied().unwrap_or(0.0) + smoothing).collect();
    let total: f64 = p.iter().sum();
    assert!(total > 0.0, "distribution must have positive mass");
    for x in &mut p {
        *x /= total;
    }
    p
}

/// Normalises to `len` bins by the positive total `mass` the caller
/// already computed — the smoothing-free metrics validate and sum each
/// vector exactly once, in [`positive_masses`].
fn normalized_by_mass(weights: &[f64], len: usize, mass: f64) -> Vec<f64> {
    debug_assert!(mass > 0.0);
    (0..len).map(|i| weights.get(i).copied().unwrap_or(0.0) / mass).collect()
}

/// Validates both weight vectors and resolves the zero-mass edge cases
/// shared by the bounded metrics: `Err(distance)` short-circuits
/// (zero-vs-zero compares two empty distributions — `0.0`;
/// zero-vs-anything is maximally far — `1.0`, the supremum of both
/// Hellinger and KS), `Ok((p_mass, q_mass))` means both masses are
/// positive and the metric proper should run on them.
fn positive_masses(p_weights: &[f64], q_weights: &[f64]) -> Result<(f64, f64), f64> {
    validate_weights(p_weights);
    validate_weights(q_weights);
    let (p_mass, q_mass) = (p_weights.iter().sum(), q_weights.iter().sum());
    match (p_mass > 0.0, q_mass > 0.0) {
        (true, true) => Ok((p_mass, q_mass)),
        (false, false) => Err(0.0),
        _ => Err(1.0),
    }
}

/// Kullback–Leibler divergence `KL(P ‖ Q) = Σ pᵢ ln(pᵢ / qᵢ)` (metric E3),
/// in nats, with additive smoothing so the result is always finite.
///
/// `p_weights` is the *true* distribution and `q_weights` the synthetic
/// one, following the paper's usage for degree and distance distributions.
pub fn kl_divergence(p_weights: &[f64], q_weights: &[f64]) -> f64 {
    let len = p_weights.len().max(q_weights.len()).max(1);
    let p = normalized(p_weights, len, KL_SMOOTHING);
    let q = normalized(q_weights, len, KL_SMOOTHING);
    p.iter().zip(&q).map(|(&pi, &qi)| if pi > 0.0 { pi * (pi / qi).ln() } else { 0.0 }).sum()
}

/// Hellinger distance `(1/√2) ‖√P − √Q‖₂` (metric E4), in `[0, 1]`.
///
/// A zero-mass weight vector (nothing to normalise — e.g. an edgeless
/// graph's degree histogram) is maximally far from any distribution:
/// zero-vs-anything returns `1.0`, zero-vs-zero returns `0.0`.
pub fn hellinger_distance(p_weights: &[f64], q_weights: &[f64]) -> f64 {
    let (p_mass, q_mass) = match positive_masses(p_weights, q_weights) {
        Ok(masses) => masses,
        Err(d) => return d,
    };
    let len = p_weights.len().max(q_weights.len()).max(1);
    let p = normalized_by_mass(p_weights, len, p_mass);
    let q = normalized_by_mass(q_weights, len, q_mass);
    let sq_sum: f64 = p.iter().zip(&q).map(|(&pi, &qi)| (pi.sqrt() - qi.sqrt()).powi(2)).sum();
    (sq_sum / 2.0).sqrt()
}

/// Kolmogorov–Smirnov statistic `max |CDF_P − CDF_Q|` (metric E5) over the
/// shared discrete support, in `[0, 1]`.
///
/// Zero-mass inputs follow the same convention as [`hellinger_distance`]:
/// zero-vs-anything is `1.0`, zero-vs-zero is `0.0`.
pub fn ks_statistic(p_weights: &[f64], q_weights: &[f64]) -> f64 {
    let (p_mass, q_mass) = match positive_masses(p_weights, q_weights) {
        Ok(masses) => masses,
        Err(d) => return d,
    };
    let len = p_weights.len().max(q_weights.len()).max(1);
    let p = normalized_by_mass(p_weights, len, p_mass);
    let q = normalized_by_mass(q_weights, len, q_mass);
    let (mut cp, mut cq, mut best) = (0.0f64, 0.0f64, 0.0f64);
    for i in 0..len {
        cp += p[i];
        cq += q[i];
        best = best.max((cp - cq).abs());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_of_identical_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-9);
    }

    #[test]
    fn kl_positive_for_different() {
        assert!(kl_divergence(&[1.0, 0.0], &[0.5, 0.5]) > 0.1);
    }

    #[test]
    fn kl_finite_with_empty_bins() {
        let v = kl_divergence(&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]);
        assert!(v.is_finite());
        assert!(v > 1.0);
    }

    #[test]
    fn kl_handles_unequal_lengths() {
        let v = kl_divergence(&[1.0], &[0.5, 0.5]);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn kl_known_value() {
        // KL([0.5, 0.5] || [0.9, 0.1]) = 0.5 ln(0.5/0.9) + 0.5 ln(0.5/0.1)
        let expected = 0.5 * (0.5f64 / 0.9).ln() + 0.5 * (0.5f64 / 0.1).ln();
        let got = kl_divergence(&[0.5, 0.5], &[0.9, 0.1]);
        assert!((got - expected).abs() < 1e-6, "{got} vs {expected}");
    }

    #[test]
    fn hellinger_bounds() {
        assert!(hellinger_distance(&[1.0, 0.0], &[1.0, 0.0]).abs() < 1e-12);
        // Disjoint supports → maximal distance 1.
        assert!((hellinger_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        let mid = hellinger_distance(&[0.5, 0.5], &[0.9, 0.1]);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn hellinger_symmetric() {
        let a = [0.2, 0.3, 0.5];
        let b = [0.5, 0.25, 0.25];
        assert!((hellinger_distance(&a, &b) - hellinger_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn ks_known_value() {
        // CDFs: P = [0.5, 1.0], Q = [0.1, 1.0]; max gap 0.4.
        assert!((ks_statistic(&[0.5, 0.5], &[0.1, 0.9]) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ks_identical_zero_and_disjoint_one() {
        let p = [0.3, 0.7];
        assert!(ks_statistic(&p, &p).abs() < 1e-12);
        assert!((ks_statistic(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unnormalised_inputs_accepted() {
        // Weight vectors (histogram counts) are normalised internally.
        let a = [3.0, 3.0, 6.0];
        let b = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&a, &b).abs() < 1e-6);
        assert!(hellinger_distance(&a, &b).abs() < 1e-6);
        assert!(ks_statistic(&a, &b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_panic() {
        kl_divergence(&[-1.0, 2.0], &[0.5, 0.5]);
    }

    #[test]
    fn zero_mass_vs_anything_is_maximal() {
        // An all-zero weight vector (edgeless synthetic graph) must score
        // as maximally far, not abort the benchmark.
        assert_eq!(hellinger_distance(&[0.0, 0.0], &[0.3, 0.7]), 1.0);
        assert_eq!(hellinger_distance(&[0.3, 0.7], &[0.0, 0.0]), 1.0);
        assert_eq!(ks_statistic(&[0.0, 0.0, 0.0], &[1.0]), 1.0);
        assert_eq!(ks_statistic(&[1.0], &[0.0, 0.0, 0.0]), 1.0);
        // Empty slices are zero-mass too.
        assert_eq!(hellinger_distance(&[], &[1.0]), 1.0);
        assert_eq!(ks_statistic(&[1.0], &[]), 1.0);
    }

    #[test]
    fn zero_mass_vs_zero_mass_is_zero() {
        assert_eq!(hellinger_distance(&[0.0, 0.0], &[0.0]), 0.0);
        assert_eq!(ks_statistic(&[0.0], &[0.0, 0.0]), 0.0);
        assert_eq!(hellinger_distance(&[], &[]), 0.0);
        assert_eq!(ks_statistic(&[], &[]), 0.0);
    }

    #[test]
    fn kl_total_over_zero_mass_via_smoothing() {
        // KL needs no special case: smoothing turns a zero vector into the
        // uniform distribution, so the divergence stays finite both ways.
        assert!(kl_divergence(&[0.0, 0.0], &[0.3, 0.7]).is_finite());
        assert!(kl_divergence(&[0.3, 0.7], &[0.0, 0.0]).is_finite());
        assert!(kl_divergence(&[0.0], &[0.0]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn zero_mass_path_still_validates_weights() {
        hellinger_distance(&[0.0, 0.0], &[f64::NAN]);
    }
}
