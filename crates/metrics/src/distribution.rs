//! Distribution-comparison metrics: KL divergence, Hellinger distance, and
//! the Kolmogorov–Smirnov statistic.
//!
//! Inputs are non-negative weight vectors indexed by a common discrete
//! support (e.g. degree). Vectors of different lengths are implicitly
//! zero-padded to the longer support, and every metric normalises its
//! inputs to probability vectors first.

/// Additive smoothing applied before KL so that empty bins on either side
/// stay finite; matches the evaluation convention of the PGB reference
/// implementation.
const KL_SMOOTHING: f64 = 1e-9;

fn normalized(weights: &[f64], len: usize, smoothing: f64) -> Vec<f64> {
    assert!(
        weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
        "weights must be non-negative and finite"
    );
    let mut p: Vec<f64> =
        (0..len).map(|i| weights.get(i).copied().unwrap_or(0.0) + smoothing).collect();
    let total: f64 = p.iter().sum();
    assert!(total > 0.0, "distribution must have positive mass");
    for x in &mut p {
        *x /= total;
    }
    p
}

/// Kullback–Leibler divergence `KL(P ‖ Q) = Σ pᵢ ln(pᵢ / qᵢ)` (metric E3),
/// in nats, with additive smoothing so the result is always finite.
///
/// `p_weights` is the *true* distribution and `q_weights` the synthetic
/// one, following the paper's usage for degree and distance distributions.
pub fn kl_divergence(p_weights: &[f64], q_weights: &[f64]) -> f64 {
    let len = p_weights.len().max(q_weights.len()).max(1);
    let p = normalized(p_weights, len, KL_SMOOTHING);
    let q = normalized(q_weights, len, KL_SMOOTHING);
    p.iter().zip(&q).map(|(&pi, &qi)| if pi > 0.0 { pi * (pi / qi).ln() } else { 0.0 }).sum()
}

/// Hellinger distance `(1/√2) ‖√P − √Q‖₂` (metric E4), in `[0, 1]`.
pub fn hellinger_distance(p_weights: &[f64], q_weights: &[f64]) -> f64 {
    let len = p_weights.len().max(q_weights.len()).max(1);
    let p = normalized(p_weights, len, 0.0);
    let q = normalized(q_weights, len, 0.0);
    let sq_sum: f64 = p.iter().zip(&q).map(|(&pi, &qi)| (pi.sqrt() - qi.sqrt()).powi(2)).sum();
    (sq_sum / 2.0).sqrt()
}

/// Kolmogorov–Smirnov statistic `max |CDF_P − CDF_Q|` (metric E5) over the
/// shared discrete support, in `[0, 1]`.
pub fn ks_statistic(p_weights: &[f64], q_weights: &[f64]) -> f64 {
    let len = p_weights.len().max(q_weights.len()).max(1);
    let p = normalized(p_weights, len, 0.0);
    let q = normalized(q_weights, len, 0.0);
    let (mut cp, mut cq, mut best) = (0.0f64, 0.0f64, 0.0f64);
    for i in 0..len {
        cp += p[i];
        cq += q[i];
        best = best.max((cp - cq).abs());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_of_identical_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-9);
    }

    #[test]
    fn kl_positive_for_different() {
        assert!(kl_divergence(&[1.0, 0.0], &[0.5, 0.5]) > 0.1);
    }

    #[test]
    fn kl_finite_with_empty_bins() {
        let v = kl_divergence(&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]);
        assert!(v.is_finite());
        assert!(v > 1.0);
    }

    #[test]
    fn kl_handles_unequal_lengths() {
        let v = kl_divergence(&[1.0], &[0.5, 0.5]);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn kl_known_value() {
        // KL([0.5, 0.5] || [0.9, 0.1]) = 0.5 ln(0.5/0.9) + 0.5 ln(0.5/0.1)
        let expected = 0.5 * (0.5f64 / 0.9).ln() + 0.5 * (0.5f64 / 0.1).ln();
        let got = kl_divergence(&[0.5, 0.5], &[0.9, 0.1]);
        assert!((got - expected).abs() < 1e-6, "{got} vs {expected}");
    }

    #[test]
    fn hellinger_bounds() {
        assert!(hellinger_distance(&[1.0, 0.0], &[1.0, 0.0]).abs() < 1e-12);
        // Disjoint supports → maximal distance 1.
        assert!((hellinger_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        let mid = hellinger_distance(&[0.5, 0.5], &[0.9, 0.1]);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn hellinger_symmetric() {
        let a = [0.2, 0.3, 0.5];
        let b = [0.5, 0.25, 0.25];
        assert!((hellinger_distance(&a, &b) - hellinger_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn ks_known_value() {
        // CDFs: P = [0.5, 1.0], Q = [0.1, 1.0]; max gap 0.4.
        assert!((ks_statistic(&[0.5, 0.5], &[0.1, 0.9]) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ks_identical_zero_and_disjoint_one() {
        let p = [0.3, 0.7];
        assert!(ks_statistic(&p, &p).abs() < 1e-12);
        assert!((ks_statistic(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unnormalised_inputs_accepted() {
        // Weight vectors (histogram counts) are normalised internally.
        let a = [3.0, 3.0, 6.0];
        let b = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&a, &b).abs() < 1e-6);
        assert!(hellinger_distance(&a, &b).abs() < 1e-6);
        assert!(ks_statistic(&a, &b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_panic() {
        kl_divergence(&[-1.0, 2.0], &[0.5, 0.5]);
    }
}
