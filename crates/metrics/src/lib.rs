//! # pgb-metrics
//!
//! The utility-error metrics of the PGB benchmark (element U of the
//! 4-tuple; Table IV of the paper, metrics E1–E11):
//!
//! | id | metric | module |
//! |----|--------|--------|
//! | E1 | relative error (RE) | [`error`] |
//! | E2 | mean relative error (MRE) | [`error`] |
//! | E3 | Kullback–Leibler divergence (KL) | [`distribution`] |
//! | E4 | Hellinger distance (HD) | [`distribution`] |
//! | E5 | Kolmogorov–Smirnov statistic (KS) | [`distribution`] |
//! | E6 | average F1 score | [`clustering`] |
//! | E7 | mean absolute error (MAE) | [`error`] |
//! | E8 | mean squared error (MSE) | [`error`] |
//! | E9 | adjusted Rand index (ARI) | [`clustering`] |
//! | E10 | adjusted mutual information (AMI) | [`clustering`] |
//! | E11 | normalized mutual information (NMI) | [`clustering`] |
//!
//! All distribution metrics operate on non-negative weight vectors and
//! normalise internally; all clustering metrics operate on label vectors.

pub mod clustering;
pub mod distribution;
pub mod error;

pub use clustering::{
    adjusted_mutual_information, adjusted_rand_index, average_f1, normalized_mutual_information,
};
pub use distribution::{hellinger_distance, kl_divergence, ks_statistic};
pub use error::{mean_absolute_error, mean_relative_error, mean_squared_error, relative_error};
