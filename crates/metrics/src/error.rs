//! Scalar and vector error metrics: RE, MRE, MAE, MSE.

/// Relative error `|true − noisy| / |true|` (metric E1).
///
/// When the true value is zero the paper's convention (inherited from
/// TmF / PrivGraph evaluation code) is used: the error is 0 if the noisy
/// value is also zero and the absolute error otherwise, which keeps the
/// metric finite for e.g. zero-triangle road networks.
pub fn relative_error(true_value: f64, noisy_value: f64) -> f64 {
    let diff = (true_value - noisy_value).abs();
    if true_value.abs() < f64::EPSILON {
        if diff < f64::EPSILON {
            0.0
        } else {
            diff
        }
    } else {
        diff / true_value.abs()
    }
}

/// Mean relative error over paired per-element results (metric E2),
/// `(1/n) Σ |Q(Gᵢ) − Q(G′ᵢ)|` in the paper's normalised form: the mean of
/// per-pair relative errors.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mean_relative_error(true_values: &[f64], noisy_values: &[f64]) -> f64 {
    assert_eq!(true_values.len(), noisy_values.len(), "length mismatch");
    assert!(!true_values.is_empty(), "MRE of empty slices is undefined");
    let sum: f64 = true_values.iter().zip(noisy_values).map(|(&t, &n)| relative_error(t, n)).sum();
    sum / true_values.len() as f64
}

/// Mean absolute error (metric E7).
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mean_absolute_error(true_values: &[f64], noisy_values: &[f64]) -> f64 {
    assert_eq!(true_values.len(), noisy_values.len(), "length mismatch");
    assert!(!true_values.is_empty(), "MAE of empty slices is undefined");
    let sum: f64 = true_values.iter().zip(noisy_values).map(|(&t, &n)| (t - n).abs()).sum();
    sum / true_values.len() as f64
}

/// Mean squared error (metric E8).
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mean_squared_error(true_values: &[f64], noisy_values: &[f64]) -> f64 {
    assert_eq!(true_values.len(), noisy_values.len(), "length mismatch");
    assert!(!true_values.is_empty(), "MSE of empty slices is undefined");
    let sum: f64 = true_values.iter().zip(noisy_values).map(|(&t, &n)| (t - n).powi(2)).sum();
    sum / true_values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn re_basic() {
        assert!((relative_error(10.0, 12.0) - 0.2).abs() < 1e-12);
        assert!((relative_error(10.0, 10.0)).abs() < 1e-12);
        assert!((relative_error(-4.0, -2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn re_zero_truth_convention() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(0.0, 3.0), 3.0);
    }

    #[test]
    fn mre_averages_pairwise() {
        let t = [10.0, 20.0];
        let n = [12.0, 18.0];
        // REs are 0.2 and 0.1.
        assert!((mean_relative_error(&t, &n) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn mae_and_mse() {
        let t = [1.0, 2.0, 3.0];
        let n = [2.0, 2.0, 1.0];
        assert!((mean_absolute_error(&t, &n) - 1.0).abs() < 1e-12);
        assert!((mean_squared_error(&t, &n) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn identical_vectors_zero_error() {
        let v = [3.0, 1.0, 4.0];
        assert_eq!(mean_relative_error(&v, &v), 0.0);
        assert_eq!(mean_absolute_error(&v, &v), 0.0);
        assert_eq!(mean_squared_error(&v, &v), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mean_absolute_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn empty_mre_panics() {
        mean_relative_error(&[], &[]);
    }
}
