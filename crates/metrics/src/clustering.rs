//! Partition-similarity metrics for the community-detection query (Q12):
//! NMI (E11), ARI (E9), AMI (E10), and average F1 (E6).
//!
//! Partitions are label vectors over the same node set; label values are
//! arbitrary (they are compacted internally).

use std::collections::HashMap;

/// Contingency table between two label vectors, plus marginals.
struct Contingency {
    /// `cells[(i, j)]` = number of items with row-label i and col-label j.
    cells: HashMap<(u32, u32), u64>,
    row_sums: Vec<u64>,
    col_sums: Vec<u64>,
    n: u64,
}

fn compact(labels: &[u32]) -> (Vec<u32>, usize) {
    let mut map = HashMap::new();
    let compacted = labels
        .iter()
        .map(|&l| {
            let next = map.len() as u32;
            *map.entry(l).or_insert(next)
        })
        .collect();
    (compacted, map.len())
}

fn contingency(a: &[u32], b: &[u32]) -> Contingency {
    assert_eq!(a.len(), b.len(), "partitions must label the same node set");
    assert!(!a.is_empty(), "partitions must be non-empty");
    let (ra, ka) = compact(a);
    let (rb, kb) = compact(b);
    let mut cells: HashMap<(u32, u32), u64> = HashMap::new();
    let mut row_sums = vec![0u64; ka];
    let mut col_sums = vec![0u64; kb];
    for (&i, &j) in ra.iter().zip(&rb) {
        *cells.entry((i, j)).or_insert(0) += 1;
        row_sums[i as usize] += 1;
        col_sums[j as usize] += 1;
    }
    Contingency { cells, row_sums, col_sums, n: a.len() as u64 }
}

fn entropy(sums: &[u64], n: u64) -> f64 {
    sums.iter()
        .filter(|&&s| s > 0)
        .map(|&s| {
            let p = s as f64 / n as f64;
            -p * p.ln()
        })
        .sum()
}

/// The contingency cells in row-major order. Float sums over cells must
/// reduce in this fixed order — addition is not associative, and HashMap
/// iteration order varies between instances, which would make metric
/// values differ in their last bits between otherwise identical runs.
fn sorted_cells(c: &Contingency) -> Vec<((u32, u32), u64)> {
    let mut cells: Vec<((u32, u32), u64)> = c.cells.iter().map(|(&k, &v)| (k, v)).collect();
    cells.sort_unstable_by_key(|&(k, _)| k);
    cells
}

fn mutual_information(c: &Contingency) -> f64 {
    let n = c.n as f64;
    sorted_cells(c)
        .into_iter()
        .map(|((i, j), nij)| {
            let pij = nij as f64 / n;
            let pi = c.row_sums[i as usize] as f64 / n;
            let pj = c.col_sums[j as usize] as f64 / n;
            pij * (pij / (pi * pj)).ln()
        })
        .sum()
}

/// Normalized mutual information `I(A; B) / ((H(A) + H(B)) / 2)`
/// (arithmetic-mean normalisation, the scikit-learn default the PGB
/// reference code relies on). Returns 1.0 when both partitions are the
/// trivial single cluster (zero entropy on both sides).
pub fn normalized_mutual_information(a: &[u32], b: &[u32]) -> f64 {
    let c = contingency(a, b);
    let (ha, hb) = (entropy(&c.row_sums, c.n), entropy(&c.col_sums, c.n));
    let denom = (ha + hb) / 2.0;
    if denom < 1e-15 {
        return 1.0; // both partitions trivial and identical in structure
    }
    (mutual_information(&c) / denom).clamp(0.0, 1.0)
}

fn choose2(x: u64) -> f64 {
    (x as f64) * (x as f64 - 1.0) / 2.0
}

/// Adjusted Rand index (Hubert & Arabie correction; metric E9). 1.0 for
/// identical partitions, ≈0 for independent ones; can be negative.
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    let c = contingency(a, b);
    let sum_cells: f64 = sorted_cells(&c).into_iter().map(|(_, nij)| choose2(nij)).sum();
    let sum_rows: f64 = c.row_sums.iter().map(|&x| choose2(x)).sum();
    let sum_cols: f64 = c.col_sums.iter().map(|&x| choose2(x)).sum();
    let total = choose2(c.n);
    if total < 1e-15 {
        return 1.0;
    }
    let expected = sum_rows * sum_cols / total;
    let max_index = (sum_rows + sum_cols) / 2.0;
    if (max_index - expected).abs() < 1e-15 {
        return 1.0; // both partitions all-singletons or single-cluster
    }
    (sum_cells - expected) / (max_index - expected)
}

/// Log-factorial table: `table[k] = ln(k!)`.
fn log_factorials(up_to: usize) -> Vec<f64> {
    let mut t = vec![0.0; up_to + 1];
    for k in 1..=up_to {
        t[k] = t[k - 1] + (k as f64).ln();
    }
    t
}

/// Expected mutual information under the permutation (hypergeometric)
/// model of Vinh, Epps & Bailey (ICML 2009).
fn expected_mutual_information(c: &Contingency, lf: &[f64]) -> f64 {
    let n = c.n;
    let nf = n as f64;
    let mut emi = 0.0;
    for &ai in &c.row_sums {
        for &bj in &c.col_sums {
            if ai == 0 || bj == 0 {
                continue;
            }
            let lo = 1.max((ai + bj).saturating_sub(n));
            let hi = ai.min(bj);
            for nij in lo..=hi {
                let nij_f = nij as f64;
                // Hypergeometric P(nij) in log space.
                let log_p = lf[ai as usize]
                    + lf[bj as usize]
                    + lf[(n - ai) as usize]
                    + lf[(n - bj) as usize]
                    - lf[n as usize]
                    - lf[nij as usize]
                    - lf[(ai - nij) as usize]
                    - lf[(bj - nij) as usize]
                    - lf[(n - ai - bj + nij) as usize];
                let term = (nij_f / nf) * ((nf * nij_f) / (ai as f64 * bj as f64)).ln();
                emi += log_p.exp() * term;
            }
        }
    }
    emi
}

/// Adjusted mutual information (metric E10):
/// `(MI − E[MI]) / (mean(H(A), H(B)) − E[MI])` with arithmetic-mean
/// normalisation. 1.0 for identical partitions, ≈0 for independent ones.
pub fn adjusted_mutual_information(a: &[u32], b: &[u32]) -> f64 {
    let c = contingency(a, b);
    let (ha, hb) = (entropy(&c.row_sums, c.n), entropy(&c.col_sums, c.n));
    let mean_h = (ha + hb) / 2.0;
    if mean_h < 1e-15 {
        return 1.0;
    }
    let lf = log_factorials(c.n as usize);
    let mi = mutual_information(&c);
    let emi = expected_mutual_information(&c, &lf);
    let denom = mean_h - emi;
    if denom.abs() < 1e-15 {
        return if (mi - emi).abs() < 1e-15 { 1.0 } else { 0.0 };
    }
    ((mi - emi) / denom).clamp(-1.0, 1.0)
}

/// Average F1 score between two covers (metric E6): for each community in
/// `a`, the best F1 against any community in `b`, and vice versa; the two
/// directional averages are averaged (Yang & Leskovec's Avg-F1, as used by
/// PrivCom).
pub fn average_f1(a: &[u32], b: &[u32]) -> f64 {
    let c = contingency(a, b);
    if c.cells.is_empty() {
        return 1.0;
    }
    // For the best-match search, group cells by row and by column.
    let mut by_row: HashMap<u32, Vec<(u32, u64)>> = HashMap::new();
    let mut by_col: HashMap<u32, Vec<(u32, u64)>> = HashMap::new();
    for (&(i, j), &nij) in &c.cells {
        by_row.entry(i).or_default().push((j, nij));
        by_col.entry(j).or_default().push((i, nij));
    }
    let f1 = |overlap: u64, size_a: u64, size_b: u64| -> f64 {
        if overlap == 0 {
            return 0.0;
        }
        let p = overlap as f64 / size_b as f64;
        let r = overlap as f64 / size_a as f64;
        2.0 * p * r / (p + r)
    };
    let dir = |groups: &HashMap<u32, Vec<(u32, u64)>>, sizes: &[u64], other: &[u64]| -> f64 {
        // Deterministic reduction order (see `sorted_cells`).
        let mut keys: Vec<u32> = groups.keys().copied().collect();
        keys.sort_unstable();
        let mut total = 0.0;
        for i in keys {
            let best = groups[&i]
                .iter()
                .map(|&(j, nij)| f1(nij, sizes[i as usize], other[j as usize]))
                .fold(0.0f64, f64::max);
            total += best;
        }
        total / groups.len() as f64
    };
    let f_ab = dir(&by_row, &c.row_sums, &c.col_sums);
    let f_ba = dir(&by_col, &c.col_sums, &c.row_sums);
    (f_ab + f_ba) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [u32; 6] = [0, 0, 0, 1, 1, 1];

    #[test]
    fn identical_partitions_score_one() {
        assert!((normalized_mutual_information(&A, &A) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&A, &A) - 1.0).abs() < 1e-12);
        assert!((adjusted_mutual_information(&A, &A) - 1.0).abs() < 1e-9);
        assert!((average_f1(&A, &A) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeled_partitions_score_one() {
        let b = [7, 7, 7, 3, 3, 3];
        assert!((normalized_mutual_information(&A, &b) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&A, &b) - 1.0).abs() < 1e-12);
        assert!((average_f1(&A, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_partitions_score_low() {
        // Perfectly crossed partitions.
        let a = [0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2];
        let b = [0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        assert!(normalized_mutual_information(&a, &b) < 0.05);
        assert!(adjusted_rand_index(&a, &b).abs() < 0.2);
        // Chance-corrected MI of independent partitions is ≈ 0 or slightly
        // negative (here −0.133 exactly).
        assert!(adjusted_mutual_information(&a, &b) < 0.05);
    }

    #[test]
    fn ari_known_value() {
        // sklearn reference: ARI([0,0,1,1], [0,0,1,2]) = 0.5714285714...
        let got = adjusted_rand_index(&[0, 0, 1, 1], &[0, 0, 1, 2]);
        assert!((got - 0.571_428_571_4).abs() < 1e-9, "{got}");
    }

    #[test]
    fn nmi_known_value() {
        // Hand computation (matches sklearn's arithmetic-mean default):
        // MI = ln 2, H(A) = ln 2, H(B) = 1.5 ln 2 ⇒ NMI = 1/1.25 = 0.8.
        let got = normalized_mutual_information(&[0, 0, 1, 1], &[0, 0, 1, 2]);
        assert!((got - 0.8).abs() < 1e-9, "{got}");
    }

    #[test]
    fn ami_known_value() {
        // Hand computation under the hypergeometric model: 4/7.
        let got = adjusted_mutual_information(&[0, 0, 1, 1], &[0, 0, 1, 2]);
        assert!((got - 0.571_428_571_4).abs() < 1e-9, "{got}");
    }

    #[test]
    fn ami_lower_than_nmi_for_random() {
        // AMI corrects optimistic chance agreement that inflates NMI for
        // many small clusters.
        let a = [0, 1, 2, 3, 4, 5, 6, 7];
        let b = [0, 0, 1, 1, 2, 2, 3, 3];
        let nmi = normalized_mutual_information(&a, &b);
        let ami = adjusted_mutual_information(&a, &b);
        assert!(ami < nmi, "ami {ami} nmi {nmi}");
    }

    #[test]
    fn trivial_partitions() {
        let ones = [0, 0, 0, 0];
        assert!((normalized_mutual_information(&ones, &ones) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&ones, &ones) - 1.0).abs() < 1e-12);
        assert!((adjusted_mutual_information(&ones, &ones) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_partial_overlap() {
        let a = [0, 0, 0, 0, 1, 1];
        let b = [0, 0, 1, 1, 1, 1];
        let f = average_f1(&a, &b);
        assert!(f > 0.4 && f < 0.9, "f1 {f}");
    }

    #[test]
    fn metrics_symmetric() {
        let a = [0, 0, 1, 1, 2, 2];
        let b = [0, 1, 1, 2, 2, 2];
        assert!(
            (normalized_mutual_information(&a, &b) - normalized_mutual_information(&b, &a)).abs()
                < 1e-12
        );
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
        assert!((average_f1(&a, &b) - average_f1(&b, &a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same node set")]
    fn mismatched_lengths_panic() {
        normalized_mutual_information(&[0, 1], &[0]);
    }
}
