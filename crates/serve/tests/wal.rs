//! WAL corruption satellite: arbitrary byte flips and truncations of a
//! valid log must yield a clean-prefix recovery or a structured
//! [`WalCorrupt`] report — never a panic — and recovery must never
//! restore more budget than the surviving admissions actually charged.

use pgb_core::{GenerateError, GraphGenerator, PrivateSynthesis};
use pgb_graph::Graph;
use pgb_serve::{read_contents, GenerateRequest, Server, ServerConfig, Wal, WAL_MAGIC};
use proptest::prelude::*;
use rand::RngCore;

/// The ε slack `pgb_dp::Budget` allows accumulated spends to overshoot by.
const EPS_SLACK: f64 = 1e-9;

/// A fast deterministic stand-in mechanism so WAL tests never pay real
/// synthesis costs.
struct Stub;

struct StubSynthesis {
    noise: u64,
}

impl GraphGenerator for Stub {
    fn name(&self) -> &'static str {
        "Stub"
    }
    fn measure(
        &self,
        _graph: &Graph,
        _epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        Ok(Box::new(StubSynthesis { noise: rng.next_u64() }))
    }
}

impl PrivateSynthesis for StubSynthesis {
    fn name(&self) -> &'static str {
        "Stub"
    }
    fn epsilon_spent(&self) -> f64 {
        1.0
    }
    fn heap_bytes(&self) -> usize {
        64
    }
    fn sample(&self, rng: &mut dyn RngCore) -> Graph {
        let bits = self.noise ^ rng.next_u64();
        let edges = [(0u32, 1u32), (1, 2), (0, 2), (2, 3)];
        Graph::from_edges(
            4,
            edges.iter().enumerate().filter(|(i, _)| bits >> i & 1 == 1).map(|(_, &e)| e),
        )
        .unwrap()
    }
}

const TENANTS: [(&str, f64); 2] = [("alice", 2.0), ("bob", 0.75)];

fn stub_server() -> Server {
    let mut server = Server::with_generators(
        ServerConfig { cache_bytes: 1 << 20, threads: 1, ..ServerConfig::default() },
        vec![Box::new(Stub)],
    );
    server.host_dataset("d", Graph::new(4));
    for (tenant, grant) in TENANTS {
        server.register_tenant(tenant, grant).unwrap();
    }
    server
}

fn req(seed: u64, epsilon: f64) -> GenerateRequest {
    GenerateRequest {
        dataset: "d".into(),
        mechanism: "Stub".into(),
        epsilon,
        samples: 2,
        seed,
        deadline_ticks: 0,
    }
}

/// Drives a short multi-tenant session through the WAL-backed live path
/// and returns the log file's bytes (the session includes a rejected
/// over-budget request — rejections are logged and must recover too).
fn driven_wal_bytes(path: &std::path::Path) -> Vec<u8> {
    let server = stub_server();
    server.attach_wal(path).unwrap();
    let session: [(&str, u64, f64); 6] = [
        ("alice", 1, 0.5),
        ("bob", 2, 0.5),
        ("alice", 3, 0.25),
        ("bob", 4, 0.5), // rejected: bob has 0.25 left
        ("alice", 1, 0.5),
        ("alice", 5, 0.125),
    ];
    for (tenant, seed, eps) in session {
        let _ = server.submit(tenant, req(seed, eps));
    }
    std::fs::read(path).unwrap()
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pgb_wal_test_{tag}_{}.wal", std::process::id()))
}

#[test]
fn driven_wal_recovers_byte_identically() {
    let path = temp_path("clean");
    let bytes = driven_wal_bytes(&path);
    assert_eq!(bytes[..8], WAL_MAGIC);
    let contents = read_contents(&bytes);
    assert!(contents.corrupt.is_none());
    assert_eq!(contents.entries.len(), 6, "every submit (rejected too) is logged");

    // A fresh server recovers the identical transcript the live session's
    // log replays to.
    let recovery = stub_server().recover(&path).unwrap();
    assert_eq!(recovery.recovered, 6);
    assert!(recovery.corrupt.is_none() && recovery.divergence.is_none());
    let reference = stub_server().replay(&contents.entries, 1);
    assert_eq!(recovery.transcript, reference);
    std::fs::remove_file(&path).ok();
}

proptest! {
    /// Flipping any byte of a valid log never panics the parser, always
    /// yields a prefix of the original admissions, and always reports the
    /// damage (every byte is covered by the magic, a header, or a CRC).
    #[test]
    fn byte_flips_parse_to_a_reported_clean_prefix(
        pos_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let path = temp_path("flip_pure");
        let original = driven_wal_bytes(&path);
        std::fs::remove_file(&path).ok();
        let reference = read_contents(&original);

        let mut bytes = original.clone();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= mask;

        let contents = read_contents(&bytes);
        prop_assert!(contents.corrupt.is_some(), "flip at {pos} went unreported");
        prop_assert!(contents.entries.len() <= reference.entries.len());
        prop_assert_eq!(
            &contents.entries[..],
            &reference.entries[..contents.entries.len()],
            "surviving admissions must be an exact prefix"
        );
        prop_assert!(contents.clean_len <= bytes.len() as u64);
    }

    /// Truncating a valid log at any length parses to a clean prefix of
    /// the original admissions; a mid-record cut is reported.
    #[test]
    fn truncations_parse_to_a_clean_prefix(len_frac in 0.0f64..1.0) {
        let path = temp_path("trunc_pure");
        let original = driven_wal_bytes(&path);
        std::fs::remove_file(&path).ok();
        let reference = read_contents(&original);

        let cut = (original.len() as f64 * len_frac) as usize;
        let contents = read_contents(&original[..cut]);
        prop_assert!(contents.entries.len() <= reference.entries.len());
        prop_assert_eq!(
            &contents.entries[..],
            &reference.entries[..contents.entries.len()],
            "surviving admissions must be an exact prefix"
        );
        if contents.clean_len < cut as u64 {
            prop_assert!(contents.corrupt.is_some(), "mid-record cut at {cut} unreported");
        }
    }

    /// Full recovery path over a corrupted file: `Server::recover` never
    /// panics, never over-restores a tenant past its grant, and the
    /// recovered transcript renders to a byte prefix of the uninterrupted
    /// session's record text.
    #[test]
    fn recovery_from_corruption_never_over_restores(
        pos_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let tag = format!("flip_{}_{}", (pos_frac * 1e6) as u64, mask);
        let path = temp_path(&tag);
        let original = driven_wal_bytes(&path);
        let reference_records =
            stub_server().replay(&read_contents(&original).entries, 1).records_text();

        let mut bytes = original.clone();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= mask;
        std::fs::write(&path, &bytes).unwrap();

        let recovery = stub_server().recover(&path).unwrap();
        prop_assert!(recovery.corrupt.is_some());
        for t in &recovery.transcript.tenants {
            prop_assert!(
                t.consumed <= t.grant + EPS_SLACK,
                "tenant {} over-restored: consumed {} of grant {}",
                t.tenant, t.consumed, t.grant
            );
            prop_assert!((t.consumed + t.remaining - t.grant).abs() < EPS_SLACK);
        }
        let recovered_records = recovery.transcript.records_text();
        prop_assert!(
            reference_records.starts_with(&recovered_records),
            "recovered records are not a byte prefix of the uninterrupted session"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn recovered_wal_keeps_accepting_appends() {
    // After recovery from a torn tail the WAL must be positioned to
    // append: new submits extend the truncated log cleanly.
    let path = temp_path("resume");
    let original = driven_wal_bytes(&path);
    // Tear mid-way through the last record.
    std::fs::write(&path, &original[..original.len() - 5]).unwrap();

    let server = stub_server();
    let recovery = server.recover(&path).unwrap();
    assert_eq!(recovery.recovered, 5, "the torn sixth admission drops");
    assert!(recovery.corrupt.is_some());
    server.submit("alice", req(9, 0.125)).unwrap();

    let contents = Wal::read(&path).unwrap();
    assert!(contents.corrupt.is_none(), "post-recovery appends start at the truncation");
    assert_eq!(contents.entries.len(), 6);
    assert_eq!(contents.entries[5].request.seed, 9);
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpointed_wal_recovers_and_verifies() {
    let path = temp_path("ckpt");
    let server = {
        let mut server = Server::with_generators(
            ServerConfig {
                cache_bytes: 1 << 20,
                threads: 1,
                wal_checkpoint_every: 2,
                ..ServerConfig::default()
            },
            vec![Box::new(Stub)],
        );
        server.host_dataset("d", Graph::new(4));
        for (tenant, grant) in TENANTS {
            server.register_tenant(tenant, grant).unwrap();
        }
        server
    };
    server.attach_wal(&path).unwrap();
    for seed in 0..5 {
        let _ = server.submit("alice", req(seed, 0.25));
    }
    let contents = Wal::read(&path).unwrap();
    assert_eq!(contents.entries.len(), 5);
    assert_eq!(contents.checkpoints.len(), 2, "checkpoints after admissions 2 and 4");

    let recovery = stub_server().recover(&path).unwrap();
    assert_eq!(recovery.recovered, 5);
    assert!(recovery.divergence.is_none(), "checkpoints agree with the admission fold");

    // Checkpoint verification must catch an accountant state that cannot
    // have produced the snapshots. Forging the checkpoint bytes in-file
    // would be defeated by the CRC, so diverge the *fold* instead:
    // recover on a server whose alice grant differs from the one the
    // checkpoints were cut against.
    let mut wrong = Server::with_generators(
        ServerConfig { cache_bytes: 1 << 20, threads: 1, ..ServerConfig::default() },
        vec![Box::new(Stub)],
    );
    wrong.host_dataset("d", Graph::new(4));
    wrong.register_tenant("alice", 1.25).unwrap(); // was 2.0
    wrong.register_tenant("bob", 0.75).unwrap();
    let recovery = wrong.recover(&path).unwrap();
    assert!(
        recovery.divergence.is_some(),
        "a grant mismatch must surface as checkpoint divergence"
    );
    std::fs::remove_file(&path).ok();
}
