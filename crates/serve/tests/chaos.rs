//! Chaos satellite: drive a multi-tenant session under ≥64 seeded fault
//! plans (injected panics, cancellations, and WAL I/O errors) and assert
//! the serving invariants hold under every plan — no tenant ever
//! overdraws, the cache is never poisoned, a WAL failure halts cleanly,
//! and recovery of each chaotic run's log reproduces a byte prefix of the
//! fault-free session.
//!
//! Fault state is process-global, so every arming test serializes on
//! [`SERIAL`].

use pgb_core::fault::{self, FaultPlan, INJECTED_MARKER};
use pgb_core::{GenerateError, GraphGenerator, PrivateSynthesis};
use pgb_graph::Graph;
use pgb_serve::{GenerateRequest, LogEntry, RequestLog, ServeError, Server, ServerConfig};
use rand::RngCore;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// The ε slack `pgb_dp::Budget` allows accumulated spends to overshoot by.
const EPS_SLACK: f64 = 1e-9;

const CHAOS_SEEDS: u64 = 64;

struct Stub;

struct StubSynthesis {
    noise: u64,
}

impl GraphGenerator for Stub {
    fn name(&self) -> &'static str {
        "Stub"
    }
    fn measure(
        &self,
        _graph: &Graph,
        _epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        Ok(Box::new(StubSynthesis { noise: rng.next_u64() }))
    }
}

impl PrivateSynthesis for StubSynthesis {
    fn name(&self) -> &'static str {
        "Stub"
    }
    fn epsilon_spent(&self) -> f64 {
        1.0
    }
    fn heap_bytes(&self) -> usize {
        64
    }
    fn sample(&self, rng: &mut dyn RngCore) -> Graph {
        let bits = self.noise ^ rng.next_u64();
        let edges = [(0u32, 1u32), (1, 2), (0, 2), (2, 3)];
        Graph::from_edges(
            4,
            edges.iter().enumerate().filter(|(i, _)| bits >> i & 1 == 1).map(|(_, &e)| e),
        )
        .unwrap()
    }
}

/// Tight grants so the chaos script exercises budget rejections alongside
/// the injected faults; `health` is the probe tenant the script never
/// touches.
const TENANTS: [(&str, f64); 4] = [("t0", 2.0), ("t1", 1.0), ("t2", 0.25), ("health", 100.0)];

fn stub_server() -> Server {
    let mut server = Server::with_generators(
        ServerConfig { cache_bytes: 1 << 20, threads: 1, ..ServerConfig::default() },
        vec![Box::new(Stub)],
    );
    server.host_dataset("d", Graph::new(4));
    for (tenant, grant) in TENANTS {
        server.register_tenant(tenant, grant).unwrap();
    }
    server
}

/// 24 requests over three tight-budget tenants: mostly valid, two
/// malformed (unknown dataset / mechanism), a few with a 1-tick deadline
/// (deterministically exceeded), and enough total ε that t1 and t2
/// exhaust mid-script.
fn chaos_log() -> RequestLog {
    (0..24u64)
        .map(|i| {
            let (dataset, mechanism) = match i {
                5 => ("nope", "Stub"),
                11 => ("d", "Missing"),
                _ => ("d", "Stub"),
            };
            LogEntry {
                tenant: format!("t{}", i % 3),
                request: GenerateRequest {
                    dataset: dataset.into(),
                    mechanism: mechanism.into(),
                    epsilon: 0.125 * (1 + (i / 3) % 3) as f64,
                    samples: 2,
                    seed: i / 3,
                    deadline_ticks: u64::from(i % 7 == 3),
                },
            }
        })
        .collect()
}

fn assert_no_overdraw(server: &Server, context: &str) {
    for tenant in server.accountant().tenants() {
        let st = server.accountant().statement(&tenant).unwrap();
        assert!(
            st.consumed <= st.grant + EPS_SLACK,
            "{context}: tenant {tenant} overdrew: consumed {} of grant {}",
            st.consumed,
            st.grant
        );
        assert!(
            (st.consumed + st.remaining - st.grant).abs() < EPS_SLACK,
            "{context}: tenant {tenant} accounting does not balance: {st:?}"
        );
    }
}

fn health_req() -> GenerateRequest {
    GenerateRequest {
        dataset: "d".into(),
        mechanism: "Stub".into(),
        epsilon: 0.1,
        samples: 1,
        seed: 999,
        deadline_ticks: 0,
    }
}

/// The tentpole chaos sweep: every seeded plan upholds every invariant.
#[test]
fn seeded_fault_plans_uphold_serving_invariants() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    fault::install_quiet_panic_hook();

    let script = chaos_log();
    let reference = stub_server().replay(&script, 1);
    let reference_records = reference.records_text();

    let mut injected_failures = 0usize;
    let mut halted_runs = 0usize;
    for seed in 0..CHAOS_SEEDS {
        let path =
            std::env::temp_dir().join(format!("pgb_chaos_{}_{seed}.wal", std::process::id()));
        let server = stub_server();
        server.attach_wal(&path).unwrap();

        // Sweep the fire rate with the seed: 0‰ runs pin the fault-free
        // baseline inside the same harness, while ~200‰ runs halt almost
        // surely (24 appends × 0.2 ≫ 1 expected WAL fault).
        fault::install(FaultPlan { seed, rate_permille: (seed % 5) as u16 * 50 });
        for entry in &script {
            // Submit must never panic out of an injected fault — every
            // failure surfaces as a structured error.
            match server.submit(&entry.tenant, entry.request.clone()) {
                Err(ServeError::SamplePanicked { .. })
                | Err(ServeError::MeasurePanicked { .. })
                | Err(ServeError::Cancelled)
                | Err(ServeError::WalAppend { .. })
                | Err(ServeError::Halted) => injected_failures += 1,
                _ => {}
            }
        }
        fault::clear();

        // Invariant: chaos never bends the budget accounting.
        assert_no_overdraw(&server, &format!("seed {seed} post-drive"));

        // Invariant: the in-memory log is exactly the script prefix that
        // was durably admitted (a WAL halt cuts it short, never corrupts
        // its order).
        let driven = server.log();
        assert!(driven.len() <= script.len());
        assert_eq!(driven[..], script[..driven.len()], "seed {seed}: log order corrupted");
        // Invariant: recovering the chaotic run's WAL reproduces a byte
        // prefix of the fault-free session. (Recover before the health
        // probe below — the probe appends to this WAL.)
        let recovery = stub_server().recover(&path).unwrap();
        assert!(recovery.corrupt.is_none(), "seed {seed}: no kill ⇒ no torn tail");
        assert!(recovery.divergence.is_none());
        assert_eq!(recovery.recovered, driven.len(), "seed {seed}: WAL ≡ memory log");
        assert!(
            reference_records.starts_with(&recovery.transcript.records_text()),
            "seed {seed}: recovered transcript is not a prefix of the fault-free run"
        );

        if server.is_halted() {
            halted_runs += 1;
            assert!(
                matches!(server.submit("health", health_req()), Err(ServeError::Halted)),
                "seed {seed}: a halted server must refuse new work"
            );
        } else {
            // Invariant: the cache is never poisoned — with faults
            // disarmed the server serves again.
            server
                .submit("health", health_req())
                .unwrap_or_else(|e| panic!("seed {seed}: server unhealthy after chaos: {e}"));
        }
        std::fs::remove_file(&path).ok();
    }

    // The sweep is only meaningful if the plans actually fired.
    assert!(
        injected_failures > 0,
        "no injected failure surfaced across {CHAOS_SEEDS} seeds at 200‰ — points dead?"
    );
    assert!(halted_runs > 0, "no WAL fault halted a run across {CHAOS_SEEDS} seeds");
    assert!(
        halted_runs < CHAOS_SEEDS as usize,
        "every run halted — the chaos sweep never exercised a full session"
    );
}

/// A simulated worker crash in the elastic claim loop (`exec.claim`)
/// surfaces as a panic out of `replay` — and even then, the sequential
/// admission phase has fully committed, so the accountant stays
/// consistent and a fault-free replay of the same log on a fresh server
/// is unaffected.
#[test]
fn worker_claim_crashes_leave_admissions_consistent() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    fault::install_quiet_panic_hook();

    let script = chaos_log();
    let mut crashed = 0usize;
    for seed in 100..116u64 {
        let server = stub_server();
        fault::install(FaultPlan { seed, rate_permille: 400 });
        let outcome = catch_unwind(AssertUnwindSafe(|| server.replay(&script, 4)));
        fault::clear();

        if let Err(payload) = outcome {
            crashed += 1;
            // Either the injected payload itself (inline execution) or
            // the scope's opaque re-panic (a crashed worker thread).
            let described = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string payload>");
            assert!(
                described.contains(INJECTED_MARKER) || described.contains("scoped thread"),
                "seed {seed}: unexpected panic out of replay: {described}"
            );
        }
        // Crashed or not, phase-1 admission committed every charge.
        assert_no_overdraw(&server, &format!("seed {seed} post-replay"));
    }
    assert!(crashed > 0, "exec.claim at 400‰ never crashed a 4-worker replay");

    // The fault-free replay of the same script is untouched by any of it.
    let clean = stub_server().replay(&script, 4);
    assert_eq!(clean, stub_server().replay(&script, 1));
}
