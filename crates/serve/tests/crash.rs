//! Crash-recovery integration: SIGKILL a live WAL-backed serving process
//! mid-script, then `Server::recover` the log in a fresh process at
//! different worker counts — every recovery must agree byte-for-byte, and
//! must be a byte prefix of the uninterrupted session's records.
//!
//! This is the in-tree twin of the CI `chaos-smoke` job, driven through
//! the real `serve_replay` binary so the kill hits a real process.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_serve_replay");

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pgb_crash_{}_{name}", std::process::id()))
}

fn run_ok(args: &[&str]) -> String {
    let out = Command::new(BIN).args(args).output().expect("spawn serve_replay");
    assert!(
        out.status.success(),
        "serve_replay {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn sigkill_mid_drive_recovers_a_byte_identical_prefix_at_any_worker_count() {
    let full_txt = temp("full.txt");
    let wal = temp("part.wal");
    let rec1_txt = temp("rec1.txt");
    let rec8_txt = temp("rec8.txt");

    // Reference: the uninterrupted smoke session's per-record text.
    run_ok(&["--records-only", "--threads", "1", "--out", full_txt.to_str().unwrap()]);
    let full = std::fs::read(&full_txt).expect("reference transcript");

    // Drive the same script through the live WAL path, throttled so the
    // kill lands mid-script, and kill it the hard way.
    let mut child = Command::new(BIN)
        .args([
            "--drive",
            "--wal",
            wal.to_str().unwrap(),
            "--throttle-ms",
            "60",
            "--checkpoint-every",
            "3",
            "--out",
            temp("part_out.txt").to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn driven serve_replay");
    std::thread::sleep(Duration::from_millis(300));
    child.kill().expect("SIGKILL the driven process");
    child.wait().expect("reap the driven process");

    // Recover the killed run's log at two worker counts.
    let stderr1 = run_ok(&[
        "--recover",
        "--wal",
        wal.to_str().unwrap(),
        "--records-only",
        "--threads",
        "1",
        "--out",
        rec1_txt.to_str().unwrap(),
    ]);
    run_ok(&[
        "--recover",
        "--wal",
        wal.to_str().unwrap(),
        "--records-only",
        "--threads",
        "8",
        "--out",
        rec8_txt.to_str().unwrap(),
    ]);

    let rec1 = std::fs::read(&rec1_txt).expect("recovered transcript (1 worker)");
    let rec8 = std::fs::read(&rec8_txt).expect("recovered transcript (8 workers)");
    assert_eq!(rec1, rec8, "recovery must be byte-identical at any worker count");
    assert!(
        full.starts_with(&rec1),
        "recovered transcript is not a byte prefix of the uninterrupted run\n\
         recovered {} bytes, reference {} bytes\nrecover stderr: {stderr1}",
        rec1.len(),
        full.len()
    );
    // The kill landed after at least one throttled admission was synced.
    assert!(
        stderr1.contains("recovered"),
        "recover mode must report its admission count: {stderr1}"
    );

    for p in [&full_txt, &wal, &rec1_txt, &rec8_txt, &temp("part_out.txt")] {
        std::fs::remove_file(p).ok();
    }
}
