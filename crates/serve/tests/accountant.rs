//! Concurrency property tests for [`TenantAccountant`]: the satellite
//! suite pinning the three ledger invariants under arbitrary thread
//! interleavings — no overdraw, conservation, and absorption (an
//! exhausted tenant stays exhausted).
//!
//! Strategy: proptest generates a grant and a batch of spend amounts; the
//! test scatters the spends round-robin over a generated number of OS
//! threads, lets them race on one shared accountant, and then checks the
//! invariants that must hold for **every** interleaving. The per-spend
//! outcomes differ run to run (which spends get rejected depends on
//! arrival order); the invariants never do.

use pgb_serve::{ServeError, TenantAccountant};
use proptest::prelude::*;

/// The ε slack `pgb_dp::Budget` allows a spend to overshoot by (floating
/// accumulation tolerance), mirrored here so the tests assert the real
/// contract rather than an idealized one.
const EPS_SLACK: f64 = 1e-9;

/// Runs `spends` against one tenant from `threads` racing threads and
/// returns the successfully charged amounts (unordered).
fn race_spends(acc: &TenantAccountant, tenant: &str, spends: &[f64], threads: usize) -> Vec<f64> {
    let shards: Vec<Vec<f64>> =
        (0..threads).map(|t| spends.iter().copied().skip(t).step_by(threads).collect()).collect();
    let charged = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for shard in &shards {
            scope.spawn(|| {
                for (i, &eps) in shard.iter().enumerate() {
                    if let Ok(st) = acc.spend(tenant, format!("spend {i}"), eps) {
                        charged.lock().unwrap().push(st.charged);
                    }
                }
            });
        }
    });
    charged.into_inner().unwrap()
}

proptest! {
    /// No interleaving of concurrent spends can overdraw the grant, and
    /// consumed + remaining reconstructs it exactly.
    #[test]
    fn concurrent_spends_never_overdraw(
        grant in 0.1f64..20.0,
        spends in proptest::collection::vec(0.001f64..2.0, 1..24),
        threads in 1usize..5,
    ) {
        let acc = TenantAccountant::new();
        acc.register("t", grant).unwrap();
        let charged = race_spends(&acc, "t", &spends, threads);

        let st = acc.statement("t").unwrap();
        prop_assert!(st.consumed <= grant + EPS_SLACK,
            "overdraw: consumed {} of grant {}", st.consumed, grant);
        prop_assert!(st.remaining >= 0.0);
        prop_assert!((st.consumed + st.remaining - grant).abs() < EPS_SLACK,
            "conservation: {} + {} != {}", st.consumed, st.remaining, grant);

        // Audit completeness: the labelled entries are exactly the
        // successful charges (as a multiset), and their in-order sum is
        // bit-identical to `consumed` (entries append under the same lock,
        // in the same order, as the accumulator's additions).
        prop_assert_eq!(st.entries.len(), charged.len());
        // Exact equality, no tolerance (`==`, not `to_bits`: an empty f64
        // sum is `-0.0`, which is == but not bit-equal to `+0.0`).
        let entry_sum: f64 = st.entries.iter().map(|(_, e)| e).sum();
        prop_assert!(entry_sum == st.consumed,
            "entry sum {} != consumed {}", entry_sum, st.consumed);
        let mut a: Vec<u64> = charged.iter().map(|c| c.to_bits()).collect();
        let mut b: Vec<u64> = st.entries.iter().map(|(_, e)| e.to_bits()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// A drained tenant rejects every concurrent spend, every time, and
    /// the rejections carry the live (zero) remainder.
    #[test]
    fn exhausted_stays_exhausted(
        grant in 0.1f64..5.0,
        spends in proptest::collection::vec(0.001f64..1.0, 1..16),
        threads in 1usize..5,
    ) {
        let acc = TenantAccountant::new();
        acc.register("t", grant).unwrap();
        let st = acc.spend_remaining("t", "drain").unwrap();
        prop_assert_eq!(st.charged.to_bits(), grant.to_bits());
        prop_assert_eq!(st.remaining, 0.0);

        let errors = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let shard: Vec<f64> =
                    spends.iter().copied().skip(t).step_by(threads).collect();
                let (errors, acc) = (&errors, &acc);
                scope.spawn(move || {
                    for eps in shard {
                        errors.lock().unwrap().push(acc.spend("t", "late", eps));
                    }
                });
            }
        });
        for outcome in errors.into_inner().unwrap() {
            match outcome {
                Err(ServeError::BudgetExhausted { remaining, .. }) => {
                    prop_assert_eq!(remaining, 0.0);
                }
                other => prop_assert!(false, "expected BudgetExhausted, got {:?}", other),
            }
        }
        // Still exactly one entry: the drain. Rejections record nothing.
        prop_assert_eq!(acc.statement("t").unwrap().entries.len(), 1);
    }

    /// Tenants are isolated: concurrent traffic against one tenant never
    /// moves another's budget.
    #[test]
    fn tenants_are_isolated(
        grant_a in 0.1f64..10.0,
        grant_b in 0.1f64..10.0,
        spends in proptest::collection::vec(0.001f64..1.0, 1..16),
        threads in 1usize..4,
    ) {
        let acc = TenantAccountant::new();
        acc.register("a", grant_a).unwrap();
        acc.register("b", grant_b).unwrap();
        race_spends(&acc, "a", &spends, threads);
        let b = acc.statement("b").unwrap();
        prop_assert_eq!(b.consumed, 0.0);
        prop_assert_eq!(b.remaining.to_bits(), grant_b.to_bits());
        prop_assert!(b.entries.is_empty());
    }
}
