//! Fault-injection satellite: a mechanism whose `measure` panics must not
//! take the service down with it. The single-flight slot is released, the
//! cache mutex stays unpoisoned, only requests coalesced onto the
//! panicking flight fail (with the admission charge standing — ε left the
//! building when the noise was committed to), concurrent other-key
//! traffic is untouched, and the next identical request starts a fresh
//! flight that can succeed.

use pgb_core::{GenerateError, GraphGenerator, PrivateSynthesis};
use pgb_graph::Graph;
use pgb_serve::{GenerateRequest, LogEntry, ServeError, Server, ServerConfig};
use rand::RngCore;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Once};
use std::time::Duration;

/// Silences the panic-hook output for the injected faults (and only
/// those): the tests deliberately panic on worker threads, and the
/// default hook would spray backtraces over the test log.
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected"))
                .or_else(|| info.payload().downcast_ref::<String>().map(|s| s.contains("injected")))
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Counters shared with the test body.
#[derive(Default)]
struct Counters {
    measures_started: AtomicUsize,
    measures_succeeded: AtomicUsize,
}

/// Panics in `measure` while `fuse > 0` (decrementing it), succeeds after.
struct Faulty {
    counters: Arc<Counters>,
    fuse: AtomicIsize,
    delay: Duration,
}

struct StubSynthesis;

impl PrivateSynthesis for StubSynthesis {
    fn name(&self) -> &'static str {
        "Faulty"
    }
    fn epsilon_spent(&self) -> f64 {
        1.0
    }
    fn heap_bytes(&self) -> usize {
        8
    }
    fn sample(&self, _rng: &mut dyn RngCore) -> Graph {
        Graph::new(2)
    }
}

impl GraphGenerator for Faulty {
    fn name(&self) -> &'static str {
        "Faulty"
    }

    fn measure(
        &self,
        _graph: &Graph,
        _epsilon: f64,
        _rng: &mut dyn RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        self.counters.measures_started.fetch_add(1, Ordering::SeqCst);
        // Burn the fuse on *entry* (so an in-flight doomed measure has
        // already claimed its panic before other keys start), but detonate
        // after the delay (so concurrent requests have time to coalesce).
        let doomed = self.fuse.fetch_sub(1, Ordering::SeqCst) > 0;
        std::thread::sleep(self.delay);
        if doomed {
            panic!("injected measure fault");
        }
        self.counters.measures_succeeded.fetch_add(1, Ordering::SeqCst);
        Ok(Box::new(StubSynthesis))
    }
}

/// A server with one faulty mechanism (panics `panics` times, then
/// works) and one dataset.
fn faulty_server(panics: isize, delay_ms: u64) -> (Server, Arc<Counters>) {
    silence_injected_panics();
    let counters = Arc::new(Counters::default());
    let gen = Faulty {
        counters: Arc::clone(&counters),
        fuse: AtomicIsize::new(panics),
        delay: Duration::from_millis(delay_ms),
    };
    let mut server = Server::with_generators(
        ServerConfig { cache_bytes: 1 << 20, threads: 0, ..ServerConfig::default() },
        vec![Box::new(gen)],
    );
    server.host_dataset("d", Graph::new(4));
    (server, counters)
}

fn req(seed: u64) -> GenerateRequest {
    GenerateRequest {
        dataset: "d".into(),
        mechanism: "Faulty".into(),
        epsilon: 0.5,
        samples: 1,
        seed,
        deadline_ticks: 0,
    }
}

/// The core fault story: a panicking flight fails its leader and every
/// coalesced waiter with `MeasurePanicked`, the charge stands, the cache
/// is unpoisoned, and the next identical request succeeds on a fresh
/// flight.
#[test]
fn panicking_measure_fails_the_flight_and_releases_the_slot() {
    const K: usize = 4;
    let (server, counters) = faulty_server(1, 150);
    for i in 0..K {
        server.register_tenant(&format!("t{i}"), 5.0).unwrap();
    }

    let barrier = Barrier::new(K);
    let outcomes: Vec<Result<(), ServeError>> = {
        let mut slots: Vec<Option<Result<(), ServeError>>> = (0..K).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                let (server, barrier) = (&server, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    *slot = Some(server.submit(&format!("t{i}"), req(7)).map(|_| ()));
                });
            }
        });
        slots.into_iter().map(|s| s.unwrap()).collect()
    };

    // One measure started, it panicked, and all K requests saw the shared
    // failure — not a hang, not a poison error, not K panics.
    assert_eq!(counters.measures_started.load(Ordering::SeqCst), 1);
    assert_eq!(counters.measures_succeeded.load(Ordering::SeqCst), 0);
    for outcome in &outcomes {
        assert_eq!(
            outcome.as_ref().unwrap_err(),
            &ServeError::MeasurePanicked { mechanism: "Faulty".into() }
        );
    }
    assert_eq!(server.cache().stats().failures, 1);

    // Every admission charge stands: ε was spent when the request was
    // admitted, and a crashed mechanism does not un-spend it.
    for i in 0..K {
        let st = server.accountant().statement(&format!("t{i}")).unwrap();
        assert_eq!(st.consumed, 0.5, "t{i}'s charge survives the panic");
    }

    // The single-flight slot was released and the cache is unpoisoned:
    // the identical request leads a fresh flight, which now succeeds.
    let response = server.submit("t0", req(7)).unwrap();
    assert_eq!(response.graphs.len(), 1);
    assert_eq!(counters.measures_started.load(Ordering::SeqCst), 2, "fresh flight, fresh measure");
    assert_eq!(counters.measures_succeeded.load(Ordering::SeqCst), 1);
    // And from here the key behaves normally: a repeat is a pure hit.
    server.submit("t1", req(7)).unwrap();
    assert_eq!(counters.measures_started.load(Ordering::SeqCst), 2);
}

/// Only the poisoned key's waiters fail: traffic on other keys proceeds
/// while the faulty flight is mid-panic.
#[test]
fn other_keys_are_unaffected_by_a_panicking_flight() {
    let (server, counters) = faulty_server(1, 200);
    server.register_tenant("victim", 5.0).unwrap();
    server.register_tenant("bystander", 5.0).unwrap();

    std::thread::scope(|scope| {
        let server = &server;
        let doomed = scope.spawn(move || server.submit("victim", req(1)).map(|_| ()));
        // Give the doomed flight time to enter its measure, then run
        // other-key traffic to completion while it is still sleeping.
        std::thread::sleep(Duration::from_millis(50));
        // seed 2 is a different cache key: fuse already consumed by the
        // in-flight measure, so this one succeeds.
        let fine = server.submit("bystander", req(2));
        assert!(fine.is_ok(), "other-key request failed: {:?}", fine.err());
        assert_eq!(
            doomed.join().unwrap().unwrap_err(),
            ServeError::MeasurePanicked { mechanism: "Faulty".into() }
        );
    });

    assert_eq!(counters.measures_started.load(Ordering::SeqCst), 2);
    assert_eq!(counters.measures_succeeded.load(Ordering::SeqCst), 1);
    assert_eq!(server.accountant().statement("bystander").unwrap().consumed, 0.5);
}

/// Replay survives an injected panic even at a worker budget of 1: the
/// worker's elastic grant is released on the caught panic, the remaining
/// log entries execute, and the transcript records the failed execution
/// *with* its committed admission charge.
#[test]
fn replay_carries_a_panicking_request_without_losing_its_worker() {
    let (server, counters) = faulty_server(1, 0);
    server.register_tenant("t", 5.0).unwrap();
    let log: Vec<LogEntry> = [1u64, 2, 3]
        .into_iter()
        .map(|seed| LogEntry { tenant: "t".into(), request: req(seed) })
        .collect();

    let transcript = server.replay(&log, 1);
    assert_eq!(counters.measures_started.load(Ordering::SeqCst), 3, "all entries executed");

    // First record: admitted (the charge stands) but failed execution.
    let first = &transcript.records[0];
    assert!(first.admission.is_ok());
    assert_eq!(
        first.samples.as_ref().unwrap().as_ref().unwrap_err(),
        &ServeError::MeasurePanicked { mechanism: "Faulty".into() }
    );
    // Later records: fully served by the same (sole) worker.
    for record in &transcript.records[1..] {
        assert!(record.admission.is_ok());
        assert_eq!(record.samples.as_ref().unwrap().as_ref().unwrap().len(), 1);
    }
    // The transcript's tenant statement shows all three charges.
    assert_eq!(transcript.tenants.len(), 1);
    assert_eq!(transcript.tenants[0].consumed, 1.5);
    assert_eq!(transcript.tenants[0].entries.len(), 3);
}
