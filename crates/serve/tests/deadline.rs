//! Deterministic-deadline satellite: work-tick budgets produce the same
//! `deadline-exceeded` rejections — byte-identical transcripts — at any
//! worker count, charges stand after a rejection (conservative DP), a
//! cancelled leader's flight is abandoned and retried by its waiters, and
//! a stuck flight times out instead of wedging its waiters forever.

use pgb_core::{GenerateError, GraphGenerator, PrivateSynthesis};
use pgb_graph::Graph;
use pgb_par::cancel::CancelUnwind;
use pgb_serve::{GenerateRequest, LogEntry, ServeError, Server, ServerConfig, Transcript};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn standard_server(threads: usize) -> Server {
    let mut server =
        Server::new(ServerConfig { cache_bytes: 64 << 20, threads, ..ServerConfig::default() });
    server.host_dataset(
        "er",
        pgb_models::erdos_renyi_gnp(200, 0.05, &mut StdRng::seed_from_u64(0xE0)),
    );
    server
        .host_dataset("ba", pgb_models::barabasi_albert(200, 3, &mut StdRng::seed_from_u64(0xBA)));
    server.register_tenant("alice", 8.0).unwrap();
    server.register_tenant("bob", 8.0).unwrap();
    server
}

fn entry(tenant: &str, mechanism: &str, seed: u64, deadline_ticks: u64) -> LogEntry {
    LogEntry {
        tenant: tenant.to_string(),
        request: GenerateRequest {
            dataset: if seed.is_multiple_of(2) { "er" } else { "ba" }.into(),
            mechanism: mechanism.into(),
            epsilon: 0.5,
            samples: 3,
            seed,
            deadline_ticks,
        },
    }
}

/// A log mixing unlimited requests, budgets so small they must trip
/// (ticks=1 with 3 samples: the second per-sample checkpoint always
/// exceeds it), and budgets so large they never trip.
fn mixed_deadline_log() -> Vec<LogEntry> {
    vec![
        entry("alice", "DGG", 1, 0),
        entry("bob", "DGG", 2, 1),
        entry("alice", "TriCycLe", 3, 1 << 40),
        entry("bob", "DGG", 1, 1), // same key as req 0: cancelled hit
        entry("alice", "DGG", 4, 0),
        entry("bob", "TriCycLe", 5, 1),
        entry("alice", "DGG", 2, 1 << 40), // same key as req 1, now unlimited
    ]
}

#[test]
fn deadline_rejections_are_byte_identical_at_any_worker_count() {
    let log = mixed_deadline_log();
    let baseline = standard_server(1).replay(&log, 1);

    let deadline_hits: Vec<u64> = baseline
        .records
        .iter()
        .filter(|r| {
            matches!(r.admission, Err(ServeError::DeadlineExceeded { .. }))
                || r.samples
                    .as_ref()
                    .is_some_and(|s| matches!(s, Err(ServeError::DeadlineExceeded { .. })))
        })
        .map(|r| r.id)
        .collect();
    assert!(!deadline_hits.is_empty(), "the tick-1 requests must trip their deadlines");
    let text = baseline.records_text();
    assert!(text.contains("ticks=1"), "tick budgets are part of the logged identity:\n{text}");
    assert!(text.contains("deadline-exceeded"), "rejections render in the transcript:\n{text}");

    for threads in [2usize, 8, 0] {
        let transcript = standard_server(threads).replay(&log, threads);
        assert_eq!(
            transcript, baseline,
            "deadline outcomes diverged at {threads} workers (hits at 1 worker: {deadline_hits:?})"
        );
        assert_eq!(transcript.records_text(), text);
    }
}

#[test]
fn deadline_rejection_leaves_the_charge_standing() {
    let server = standard_server(1);
    let out = server.submit("alice", entry("alice", "DGG", 7, 1).request);
    match out {
        Err(ServeError::DeadlineExceeded { ticks }) => assert_eq!(ticks, 1),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // ε was committed at admission and is not refunded on cancellation.
    let st = server.accountant().statement("alice").unwrap();
    assert_eq!(st.consumed, 0.5, "the cancelled request's charge stands");

    // The server is still healthy: the same key, unlimited, succeeds.
    let ok = server.submit("alice", entry("alice", "DGG", 7, 0).request).unwrap();
    assert_eq!(ok.graphs.len(), 3);
}

/// Shared scaffolding for the flight tests: a mechanism whose measure
/// blocks for `delay` and, while `fuse` is positive, unwinds with the
/// cooperative-cancellation payload (a cancelled leader mid-measure).
struct Flaky {
    delay: Duration,
    fuse: AtomicUsize,
    measures: AtomicUsize,
}

struct FlakySynthesis {
    noise: u64,
}

impl GraphGenerator for Flaky {
    fn name(&self) -> &'static str {
        "Flaky"
    }
    fn measure(
        &self,
        _graph: &Graph,
        _epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        self.measures.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        if self.fuse.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |f| f.checked_sub(1)).is_ok()
        {
            std::panic::panic_any(CancelUnwind);
        }
        Ok(Box::new(FlakySynthesis { noise: rng.next_u64() }))
    }
}

impl PrivateSynthesis for FlakySynthesis {
    fn name(&self) -> &'static str {
        "Flaky"
    }
    fn epsilon_spent(&self) -> f64 {
        1.0
    }
    fn heap_bytes(&self) -> usize {
        64
    }
    fn sample(&self, rng: &mut dyn RngCore) -> Graph {
        let bits = self.noise ^ rng.next_u64();
        Graph::from_edges(3, [(0, 1), (1, 2)].into_iter().filter(|_| bits & 1 == 1)).unwrap()
    }
}

fn flaky_server(delay: Duration, fuse: usize, flight_timeout: Duration) -> Server {
    let gen = Flaky { delay, fuse: AtomicUsize::new(fuse), measures: AtomicUsize::new(0) };
    let mut server = Server::with_generators(
        ServerConfig {
            cache_bytes: 1 << 20,
            threads: 1,
            flight_timeout,
            ..ServerConfig::default()
        },
        vec![Box::new(gen)],
    );
    server.host_dataset("d", Graph::new(4));
    server.register_tenant("alice", 8.0).unwrap();
    server.register_tenant("bob", 8.0).unwrap();
    server
}

fn flaky_req(seed: u64) -> GenerateRequest {
    GenerateRequest {
        dataset: "d".into(),
        mechanism: "Flaky".into(),
        epsilon: 0.5,
        samples: 1,
        seed,
        deadline_ticks: 0,
    }
}

/// A leader cancelled mid-measure abandons its flight; a coalesced waiter
/// retries the lookup, becomes the new leader, and completes — shared
/// flights never inherit one request's cancellation.
#[test]
fn cancelled_leader_abandons_flight_and_waiter_retries() {
    let server = flaky_server(Duration::from_millis(150), 1, Duration::from_secs(30));
    let (leader, waiter) = std::thread::scope(|scope| {
        let leader = scope.spawn(|| server.submit("alice", flaky_req(3)));
        // Let the leader claim the flight before the waiter coalesces.
        std::thread::sleep(Duration::from_millis(50));
        let waiter = scope.spawn(|| server.submit("bob", flaky_req(3)));
        (leader.join().unwrap(), waiter.join().unwrap())
    });

    assert!(
        matches!(leader, Err(ServeError::Cancelled)),
        "the cancelled leader reports its own cancellation: {leader:?}"
    );
    let waited = waiter.expect("the waiter must retry the abandoned flight and succeed");
    assert_eq!(waited.graphs.len(), 1);
    // Both tenants were charged at admission; the cancellation refunds
    // nothing.
    assert_eq!(server.accountant().statement("alice").unwrap().consumed, 0.5);
    assert_eq!(server.accountant().statement("bob").unwrap().consumed, 0.5);
}

/// A waiter on a flight whose leader never resolves gives up after the
/// configured timeout with a structured error instead of blocking on the
/// condvar forever.
#[test]
fn stuck_flight_times_out_with_a_structured_error() {
    let server = flaky_server(Duration::from_millis(400), 0, Duration::from_millis(60));
    let (leader, waiter) = std::thread::scope(|scope| {
        let leader = scope.spawn(|| server.submit("alice", flaky_req(9)));
        std::thread::sleep(Duration::from_millis(50));
        let waiter = scope.spawn(|| server.submit("bob", flaky_req(9)));
        (leader.join().unwrap(), waiter.join().unwrap())
    });

    match waiter {
        Err(ServeError::FlightTimedOut { mechanism }) => assert_eq!(mechanism, "Flaky"),
        other => panic!("expected FlightTimedOut, got {other:?}"),
    }
    // The slow leader itself is unaffected by its waiter's impatience.
    assert_eq!(leader.expect("leader completes").graphs.len(), 1);
    // And the cache is not poisoned: a later request hits the entry the
    // leader resolved.
    let again = server.submit("bob", flaky_req(9)).unwrap();
    assert_eq!(again.graphs.len(), 1);
    assert!(server.cache().stats().hits >= 1);
}

/// The full transcript text of a deadline-bearing log is stable — pinning
/// the `ticks=` rendering so the script grammar and transcript stay in
/// sync.
#[test]
fn transcripts_with_deadlines_roundtrip_through_records_text() {
    let log = mixed_deadline_log();
    let a: Transcript = standard_server(2).replay(&log, 2);
    let b: Transcript = standard_server(8).replay(&log, 8);
    assert_eq!(a.records_text(), b.records_text());
    assert_eq!(a.to_text(), b.to_text());
    // Requests without a deadline must not grow a ticks field.
    for line in a.records_text().lines().filter(|l| l.contains("seed=")) {
        let id: u64 = line[3..8].parse().unwrap_or(u64::MAX);
        if let Some(e) = log.get(id as usize) {
            assert_eq!(
                line.contains("ticks="),
                e.request.deadline_ticks != 0,
                "ticks field presence must track the request: {line}"
            );
        }
    }
}
