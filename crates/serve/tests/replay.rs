//! The deterministic-replay satellite: one request log, replayed at
//! worker counts {1, 2, 8, 0 (machine)}, across cache capacities, must
//! produce byte-identical transcripts — CSR bytes and budget statements
//! included. Also pins submit ≡ replay: a transcript reconstructed from a
//! live session's log matches what the live session actually returned.

use pgb_serve::{
    csr_bytes, parse_script, GenerateRequest, Server, ServerConfig, Transcript, SMOKE_SCRIPT,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fresh server hosting the two fixed smoke datasets with the standard
/// mechanism suite and the smoke script's tenants registered.
fn smoke_server(cache_bytes: usize) -> Server {
    let mut server =
        Server::new(ServerConfig { cache_bytes, threads: 0, ..ServerConfig::default() });
    server.host_dataset(
        "er",
        pgb_models::erdos_renyi_gnp(200, 0.05, &mut StdRng::seed_from_u64(0xE0)),
    );
    server
        .host_dataset("ba", pgb_models::barabasi_albert(200, 3, &mut StdRng::seed_from_u64(0xBA)));
    parse_script(SMOKE_SCRIPT).unwrap().register_on(&server).unwrap();
    server
}

fn replay_smoke(cache_bytes: usize, threads: usize) -> Transcript {
    let script = parse_script(SMOKE_SCRIPT).unwrap();
    smoke_server(cache_bytes).replay(&script.log, threads)
}

#[test]
fn transcript_is_byte_identical_at_any_worker_count() {
    let baseline = replay_smoke(64 << 20, 1);
    // The transcript is non-trivial: admitted work, rejections, samples.
    assert!(baseline.records.iter().any(|r| r.admission.is_ok()));
    assert!(baseline.records.iter().any(|r| r.admission.is_err()));
    for threads in [2usize, 8, 0] {
        let transcript = replay_smoke(64 << 20, threads);
        assert_eq!(
            transcript,
            baseline,
            "transcript diverged at {threads} workers:\n{}",
            diff_hint(&baseline, &transcript)
        );
        // Text rendering is a function of the value, so it agrees too.
        assert_eq!(transcript.to_text(), baseline.to_text());
    }
}

#[test]
fn transcript_is_independent_of_cache_capacity() {
    // 0 bytes (never retains — every request re-measures), 4 KiB (heavy
    // eviction churn), and roomy: the hit/miss/eviction sequence differs
    // wildly, the bytes cannot.
    let baseline = replay_smoke(64 << 20, 8);
    for cache_bytes in [0usize, 4 << 10] {
        let transcript = replay_smoke(cache_bytes, 8);
        assert_eq!(
            transcript,
            baseline,
            "transcript diverged at {cache_bytes}-byte cache:\n{}",
            diff_hint(&baseline, &transcript)
        );
    }
    // Sanity: the tiny capacities really did change the cache's life.
    let starved = smoke_server(0);
    starved.replay(&parse_script(SMOKE_SCRIPT).unwrap().log, 8);
    assert_eq!(starved.cache().stats().hits, 0, "a 0-byte cache cannot hit");
    assert!(starved.cache().stats().evictions > 0);
}

#[test]
fn live_submissions_replay_to_the_same_bytes() {
    let live = smoke_server(64 << 20);
    let script = parse_script(SMOKE_SCRIPT).unwrap();

    // Drive the live path one request at a time (arrival order = log
    // order), remembering what each tenant actually received.
    let mut live_outcomes = Vec::new();
    for entry in &script.log {
        let outcome = live.submit(&entry.tenant, entry.request.clone());
        live_outcomes.push(outcome);
    }
    let log = live.log();
    assert_eq!(log.len(), script.log.len(), "rejected requests are logged too");
    assert_eq!(log, script.log);

    // Replay the recorded log on a fresh server at a different worker
    // count; every record must match the live session byte-for-byte.
    let transcript = smoke_server(64 << 20).replay(&log, 8);
    assert_eq!(transcript.records.len(), live_outcomes.len());
    for (record, outcome) in transcript.records.iter().zip(&live_outcomes) {
        match outcome {
            Ok(response) => {
                assert_eq!(record.admission.as_ref().unwrap(), &response.statement);
                let live_bytes: Vec<Vec<u8>> = response.graphs.iter().map(csr_bytes).collect();
                assert_eq!(record.samples.as_ref().unwrap().as_ref().unwrap(), &live_bytes);
            }
            Err(err) => {
                assert_eq!(record.admission.as_ref().unwrap_err(), err);
                assert!(record.samples.is_none());
            }
        }
    }

    // The final audit statements agree as well.
    let live_tenants: Vec<_> = live
        .accountant()
        .tenants()
        .into_iter()
        .map(|t| live.accountant().statement(&t).unwrap())
        .collect();
    assert_eq!(transcript.tenants, live_tenants);
}

#[test]
fn samples_are_independent_across_requests_and_indices() {
    // Two requests sharing one measurement (same cache key) must draw
    // disjoint sample streams; DGG's construction is genuinely random so
    // equal outputs would expose stream reuse.
    let server = smoke_server(64 << 20);
    let req = |samples| GenerateRequest {
        dataset: "er".into(),
        mechanism: "DGG".into(),
        epsilon: 0.5,
        samples,
        seed: 99,
        deadline_ticks: 0,
    };
    let a = server.submit("alice", req(2)).unwrap();
    let b = server.submit("bob", req(2)).unwrap();
    assert_eq!(server.cache().stats().measures, 1, "one measurement, four samples");
    let bytes: Vec<Vec<u8>> = a.graphs.iter().chain(&b.graphs).map(csr_bytes).collect();
    for i in 0..bytes.len() {
        for j in 0..i {
            assert_ne!(bytes[i], bytes[j], "samples {j} and {i} drew the same stream");
        }
    }
}

/// Points at the first diverging record, for a readable failure.
fn diff_hint(a: &Transcript, b: &Transcript) -> String {
    for (ra, rb) in a.records.iter().zip(&b.records) {
        if ra != rb {
            return format!("first divergence at req {:05}:\n  {ra:?}\n  {rb:?}", ra.id);
        }
    }
    if a.tenants != b.tenants {
        return format!("tenant statements diverge:\n  {:?}\n  {:?}", a.tenants, b.tenants);
    }
    "records equal; lengths differ?".to_string()
}
