//! Cache-behaviour satellite: a recording generator proves the
//! single-flight guarantee (k concurrent same-key requests → exactly one
//! ε-consuming measure and k independent samples), the LRU eviction
//! order, the `heap_bytes` capacity accounting, and budget isolation when
//! evicted keys re-measure.

use pgb_core::{GenerateError, GraphGenerator, PrivateSynthesis};
use pgb_graph::Graph;
use pgb_serve::{GenerateRequest, Server, ServerConfig};
use rand::RngCore;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Shared counters the recording generator and its syntheses bump.
#[derive(Default)]
struct Counters {
    measures: AtomicUsize,
    samples: AtomicUsize,
}

/// A mechanism that records every measure and sample, holds `measure` for
/// `delay` (so concurrent requests pile onto the flight), and reports a
/// configurable `heap_bytes` for its intermediate.
struct Recording {
    counters: Arc<Counters>,
    delay: Duration,
    bytes: usize,
}

struct RecordingSynthesis {
    counters: Arc<Counters>,
    bytes: usize,
    /// Drawn from the measure RNG: makes the intermediate depend on its
    /// randomness, like a real mechanism's noisy representation.
    noise: u64,
}

impl GraphGenerator for Recording {
    fn name(&self) -> &'static str {
        "Recording"
    }

    fn measure(
        &self,
        _graph: &Graph,
        _epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        std::thread::sleep(self.delay);
        self.counters.measures.fetch_add(1, Ordering::SeqCst);
        Ok(Box::new(RecordingSynthesis {
            counters: Arc::clone(&self.counters),
            bytes: self.bytes,
            noise: rng.next_u64(),
        }))
    }
}

impl PrivateSynthesis for RecordingSynthesis {
    fn name(&self) -> &'static str {
        "Recording"
    }
    fn epsilon_spent(&self) -> f64 {
        1.0
    }
    fn heap_bytes(&self) -> usize {
        self.bytes
    }
    fn sample(&self, rng: &mut dyn RngCore) -> Graph {
        self.counters.samples.fetch_add(1, Ordering::SeqCst);
        // A 3-node graph whose edge set depends on the intermediate's
        // noise and the sample stream: distinguishable outputs without
        // real synthesis work.
        let bits = self.noise ^ rng.next_u64();
        let edges = [(0u32, 1u32), (1, 2), (0, 2)];
        Graph::from_edges(
            3,
            edges.iter().enumerate().filter(|(i, _)| bits >> i & 1 == 1).map(|(_, &e)| e),
        )
        .unwrap()
    }
}

/// A server hosting one trivial dataset with one recording mechanism.
fn recording_server(
    cache_bytes: usize,
    delay_ms: u64,
    entry_bytes: usize,
) -> (Server, Arc<Counters>) {
    let counters = Arc::new(Counters::default());
    let gen = Recording {
        counters: Arc::clone(&counters),
        delay: Duration::from_millis(delay_ms),
        bytes: entry_bytes,
    };
    let mut server = Server::with_generators(
        ServerConfig { cache_bytes, threads: 0, ..ServerConfig::default() },
        vec![Box::new(gen)],
    );
    server.host_dataset("d", Graph::new(4));
    (server, counters)
}

fn req(seed: u64) -> GenerateRequest {
    GenerateRequest {
        dataset: "d".into(),
        mechanism: "Recording".into(),
        epsilon: 0.5,
        samples: 1,
        seed,
        deadline_ticks: 0,
    }
}

/// k concurrent same-key requests: exactly one measure runs, every
/// request draws its own sample, and every tenant is charged for its own
/// admission (coalescing shares the *measurement*, never the bill).
#[test]
fn concurrent_same_key_requests_coalesce_onto_one_measure() {
    const K: usize = 6;
    let (server, counters) = recording_server(1 << 20, 200, 64);
    for i in 0..K {
        server.register_tenant(&format!("t{i}"), 2.0).unwrap();
    }

    let barrier = Barrier::new(K);
    std::thread::scope(|scope| {
        for i in 0..K {
            let (server, barrier) = (&server, &barrier);
            scope.spawn(move || {
                barrier.wait();
                server.submit(&format!("t{i}"), req(7)).unwrap();
            });
        }
    });

    assert_eq!(counters.measures.load(Ordering::SeqCst), 1, "single-flight: one measure");
    assert_eq!(counters.samples.load(Ordering::SeqCst), K, "every request sampled");
    let stats = server.cache().stats();
    assert_eq!(stats.measures, 1);
    assert_eq!(stats.hits + stats.coalesced, K - 1, "the other {} requests shared it", K - 1);
    assert!(
        stats.coalesced >= 1,
        "with a 200ms measure, some requests must have waited on the flight: {stats:?}"
    );
    // Every tenant paid for its own admission.
    for i in 0..K {
        let st = server.accountant().statement(&format!("t{i}")).unwrap();
        assert_eq!(st.consumed, 0.5, "tenant t{i} charged exactly once");
    }
}

/// Eviction follows recency order, and capacity is accounted in the
/// intermediates' own `heap_bytes`.
#[test]
fn lru_eviction_order_and_heap_bytes_accounting() {
    // Three 100-byte entries fit a 350-byte cache; the fourth evicts the
    // least recently *used* (not least recently inserted).
    let (server, counters) = recording_server(350, 0, 100);
    server.register_tenant("t", 100.0).unwrap();

    for seed in [1, 2, 3] {
        server.submit("t", req(seed)).unwrap();
    }
    assert_eq!(server.cache().resident_bytes(), 300);
    // Touch seed 1: now 2 is the coldest.
    server.submit("t", req(1)).unwrap();
    assert_eq!(counters.measures.load(Ordering::SeqCst), 3, "seed 1 was a hit");
    server.submit("t", req(4)).unwrap();

    let resident: Vec<u64> = server.cache().snapshot().iter().map(|(k, _)| k.seed).collect();
    assert_eq!(resident, vec![3, 1, 4], "seed 2 evicted; LRU→MRU order");
    assert_eq!(server.cache().resident_bytes(), 300);
    assert!(server.cache().snapshot().iter().all(|(_, b)| *b == 100));
    assert_eq!(server.cache().stats().evictions, 1);
}

/// An evicted key re-measures deterministically on its next request —
/// and the re-measure bills nobody: ε was charged at admission, so the
/// requesting tenant pays for its request and other tenants' budgets
/// never move.
#[test]
fn evicted_keys_remeasure_without_touching_other_tenants() {
    // Capacity of one entry: every new key evicts the previous one.
    let (server, counters) = recording_server(100, 0, 100);
    server.register_tenant("alice", 10.0).unwrap();
    server.register_tenant("bob", 10.0).unwrap();

    let first = server.submit("alice", req(1)).unwrap();
    server.submit("alice", req(2)).unwrap(); // evicts seed 1
    assert_eq!(server.cache().stats().evictions, 1);
    let alice_before = server.accountant().statement("alice").unwrap();

    // Bob re-requests the evicted key: a fresh measure runs...
    let again = server.submit("bob", req(1)).unwrap();
    assert_eq!(counters.measures.load(Ordering::SeqCst), 3, "evicted key re-measured");
    // ...producing the *same* intermediate (measure RNG is a pure
    // function of the key), so the re-measure is invisible in the bytes:
    // bob's sample stream differs from alice's (different request id) but
    // the noise the intermediate carries is identical — verified end to
    // end by the replay suite; here we pin the billing: only bob paid.
    assert_eq!(again.statement.charged, 0.5);
    let alice_after = server.accountant().statement("alice").unwrap();
    assert_eq!(alice_before, alice_after, "alice's budget untouched by bob's re-measure");
    assert_eq!(server.accountant().statement("bob").unwrap().consumed, 0.5);
    drop(first);
}

/// Same key, many sequential requests: one measure, then pure hits — the
/// measurement-reuse economics the cache exists for.
#[test]
fn repeat_requests_hit_without_remeasuring() {
    let (server, counters) = recording_server(1 << 20, 0, 10);
    server.register_tenant("t", 100.0).unwrap();
    for _ in 0..5 {
        server.submit("t", req(9)).unwrap();
    }
    assert_eq!(counters.measures.load(Ordering::SeqCst), 1);
    assert_eq!(counters.samples.load(Ordering::SeqCst), 5);
    assert_eq!(server.cache().stats().hits, 4);
    // The tenant still paid per admission — hits save compute, not ε.
    assert_eq!(server.accountant().statement("t").unwrap().consumed, 2.5);
}
