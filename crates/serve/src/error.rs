//! The structured error type every serving stage rejects with.

use std::fmt;

/// Why the server rejected (or failed) a request. `Clone + PartialEq` so
/// errors can be shared with coalesced waiters and compared byte-for-byte
/// between replay transcripts.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The tenant was never registered.
    UnknownTenant(String),
    /// A tenant with this name already holds a budget.
    TenantExists(String),
    /// The tenant's ε grant was non-positive or non-finite.
    InvalidGrant(f64),
    /// The requested dataset is not hosted by this server.
    UnknownDataset(String),
    /// The requested mechanism is not in this server's suite.
    UnknownMechanism(String),
    /// The requested ε was non-positive or non-finite.
    InvalidEpsilon(f64),
    /// The request asked for zero samples.
    InvalidSamples,
    /// The admission charge would overdraw the tenant's budget. The
    /// request consumed nothing; `remaining` is what the tenant still has.
    BudgetExhausted {
        /// The rejected tenant.
        tenant: String,
        /// ε the request asked to draw.
        requested: f64,
        /// ε the tenant still holds.
        remaining: f64,
    },
    /// The mechanism's `measure` phase returned an error (rendered, so the
    /// variant stays `Clone + PartialEq`); the admission charge stands.
    MeasureFailed {
        /// The failing mechanism's display name.
        mechanism: String,
        /// The rendered `GenerateError`.
        reason: String,
    },
    /// The mechanism's `measure` phase panicked. The single-flight slot
    /// was released, the cache is untouched, and only requests coalesced
    /// onto this measurement fail; the admission charge stands.
    MeasurePanicked {
        /// The panicking mechanism's display name.
        mechanism: String,
    },
    /// The request's sampling phase panicked after a successful measure.
    /// The cache entry is intact (other requests still reuse it); the
    /// admission charge stands.
    SamplePanicked {
        /// The mechanism whose synthesis was being sampled.
        mechanism: String,
    },
    /// The request exhausted its deterministic work-tick deadline. The
    /// rejection is byte-identical at any thread count — `ticks` is the
    /// request's declared budget, never the (scheduling-dependent) count
    /// actually consumed. The admission charge stands (conservative DP,
    /// the same rule as [`ServeError::MeasurePanicked`]).
    DeadlineExceeded {
        /// The request's declared tick budget.
        ticks: u64,
    },
    /// The request was cancelled for a non-deterministic reason (wall
    /// clock, operator). Excluded from the determinism contract; the
    /// admission charge stands.
    Cancelled,
    /// A coalesced waiter gave up on a measurement flight whose leader
    /// never resolved it (e.g. the leader was killed by `abort`, not an
    /// unwind). The inflight slot was released so later requests can
    /// re-lead; the admission charge stands. Wall-clock bounded, so
    /// excluded from the determinism contract.
    FlightTimedOut {
        /// The mechanism whose flight timed out.
        mechanism: String,
    },
    /// Appending the admission to the write-ahead log failed. The request
    /// was rejected *before* any charge, the in-memory log is untouched
    /// (WAL and memory never diverge), and the server halts.
    WalAppend {
        /// The rendered I/O error.
        reason: String,
    },
    /// The server halted after a WAL failure; it accepts no further
    /// requests until recovered.
    Halted,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            ServeError::TenantExists(t) => write!(f, "tenant {t:?} is already registered"),
            ServeError::InvalidGrant(e) => write!(f, "invalid budget grant ε = {e}"),
            ServeError::UnknownDataset(d) => write!(f, "unknown dataset {d:?}"),
            ServeError::UnknownMechanism(m) => write!(f, "unknown mechanism {m:?}"),
            ServeError::InvalidEpsilon(e) => write!(f, "invalid privacy budget ε = {e}"),
            ServeError::InvalidSamples => write!(f, "a request must ask for at least one sample"),
            ServeError::BudgetExhausted { tenant, requested, remaining } => write!(
                f,
                "budget exhausted for tenant {tenant:?}: requested ε={requested}, remaining ε={remaining}"
            ),
            ServeError::MeasureFailed { mechanism, reason } => {
                write!(f, "{mechanism} measure failed: {reason}")
            }
            ServeError::MeasurePanicked { mechanism } => {
                write!(f, "{mechanism} measure panicked")
            }
            ServeError::SamplePanicked { mechanism } => {
                write!(f, "{mechanism} sampling panicked")
            }
            ServeError::DeadlineExceeded { ticks } => {
                write!(f, "work-tick deadline exceeded: budget {ticks} ticks")
            }
            ServeError::Cancelled => write!(f, "request cancelled"),
            ServeError::FlightTimedOut { mechanism } => {
                write!(f, "{mechanism} measurement flight timed out")
            }
            ServeError::WalAppend { reason } => {
                write!(f, "write-ahead log append failed: {reason}")
            }
            ServeError::Halted => write!(f, "server halted after a WAL failure"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// Compact transcript tag for the variant (stable across versions so
    /// transcript diffs stay meaningful).
    pub fn tag(&self) -> &'static str {
        match self {
            ServeError::UnknownTenant(_) => "unknown-tenant",
            ServeError::TenantExists(_) => "tenant-exists",
            ServeError::InvalidGrant(_) => "invalid-grant",
            ServeError::UnknownDataset(_) => "unknown-dataset",
            ServeError::UnknownMechanism(_) => "unknown-mechanism",
            ServeError::InvalidEpsilon(_) => "invalid-epsilon",
            ServeError::InvalidSamples => "invalid-samples",
            ServeError::BudgetExhausted { .. } => "budget-exhausted",
            ServeError::MeasureFailed { .. } => "measure-failed",
            ServeError::MeasurePanicked { .. } => "measure-panicked",
            ServeError::SamplePanicked { .. } => "sample-panicked",
            ServeError::DeadlineExceeded { .. } => "deadline-exceeded",
            ServeError::Cancelled => "cancelled",
            ServeError::FlightTimedOut { .. } => "flight-timed-out",
            ServeError::WalAppend { .. } => "wal-append",
            ServeError::Halted => "halted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_specifics() {
        let e =
            ServeError::BudgetExhausted { tenant: "alice".into(), requested: 2.0, remaining: 0.5 };
        let s = e.to_string();
        assert!(s.contains("alice") && s.contains("2") && s.contains("0.5"), "{s}");
        assert_eq!(e.tag(), "budget-exhausted");
        assert!(ServeError::UnknownMechanism("X".into()).to_string().contains("\"X\""));
    }
}
