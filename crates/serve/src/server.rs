//! The server: admission → budget charge → cached measure → samples, and
//! the deterministic request-log replay that tests pin their transcripts
//! on.

use crate::accountant::{BudgetStatement, TenantAccountant, TenantStatement};
use crate::cache::{CacheKey, MeasureCache};
use crate::error::ServeError;
use pgb_core::{GraphGenerator, PrivateSynthesis};
use pgb_graph::Graph;
use pgb_par::derive_stream;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

/// What a tenant asks for: `samples` synthetic graphs of `dataset` under
/// `mechanism` at privacy budget `epsilon`, seeded by `seed`.
#[derive(Clone, Debug, PartialEq)]
pub struct GenerateRequest {
    /// Hosted dataset to synthesize.
    pub dataset: String,
    /// Mechanism display name (as in [`pgb_core::standard_suite`]).
    pub mechanism: String,
    /// ε charged to the tenant at admission.
    pub epsilon: f64,
    /// Synthetic graphs to construct (≥ 1).
    pub samples: usize,
    /// Request seed; part of the measurement's cache identity.
    pub seed: u64,
}

/// One line of a request log: who asked for what, in arrival order.
#[derive(Clone, Debug, PartialEq)]
pub struct LogEntry {
    /// The requesting tenant.
    pub tenant: String,
    /// The request.
    pub request: GenerateRequest,
}

/// An ordered request log — the replayable record of a serving session.
pub type RequestLog = Vec<LogEntry>;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Measurement-cache capacity in `heap_bytes`.
    pub cache_bytes: usize,
    /// Default worker-thread budget (0 ⇒ the machine's available
    /// parallelism). [`Server::replay`] takes an explicit worker count —
    /// the determinism contract is *about* varying it — and
    /// [`Server::replay_default`] falls back to this.
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        // 64 MiB of intermediates, machine-sized thread budget.
        Self { cache_bytes: 64 << 20, threads: 0 }
    }
}

/// A live response: the admission statement plus the sampled graphs.
#[derive(Debug)]
pub struct Response {
    /// The request's log index (its identity in the transcript).
    pub id: u64,
    /// The committed admission charge.
    pub statement: BudgetStatement,
    /// The synthetic graphs, in sample order.
    pub graphs: Vec<Graph>,
}

/// One request's transcript line: the admission outcome and — when
/// admitted — the execution outcome. The two are separate because a
/// charge, once committed, stands even if the mechanism then fails: a
/// record can show an admitted charge *and* a failed execution.
#[derive(Clone, Debug, PartialEq)]
pub struct ResponseRecord {
    /// Log index of the request.
    pub id: u64,
    /// The requesting tenant.
    pub tenant: String,
    /// The request itself.
    pub request: GenerateRequest,
    /// Admission outcome: the committed charge, or the rejection.
    pub admission: Result<BudgetStatement, ServeError>,
    /// Execution outcome for admitted requests (`None` when rejected):
    /// CSR byte serializations of the samples, or the measure failure.
    pub samples: Option<Result<Vec<Vec<u8>>, ServeError>>,
}

/// The full deterministic output of a replay: per-request records in log
/// order plus the final per-tenant budget statements. Two transcripts are
/// byte-comparable with `==` (CSR bytes included) or diffable as text.
#[derive(Clone, Debug, PartialEq)]
pub struct Transcript {
    /// One record per log entry, in log order.
    pub records: Vec<ResponseRecord>,
    /// Final audit statements, sorted by tenant name.
    pub tenants: Vec<TenantStatement>,
}

/// The generation service: hosted datasets, a mechanism suite, the
/// concurrent tenant accountant, and the single-flight measurement cache.
/// All request paths take `&self`, so one server instance is shared
/// freely across worker threads.
pub struct Server {
    datasets: HashMap<String, Graph>,
    generators: Vec<Box<dyn GraphGenerator>>,
    accountant: TenantAccountant,
    cache: MeasureCache,
    config: ServerConfig,
    /// The live request log: arrival order at this lock *is* log order,
    /// and admission happens under it so budget statements are a pure
    /// function of the log prefix (determinism invariant 1).
    live: Mutex<RequestLog>,
}

impl Server {
    /// An empty server with the standard PGB mechanism suite.
    pub fn new(config: ServerConfig) -> Self {
        Self::with_generators(config, pgb_core::standard_suite())
    }

    /// A server with a custom mechanism suite (tests inject recording and
    /// faulty generators through this).
    pub fn with_generators(config: ServerConfig, generators: Vec<Box<dyn GraphGenerator>>) -> Self {
        Self {
            datasets: HashMap::new(),
            generators,
            accountant: TenantAccountant::new(),
            cache: MeasureCache::new(config.cache_bytes),
            config,
            live: Mutex::new(Vec::new()),
        }
    }

    /// Hosts `graph` under `name` (replacing any previous dataset of that
    /// name). Datasets are fixed before serving starts.
    pub fn host_dataset(&mut self, name: &str, graph: Graph) {
        self.datasets.insert(name.to_string(), graph);
    }

    /// Registers a tenant with a total ε grant.
    pub fn register_tenant(&self, tenant: &str, epsilon: f64) -> Result<(), ServeError> {
        self.accountant.register(tenant, epsilon)
    }

    /// The tenant accountant (audit statements, test assertions).
    pub fn accountant(&self) -> &TenantAccountant {
        &self.accountant
    }

    /// The measurement cache (stats, snapshots).
    pub fn cache(&self) -> &MeasureCache {
        &self.cache
    }

    /// A copy of the live request log (admitted *and* rejected requests,
    /// in arrival order) — feed it to [`Server::replay`].
    pub fn log(&self) -> RequestLog {
        self.live.lock().expect("request log poisoned").clone()
    }

    /// Validates `req` against the hosted datasets and mechanism suite.
    /// Runs **before** the budget charge so an invalid request never costs
    /// its tenant anything.
    fn validate(&self, req: &GenerateRequest) -> Result<(), ServeError> {
        if !self.datasets.contains_key(&req.dataset) {
            return Err(ServeError::UnknownDataset(req.dataset.clone()));
        }
        if !self.generators.iter().any(|g| g.name() == req.mechanism) {
            return Err(ServeError::UnknownMechanism(req.mechanism.clone()));
        }
        if !(req.epsilon > 0.0 && req.epsilon.is_finite()) {
            return Err(ServeError::InvalidEpsilon(req.epsilon));
        }
        if req.samples == 0 {
            return Err(ServeError::InvalidSamples);
        }
        Ok(())
    }

    /// Admission for request `id`: validation, then the labelled ε charge.
    /// Purely sequential arithmetic — callers serialize admissions in log
    /// order.
    fn admit(
        &self,
        id: u64,
        tenant: &str,
        req: &GenerateRequest,
    ) -> Result<BudgetStatement, ServeError> {
        self.validate(req)?;
        let label = format!(
            "req{id:05} {}/{} ε={} seed={}",
            req.dataset, req.mechanism, req.epsilon, req.seed
        );
        self.accountant.spend(tenant, label, req.epsilon)
    }

    /// Executes an admitted request: cached single-flight measure, then
    /// the request's own sample streams. The measure RNG depends only on
    /// the cache key (determinism invariant 2); sample `j` of request `id`
    /// runs on `derive_stream(mix(key, id), j)` (invariant 3).
    fn execute(&self, id: u64, req: &GenerateRequest) -> Result<Vec<Graph>, ServeError> {
        let key = CacheKey::new(&req.dataset, &req.mechanism, req.epsilon, req.seed);
        let synthesis = self.measure_cached(&key)?;
        let sample_base = mix64(key.hash64(), id);
        let graphs = (0..req.samples)
            .map(|j| synthesis.sample(&mut derive_stream(sample_base, j as u64)))
            .collect();
        Ok(graphs)
    }

    /// The cache lookup + measure closure for `key`. Split out so the
    /// fault-injection tests can reason about it: the closure runs with no
    /// lock held and its panics resolve to [`ServeError::MeasurePanicked`].
    fn measure_cached(&self, key: &CacheKey) -> Result<Arc<dyn PrivateSynthesis>, ServeError> {
        self.cache.get_or_measure(key, || {
            let generator = self
                .generators
                .iter()
                .find(|g| g.name() == key.mechanism)
                .expect("mechanism validated at admission");
            let graph = self.datasets.get(&key.dataset).expect("dataset validated at admission");
            // The measure stream derives from the key alone: whichever
            // request leads the flight, and however often an eviction
            // forces a re-measure, the intermediate's bytes are identical.
            let mut rng = derive_stream(key.hash64(), u64::MAX);
            generator.measure(graph, key.epsilon(), &mut rng).map_err(|e| {
                ServeError::MeasureFailed {
                    mechanism: key.mechanism.clone(),
                    reason: e.to_string(),
                }
            })
        })
    }

    /// Live one-request path: appends to the log and admits under the log
    /// lock (arrival order = log order = charge order), then executes
    /// outside it. Rejected requests are logged too — a replay must
    /// reproduce their rejections.
    pub fn submit(&self, tenant: &str, req: GenerateRequest) -> Result<Response, ServeError> {
        let (id, admission) = {
            let mut live = self.live.lock().expect("request log poisoned");
            let id = live.len() as u64;
            let admission = self.admit(id, tenant, &req);
            live.push(LogEntry { tenant: tenant.to_string(), request: req.clone() });
            (id, admission)
        };
        let statement = admission?;
        let graphs = self.execute(id, &req)?;
        Ok(Response { id, statement, graphs })
    }

    /// Replays `log` over `threads` workers (0 ⇒ available parallelism)
    /// and returns the transcript. Byte-identical at **any** worker count:
    ///
    /// 1. admissions fold sequentially over the log (charges and
    ///    rejections are functions of the log prefix);
    /// 2. admitted requests execute in parallel on the shared elastic
    ///    worker/claim loop ([`pgb_core::exec::run_elastic`]), writing
    ///    into per-request slots;
    /// 3. records assemble in log order.
    ///
    /// The caller provides a server whose tenants are freshly registered;
    /// replay charges them exactly as the original session did.
    pub fn replay(&self, log: &RequestLog, threads: usize) -> Transcript {
        // Phase 1 — sequential admission in log order.
        let admissions: Vec<Result<BudgetStatement, ServeError>> = log
            .iter()
            .enumerate()
            .map(|(id, entry)| self.admit(id as u64, &entry.tenant, &entry.request))
            .collect();

        // Phase 2 — parallel execution of the admitted requests.
        let admitted: Vec<usize> = (0..log.len()).filter(|&i| admissions[i].is_ok()).collect();
        let slots: Vec<OnceLock<Result<Vec<Vec<u8>>, ServeError>>> =
            admitted.iter().map(|_| OnceLock::new()).collect();
        pgb_core::exec::run_elastic(threads, admitted.len(), |task| {
            let i = admitted[task];
            let result = self
                .execute(i as u64, &log[i].request)
                .map(|graphs| graphs.iter().map(csr_bytes).collect());
            slots[task].set(result).expect("task executed twice");
        });

        // Phase 3 — assemble records in log order.
        let mut executed = slots.into_iter();
        let records = log
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                let admission = admissions[i].clone();
                let samples = admission.is_ok().then(|| {
                    executed
                        .next()
                        .expect("one slot per admitted request")
                        .into_inner()
                        .expect("admitted request executed")
                });
                ResponseRecord {
                    id: i as u64,
                    tenant: entry.tenant.clone(),
                    request: entry.request.clone(),
                    admission,
                    samples,
                }
            })
            .collect();

        let tenants = self
            .accountant
            .tenants()
            .into_iter()
            .map(|t| self.accountant.statement(&t).expect("listed tenant exists"))
            .collect();

        Transcript { records, tenants }
    }

    /// [`Server::replay`] at the configured thread budget.
    pub fn replay_default(&self, log: &RequestLog) -> Transcript {
        self.replay(log, self.config.threads)
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("datasets", &self.datasets.len())
            .field("generators", &self.generators.len())
            .field("config", &self.config)
            .finish()
    }
}

/// The same xorshift-multiply mixer family as [`derive_stream`], used to
/// combine a cache key's digest with a request id into the base of that
/// request's private sample-stream family.
fn mix64(base: u64, index: u64) -> u64 {
    let mut h = base ^ 0x2545_F491_4F6C_DD1D;
    h ^= index.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(h << 6).wrapping_add(h >> 2);
    h = h.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    h ^= h >> 32;
    h
}

/// Canonical byte serialization of a graph's CSR: a `u64` LE offsets
/// length, the `u32` LE offsets, then the `u32` LE neighbor lists. Two
/// graphs are identical iff their `csr_bytes` are.
pub fn csr_bytes(graph: &Graph) -> Vec<u8> {
    let (offsets, neighbors) = graph.csr();
    let mut out = Vec::with_capacity(8 + 4 * (offsets.len() + neighbors.len()));
    out.extend_from_slice(&(offsets.len() as u64).to_le_bytes());
    for &o in offsets {
        out.extend_from_slice(&o.to_le_bytes());
    }
    for &n in neighbors {
        out.extend_from_slice(&n.to_le_bytes());
    }
    out
}

/// 64-bit FNV-1a over a byte slice — the digest the text transcript
/// renders per sample so a diff stays human-sized while still pinning
/// every CSR byte.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl Transcript {
    /// Renders the transcript as diff-friendly text: one block per record
    /// (admission outcome, then per-sample FNV-1a digests of the CSR
    /// bytes) followed by the final tenant statements. Floats render with
    /// `{}` — exact shortest round-trip, so two transcripts differ in text
    /// iff they differ in value.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let q = &r.request;
            let _ = writeln!(
                out,
                "req {:05} tenant={} {}/{} ε={} samples={} seed={}",
                r.id, r.tenant, q.dataset, q.mechanism, q.epsilon, q.samples, q.seed
            );
            match &r.admission {
                Ok(st) => {
                    let _ = writeln!(
                        out,
                        "  admitted charged={} spent={} remaining={}",
                        st.charged, st.spent, st.remaining
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "  rejected {}: {}", e.tag(), e);
                }
            }
            match &r.samples {
                Some(Ok(samples)) => {
                    for (j, bytes) in samples.iter().enumerate() {
                        let _ = writeln!(
                            out,
                            "  sample {j}: fnv1a={:016x} bytes={}",
                            fnv1a(bytes),
                            bytes.len()
                        );
                    }
                }
                Some(Err(e)) => {
                    let _ = writeln!(out, "  failed {}: {}", e.tag(), e);
                }
                None => {}
            }
        }
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "tenant {} grant={} consumed={} remaining={} entries={}",
                t.tenant,
                t.grant,
                t.consumed,
                t.remaining,
                t.entries.len()
            );
        }
        out
    }
}
