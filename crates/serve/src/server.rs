//! The server: admission → budget charge → cached measure → samples, and
//! the deterministic request-log replay that tests pin their transcripts
//! on. With a WAL attached ([`Server::attach_wal`]), every admission is
//! durably logged before its charge lands, and [`Server::recover`]
//! rebuilds a crashed server's accountants and transcript from the log.

use crate::accountant::{BudgetStatement, TenantAccountant, TenantStatement};
use crate::cache::{CacheKey, MeasureCache};
use crate::error::ServeError;
use crate::wal::{Wal, WalContents, WalCorrupt};
use pgb_core::fault;
use pgb_core::{GraphGenerator, PrivateSynthesis};
use pgb_graph::Graph;
use pgb_par::cancel::{self, CancelCause, CancelToken, CancelUnwind};
use pgb_par::derive_stream;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// What a tenant asks for: `samples` synthetic graphs of `dataset` under
/// `mechanism` at privacy budget `epsilon`, seeded by `seed`.
#[derive(Clone, Debug, PartialEq)]
pub struct GenerateRequest {
    /// Hosted dataset to synthesize.
    pub dataset: String,
    /// Mechanism display name (as in [`pgb_core::standard_suite`]).
    pub mechanism: String,
    /// ε charged to the tenant at admission.
    pub epsilon: f64,
    /// Synthetic graphs to construct (≥ 1).
    pub samples: usize,
    /// Request seed; part of the measurement's cache identity.
    pub seed: u64,
    /// Work-tick deadline (0 ⇒ unlimited). Ticks are deterministic units —
    /// chunk claims in `pgb-par` plus one per sample — so a
    /// [`ServeError::DeadlineExceeded`] rejection is byte-identical at any
    /// thread count. Part of the request's logged identity.
    pub deadline_ticks: u64,
}

/// One line of a request log: who asked for what, in arrival order.
#[derive(Clone, Debug, PartialEq)]
pub struct LogEntry {
    /// The requesting tenant.
    pub tenant: String,
    /// The request.
    pub request: GenerateRequest,
}

/// An ordered request log — the replayable record of a serving session.
pub type RequestLog = Vec<LogEntry>;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Measurement-cache capacity in `heap_bytes`.
    pub cache_bytes: usize,
    /// Default worker-thread budget (0 ⇒ the machine's available
    /// parallelism). [`Server::replay`] takes an explicit worker count —
    /// the determinism contract is *about* varying it — and
    /// [`Server::replay_default`] falls back to this.
    pub threads: usize,
    /// How long a coalesced waiter waits on a measurement flight before
    /// giving up with [`ServeError::FlightTimedOut`]. Guards against a
    /// leader killed by `abort` (not unwind); wall-clock, so outside the
    /// determinism contract.
    pub flight_timeout: Duration,
    /// Optional wall-clock deadline applied to every request's execution.
    /// `None` (the default) keeps the server fully deterministic; `Some`
    /// trades that for bounded latency in real deployments
    /// ([`ServeError::Cancelled`] rejections are *not* replay-stable).
    pub wall_deadline: Option<Duration>,
    /// Append an accountant checkpoint to the WAL every this many
    /// admissions (0 ⇒ never). Checkpoints are verification records:
    /// recovery cross-checks them against the replayed admission fold.
    pub wal_checkpoint_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        // 64 MiB of intermediates, machine-sized thread budget, generous
        // flight timeout, deterministic (tick-only) deadlines, no
        // checkpoint cadence until a WAL is attached and tuned.
        Self {
            cache_bytes: 64 << 20,
            threads: 0,
            flight_timeout: Duration::from_secs(30),
            wall_deadline: None,
            wal_checkpoint_every: 0,
        }
    }
}

/// A live response: the admission statement plus the sampled graphs.
#[derive(Debug)]
pub struct Response {
    /// The request's log index (its identity in the transcript).
    pub id: u64,
    /// The committed admission charge.
    pub statement: BudgetStatement,
    /// The synthetic graphs, in sample order.
    pub graphs: Vec<Graph>,
}

/// One request's transcript line: the admission outcome and — when
/// admitted — the execution outcome. The two are separate because a
/// charge, once committed, stands even if the mechanism then fails: a
/// record can show an admitted charge *and* a failed execution.
#[derive(Clone, Debug, PartialEq)]
pub struct ResponseRecord {
    /// Log index of the request.
    pub id: u64,
    /// The requesting tenant.
    pub tenant: String,
    /// The request itself.
    pub request: GenerateRequest,
    /// Admission outcome: the committed charge, or the rejection.
    pub admission: Result<BudgetStatement, ServeError>,
    /// Execution outcome for admitted requests (`None` when rejected):
    /// CSR byte serializations of the samples, or the measure failure.
    pub samples: Option<Result<Vec<Vec<u8>>, ServeError>>,
}

/// The full deterministic output of a replay: per-request records in log
/// order plus the final per-tenant budget statements. Two transcripts are
/// byte-comparable with `==` (CSR bytes included) or diffable as text.
#[derive(Clone, Debug, PartialEq)]
pub struct Transcript {
    /// One record per log entry, in log order.
    pub records: Vec<ResponseRecord>,
    /// Final audit statements, sorted by tenant name.
    pub tenants: Vec<TenantStatement>,
}

/// The generation service: hosted datasets, a mechanism suite, the
/// concurrent tenant accountant, and the single-flight measurement cache.
/// All request paths take `&self`, so one server instance is shared
/// freely across worker threads.
pub struct Server {
    datasets: HashMap<String, Graph>,
    generators: Vec<Box<dyn GraphGenerator>>,
    accountant: TenantAccountant,
    cache: MeasureCache,
    config: ServerConfig,
    /// The live request log: arrival order at this lock *is* log order,
    /// and admission happens under it so budget statements are a pure
    /// function of the log prefix (determinism invariant 1).
    live: Mutex<RequestLog>,
    /// The durable admission log, when attached. Appended (and fsynced)
    /// under the `live` lock *before* the in-memory admit, so the WAL is
    /// always a prefix-accurate image of `live`.
    wal: Mutex<Option<Wal>>,
    /// Latched after a WAL failure: the in-memory state is ahead of (or
    /// ambiguous with) the durable log, so no further request may be
    /// admitted until the operator recovers from the WAL.
    halted: AtomicBool,
}

impl Server {
    /// An empty server with the standard PGB mechanism suite.
    pub fn new(config: ServerConfig) -> Self {
        Self::with_generators(config, pgb_core::standard_suite())
    }

    /// A server with a custom mechanism suite (tests inject recording and
    /// faulty generators through this).
    pub fn with_generators(config: ServerConfig, generators: Vec<Box<dyn GraphGenerator>>) -> Self {
        Self {
            datasets: HashMap::new(),
            generators,
            accountant: TenantAccountant::new(),
            cache: MeasureCache::with_flight_timeout(config.cache_bytes, config.flight_timeout),
            config,
            live: Mutex::new(Vec::new()),
            wal: Mutex::new(None),
            halted: AtomicBool::new(false),
        }
    }

    /// Hosts `graph` under `name` (replacing any previous dataset of that
    /// name). Datasets are fixed before serving starts.
    pub fn host_dataset(&mut self, name: &str, graph: Graph) {
        self.datasets.insert(name.to_string(), graph);
    }

    /// Registers a tenant with a total ε grant.
    pub fn register_tenant(&self, tenant: &str, epsilon: f64) -> Result<(), ServeError> {
        self.accountant.register(tenant, epsilon)
    }

    /// The tenant accountant (audit statements, test assertions).
    pub fn accountant(&self) -> &TenantAccountant {
        &self.accountant
    }

    /// The measurement cache (stats, snapshots).
    pub fn cache(&self) -> &MeasureCache {
        &self.cache
    }

    /// A copy of the live request log (admitted *and* rejected requests,
    /// in arrival order) — feed it to [`Server::replay`].
    pub fn log(&self) -> RequestLog {
        self.live.lock().expect("request log poisoned").clone()
    }

    /// Validates `req` against the hosted datasets and mechanism suite.
    /// Runs **before** the budget charge so an invalid request never costs
    /// its tenant anything.
    fn validate(&self, req: &GenerateRequest) -> Result<(), ServeError> {
        if !self.datasets.contains_key(&req.dataset) {
            return Err(ServeError::UnknownDataset(req.dataset.clone()));
        }
        if !self.generators.iter().any(|g| g.name() == req.mechanism) {
            return Err(ServeError::UnknownMechanism(req.mechanism.clone()));
        }
        if !(req.epsilon > 0.0 && req.epsilon.is_finite()) {
            return Err(ServeError::InvalidEpsilon(req.epsilon));
        }
        if req.samples == 0 {
            return Err(ServeError::InvalidSamples);
        }
        Ok(())
    }

    /// Admission for request `id` against an explicit accountant:
    /// validation, then the labelled ε charge. Purely sequential
    /// arithmetic — callers serialize admissions in log order. Factored
    /// over the accountant so recovery can fold the same admission
    /// function over a *scratch* accountant when verifying checkpoints.
    fn admit_against(
        &self,
        accountant: &TenantAccountant,
        id: u64,
        tenant: &str,
        req: &GenerateRequest,
    ) -> Result<BudgetStatement, ServeError> {
        self.validate(req)?;
        let label = format!(
            "req{id:05} {}/{} ε={} seed={}",
            req.dataset, req.mechanism, req.epsilon, req.seed
        );
        accountant.spend(tenant, label, req.epsilon)
    }

    /// [`Server::admit_against`] on the server's own accountant.
    fn admit(
        &self,
        id: u64,
        tenant: &str,
        req: &GenerateRequest,
    ) -> Result<BudgetStatement, ServeError> {
        self.admit_against(&self.accountant, id, tenant, req)
    }

    /// Executes an admitted request: cached single-flight measure, then
    /// the request's own sample streams. The measure RNG depends only on
    /// the cache key (determinism invariant 2); sample `j` of request `id`
    /// runs on `derive_stream(mix(key, id), j)` (invariant 3). Each sample
    /// costs one work tick (plus whatever chunked passes the synthesis
    /// runs internally); a tick-deadline crossing unwinds with
    /// [`CancelUnwind`] and is classified by [`Server::execute_guarded`].
    fn execute(&self, id: u64, req: &GenerateRequest) -> Result<Vec<Graph>, ServeError> {
        let key = CacheKey::new(&req.dataset, &req.mechanism, req.epsilon, req.seed);
        let synthesis = self.measure_cached(&key)?;
        let sample_base = mix64(key.hash64(), id);
        let mut graphs = Vec::with_capacity(req.samples);
        for j in 0..req.samples {
            cancel::checkpoint(1);
            fault::point("serve.sample", &[fault::FaultAction::Panic, fault::FaultAction::Cancel]);
            graphs.push(synthesis.sample(&mut derive_stream(sample_base, j as u64)));
        }
        Ok(graphs)
    }

    /// The cache lookup + measure closure for `key`. Split out so the
    /// fault-injection tests can reason about it: the closure runs with no
    /// lock held and its panics resolve to [`ServeError::MeasurePanicked`].
    ///
    /// The measure runs under [`cancel::shield_ticks`]: which request
    /// happens to lead a flight is a scheduling artifact, so the leader
    /// must not bill the measure's internal chunk claims to its own tick
    /// deadline (the shield still honors wall clocks and cancellations).
    fn measure_cached(&self, key: &CacheKey) -> Result<Arc<dyn PrivateSynthesis>, ServeError> {
        self.cache.get_or_measure(key, || {
            fault::point("cache.measure", &[fault::FaultAction::Panic, fault::FaultAction::Cancel]);
            let generator = self
                .generators
                .iter()
                .find(|g| g.name() == key.mechanism)
                .expect("mechanism validated at admission");
            let graph = self.datasets.get(&key.dataset).expect("dataset validated at admission");
            // The measure stream derives from the key alone: whichever
            // request leads the flight, and however often an eviction
            // forces a re-measure, the intermediate's bytes are identical.
            let mut rng = derive_stream(key.hash64(), u64::MAX);
            cancel::shield_ticks(|| {
                generator.measure(graph, key.epsilon(), &mut rng).map_err(|e| {
                    ServeError::MeasureFailed {
                        mechanism: key.mechanism.clone(),
                        reason: e.to_string(),
                    }
                })
            })
        })
    }

    /// [`Server::execute`] under the request's cancel token, with every
    /// escaping unwind classified into a structured error: a
    /// [`CancelUnwind`] whose cause is the tick budget becomes
    /// [`ServeError::DeadlineExceeded`] (carrying the *declared* budget —
    /// the consumed count is scheduling-dependent and never leaks into the
    /// transcript), any other cancellation becomes
    /// [`ServeError::Cancelled`], and a genuine panic becomes
    /// [`ServeError::SamplePanicked`]. The admission charge stands in every
    /// case (conservative DP).
    fn execute_guarded(&self, id: u64, req: &GenerateRequest) -> Result<Vec<Graph>, ServeError> {
        let token = CancelToken::new(
            (req.deadline_ticks != 0).then_some(req.deadline_ticks),
            self.config.wall_deadline,
        );
        let outcome = cancel::with_token(&token, || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.execute(id, req)))
        });
        match outcome {
            Ok(result) => result,
            Err(payload) if payload.is::<CancelUnwind>() => match token.cause() {
                Some(CancelCause::Ticks) => {
                    Err(ServeError::DeadlineExceeded { ticks: req.deadline_ticks })
                }
                _ => Err(ServeError::Cancelled),
            },
            Err(_) => Err(ServeError::SamplePanicked { mechanism: req.mechanism.clone() }),
        }
    }

    /// Live one-request path: appends to the log and admits under the log
    /// lock (arrival order = log order = charge order), then executes
    /// outside it. Rejected requests are logged too — a replay must
    /// reproduce their rejections.
    ///
    /// With a WAL attached, the admission is durably appended (and
    /// fsynced) *before* the in-memory charge: a crash between the two
    /// re-derives the charge at recovery, never forgets it. A WAL append
    /// failure rejects the request without logging it anywhere and halts
    /// the server — the durable log and the in-memory log never diverge.
    pub fn submit(&self, tenant: &str, req: GenerateRequest) -> Result<Response, ServeError> {
        if self.halted.load(Ordering::SeqCst) {
            return Err(ServeError::Halted);
        }
        let (id, admission) = {
            let mut live = self.live.lock().expect("request log poisoned");
            let id = live.len() as u64;
            let entry = LogEntry { tenant: tenant.to_string(), request: req.clone() };
            if let Some(wal) = self.wal.lock().expect("wal lock poisoned").as_mut() {
                if let Err(e) = wal.append_admission(id, &entry) {
                    self.halted.store(true, Ordering::SeqCst);
                    return Err(ServeError::WalAppend { reason: e.to_string() });
                }
            }
            let admission = self.admit(id, tenant, &req);
            live.push(entry);
            let every = self.config.wal_checkpoint_every;
            if every != 0 && (id + 1).is_multiple_of(every) {
                let snapshot = self.accountant.encode_snapshot();
                if let Some(wal) = self.wal.lock().expect("wal lock poisoned").as_mut() {
                    if wal.append_checkpoint(id + 1, &snapshot).is_err() {
                        // The admission itself is durable; only the
                        // verification snapshot failed. Halt new traffic,
                        // let this request finish.
                        self.halted.store(true, Ordering::SeqCst);
                    }
                }
            }
            (id, admission)
        };
        let statement = admission?;
        let graphs = self.execute_guarded(id, &req)?;
        Ok(Response { id, statement, graphs })
    }

    /// Replays `log` over `threads` workers (0 ⇒ available parallelism)
    /// and returns the transcript. Byte-identical at **any** worker count:
    ///
    /// 1. admissions fold sequentially over the log (charges and
    ///    rejections are functions of the log prefix);
    /// 2. admitted requests execute in parallel on the shared elastic
    ///    worker/claim loop ([`pgb_core::exec::run_elastic`]), writing
    ///    into per-request slots;
    /// 3. records assemble in log order.
    ///
    /// The caller provides a server whose tenants are freshly registered;
    /// replay charges them exactly as the original session did.
    pub fn replay(&self, log: &RequestLog, threads: usize) -> Transcript {
        // Phase 1 — sequential admission in log order.
        let admissions: Vec<Result<BudgetStatement, ServeError>> = log
            .iter()
            .enumerate()
            .map(|(id, entry)| self.admit(id as u64, &entry.tenant, &entry.request))
            .collect();

        // Phase 2 — parallel execution of the admitted requests.
        let admitted: Vec<usize> = (0..log.len()).filter(|&i| admissions[i].is_ok()).collect();
        let slots: Vec<OnceLock<Result<Vec<Vec<u8>>, ServeError>>> =
            admitted.iter().map(|_| OnceLock::new()).collect();
        pgb_core::exec::run_elastic(threads, admitted.len(), |task| {
            let i = admitted[task];
            let result = self
                .execute_guarded(i as u64, &log[i].request)
                .map(|graphs| graphs.iter().map(csr_bytes).collect());
            slots[task].set(result).expect("task executed twice");
        });

        // Phase 3 — assemble records in log order.
        let mut executed = slots.into_iter();
        let records = log
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                let admission = admissions[i].clone();
                let samples = admission.is_ok().then(|| {
                    executed
                        .next()
                        .expect("one slot per admitted request")
                        .into_inner()
                        .expect("admitted request executed")
                });
                ResponseRecord {
                    id: i as u64,
                    tenant: entry.tenant.clone(),
                    request: entry.request.clone(),
                    admission,
                    samples,
                }
            })
            .collect();

        let tenants = self
            .accountant
            .tenants()
            .into_iter()
            .map(|t| self.accountant.statement(&t).expect("listed tenant exists"))
            .collect();

        Transcript { records, tenants }
    }

    /// [`Server::replay`] at the configured thread budget.
    pub fn replay_default(&self, log: &RequestLog) -> Transcript {
        self.replay(log, self.config.threads)
    }

    /// Whether the server latched into the halted state after a WAL
    /// failure.
    pub fn is_halted(&self) -> bool {
        self.halted.load(Ordering::SeqCst)
    }

    /// Attaches a *fresh* WAL at `path` (truncating any previous file).
    /// Must be called before the first request — a WAL attached mid-session
    /// would miss the admissions already in memory.
    pub fn attach_wal(&self, path: impl AsRef<Path>) -> Result<(), ServeError> {
        let live = self.live.lock().expect("request log poisoned");
        assert!(live.is_empty(), "attach_wal requires a server with no admitted requests");
        let wal = Wal::create(path.as_ref())
            .map_err(|e| ServeError::WalAppend { reason: e.to_string() })?;
        *self.wal.lock().expect("wal lock poisoned") = Some(wal);
        Ok(())
    }

    /// Rebuilds this (fresh, tenant-registered) server from the WAL at
    /// `path`: parses the log, truncates any torn tail, verifies every
    /// embedded accountant checkpoint against a replayed admission fold,
    /// replays the clean admission prefix through the ordinary replay
    /// machinery (byte-identical transcript, by the determinism contract),
    /// installs the recovered log as the live log, and re-attaches the WAL
    /// positioned to append. The caller re-registers tenants with their
    /// original grants first, exactly as for [`Server::replay`].
    pub fn recover(&self, path: impl AsRef<Path>) -> Result<Recovery, ServeError> {
        assert!(
            self.live.lock().expect("request log poisoned").is_empty(),
            "recover requires a server with no admitted requests"
        );
        let (wal, contents) = Wal::recover(path.as_ref())
            .map_err(|e| ServeError::WalAppend { reason: e.to_string() })?;
        let divergence = self.verify_checkpoints(&contents);
        let transcript = self.replay(&contents.entries, self.config.threads);
        *self.live.lock().expect("request log poisoned") = contents.entries.clone();
        *self.wal.lock().expect("wal lock poisoned") = Some(wal);
        Ok(Recovery {
            transcript,
            recovered: contents.entries.len(),
            corrupt: contents.corrupt,
            divergence,
        })
    }

    /// Folds the WAL's admissions over a scratch accountant (same grants
    /// as this server's tenants) and compares its byte snapshot against
    /// every checkpoint record at that checkpoint's admission count.
    /// `Some(report)` on the first mismatch — a WAL whose snapshots and
    /// admissions disagree is surfaced, never silently trusted.
    fn verify_checkpoints(&self, contents: &WalContents) -> Option<String> {
        if contents.checkpoints.is_empty() {
            return None;
        }
        let scratch = TenantAccountant::new();
        for name in self.accountant.tenants() {
            let grant = self.accountant.statement(&name).expect("listed tenant exists").grant;
            scratch.register(&name, grant).expect("fresh scratch tenant registers");
        }
        let mismatch = |cp: &crate::wal::WalCheckpoint| -> Option<String> {
            (scratch.encode_snapshot() != cp.tenants).then(|| {
                format!(
                    "checkpoint at {} admissions does not match the replayed accountant state",
                    cp.next_id
                )
            })
        };
        let mut checkpoints = contents.checkpoints.iter().peekable();
        for (id, entry) in contents.entries.iter().enumerate() {
            while let Some(cp) = checkpoints.peek() {
                if cp.next_id != id as u64 {
                    break;
                }
                if let Some(report) = mismatch(cp) {
                    return Some(report);
                }
                checkpoints.next();
            }
            let _ = self.admit_against(&scratch, id as u64, &entry.tenant, &entry.request);
        }
        checkpoints.find_map(mismatch)
    }
}

/// What [`Server::recover`] yields: the replayed transcript plus the
/// structured story of what the log held.
#[derive(Clone, Debug)]
pub struct Recovery {
    /// The transcript of the recovered admission prefix — byte-identical
    /// to the corresponding prefix of the crashed session's transcript.
    pub transcript: Transcript,
    /// Admissions recovered from the clean prefix.
    pub recovered: usize,
    /// The corruption report, if the log had a torn or damaged tail.
    pub corrupt: Option<WalCorrupt>,
    /// `Some(report)` if an embedded checkpoint disagreed with the
    /// replayed admission fold.
    pub divergence: Option<String>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("datasets", &self.datasets.len())
            .field("generators", &self.generators.len())
            .field("config", &self.config)
            .finish()
    }
}

/// The same xorshift-multiply mixer family as [`derive_stream`], used to
/// combine a cache key's digest with a request id into the base of that
/// request's private sample-stream family.
fn mix64(base: u64, index: u64) -> u64 {
    let mut h = base ^ 0x2545_F491_4F6C_DD1D;
    h ^= index.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(h << 6).wrapping_add(h >> 2);
    h = h.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    h ^= h >> 32;
    h
}

/// Canonical byte serialization of a graph's CSR: a `u64` LE offsets
/// length, the `u32` LE offsets, then the `u32` LE neighbor lists. Two
/// graphs are identical iff their `csr_bytes` are.
pub fn csr_bytes(graph: &Graph) -> Vec<u8> {
    let (offsets, neighbors) = graph.csr();
    let mut out = Vec::with_capacity(8 + 4 * (offsets.len() + neighbors.len()));
    out.extend_from_slice(&(offsets.len() as u64).to_le_bytes());
    for &o in offsets {
        out.extend_from_slice(&o.to_le_bytes());
    }
    for &n in neighbors {
        out.extend_from_slice(&n.to_le_bytes());
    }
    out
}

/// 64-bit FNV-1a over a byte slice — the digest the text transcript
/// renders per sample so a diff stays human-sized while still pinning
/// every CSR byte.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl Transcript {
    /// Renders only the per-record blocks, no tenant footer. Because
    /// records render independently in log order, the rendering of a log
    /// *prefix* is a byte prefix of the full log's rendering — which is
    /// exactly what the crash-recovery checks diff (`head -c` against the
    /// uninterrupted run).
    pub fn records_text(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let q = &r.request;
            let _ = write!(
                out,
                "req {:05} tenant={} {}/{} ε={} samples={} seed={}",
                r.id, r.tenant, q.dataset, q.mechanism, q.epsilon, q.samples, q.seed
            );
            if q.deadline_ticks != 0 {
                let _ = write!(out, " ticks={}", q.deadline_ticks);
            }
            out.push('\n');
            match &r.admission {
                Ok(st) => {
                    let _ = writeln!(
                        out,
                        "  admitted charged={} spent={} remaining={}",
                        st.charged, st.spent, st.remaining
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "  rejected {}: {}", e.tag(), e);
                }
            }
            match &r.samples {
                Some(Ok(samples)) => {
                    for (j, bytes) in samples.iter().enumerate() {
                        let _ = writeln!(
                            out,
                            "  sample {j}: fnv1a={:016x} bytes={}",
                            fnv1a(bytes),
                            bytes.len()
                        );
                    }
                }
                Some(Err(e)) => {
                    let _ = writeln!(out, "  failed {}: {}", e.tag(), e);
                }
                None => {}
            }
        }
        out
    }

    /// Renders the transcript as diff-friendly text: the record blocks
    /// ([`Transcript::records_text`]) followed by the final tenant
    /// statements. Floats render with `{}` — exact shortest round-trip, so
    /// two transcripts differ in text iff they differ in value.
    pub fn to_text(&self) -> String {
        let mut out = self.records_text();
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "tenant {} grant={} consumed={} remaining={} entries={}",
                t.tenant,
                t.grant,
                t.consumed,
                t.remaining,
                t.entries.len()
            );
        }
        out
    }
}
