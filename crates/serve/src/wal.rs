//! The durable write-ahead log of admissions.
//!
//! A DP service must never forget spent ε: once a request has been charged
//! against its tenant's budget, a crash that loses the charge would let
//! the tenant re-spend the same budget — a privacy violation, not merely
//! lost work. `pgb-serve` therefore appends every admission to a WAL
//! **before** the charge lands in memory, and fsyncs the record before the
//! request executes. Recovery (`Server::recover`) folds the surviving
//! records back through the ordinary replay machinery, which rebuilds
//! tenant accountants and the transcript byte-identically — the WAL stores
//! only *admissions*, never outcomes, because every outcome is already a
//! pure function of the admission log prefix (the serving determinism
//! contract).
//!
//! ## On-disk format
//!
//! ```text
//! magic  "PGBWAL01"                                   (8 bytes)
//! record [u32 LE payload len][u32 LE CRC-32(payload)][payload]
//! ```
//!
//! Payloads are tagged by their first byte:
//!
//! * `1` **admission** — `id: u64`, then length-prefixed `tenant`,
//!   `dataset`, `mechanism` strings, then `ε` (IEEE-754 bits), `samples`,
//!   `seed`, `deadline_ticks`, all `u64 LE`. Record `id` must equal the
//!   count of admissions before it: the WAL *is* the request log, ids are
//!   positional.
//! * `2` **checkpoint** — `next_id: u64` (the admission count at the
//!   moment of the snapshot), then per-tenant length-prefixed name +
//!   length-prefixed [`pgb_dp::budget::BudgetAccountant::encode_bytes`]
//!   state, sorted by tenant. Checkpoints are *verification* records:
//!   recovery replays admissions and checks each checkpoint against the
//!   replayed state bit-for-bit, so a WAL whose admissions and snapshots
//!   disagree is reported, never silently trusted.
//!
//! ## Torn tails
//!
//! A crash can tear the final record (partial write, bad CRC). Recovery
//! truncates at the first corrupt record, keeps the clean prefix, and
//! surfaces a structured [`WalCorrupt`] report — it never panics and
//! never interprets bytes past the tear. Because records are appended in
//! admission order and fsynced before the in-memory charge, the clean
//! prefix is always a valid request log: at worst the torn admission was
//! charged in memory but not durably logged, and dropping it *under*-
//! restores spent ε, which is the conservative direction for DP.

use crate::server::{GenerateRequest, LogEntry};
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// The 8-byte file magic; the trailing digits version the record format.
pub const WAL_MAGIC: [u8; 8] = *b"PGBWAL01";

/// Hard cap on a single record's payload, so a corrupt length prefix can
/// never drive an allocation or a multi-gigabyte read.
pub const MAX_RECORD_BYTES: u32 = 16 << 20;

const KIND_ADMISSION: u8 = 1;
const KIND_CHECKPOINT: u8 = 2;

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven. Hand-rolled
/// so the WAL stays dependency-free; the `const` table costs 1 KiB of
/// rodata.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// A structured corruption report: where the log tore, why, and how many
/// bytes past the tear were abandoned. Recovery truncates the file at
/// `offset` and carries on with the clean prefix.
#[derive(Clone, Debug, PartialEq)]
pub struct WalCorrupt {
    /// Byte offset of the first record that failed to parse.
    pub offset: u64,
    /// What failed, rendered for the operator.
    pub reason: String,
    /// Bytes from `offset` to the end of the file, all abandoned.
    pub dropped_bytes: u64,
}

impl std::fmt::Display for WalCorrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WAL corrupt at byte {}: {} ({} trailing bytes dropped)",
            self.offset, self.reason, self.dropped_bytes
        )
    }
}

/// A tenant-accountant snapshot embedded in a checkpoint record.
#[derive(Clone, Debug, PartialEq)]
pub struct WalCheckpoint {
    /// Admission count at the moment of the snapshot (the next request id).
    pub next_id: u64,
    /// Per-tenant encoded accountant state, sorted by tenant name.
    pub tenants: Vec<(String, Vec<u8>)>,
}

/// Everything a WAL file yields: the clean admission prefix, the
/// checkpoints interleaved with it, and the corruption report if the tail
/// tore.
#[derive(Clone, Debug, Default)]
pub struct WalContents {
    /// The admissions of the clean prefix, in id (= file) order.
    pub entries: Vec<LogEntry>,
    /// Checkpoints of the clean prefix, in file order.
    pub checkpoints: Vec<WalCheckpoint>,
    /// `Some` if parsing stopped before the end of the file.
    pub corrupt: Option<WalCorrupt>,
    /// Length in bytes of the clean prefix (magic + intact records); the
    /// file is truncated to this on recovery.
    pub clean_len: u64,
}

fn encode_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Serializes admission `id` of `entry` as a record payload.
fn encode_admission(id: u64, entry: &LogEntry) -> Vec<u8> {
    let req = &entry.request;
    let mut p = Vec::with_capacity(
        1 + 8 + 3 * 8 + entry.tenant.len() + req.dataset.len() + req.mechanism.len() + 4 * 8,
    );
    p.push(KIND_ADMISSION);
    p.extend_from_slice(&id.to_le_bytes());
    encode_str(&mut p, &entry.tenant);
    encode_str(&mut p, &req.dataset);
    encode_str(&mut p, &req.mechanism);
    p.extend_from_slice(&req.epsilon.to_bits().to_le_bytes());
    p.extend_from_slice(&(req.samples as u64).to_le_bytes());
    p.extend_from_slice(&req.seed.to_le_bytes());
    p.extend_from_slice(&req.deadline_ticks.to_le_bytes());
    p
}

/// Serializes an accountant snapshot as a checkpoint record payload.
fn encode_checkpoint(next_id: u64, tenants: &[(String, Vec<u8>)]) -> Vec<u8> {
    let mut p = Vec::new();
    p.push(KIND_CHECKPOINT);
    p.extend_from_slice(&next_id.to_le_bytes());
    p.extend_from_slice(&(tenants.len() as u32).to_le_bytes());
    for (name, bytes) in tenants {
        encode_str(&mut p, name);
        p.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        p.extend_from_slice(bytes);
    }
    p
}

/// A bounds-checked payload reader; every failure is a `&'static str`
/// reason, never a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], &'static str> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or("payload ends mid-field")?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, &'static str> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, &'static str> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take(4) yields 4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, &'static str> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take(8) yields 8 bytes")))
    }

    fn string(&mut self) -> Result<String, &'static str> {
        let len = self.u64()?;
        if len > MAX_RECORD_BYTES as u64 {
            return Err("string length exceeds the record cap");
        }
        std::str::from_utf8(self.take(len as usize)?)
            .map(str::to_owned)
            .map_err(|_| "string is not UTF-8")
    }

    fn done(&self) -> Result<(), &'static str> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err("trailing bytes after final field")
        }
    }
}

fn decode_payload(payload: &[u8], contents: &mut WalContents) -> Result<(), String> {
    let mut cur = Cursor { bytes: payload, at: 0 };
    match cur.u8().map_err(str::to_owned)? {
        KIND_ADMISSION => {
            let id = cur.u64().map_err(str::to_owned)?;
            if id != contents.entries.len() as u64 {
                return Err(format!(
                    "admission id {id} breaks continuity (expected {})",
                    contents.entries.len()
                ));
            }
            let tenant = cur.string().map_err(str::to_owned)?;
            let dataset = cur.string().map_err(str::to_owned)?;
            let mechanism = cur.string().map_err(str::to_owned)?;
            let epsilon = f64::from_bits(cur.u64().map_err(str::to_owned)?);
            let samples = cur.u64().map_err(str::to_owned)? as usize;
            let seed = cur.u64().map_err(str::to_owned)?;
            let deadline_ticks = cur.u64().map_err(str::to_owned)?;
            cur.done().map_err(str::to_owned)?;
            contents.entries.push(LogEntry {
                tenant,
                request: GenerateRequest {
                    dataset,
                    mechanism,
                    epsilon,
                    samples,
                    seed,
                    deadline_ticks,
                },
            });
            Ok(())
        }
        KIND_CHECKPOINT => {
            let next_id = cur.u64().map_err(str::to_owned)?;
            if next_id != contents.entries.len() as u64 {
                return Err(format!(
                    "checkpoint at next_id {next_id} is misplaced (log holds {} admissions)",
                    contents.entries.len()
                ));
            }
            let count = cur.u32().map_err(str::to_owned)?;
            let mut tenants = Vec::with_capacity(count.min(1024) as usize);
            for _ in 0..count {
                let name = cur.string().map_err(str::to_owned)?;
                let len = cur.u64().map_err(str::to_owned)?;
                if len > MAX_RECORD_BYTES as u64 {
                    return Err("accountant state exceeds the record cap".into());
                }
                let bytes = cur.take(len as usize).map_err(str::to_owned)?.to_vec();
                tenants.push((name, bytes));
            }
            cur.done().map_err(str::to_owned)?;
            contents.checkpoints.push(WalCheckpoint { next_id, tenants });
            Ok(())
        }
        kind => Err(format!("unknown record kind {kind}")),
    }
}

/// Parses a WAL byte image. Total: every possible byte string yields a
/// [`WalContents`] — the clean prefix plus, when parsing stopped early, a
/// [`WalCorrupt`] report. Never panics. Pure, so the corruption proptests
/// can flip bytes without touching a filesystem.
pub fn read_contents(bytes: &[u8]) -> WalContents {
    let mut contents = WalContents::default();
    let corrupt = |at: u64, reason: String| WalCorrupt {
        offset: at,
        reason,
        dropped_bytes: bytes.len() as u64 - at,
    };
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        contents.corrupt = Some(corrupt(0, "bad or missing file magic".into()));
        contents.clean_len = 0;
        return contents;
    }
    let mut at = WAL_MAGIC.len() as u64;
    contents.clean_len = at;
    while (at as usize) < bytes.len() {
        let rest = &bytes[at as usize..];
        if rest.len() < 8 {
            contents.corrupt = Some(corrupt(at, "torn record header".into()));
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4-byte slice"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4-byte slice"));
        if len == 0 || len > MAX_RECORD_BYTES {
            contents.corrupt = Some(corrupt(at, format!("implausible record length {len}")));
            break;
        }
        if rest.len() < 8 + len as usize {
            contents.corrupt = Some(corrupt(at, "torn record payload".into()));
            break;
        }
        let payload = &rest[8..8 + len as usize];
        if crc32(payload) != crc {
            contents.corrupt = Some(corrupt(at, "payload CRC mismatch".into()));
            break;
        }
        if let Err(reason) = decode_payload(payload, &mut contents) {
            contents.corrupt = Some(corrupt(at, reason));
            break;
        }
        at += 8 + len as u64;
        contents.clean_len = at;
    }
    contents
}

/// An open, append-position WAL file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Creates (truncating any previous file) a fresh WAL holding only the
    /// magic, fsynced.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(&path)?;
        file.write_all(&WAL_MAGIC)?;
        file.sync_data()?;
        Ok(Wal { file, path })
    }

    /// The file this WAL appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append_record(&mut self, payload: &[u8]) -> std::io::Result<()> {
        pgb_core::fault::point_io("wal.append")?;
        debug_assert!(payload.len() as u32 <= MAX_RECORD_BYTES);
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        // One write_all so a torn record is a clean suffix truncation, one
        // sync_data so the record is durable before the in-memory charge.
        self.file.write_all(&rec)?;
        self.file.sync_data()
    }

    /// Durably appends admission `id` (its position in the request log).
    pub fn append_admission(&mut self, id: u64, entry: &LogEntry) -> std::io::Result<()> {
        self.append_record(&encode_admission(id, entry))
    }

    /// Durably appends an accountant snapshot taken after `next_id`
    /// admissions.
    pub fn append_checkpoint(
        &mut self,
        next_id: u64,
        tenants: &[(String, Vec<u8>)],
    ) -> std::io::Result<()> {
        self.append_record(&encode_checkpoint(next_id, tenants))
    }

    /// Reads and parses a WAL file without modifying it.
    pub fn read(path: impl AsRef<Path>) -> std::io::Result<WalContents> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(read_contents(&bytes))
    }

    /// Opens `path` for recovery: parses it, truncates any torn tail (a
    /// file with bad magic is re-initialised to an empty log), and returns
    /// the WAL positioned to append after the clean prefix, plus what the
    /// prefix held.
    pub fn recover(path: impl Into<PathBuf>) -> std::io::Result<(Self, WalContents)> {
        let path = path.into();
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let contents = read_contents(&bytes);
        let mut file = OpenOptions::new().write(true).open(&path)?;
        if contents.clean_len == 0 {
            // Bad magic: nothing salvageable, start the log over.
            file.set_len(0)?;
            file.rewind()?;
            file.write_all(&WAL_MAGIC)?;
        } else if contents.clean_len < bytes.len() as u64 {
            file.set_len(contents.clean_len)?;
        }
        file.sync_data()?;
        file.seek(SeekFrom::End(0))?;
        Ok((Wal { file, path }, contents))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> LogEntry {
        LogEntry {
            tenant: format!("tenant{}", id % 3),
            request: GenerateRequest {
                dataset: "er".into(),
                mechanism: "TmF".into(),
                epsilon: 0.25 + id as f64 * 0.125,
                samples: 2,
                seed: 0xBEEF + id,
                deadline_ticks: if id.is_multiple_of(2) { 0 } else { 64 },
            },
        }
    }

    /// Builds a valid WAL image with `n` admissions in memory.
    fn image(n: u64) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for id in 0..n {
            let payload = encode_admission(id, &entry(id));
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        bytes
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn admissions_round_trip() {
        let contents = read_contents(&image(5));
        assert!(contents.corrupt.is_none());
        assert_eq!(contents.entries.len(), 5);
        for (id, got) in contents.entries.iter().enumerate() {
            assert_eq!(*got, entry(id as u64));
        }
        assert_eq!(contents.clean_len, image(5).len() as u64);
    }

    #[test]
    fn torn_tail_keeps_the_clean_prefix() {
        let full = image(4);
        let three = image(3);
        for cut in three.len() + 1..full.len() {
            let contents = read_contents(&full[..cut]);
            assert_eq!(contents.entries.len(), 3, "cut at {cut} keeps 3 admissions");
            let c = contents.corrupt.expect("a torn tail is reported");
            assert_eq!(c.offset, three.len() as u64);
            assert_eq!(contents.clean_len, three.len() as u64);
        }
    }

    #[test]
    fn bad_magic_is_total_corruption() {
        let mut bytes = image(2);
        bytes[0] ^= 0x01;
        let contents = read_contents(&bytes);
        assert_eq!(contents.entries.len(), 0);
        assert_eq!(contents.clean_len, 0);
        assert_eq!(contents.corrupt.as_ref().map(|c| c.offset), Some(0));
    }

    #[test]
    fn id_discontinuity_is_corruption() {
        let mut bytes = WAL_MAGIC.to_vec();
        let payload = encode_admission(3, &entry(3)); // first record must be id 0
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let contents = read_contents(&bytes);
        assert!(contents.entries.is_empty());
        assert!(contents.corrupt.expect("reported").reason.contains("continuity"));
    }

    #[test]
    fn implausible_length_is_rejected_without_allocation() {
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let contents = read_contents(&bytes);
        assert!(contents.corrupt.expect("reported").reason.contains("implausible"));
    }

    #[test]
    fn checkpoint_round_trips_and_placement_is_enforced() {
        let mut bytes = image(2);
        let snapshot = vec![("alice".to_string(), vec![1, 2, 3]), ("bob".to_string(), vec![4])];
        let payload = encode_checkpoint(2, &snapshot);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let contents = read_contents(&bytes);
        assert!(contents.corrupt.is_none());
        assert_eq!(contents.checkpoints, vec![WalCheckpoint { next_id: 2, tenants: snapshot }]);

        // The same checkpoint claiming next_id 5 after 2 admissions: corrupt.
        let mut bytes = image(2);
        let payload = encode_checkpoint(5, &[]);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(read_contents(&bytes).corrupt.expect("reported").reason.contains("misplaced"));
    }

    #[test]
    fn file_append_read_recover_cycle() {
        let path = std::env::temp_dir().join(format!("pgb_wal_unit_{}.wal", std::process::id()));
        {
            let mut wal = Wal::create(&path).unwrap();
            for id in 0..4 {
                wal.append_admission(id, &entry(id)).unwrap();
            }
            wal.append_checkpoint(4, &[("t".into(), vec![9, 9])]).unwrap();
        }
        let contents = Wal::read(&path).unwrap();
        assert!(contents.corrupt.is_none());
        assert_eq!(contents.entries.len(), 4);
        assert_eq!(contents.checkpoints.len(), 1);

        // Tear the tail: chop 3 bytes, recover, confirm truncation + append.
        let full_len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full_len - 3).unwrap();
        drop(f);
        let (mut wal, contents) = Wal::recover(&path).unwrap();
        assert_eq!(contents.entries.len(), 4, "the torn checkpoint drops, admissions stay");
        assert!(contents.corrupt.is_some());
        wal.append_admission(4, &entry(4)).unwrap();
        drop(wal);
        let contents = Wal::read(&path).unwrap();
        assert!(contents.corrupt.is_none(), "recovery truncated the tear");
        assert_eq!(contents.entries.len(), 5);
        std::fs::remove_file(&path).ok();
    }
}
