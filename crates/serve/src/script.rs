//! A tiny text format for canned serving sessions, so the CI smoke job
//! (and anyone at a shell) can replay a multi-tenant request log and diff
//! transcripts across thread counts without writing Rust.
//!
//! One directive per line, `#` comments and blank lines ignored:
//!
//! ```text
//! tenant <name> <epsilon>
//! req <tenant> <dataset> <mechanism> <epsilon> <samples> <seed> [ticks]
//! ```
//!
//! The optional trailing `ticks` field is a deterministic work-tick
//! deadline (see `GenerateRequest::deadline_ticks`); omitted means
//! unlimited.
//!
//! Tenant lines must precede the first `req`; request lines are the log,
//! in order. Mechanism names may contain no whitespace (the PGB suite's
//! names — `TmF`, `DP-dK`, `PrivGraph`, … — never do).

use crate::error::ServeError;
use crate::server::{GenerateRequest, LogEntry, RequestLog};
use std::fmt::Write as _;

/// A parsed script: the tenant grants and the request log.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Script {
    /// `(tenant, ε grant)` registrations, in script order.
    pub tenants: Vec<(String, f64)>,
    /// The request log, in script order.
    pub log: RequestLog,
}

/// The canned multi-tenant session the CI `serve-smoke` job replays at
/// two thread counts and diffs byte-for-byte. Exercises same-key bursts
/// (coalescing), an exhausted tenant, and an unknown mechanism.
pub const SMOKE_SCRIPT: &str = include_str!("../scripts/smoke.txt");

/// Parses the script text. Errors render the offending line number; the
/// error variants are reused from [`ServeError`] where they fit
/// (`InvalidGrant`, `InvalidEpsilon`) and surface as strings otherwise.
pub fn parse_script(text: &str) -> Result<Script, String> {
    let mut script = Script::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let fail = |what: &str| format!("line {}: {what}: {raw:?}", lineno + 1);
        match fields[0] {
            "tenant" => {
                if fields.len() != 3 {
                    return Err(fail("expected `tenant <name> <epsilon>`"));
                }
                let eps: f64 = fields[2].parse().map_err(|_| fail("bad ε"))?;
                script.tenants.push((fields[1].to_string(), eps));
            }
            "req" => {
                if !(7..=8).contains(&fields.len()) {
                    return Err(fail(
                        "expected `req <tenant> <dataset> <mechanism> <epsilon> <samples> <seed> [ticks]`",
                    ));
                }
                let epsilon: f64 = fields[4].parse().map_err(|_| fail("bad ε"))?;
                let samples: usize = fields[5].parse().map_err(|_| fail("bad sample count"))?;
                let seed: u64 = fields[6].parse().map_err(|_| fail("bad seed"))?;
                let deadline_ticks: u64 = match fields.get(7) {
                    Some(t) => t.parse().map_err(|_| fail("bad tick deadline"))?,
                    None => 0,
                };
                script.log.push(LogEntry {
                    tenant: fields[1].to_string(),
                    request: GenerateRequest {
                        dataset: fields[2].to_string(),
                        mechanism: fields[3].to_string(),
                        epsilon,
                        samples,
                        seed,
                        deadline_ticks,
                    },
                });
            }
            other => return Err(fail(&format!("unknown directive {other:?}"))),
        }
    }
    Ok(script)
}

/// Renders a script back to text (round-trips through [`parse_script`]
/// modulo comments and whitespace).
pub fn render_script(script: &Script) -> String {
    let mut out = String::new();
    for (tenant, eps) in &script.tenants {
        let _ = writeln!(out, "tenant {tenant} {eps}");
    }
    for entry in &script.log {
        let q = &entry.request;
        let _ = write!(
            out,
            "req {} {} {} {} {} {}",
            entry.tenant, q.dataset, q.mechanism, q.epsilon, q.samples, q.seed
        );
        if q.deadline_ticks != 0 {
            let _ = write!(out, " {}", q.deadline_ticks);
        }
        out.push('\n');
    }
    out
}

impl Script {
    /// Registers this script's tenants on `server` (a fresh server — the
    /// grants must not already exist).
    pub fn register_on(&self, server: &crate::server::Server) -> Result<(), ServeError> {
        for (tenant, eps) in &self.tenants {
            server.register_tenant(tenant, *eps)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trip() {
        let text = "\
# a comment
tenant alice 12
tenant bob 1.5

req alice er TmF 0.5 2 7   # trailing comment
req bob ba DP-dK 1 1 42
";
        let script = parse_script(text).unwrap();
        assert_eq!(script.tenants, vec![("alice".into(), 12.0), ("bob".into(), 1.5)]);
        assert_eq!(script.log.len(), 2);
        assert_eq!(script.log[1].request.mechanism, "DP-dK");
        assert_eq!(script.log[1].request.seed, 42);
        let rendered = render_script(&script);
        assert_eq!(parse_script(&rendered).unwrap(), script);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_script("tenant alice 1\nreq alice er TmF nope 1 1\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_script("grant alice 1\n").unwrap_err();
        assert!(err.contains("unknown directive"), "{err}");
        let err = parse_script("tenant alice\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn smoke_script_parses() {
        let script = parse_script(SMOKE_SCRIPT).unwrap();
        assert!(script.tenants.len() >= 3, "smoke script is multi-tenant");
        assert!(script.log.len() >= 20, "smoke script has a real request stream");
        // It deliberately contains at least one bad mechanism line (the
        // transcript must pin rejections too).
        assert!(script.log.iter().any(|e| e.request.mechanism == "NoSuchMechanism"));
    }
}
