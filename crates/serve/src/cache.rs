//! The single-flight measurement cache.
//!
//! A mechanism's `measure` phase is where all the privacy budget goes and
//! almost all the wall-clock: the noisy dK series, the perturbed
//! dendrogram, the quadtree. Its output — a [`PrivateSynthesis`] — can be
//! sampled arbitrarily often for free (post-processing invariance), which
//! is exactly what a cache wants: expensive to build, cheap to reuse,
//! immutable once built. [`MeasureCache`] is an LRU over `Arc<dyn
//! PrivateSynthesis>` keyed by [`CacheKey`] = (dataset, mechanism, ε-bits,
//! seed), with capacity accounted in the intermediates' own
//! [`PrivateSynthesis::heap_bytes`].
//!
//! ## Single-flight coalescing
//!
//! When k requests for the same key arrive concurrently, running k
//! measures would waste k−1 expensive computations (the tenants were
//! already charged at admission, so this is purely a throughput concern —
//! determinism does not depend on it, because the measure RNG is a pure
//! function of the key). Instead the first arrival becomes the **leader**
//! and runs the measure; the other k−1 become **waiters**, blocking on a
//! per-key condvar until the leader publishes the result — success *and*
//! failure are shared, so a failing mechanism fails every coalesced
//! request at once rather than k times sequentially.
//!
//! ## Fault isolation
//!
//! The leader runs the measure closure with **no lock held** and under
//! `catch_unwind`: a panicking mechanism therefore cannot poison the cache
//! mutex, and its flight is resolved to [`ServeError::MeasurePanicked`] —
//! waiters on that key fail, the single-flight slot is released, the LRU
//! is untouched, and the next request for the same key starts a fresh
//! flight. Failed flights (error or panic) are never negatively cached:
//! transient conditions should be retryable, and the determinism contract
//! doesn't need caching of failures because errors, too, are pure
//! functions of the key.

use crate::error::ServeError;
use pgb_core::PrivateSynthesis;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The identity of one measurement: everything the measure's bytes depend
/// on. ε is stored as its IEEE-754 bit pattern so the key is `Eq + Hash`
/// and two requests share a measurement only when their budgets are
/// *bit-identical* (the conservative reading — 0.5 and 0.5000000001 are
/// different measurements).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Hosted dataset name.
    pub dataset: String,
    /// Mechanism display name.
    pub mechanism: String,
    /// `epsilon.to_bits()` of the per-request budget.
    pub epsilon_bits: u64,
    /// The request seed the measurement derives from.
    pub seed: u64,
}

impl CacheKey {
    /// Builds the key for a (dataset, mechanism, ε, seed) request.
    pub fn new(dataset: &str, mechanism: &str, epsilon: f64, seed: u64) -> Self {
        Self {
            dataset: dataset.to_string(),
            mechanism: mechanism.to_string(),
            epsilon_bits: epsilon.to_bits(),
            seed,
        }
    }

    /// The ε this key was built from.
    pub fn epsilon(&self) -> f64 {
        f64::from_bits(self.epsilon_bits)
    }

    /// A 64-bit FNV-1a digest of the key, used as the *base* of the
    /// measurement's derived RNG stream: purely a function of the key, so
    /// every measurement of this key — first flight, post-eviction
    /// re-measure, any worker — draws identical randomness.
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(self.dataset.as_bytes());
        eat(&[0xff]);
        eat(self.mechanism.as_bytes());
        eat(&[0xff]);
        eat(&self.epsilon_bits.to_le_bytes());
        eat(&self.seed.to_le_bytes());
        h
    }
}

/// One resident cache entry.
struct Entry {
    synthesis: Arc<dyn PrivateSynthesis>,
    /// `heap_bytes().max(1)` — a zero-byte intermediate still occupies a
    /// slot, and charging it 1 byte keeps the capacity sum strictly
    /// monotone in the entry count.
    bytes: usize,
    /// Logical clock of the last hit (or the insert), for LRU ordering.
    last_used: u64,
}

/// An in-flight measurement other requests can coalesce onto.
struct Flight {
    /// `None` until the leader resolves it; then the shared outcome.
    result: Mutex<Option<Result<Arc<dyn PrivateSynthesis>, ServeError>>>,
    cv: Condvar,
}

struct Inner {
    entries: HashMap<CacheKey, Entry>,
    inflight: HashMap<CacheKey, Arc<Flight>>,
    /// Monotone logical clock; bumped on every hit and insert.
    clock: u64,
    /// Σ entry bytes currently resident.
    bytes: usize,
}

/// Point-in-time counters, for tests and operational visibility. All
/// counters are cumulative over the cache's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Measure closures actually executed (successfully).
    pub measures: usize,
    /// Requests answered from a resident entry.
    pub hits: usize,
    /// Requests that waited on another request's in-flight measure.
    pub coalesced: usize,
    /// Entries evicted to make room.
    pub evictions: usize,
    /// Measure executions that failed or panicked.
    pub failures: usize,
}

/// The LRU, byte-accounted, single-flight cache over private
/// intermediates. All methods take `&self`; one internal mutex guards the
/// map state and is **never held while a measure runs**.
pub struct MeasureCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
    measures: AtomicUsize,
    hits: AtomicUsize,
    coalesced: AtomicUsize,
    evictions: AtomicUsize,
    failures: AtomicUsize,
}

impl std::fmt::Debug for MeasureCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeasureCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("stats", &self.stats())
            .finish()
    }
}

impl MeasureCache {
    /// A cache holding at most `capacity_bytes` of intermediate heap. A
    /// capacity of 0 still serves single-flight coalescing but retains
    /// nothing (every entry is evicted as soon as it is inserted — the
    /// "always miss" configuration the determinism tests replay under).
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                inflight: HashMap::new(),
                clock: 0,
                bytes: 0,
            }),
            capacity_bytes,
            measures: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            coalesced: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            failures: AtomicUsize::new(0),
        }
    }

    /// The configured capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Σ `heap_bytes().max(1)` of the resident entries.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").bytes
    }

    /// The cumulative counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            measures: self.measures.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
        }
    }

    /// The resident keys with their byte charges, least- to
    /// most-recently-used — the order the evictor would remove them in.
    pub fn snapshot(&self) -> Vec<(CacheKey, usize)> {
        let inner = self.inner.lock().expect("cache lock poisoned");
        let mut rows: Vec<(u64, CacheKey, usize)> =
            inner.entries.iter().map(|(k, e)| (e.last_used, k.clone(), e.bytes)).collect();
        rows.sort();
        rows.into_iter().map(|(_, k, b)| (k, b)).collect()
    }

    /// Returns the intermediate for `key`, measuring it with `measure` on
    /// a miss. Concurrent callers with the same key coalesce onto one
    /// measure execution; its outcome (success, error, or panic) is shared
    /// with every coalesced caller. The measure closure runs with no cache
    /// lock held.
    pub fn get_or_measure<F>(
        &self,
        key: &CacheKey,
        measure: F,
    ) -> Result<Arc<dyn PrivateSynthesis>, ServeError>
    where
        F: FnOnce() -> Result<Box<dyn PrivateSynthesis>, ServeError>,
    {
        // Fast path / flight resolution, under the lock.
        let flight = {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            if let Some(entry) = inner.entries.get(key) {
                let synthesis = Arc::clone(&entry.synthesis);
                inner.clock += 1;
                let now = inner.clock;
                inner.entries.get_mut(key).expect("entry vanished").last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(synthesis);
            }
            match inner.inflight.get(key) {
                Some(flight) => {
                    // Someone else is measuring this key: coalesce.
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    Some(Arc::clone(flight))
                }
                None => {
                    // We lead.
                    let flight = Arc::new(Flight { result: Mutex::new(None), cv: Condvar::new() });
                    inner.inflight.insert(key.clone(), Arc::clone(&flight));
                    None
                }
            }
        };

        if let Some(flight) = flight {
            // Waiter path: block until the leader resolves the flight.
            let mut slot = flight.result.lock().expect("flight lock poisoned");
            while slot.is_none() {
                slot = flight.cv.wait(slot).expect("flight lock poisoned");
            }
            return slot.as_ref().expect("flight resolved").clone();
        }

        // Leader path: run the measure with NO lock held, catching panics
        // so a faulty mechanism cannot poison any cache state.
        let outcome: Result<Arc<dyn PrivateSynthesis>, ServeError> =
            match catch_unwind(AssertUnwindSafe(measure)) {
                Ok(Ok(synthesis)) => Ok(Arc::from(synthesis)),
                Ok(Err(err)) => Err(err),
                Err(_panic) => {
                    Err(ServeError::MeasurePanicked { mechanism: key.mechanism.clone() })
                }
            };

        // Publish: insert on success, then release the single-flight slot
        // and wake the waiters. The insert and slot release happen under
        // one lock acquisition so no request can observe "no entry, no
        // flight" for a key that just resolved successfully.
        let flight = {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            if let Ok(synthesis) = &outcome {
                self.measures.fetch_add(1, Ordering::Relaxed);
                let bytes = synthesis.heap_bytes().max(1);
                inner.clock += 1;
                let now = inner.clock;
                inner.entries.insert(
                    key.clone(),
                    Entry { synthesis: Arc::clone(synthesis), bytes, last_used: now },
                );
                inner.bytes += bytes;
                self.evict_over_capacity(&mut inner);
            } else {
                self.failures.fetch_add(1, Ordering::Relaxed);
            }
            inner.inflight.remove(key).expect("leader's flight vanished")
        };
        let mut slot = flight.result.lock().expect("flight lock poisoned");
        *slot = Some(outcome.clone());
        flight.cv.notify_all();
        drop(slot);

        outcome
    }

    /// Evicts least-recently-used entries until the resident bytes fit the
    /// capacity. Called with the lock held, right after an insert, so the
    /// newest entry can itself be evicted when it alone exceeds capacity.
    fn evict_over_capacity(&self, inner: &mut Inner) {
        while inner.bytes > self.capacity_bytes {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("bytes > 0 implies a resident entry");
            let entry = inner.entries.remove(&victim).expect("victim resident");
            inner.bytes -= entry.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::Graph;
    use rand::RngCore;

    /// A weightless stand-in intermediate for cache-mechanics tests.
    struct Stub {
        bytes: usize,
    }

    impl PrivateSynthesis for Stub {
        fn name(&self) -> &'static str {
            "Stub"
        }
        fn epsilon_spent(&self) -> f64 {
            1.0
        }
        fn heap_bytes(&self) -> usize {
            self.bytes
        }
        fn sample(&self, _rng: &mut dyn RngCore) -> Graph {
            Graph::new(1)
        }
    }

    fn key(name: &str) -> CacheKey {
        CacheKey::new(name, "Stub", 1.0, 7)
    }

    #[test]
    fn key_hash_is_stable_and_field_sensitive() {
        let a = CacheKey::new("er", "TmF", 0.5, 1);
        assert_eq!(a.hash64(), CacheKey::new("er", "TmF", 0.5, 1).hash64());
        assert_eq!(a.epsilon(), 0.5);
        // Every field participates; the 0xff separator keeps ("ab", "c")
        // distinct from ("a", "bc").
        assert_ne!(a.hash64(), CacheKey::new("ba", "TmF", 0.5, 1).hash64());
        assert_ne!(a.hash64(), CacheKey::new("er", "DGG", 0.5, 1).hash64());
        assert_ne!(a.hash64(), CacheKey::new("er", "TmF", 1.0, 1).hash64());
        assert_ne!(a.hash64(), CacheKey::new("er", "TmF", 0.5, 2).hash64());
        assert_ne!(
            CacheKey::new("ab", "c", 0.5, 1).hash64(),
            CacheKey::new("a", "bc", 0.5, 1).hash64()
        );
    }

    #[test]
    fn hit_after_miss_runs_measure_once() {
        let cache = MeasureCache::new(1 << 20);
        let k = key("er");
        for _ in 0..3 {
            cache.get_or_measure(&k, || Ok(Box::new(Stub { bytes: 100 }) as Box<_>)).unwrap();
        }
        let stats = cache.stats();
        assert_eq!((stats.measures, stats.hits), (1, 2));
        assert_eq!(cache.resident_bytes(), 100);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let cache = MeasureCache::new(250);
        for name in ["a", "b"] {
            cache
                .get_or_measure(&key(name), || Ok(Box::new(Stub { bytes: 100 }) as Box<_>))
                .unwrap();
        }
        // Touch "a" so "b" is now the LRU entry.
        cache.get_or_measure(&key("a"), || panic!("resident")).unwrap();
        // Inserting "c" (100 bytes) pushes the total to 300 > 250: "b" goes.
        cache.get_or_measure(&key("c"), || Ok(Box::new(Stub { bytes: 100 }) as Box<_>)).unwrap();
        let resident: Vec<String> = cache.snapshot().into_iter().map(|(k, _)| k.dataset).collect();
        assert_eq!(resident, vec!["a".to_string(), "c".to_string()]);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.resident_bytes(), 200);
    }

    #[test]
    fn zero_byte_intermediates_are_charged_one_byte() {
        let cache = MeasureCache::new(3);
        for name in ["a", "b", "c", "d"] {
            cache.get_or_measure(&key(name), || Ok(Box::new(Stub { bytes: 0 }) as Box<_>)).unwrap();
        }
        assert_eq!(cache.resident_bytes(), 3);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_retains_nothing_but_still_serves() {
        let cache = MeasureCache::new(0);
        for _ in 0..2 {
            cache
                .get_or_measure(&key("er"), || Ok(Box::new(Stub { bytes: 10 }) as Box<_>))
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!((stats.measures, stats.hits, stats.evictions), (2, 0, 2));
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = MeasureCache::new(1 << 20);
        let k = key("er");
        let err = cache
            .get_or_measure(&k, || {
                Err(ServeError::MeasureFailed { mechanism: "Stub".into(), reason: "no".into() })
            })
            .err()
            .expect("measure error propagates");
        assert_eq!(err.tag(), "measure-failed");
        // The key is retryable and the retry succeeds.
        cache.get_or_measure(&k, || Ok(Box::new(Stub { bytes: 1 }) as Box<_>)).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.failures, stats.measures), (1, 1));
    }
}
