//! The single-flight measurement cache.
//!
//! A mechanism's `measure` phase is where all the privacy budget goes and
//! almost all the wall-clock: the noisy dK series, the perturbed
//! dendrogram, the quadtree. Its output — a [`PrivateSynthesis`] — can be
//! sampled arbitrarily often for free (post-processing invariance), which
//! is exactly what a cache wants: expensive to build, cheap to reuse,
//! immutable once built. [`MeasureCache`] is an LRU over `Arc<dyn
//! PrivateSynthesis>` keyed by [`CacheKey`] = (dataset, mechanism, ε-bits,
//! seed), with capacity accounted in the intermediates' own
//! [`PrivateSynthesis::heap_bytes`].
//!
//! ## Single-flight coalescing
//!
//! When k requests for the same key arrive concurrently, running k
//! measures would waste k−1 expensive computations (the tenants were
//! already charged at admission, so this is purely a throughput concern —
//! determinism does not depend on it, because the measure RNG is a pure
//! function of the key). Instead the first arrival becomes the **leader**
//! and runs the measure; the other k−1 become **waiters**, blocking on a
//! per-key condvar until the leader publishes the result — success *and*
//! failure are shared, so a failing mechanism fails every coalesced
//! request at once rather than k times sequentially.
//!
//! ## Fault isolation
//!
//! The leader runs the measure closure with **no lock held** and under
//! `catch_unwind`: a panicking mechanism therefore cannot poison the cache
//! mutex, and its flight is resolved to [`ServeError::MeasurePanicked`] —
//! waiters on that key fail, the single-flight slot is released, the LRU
//! is untouched, and the next request for the same key starts a fresh
//! flight. Failed flights (error or panic) are never negatively cached:
//! transient conditions should be retryable, and the determinism contract
//! doesn't need caching of failures because errors, too, are pure
//! functions of the key.

use crate::error::ServeError;
use pgb_core::PrivateSynthesis;
use pgb_par::cancel::{self, CancelUnwind};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The identity of one measurement: everything the measure's bytes depend
/// on. ε is stored as its IEEE-754 bit pattern so the key is `Eq + Hash`
/// and two requests share a measurement only when their budgets are
/// *bit-identical* (the conservative reading — 0.5 and 0.5000000001 are
/// different measurements).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Hosted dataset name.
    pub dataset: String,
    /// Mechanism display name.
    pub mechanism: String,
    /// `epsilon.to_bits()` of the per-request budget.
    pub epsilon_bits: u64,
    /// The request seed the measurement derives from.
    pub seed: u64,
}

impl CacheKey {
    /// Builds the key for a (dataset, mechanism, ε, seed) request.
    pub fn new(dataset: &str, mechanism: &str, epsilon: f64, seed: u64) -> Self {
        Self {
            dataset: dataset.to_string(),
            mechanism: mechanism.to_string(),
            epsilon_bits: epsilon.to_bits(),
            seed,
        }
    }

    /// The ε this key was built from.
    pub fn epsilon(&self) -> f64 {
        f64::from_bits(self.epsilon_bits)
    }

    /// A 64-bit FNV-1a digest of the key, used as the *base* of the
    /// measurement's derived RNG stream: purely a function of the key, so
    /// every measurement of this key — first flight, post-eviction
    /// re-measure, any worker — draws identical randomness.
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(self.dataset.as_bytes());
        eat(&[0xff]);
        eat(self.mechanism.as_bytes());
        eat(&[0xff]);
        eat(&self.epsilon_bits.to_le_bytes());
        eat(&self.seed.to_le_bytes());
        h
    }
}

/// One resident cache entry.
struct Entry {
    synthesis: Arc<dyn PrivateSynthesis>,
    /// `heap_bytes().max(1)` — a zero-byte intermediate still occupies a
    /// slot, and charging it 1 byte keeps the capacity sum strictly
    /// monotone in the entry count.
    bytes: usize,
    /// Logical clock of the last hit (or the insert), for LRU ordering.
    last_used: u64,
}

/// How a measurement flight ended.
enum FlightOutcome {
    /// The leader finished: a shared success or a shared structured error.
    Done(Result<Arc<dyn PrivateSynthesis>, ServeError>),
    /// The leader was *cancelled* (its own tick or wall deadline, not a
    /// mechanism fault). The leader's deadline says nothing about the
    /// waiters' requests — which request leads is a scheduling artifact —
    /// so waiters retry the whole lookup instead of inheriting the error.
    /// The retry loop terminates: each request leads at most once, and a
    /// cancelled request bails on its own token before re-waiting.
    Abandoned,
}

/// An in-flight measurement other requests can coalesce onto.
struct Flight {
    /// `None` until the leader resolves it; then the shared outcome.
    result: Mutex<Option<FlightOutcome>>,
    cv: Condvar,
}

struct Inner {
    entries: HashMap<CacheKey, Entry>,
    inflight: HashMap<CacheKey, Arc<Flight>>,
    /// Monotone logical clock; bumped on every hit and insert.
    clock: u64,
    /// Σ entry bytes currently resident.
    bytes: usize,
}

/// Point-in-time counters, for tests and operational visibility. All
/// counters are cumulative over the cache's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Measure closures actually executed (successfully).
    pub measures: usize,
    /// Requests answered from a resident entry.
    pub hits: usize,
    /// Requests that waited on another request's in-flight measure.
    pub coalesced: usize,
    /// Entries evicted to make room.
    pub evictions: usize,
    /// Measure executions that failed or panicked.
    pub failures: usize,
}

/// The LRU, byte-accounted, single-flight cache over private
/// intermediates. All methods take `&self`; one internal mutex guards the
/// map state and is **never held while a measure runs**.
pub struct MeasureCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
    /// How long a waiter coalesces on a flight before giving up with
    /// [`ServeError::FlightTimedOut`] — the guard against a leader that
    /// died without unwinding (`abort`, SIGKILLed thread).
    flight_timeout: Duration,
    measures: AtomicUsize,
    hits: AtomicUsize,
    coalesced: AtomicUsize,
    evictions: AtomicUsize,
    failures: AtomicUsize,
}

impl std::fmt::Debug for MeasureCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeasureCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("stats", &self.stats())
            .finish()
    }
}

impl MeasureCache {
    /// A cache holding at most `capacity_bytes` of intermediate heap. A
    /// capacity of 0 still serves single-flight coalescing but retains
    /// nothing (every entry is evicted as soon as it is inserted — the
    /// "always miss" configuration the determinism tests replay under).
    /// Waiters give up on a flight after 30 s; use
    /// [`MeasureCache::with_flight_timeout`] to tune that.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_flight_timeout(capacity_bytes, Duration::from_secs(30))
    }

    /// [`MeasureCache::new`] with an explicit flight timeout.
    pub fn with_flight_timeout(capacity_bytes: usize, flight_timeout: Duration) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                inflight: HashMap::new(),
                clock: 0,
                bytes: 0,
            }),
            capacity_bytes,
            flight_timeout,
            measures: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            coalesced: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            failures: AtomicUsize::new(0),
        }
    }

    /// The configured capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Σ `heap_bytes().max(1)` of the resident entries.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").bytes
    }

    /// The cumulative counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            measures: self.measures.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
        }
    }

    /// The resident keys with their byte charges, least- to
    /// most-recently-used — the order the evictor would remove them in.
    pub fn snapshot(&self) -> Vec<(CacheKey, usize)> {
        let inner = self.inner.lock().expect("cache lock poisoned");
        let mut rows: Vec<(u64, CacheKey, usize)> =
            inner.entries.iter().map(|(k, e)| (e.last_used, k.clone(), e.bytes)).collect();
        rows.sort();
        rows.into_iter().map(|(_, k, b)| (k, b)).collect()
    }

    /// Returns the intermediate for `key`, measuring it with `measure` on
    /// a miss. Concurrent callers with the same key coalesce onto one
    /// measure execution; its outcome (success, error, or panic) is shared
    /// with every coalesced caller. The measure closure runs with no cache
    /// lock held.
    ///
    /// `measure` is `Fn`, not `FnOnce`: if the flight's leader is
    /// *cancelled* (its own deadline — a scheduling artifact from the
    /// waiters' perspective), waiters retry the lookup, and one of them
    /// re-runs the measure as the new leader. Waiters also poll their own
    /// cancel token while coalesced, and give up with
    /// [`ServeError::FlightTimedOut`] after the flight timeout (the
    /// leader-died-without-unwinding case).
    pub fn get_or_measure<F>(
        &self,
        key: &CacheKey,
        measure: F,
    ) -> Result<Arc<dyn PrivateSynthesis>, ServeError>
    where
        F: Fn() -> Result<Box<dyn PrivateSynthesis>, ServeError>,
    {
        loop {
            // Fast path / flight resolution, under the lock.
            let (flight, leads) = {
                let mut inner = self.inner.lock().expect("cache lock poisoned");
                if let Some(entry) = inner.entries.get(key) {
                    let synthesis = Arc::clone(&entry.synthesis);
                    inner.clock += 1;
                    let now = inner.clock;
                    inner.entries.get_mut(key).expect("entry vanished").last_used = now;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(synthesis);
                }
                match inner.inflight.get(key) {
                    Some(flight) => {
                        // Someone else is measuring this key: coalesce.
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        (Arc::clone(flight), false)
                    }
                    None => {
                        // We lead.
                        let flight =
                            Arc::new(Flight { result: Mutex::new(None), cv: Condvar::new() });
                        inner.inflight.insert(key.clone(), Arc::clone(&flight));
                        (flight, true)
                    }
                }
            };

            if leads {
                return self.lead(key, &flight, &measure);
            }
            match self.coalesce(key, &flight) {
                Some(result) => return result,
                None => continue, // the leader abandoned; retry the lookup
            }
        }
    }

    /// Waiter path: blocks on `flight` until it resolves, the waiter's own
    /// cancel token fires, or the flight timeout elapses. `None` means the
    /// leader abandoned the flight and the caller should retry.
    fn coalesce(
        &self,
        key: &CacheKey,
        flight: &Arc<Flight>,
    ) -> Option<Result<Arc<dyn PrivateSynthesis>, ServeError>> {
        let deadline = Instant::now() + self.flight_timeout;
        let mut slot = flight.result.lock().expect("flight lock poisoned");
        loop {
            match &*slot {
                Some(FlightOutcome::Done(result)) => return Some(result.clone()),
                Some(FlightOutcome::Abandoned) => return None,
                None => {}
            }
            if cancel::current_cancelled() {
                drop(slot);
                cancel::bail_if_cancelled();
                unreachable!("a cancelled token always bails");
            }
            let now = Instant::now();
            if now >= deadline {
                // The leader never resolved the flight (e.g. it died
                // without unwinding). Release the single-flight slot so a
                // later request can re-lead — guarded by pointer identity,
                // because another waiter may have released it already and
                // a new flight may be underway.
                drop(slot);
                let mut inner = self.inner.lock().expect("cache lock poisoned");
                if inner.inflight.get(key).is_some_and(|cur| Arc::ptr_eq(cur, flight)) {
                    inner.inflight.remove(key);
                }
                drop(inner);
                self.failures.fetch_add(1, Ordering::Relaxed);
                return Some(Err(ServeError::FlightTimedOut { mechanism: key.mechanism.clone() }));
            }
            // Short slices so a cancellation or timeout is noticed even if
            // the leader never notifies again.
            let wait = (deadline - now).min(Duration::from_millis(50));
            slot = flight.cv.wait_timeout(slot, wait).expect("flight lock poisoned").0;
        }
    }

    /// Leader path: runs the measure with NO lock held, catching panics so
    /// a faulty mechanism cannot poison any cache state, and resolves the
    /// flight for every coalesced waiter. A [`CancelUnwind`] — the
    /// leader's own deadline — abandons the flight (waiters retry) and
    /// resumes unwinding so the leader's request is rejected upstream.
    fn lead<F>(
        &self,
        key: &CacheKey,
        flight: &Arc<Flight>,
        measure: &F,
    ) -> Result<Arc<dyn PrivateSynthesis>, ServeError>
    where
        F: Fn() -> Result<Box<dyn PrivateSynthesis>, ServeError>,
    {
        let outcome: FlightOutcome = match catch_unwind(AssertUnwindSafe(measure)) {
            Ok(Ok(synthesis)) => FlightOutcome::Done(Ok(Arc::from(synthesis))),
            Ok(Err(err)) => FlightOutcome::Done(Err(err)),
            Err(payload) if payload.is::<CancelUnwind>() => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                self.resolve(key, flight, FlightOutcome::Abandoned);
                resume_unwind(payload);
            }
            Err(_panic) => FlightOutcome::Done(Err(ServeError::MeasurePanicked {
                mechanism: key.mechanism.clone(),
            })),
        };
        let result = match &outcome {
            FlightOutcome::Done(result) => result.clone(),
            FlightOutcome::Abandoned => unreachable!("abandonment resumes unwinding above"),
        };
        if result.is_err() {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        self.resolve(key, flight, outcome);
        result
    }

    /// Publishes `outcome` on the leader's own flight and releases the
    /// single-flight slot. On success the entry is inserted under the same
    /// lock acquisition that releases the slot, so no request can observe
    /// "no entry, no flight" for a key that just resolved successfully.
    /// The slot release is pointer-identity-guarded: a timed-out waiter
    /// may already have released it (and a new flight may occupy it).
    fn resolve(&self, key: &CacheKey, flight: &Arc<Flight>, outcome: FlightOutcome) {
        {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            if let FlightOutcome::Done(Ok(synthesis)) = &outcome {
                self.measures.fetch_add(1, Ordering::Relaxed);
                let bytes = synthesis.heap_bytes().max(1);
                inner.clock += 1;
                let now = inner.clock;
                inner.entries.insert(
                    key.clone(),
                    Entry { synthesis: Arc::clone(synthesis), bytes, last_used: now },
                );
                inner.bytes += bytes;
                self.evict_over_capacity(&mut inner);
            }
            if inner.inflight.get(key).is_some_and(|cur| Arc::ptr_eq(cur, flight)) {
                inner.inflight.remove(key);
            }
        }
        let mut slot = flight.result.lock().expect("flight lock poisoned");
        *slot = Some(outcome);
        flight.cv.notify_all();
    }

    /// Evicts least-recently-used entries until the resident bytes fit the
    /// capacity. Called with the lock held, right after an insert, so the
    /// newest entry can itself be evicted when it alone exceeds capacity.
    fn evict_over_capacity(&self, inner: &mut Inner) {
        while inner.bytes > self.capacity_bytes {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("bytes > 0 implies a resident entry");
            let entry = inner.entries.remove(&victim).expect("victim resident");
            inner.bytes -= entry.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::Graph;
    use rand::RngCore;

    /// A weightless stand-in intermediate for cache-mechanics tests.
    struct Stub {
        bytes: usize,
    }

    impl PrivateSynthesis for Stub {
        fn name(&self) -> &'static str {
            "Stub"
        }
        fn epsilon_spent(&self) -> f64 {
            1.0
        }
        fn heap_bytes(&self) -> usize {
            self.bytes
        }
        fn sample(&self, _rng: &mut dyn RngCore) -> Graph {
            Graph::new(1)
        }
    }

    fn key(name: &str) -> CacheKey {
        CacheKey::new(name, "Stub", 1.0, 7)
    }

    #[test]
    fn key_hash_is_stable_and_field_sensitive() {
        let a = CacheKey::new("er", "TmF", 0.5, 1);
        assert_eq!(a.hash64(), CacheKey::new("er", "TmF", 0.5, 1).hash64());
        assert_eq!(a.epsilon(), 0.5);
        // Every field participates; the 0xff separator keeps ("ab", "c")
        // distinct from ("a", "bc").
        assert_ne!(a.hash64(), CacheKey::new("ba", "TmF", 0.5, 1).hash64());
        assert_ne!(a.hash64(), CacheKey::new("er", "DGG", 0.5, 1).hash64());
        assert_ne!(a.hash64(), CacheKey::new("er", "TmF", 1.0, 1).hash64());
        assert_ne!(a.hash64(), CacheKey::new("er", "TmF", 0.5, 2).hash64());
        assert_ne!(
            CacheKey::new("ab", "c", 0.5, 1).hash64(),
            CacheKey::new("a", "bc", 0.5, 1).hash64()
        );
    }

    #[test]
    fn hit_after_miss_runs_measure_once() {
        let cache = MeasureCache::new(1 << 20);
        let k = key("er");
        for _ in 0..3 {
            cache.get_or_measure(&k, || Ok(Box::new(Stub { bytes: 100 }) as Box<_>)).unwrap();
        }
        let stats = cache.stats();
        assert_eq!((stats.measures, stats.hits), (1, 2));
        assert_eq!(cache.resident_bytes(), 100);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let cache = MeasureCache::new(250);
        for name in ["a", "b"] {
            cache
                .get_or_measure(&key(name), || Ok(Box::new(Stub { bytes: 100 }) as Box<_>))
                .unwrap();
        }
        // Touch "a" so "b" is now the LRU entry.
        cache.get_or_measure(&key("a"), || panic!("resident")).unwrap();
        // Inserting "c" (100 bytes) pushes the total to 300 > 250: "b" goes.
        cache.get_or_measure(&key("c"), || Ok(Box::new(Stub { bytes: 100 }) as Box<_>)).unwrap();
        let resident: Vec<String> = cache.snapshot().into_iter().map(|(k, _)| k.dataset).collect();
        assert_eq!(resident, vec!["a".to_string(), "c".to_string()]);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.resident_bytes(), 200);
    }

    #[test]
    fn zero_byte_intermediates_are_charged_one_byte() {
        let cache = MeasureCache::new(3);
        for name in ["a", "b", "c", "d"] {
            cache.get_or_measure(&key(name), || Ok(Box::new(Stub { bytes: 0 }) as Box<_>)).unwrap();
        }
        assert_eq!(cache.resident_bytes(), 3);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_retains_nothing_but_still_serves() {
        let cache = MeasureCache::new(0);
        for _ in 0..2 {
            cache
                .get_or_measure(&key("er"), || Ok(Box::new(Stub { bytes: 10 }) as Box<_>))
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!((stats.measures, stats.hits, stats.evictions), (2, 0, 2));
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = MeasureCache::new(1 << 20);
        let k = key("er");
        let err = cache
            .get_or_measure(&k, || {
                Err(ServeError::MeasureFailed { mechanism: "Stub".into(), reason: "no".into() })
            })
            .err()
            .expect("measure error propagates");
        assert_eq!(err.tag(), "measure-failed");
        // The key is retryable and the retry succeeds.
        cache.get_or_measure(&k, || Ok(Box::new(Stub { bytes: 1 }) as Box<_>)).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.failures, stats.measures), (1, 1));
    }
}
