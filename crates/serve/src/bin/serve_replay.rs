//! Replays a serving script and writes the deterministic transcript —
//! and, for the crash-recovery checks, drives the same script through the
//! live WAL-backed path and recovers a killed run's log.
//!
//! The CI `serve-smoke` job runs the replay mode twice — `--threads 1`
//! and `--threads 8` — and diffs the transcript files byte-for-byte: any
//! scheduling leak into the transcript fails the build. The `chaos-smoke`
//! job runs `--drive --wal ... --throttle-ms ... --fault-seed ...`, kills
//! the process with SIGKILL mid-script, then runs `--recover` and diffs
//! the recovered transcript against an uninterrupted run's prefix.
//!
//! ```text
//! serve_replay [--threads N] [--script FILE] [--out FILE] [--cache-bytes N]
//!              [--records-only]
//!              [--drive --wal FILE [--throttle-ms N] [--checkpoint-every N]
//!                       [--fault-seed N --fault-rate PERMILLE]]
//!              [--recover --wal FILE]
//! ```
//!
//! With no `--script`, replays the built-in smoke script against two
//! hosted synthetic datasets (`er`: G(200, 0.05); `ba`: BA(200, 3)),
//! both seeded fixedly so every invocation serves identical data.

use pgb_serve::{parse_script, Script, Server, ServerConfig, SMOKE_SCRIPT};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

struct Args {
    threads: usize,
    script: Option<String>,
    out: String,
    cache_bytes: usize,
    /// Write only the per-record blocks (no tenant footer), so a prefix
    /// log renders to a byte prefix — what the crash checks diff.
    records_only: bool,
    /// Drive the script through the live `submit` path instead of replay.
    drive: bool,
    /// Recover a server from the WAL instead of driving/replaying.
    recover: bool,
    /// WAL path for `--drive` / `--recover`.
    wal: Option<String>,
    /// Sleep between driven requests, so an external SIGKILL lands
    /// mid-script deterministically enough to be useful.
    throttle_ms: u64,
    /// WAL checkpoint cadence while driving (0 ⇒ never).
    checkpoint_every: u64,
    /// Seeded fault plan while driving.
    fault_seed: Option<u64>,
    fault_rate: u16,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 0,
        script: None,
        out: "target/serve_transcript.txt".to_string(),
        cache_bytes: 64 << 20,
        records_only: false,
        drive: false,
        recover: false,
        wal: None,
        throttle_ms: 0,
        checkpoint_every: 0,
        fault_seed: None,
        fault_rate: 100,
    };
    fn parsed<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        v.parse().map_err(|e| format!("{name}: {e}"))
    }
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--threads" => args.threads = parsed("--threads", value("--threads")?)?,
            "--script" => args.script = Some(value("--script")?),
            "--out" => args.out = value("--out")?,
            "--cache-bytes" => args.cache_bytes = parsed("--cache-bytes", value("--cache-bytes")?)?,
            "--records-only" => args.records_only = true,
            "--drive" => args.drive = true,
            "--recover" => args.recover = true,
            "--wal" => args.wal = Some(value("--wal")?),
            "--throttle-ms" => args.throttle_ms = parsed("--throttle-ms", value("--throttle-ms")?)?,
            "--checkpoint-every" => {
                args.checkpoint_every = parsed("--checkpoint-every", value("--checkpoint-every")?)?;
            }
            "--fault-seed" => {
                args.fault_seed = Some(parsed("--fault-seed", value("--fault-seed")?)?);
            }
            "--fault-rate" => args.fault_rate = parsed("--fault-rate", value("--fault-rate")?)?,
            "--help" | "-h" => {
                println!(
                    "usage: serve_replay [--threads N] [--script FILE] [--out FILE] \
                     [--cache-bytes N] [--records-only]\n\
                     \x20                  [--drive --wal FILE [--throttle-ms N] \
                     [--checkpoint-every N] [--fault-seed N --fault-rate PERMILLE]]\n\
                     \x20                  [--recover --wal FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.drive && args.recover {
        return Err("--drive and --recover are mutually exclusive".into());
    }
    if (args.drive || args.recover) && args.wal.is_none() {
        return Err("--drive/--recover require --wal FILE".into());
    }
    if args.fault_seed.is_some() && !args.drive {
        return Err("--fault-seed only applies to --drive".into());
    }
    Ok(args)
}

/// The fixed datasets every serve_replay invocation hosts. Seeds are
/// constants: the transcript pins the synthetic outputs, so the inputs
/// must be bit-stable across runs and thread counts too.
fn host_datasets(server: &mut Server) {
    let er = pgb_models::erdos_renyi_gnp(200, 0.05, &mut StdRng::seed_from_u64(0xE0));
    let ba = pgb_models::barabasi_albert(200, 3, &mut StdRng::seed_from_u64(0xBA));
    server.host_dataset("er", er);
    server.host_dataset("ba", ba);
}

fn build_server(args: &Args, script: &Script) -> Result<Server, String> {
    let config = ServerConfig {
        cache_bytes: args.cache_bytes,
        threads: args.threads,
        wal_checkpoint_every: args.checkpoint_every,
        ..ServerConfig::default()
    };
    let mut server = Server::new(config);
    host_datasets(&mut server);
    script.register_on(&server).map_err(|e| format!("registering tenants: {e}"))?;
    Ok(server)
}

fn write_out(out: &str, text: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(out, text).map_err(|e| format!("writing {out}: {e}"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let text = match &args.script {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
        None => SMOKE_SCRIPT.to_string(),
    };
    let script: Script = parse_script(&text)?;
    let server = build_server(&args, &script)?;

    let transcript = if args.recover {
        let wal = args.wal.as_deref().expect("validated by parse_args");
        let recovery = server.recover(wal).map_err(|e| format!("recovering {wal}: {e}"))?;
        if let Some(corrupt) = &recovery.corrupt {
            eprintln!("serve_replay: {corrupt}");
        }
        if let Some(divergence) = &recovery.divergence {
            return Err(format!("recovering {wal}: {divergence}"));
        }
        eprintln!("recovered {} admissions from {wal}", recovery.recovered);
        recovery.transcript
    } else if args.drive {
        let wal = args.wal.as_deref().expect("validated by parse_args");
        server.attach_wal(wal).map_err(|e| format!("creating WAL {wal}: {e}"))?;
        if let Some(seed) = args.fault_seed {
            pgb_core::fault::install_quiet_panic_hook();
            pgb_core::fault::install(pgb_core::fault::FaultPlan {
                seed,
                rate_permille: args.fault_rate,
            });
        }
        for entry in &script.log {
            // Outcomes (including injected faults and WAL halts) are part
            // of the exercise; the driven log is judged by recovery.
            let _ = server.submit(&entry.tenant, entry.request.clone());
            if args.throttle_ms != 0 {
                std::thread::sleep(std::time::Duration::from_millis(args.throttle_ms));
            }
        }
        pgb_core::fault::clear();
        // The driving server's accountant is already charged; transcribe
        // the driven log on a fresh server so nothing double-charges.
        build_server(&args, &script)?.replay(&server.log(), args.threads)
    } else {
        server.replay(&script.log, args.threads)
    };

    let rendered = if args.records_only { transcript.records_text() } else { transcript.to_text() };
    write_out(&args.out, &rendered)?;

    let admitted = transcript.records.iter().filter(|r| r.admission.is_ok()).count();
    let stats = server.cache().stats();
    eprintln!(
        "replayed {} requests ({admitted} admitted) over {} worker budget: \
         {} measures, {} hits, {} coalesced, {} evictions → {}",
        transcript.records.len(),
        args.threads,
        stats.measures,
        stats.hits,
        stats.coalesced,
        stats.evictions,
        args.out
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve_replay: {e}");
            ExitCode::FAILURE
        }
    }
}
