//! Replays a serving script and writes the deterministic transcript.
//!
//! The CI `serve-smoke` job runs this twice — `--threads 1` and
//! `--threads 8` — and diffs the transcript files byte-for-byte: any
//! scheduling leak into the transcript fails the build.
//!
//! ```text
//! serve_replay [--threads N] [--script FILE] [--out FILE] [--cache-bytes N]
//! ```
//!
//! With no `--script`, replays the built-in smoke script against two
//! hosted synthetic datasets (`er`: G(200, 0.05); `ba`: BA(200, 3)),
//! both seeded fixedly so every invocation serves identical data.

use pgb_serve::{parse_script, Script, Server, ServerConfig, SMOKE_SCRIPT};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

struct Args {
    threads: usize,
    script: Option<String>,
    out: String,
    cache_bytes: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 0,
        script: None,
        out: "target/serve_transcript.txt".to_string(),
        cache_bytes: 64 << 20,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--threads" => {
                args.threads =
                    value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--script" => args.script = Some(value("--script")?),
            "--out" => args.out = value("--out")?,
            "--cache-bytes" => {
                args.cache_bytes =
                    value("--cache-bytes")?.parse().map_err(|e| format!("--cache-bytes: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: serve_replay [--threads N] [--script FILE] [--out FILE] [--cache-bytes N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// The fixed datasets every serve_replay invocation hosts. Seeds are
/// constants: the transcript pins the synthetic outputs, so the inputs
/// must be bit-stable across runs and thread counts too.
fn host_datasets(server: &mut Server) {
    let er = pgb_models::erdos_renyi_gnp(200, 0.05, &mut StdRng::seed_from_u64(0xE0));
    let ba = pgb_models::barabasi_albert(200, 3, &mut StdRng::seed_from_u64(0xBA));
    server.host_dataset("er", er);
    server.host_dataset("ba", ba);
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let text = match &args.script {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
        None => SMOKE_SCRIPT.to_string(),
    };
    let script: Script = parse_script(&text)?;

    let config = ServerConfig { cache_bytes: args.cache_bytes, threads: args.threads };
    let mut server = Server::new(config);
    host_datasets(&mut server);
    script.register_on(&server).map_err(|e| format!("registering tenants: {e}"))?;

    let transcript = server.replay(&script.log, args.threads);
    let text = transcript.to_text();
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(&args.out, &text).map_err(|e| format!("writing {}: {e}", args.out))?;

    let admitted = transcript.records.iter().filter(|r| r.admission.is_ok()).count();
    let stats = server.cache().stats();
    eprintln!(
        "replayed {} requests ({admitted} admitted) over {} worker budget: \
         {} measures, {} hits, {} coalesced, {} evictions → {}",
        transcript.records.len(),
        args.threads,
        stats.measures,
        stats.hits,
        stats.coalesced,
        stats.evictions,
        args.out
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve_replay: {e}");
            ExitCode::FAILURE
        }
    }
}
