//! # pgb-serve
//!
//! Generation as a service: a long-running, in-process serving layer over
//! the PGB mechanism suite. Tenants hold finite privacy budgets and submit
//! [`GenerateRequest`]s — (dataset, mechanism, ε, samples, seed) — and the
//! server returns synthetic graphs while a concurrent accountant enforces
//! that no tenant ever draws more ε than it was granted. Where the
//! benchmark runner executes a fixed grid once, the server handles an
//! open-ended request stream; the pieces compose the existing machinery:
//!
//! * [`TenantAccountant`] — one labelled [`pgb_dp::BudgetAccountant`] per
//!   tenant behind a lock, with structured
//!   [`ServeError::BudgetExhausted`] rejections.
//! * [`MeasureCache`] — an LRU over private intermediates
//!   ([`pgb_core::PrivateSynthesis`]) keyed by (dataset, mechanism,
//!   ε-bits, seed), capacity accounted in `heap_bytes`, with
//!   **single-flight coalescing**: concurrent same-key requests trigger
//!   exactly one ε-consuming `measure`, and each request streams its own
//!   independent `sample`s from derived RNG streams.
//! * [`Server`] — admission (validation + budget charge, serialized in
//!   arrival order) followed by execution over the shared elastic
//!   worker/claim loop (`pgb_core::exec`), so service work and a
//!   concurrent benchmark grid divide a thread budget the same way.
//!
//! ## The determinism contract
//!
//! A recorded multi-tenant [`RequestLog`] replayed at **any** worker count
//! produces a byte-identical [`Transcript`] — graph CSR bytes and budget
//! statements included — under arbitrary execution interleavings, cache
//! hits, misses, and evictions. Three invariants carry it:
//!
//! 1. **Admission is a fold over the log.** Validation and the ε charge
//!    happen sequentially in log order, so every budget statement is a
//!    pure function of the log prefix, not of worker scheduling. (In live
//!    [`Server::submit`] use, arrival order at the admission lock *is* the
//!    log order, and the server records it.)
//! 2. **Measurement is a pure function of its cache key.** The measure RNG
//!    derives from (dataset, mechanism, ε-bits, seed) alone, so it does
//!    not matter which request measured, whether it was coalesced, or
//!    whether an eviction forced a re-measure — the intermediate's bytes
//!    are always the same, which is why the cache hit/miss sequence is
//!    irrelevant to the transcript.
//! 3. **Samples derive from request identity.** Sample `j` of request `id`
//!    runs on `derive_stream(mix(key, id), j)` — independent across
//!    requests and samples, untouched by scheduling.
//!
//! Charges are committed at admission and never refunded: a mechanism that
//! subsequently fails (or panics — see [`MeasureCache`]'s fault isolation)
//! has still consumed its tenant's ε, which is both the conservative DP
//! position and what keeps budget statements independent of execution
//! order.
//!
//! ## Crash safety and fault discipline
//!
//! Spent ε must survive the process: with a WAL attached
//! ([`Server::attach_wal`]), every admission is durably appended — CRC-
//! checksummed, fsynced — *before* its charge lands in memory, and
//! [`Server::recover`] rebuilds a crashed server by folding the log's
//! clean prefix back through the replay machinery (torn tails truncate
//! into a structured [`WalCorrupt`] report, never a panic). Requests carry
//! deterministic work-tick deadlines ([`GenerateRequest::deadline_ticks`],
//! cooperative cancellation via `pgb_par::cancel`), so a
//! [`ServeError::DeadlineExceeded`] rejection is part of the byte-stable
//! transcript at any thread count; the charge stands, and the cache
//! flight is released. The seeded fault-injection layer
//! (`pgb_core::fault`) drives chaos tests over all of it.

mod accountant;
mod cache;
mod error;
mod script;
mod server;
mod wal;

pub use accountant::{BudgetStatement, TenantAccountant, TenantStatement};
pub use cache::{CacheKey, CacheStats, MeasureCache};
pub use error::ServeError;
pub use script::{parse_script, render_script, Script, SMOKE_SCRIPT};
pub use server::{
    csr_bytes, fnv1a, GenerateRequest, LogEntry, Recovery, RequestLog, Response, ResponseRecord,
    Server, ServerConfig, Transcript,
};
pub use wal::{
    crc32, read_contents, Wal, WalCheckpoint, WalContents, WalCorrupt, MAX_RECORD_BYTES, WAL_MAGIC,
};
