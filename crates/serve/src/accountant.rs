//! The concurrent per-tenant budget accountant.
//!
//! [`pgb_dp::BudgetAccountant`] enforces sequential composition for one
//! principal on one thread; a service has many tenants and many threads.
//! [`TenantAccountant`] lifts one accountant per tenant behind a single
//! lock: every spend, split, and statement is atomic with respect to every
//! other, so the underlying [`pgb_dp::Budget`] arithmetic — which already
//! guarantees a failed spend mutates nothing — extends to arbitrary
//! concurrent interleavings. The invariants the proptests in
//! `tests/accountant.rs` pin down:
//!
//! * **No overdraw, ever**: `consumed ≤ grant + ε_slack` regardless of how
//!   spends, splits, and rejections interleave across threads.
//! * **Conservation**: `consumed + remaining ≡ grant` (exactly, by
//!   [`pgb_dp::Budget`]'s `remaining = max(total − spent, 0)` arithmetic,
//!   up to the same `1e-9` slack the spend check allows).
//! * **Absorption**: a drained tenant stays drained — every later spend is
//!   rejected with a structured [`ServeError::BudgetExhausted`].
//! * **Audit completeness**: the labelled entries sum to exactly
//!   `consumed` (bit-for-bit — entries are appended under the same lock,
//!   in the same order, as the spends they record).

use crate::error::ServeError;
use pgb_dp::budget::BudgetAccountant;
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Mutex;

/// The outcome of one admission charge: what was drawn and where the
/// tenant's budget stood immediately after, read atomically with the
/// spend. This is the "budget statement" half of a replay transcript.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetStatement {
    /// The charged tenant.
    pub tenant: String,
    /// ε drawn by this charge.
    pub charged: f64,
    /// Total ε the tenant has consumed, this charge included.
    pub spent: f64,
    /// ε the tenant still holds.
    pub remaining: f64,
}

/// A point-in-time audit view of one tenant's budget.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantStatement {
    /// The tenant.
    pub tenant: String,
    /// Total ε granted at registration.
    pub grant: f64,
    /// ε consumed so far.
    pub consumed: f64,
    /// ε still available.
    pub remaining: f64,
    /// The labelled spends, in charge order.
    pub entries: Vec<(String, f64)>,
}

/// The concurrent, labelled, per-tenant ε ledger.
///
/// All methods take `&self` and serialize on one internal lock; the lock
/// is never held across user code (labels are built before locking,
/// statements are cloned out), so it cannot be poisoned by a panicking
/// mechanism and cannot deadlock against the cache or the worker pool.
#[derive(Debug, Default)]
pub struct TenantAccountant {
    tenants: Mutex<HashMap<String, BudgetAccountant>>,
}

impl TenantAccountant {
    /// An accountant with no tenants registered.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, BudgetAccountant>> {
        self.tenants.lock().expect("tenant accountant lock poisoned")
    }

    /// Registers `tenant` with a total grant of `epsilon`. Errors if the
    /// tenant already exists (a grant is immutable once issued) or the
    /// grant is non-positive/non-finite.
    pub fn register(&self, tenant: &str, epsilon: f64) -> Result<(), ServeError> {
        let acc = BudgetAccountant::new(epsilon).map_err(|_| ServeError::InvalidGrant(epsilon))?;
        let mut tenants = self.lock();
        if tenants.contains_key(tenant) {
            return Err(ServeError::TenantExists(tenant.to_string()));
        }
        tenants.insert(tenant.to_string(), acc);
        Ok(())
    }

    /// Charges `epsilon` to `tenant` under `label`, atomically, and returns
    /// the post-charge [`BudgetStatement`]. A rejected charge mutates
    /// nothing: the tenant's budget and entry list are exactly as before,
    /// and the error carries the live remainder.
    pub fn spend(
        &self,
        tenant: &str,
        label: impl Into<Cow<'static, str>>,
        epsilon: f64,
    ) -> Result<BudgetStatement, ServeError> {
        let label = label.into();
        let mut tenants = self.lock();
        let acc =
            tenants.get_mut(tenant).ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))?;
        match acc.spend(label, epsilon) {
            Ok(charged) => Ok(BudgetStatement {
                tenant: tenant.to_string(),
                charged,
                spent: acc.spent(),
                remaining: acc.remaining(),
            }),
            Err(pgb_dp::BudgetError::Exhausted { requested, remaining }) => {
                Err(ServeError::BudgetExhausted {
                    tenant: tenant.to_string(),
                    requested,
                    remaining,
                })
            }
            Err(_) => Err(ServeError::InvalidEpsilon(epsilon)),
        }
    }

    /// Drains everything `tenant` still holds under `label` and returns
    /// the statement (`charged` is what was left, possibly `0.0` — a
    /// drained tenant records no entry, exactly like
    /// [`BudgetAccountant::spend_remaining`]).
    pub fn spend_remaining(
        &self,
        tenant: &str,
        label: impl Into<Cow<'static, str>>,
    ) -> Result<BudgetStatement, ServeError> {
        let label = label.into();
        let mut tenants = self.lock();
        let acc =
            tenants.get_mut(tenant).ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))?;
        let charged = acc.spend_remaining(label);
        Ok(BudgetStatement {
            tenant: tenant.to_string(),
            charged,
            spent: acc.spent(),
            remaining: acc.remaining(),
        })
    }

    /// Splits everything `tenant` still holds proportionally over the
    /// labelled weights (one atomic multi-phase draw — sequential
    /// composition over the shares by construction). Errors if the tenant
    /// is already drained or a weight is invalid, mutating nothing.
    pub fn split(
        &self,
        tenant: &str,
        shares: &[(&'static str, f64)],
    ) -> Result<Vec<f64>, ServeError> {
        let mut tenants = self.lock();
        let acc =
            tenants.get_mut(tenant).ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))?;
        match acc.split(shares) {
            Ok(eps) => Ok(eps),
            Err(pgb_dp::BudgetError::Exhausted { requested, remaining }) => {
                Err(ServeError::BudgetExhausted {
                    tenant: tenant.to_string(),
                    requested,
                    remaining,
                })
            }
            Err(_) => Err(ServeError::InvalidGrant(f64::NAN)),
        }
    }

    /// The tenant's full audit statement (grant, consumption, labelled
    /// entries), read atomically.
    pub fn statement(&self, tenant: &str) -> Result<TenantStatement, ServeError> {
        let tenants = self.lock();
        let acc =
            tenants.get(tenant).ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))?;
        Ok(TenantStatement {
            tenant: tenant.to_string(),
            grant: acc.total(),
            consumed: acc.spent(),
            remaining: acc.remaining(),
            entries: acc.entries().iter().map(|(l, e)| (l.to_string(), *e)).collect(),
        })
    }

    /// The registered tenant names, sorted (the map's internal order is
    /// not deterministic; the sort makes audits and transcripts stable).
    pub fn tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// A bit-exact byte snapshot of every tenant's accounting state,
    /// sorted by tenant name, read atomically. WAL checkpoints embed this
    /// so recovery can verify that folding the admission log reproduces
    /// the recorded state byte-for-byte (see `pgb_serve::wal`).
    pub fn encode_snapshot(&self) -> Vec<(String, Vec<u8>)> {
        let tenants = self.lock();
        let mut out: Vec<(String, Vec<u8>)> =
            tenants.iter().map(|(name, acc)| (name.clone(), acc.encode_bytes())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_spend_and_statement_round_trip() {
        let acc = TenantAccountant::new();
        acc.register("alice", 2.0).unwrap();
        let st = acc.spend("alice", "req0 er/TmF", 0.5).unwrap();
        assert_eq!(st.charged, 0.5);
        assert!((st.remaining - 1.5).abs() < 1e-12);
        let full = acc.statement("alice").unwrap();
        assert_eq!(full.grant, 2.0);
        assert_eq!(full.entries, vec![("req0 er/TmF".to_string(), 0.5)]);
        assert!((full.consumed + full.remaining - full.grant).abs() < 1e-12);
    }

    #[test]
    fn rejection_is_structured_and_mutates_nothing() {
        let acc = TenantAccountant::new();
        acc.register("bob", 1.0).unwrap();
        acc.spend("bob", "warmup", 0.75).unwrap();
        let err = acc.spend("bob", "too much", 0.5).unwrap_err();
        match err {
            ServeError::BudgetExhausted { tenant, requested, remaining } => {
                assert_eq!(tenant, "bob");
                assert_eq!(requested, 0.5);
                assert!((remaining - 0.25).abs() < 1e-12);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        let st = acc.statement("bob").unwrap();
        assert_eq!(st.entries.len(), 1, "rejected spends record nothing");
        assert!((st.remaining - 0.25).abs() < 1e-12);
    }

    #[test]
    fn duplicate_and_unknown_tenants() {
        let acc = TenantAccountant::new();
        acc.register("t", 1.0).unwrap();
        assert_eq!(acc.register("t", 2.0), Err(ServeError::TenantExists("t".into())));
        assert_eq!(
            acc.spend("ghost", "x", 0.1).unwrap_err(),
            ServeError::UnknownTenant("ghost".into())
        );
        assert!(matches!(acc.register("neg", -1.0), Err(ServeError::InvalidGrant(_))));
        assert_eq!(acc.tenants(), vec!["t".to_string()]);
    }

    #[test]
    fn split_draws_everything_atomically() {
        let acc = TenantAccountant::new();
        acc.register("t", 2.0).unwrap();
        let shares = acc.split("t", &[("phase a", 1.0), ("phase b", 3.0)]).unwrap();
        assert!((shares[0] - 0.5).abs() < 1e-12);
        assert!((shares[1] - 1.5).abs() < 1e-12);
        let st = acc.statement("t").unwrap();
        assert_eq!(st.remaining, 0.0);
        assert_eq!(st.entries.len(), 2);
        // Drained: a further split is rejected.
        assert!(matches!(
            acc.split("t", &[("again", 1.0)]),
            Err(ServeError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn spend_remaining_drains() {
        let acc = TenantAccountant::new();
        acc.register("t", 1.0).unwrap();
        acc.spend("t", "a", 0.25).unwrap();
        let st = acc.spend_remaining("t", "the rest").unwrap();
        assert!((st.charged - 0.75).abs() < 1e-12);
        assert_eq!(st.remaining, 0.0);
        // Already drained: records nothing, charges nothing.
        let st = acc.spend_remaining("t", "again").unwrap();
        assert_eq!(st.charged, 0.0);
        assert_eq!(acc.statement("t").unwrap().entries.len(), 2);
    }
}
