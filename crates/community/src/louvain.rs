//! The Louvain method (Blondel et al., 2008): greedy modularity
//! optimisation with local moving and graph aggregation.
//!
//! PGB uses Louvain twice: as the benchmark's community-detection query
//! (Q12, on unweighted graphs) and inside PrivGraph's phase 1, which runs
//! it on a *noisy weighted super-graph* — hence the weighted entry point.
//!
//! ## What is parallel, what is not
//!
//! The init and aggregation scans run on the ambient
//! [`pgb_par::current_parallelism`] budget: lifting the input graph
//! ([`WeightedGraph::from_graph`]), the per-level weighted-degree vector
//! (a per-node map, below), and the community coarsening
//! ([`WeightedGraph::aggregate`]) — all bit-identical at any thread
//! count. The **local-moving sweep itself stays sequential by design**:
//! each move reads the community totals left by every previous move, so a
//! deterministic parallel variant would need a fundamentally different
//! algorithm (graph colouring or delta-screening with a fixed merge
//! order), not a chunked port — recorded as a ROADMAP follow-up.

use crate::{Partition, WeightedGraph};
use pgb_graph::Graph;
use rand::Rng;

/// Louvain tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct LouvainParams {
    /// Minimum modularity gain per full sweep to keep iterating a level.
    pub min_gain: f64,
    /// Maximum local-moving sweeps per level.
    pub max_sweeps: usize,
    /// Maximum aggregation levels.
    pub max_levels: usize,
}

impl Default for LouvainParams {
    fn default() -> Self {
        LouvainParams { min_gain: 1e-7, max_sweeps: 32, max_levels: 32 }
    }
}

/// Runs Louvain on an unweighted graph; returns the partition of the
/// original nodes.
pub fn louvain<R: Rng + ?Sized>(g: &Graph, params: &LouvainParams, rng: &mut R) -> Partition {
    louvain_weighted(&WeightedGraph::from_graph(g), params, rng)
}

/// Runs Louvain on a weighted graph; returns the partition of the original
/// nodes.
pub fn louvain_weighted<R: Rng + ?Sized>(
    g: &WeightedGraph,
    params: &LouvainParams,
    rng: &mut R,
) -> Partition {
    let n = g.node_count();
    if n == 0 {
        return Partition::from_labels(Vec::new());
    }
    // node → community at the *current* level, starting as identity; the
    // mapping chain is composed across levels.
    let mut mapping: Vec<u32> = (0..n as u32).collect();
    let mut current = g.clone();
    for _level in 0..params.max_levels {
        let (labels, improved) = local_moving(&current, params, rng);
        if !improved {
            break;
        }
        // Compact labels and compose with the running mapping.
        let mut compact = Partition::from_labels(labels);
        let k = compact.normalize();
        for m in &mut mapping {
            *m = compact.label(*m);
        }
        if k == current.node_count() {
            break; // no aggregation happened
        }
        current = current.aggregate(compact.labels(), k);
    }
    let mut p = Partition::from_labels(mapping);
    p.normalize();
    p
}

/// One level of local moving. Returns the level's labels and whether any
/// node changed community.
fn local_moving<R: Rng + ?Sized>(
    g: &WeightedGraph,
    params: &LouvainParams,
    rng: &mut R,
) -> (Vec<u32>, bool) {
    let n = g.node_count();
    let two_m = g.total_weight();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    if two_m <= 0.0 {
        return (labels, false);
    }
    // Per-node map: each entry sums its own adjacency list, so the chunked
    // scan is bit-identical to the sequential one at any thread budget.
    let degree: Vec<f64> = pgb_par::par_map_chunks(n, 16_384, |range, out| {
        for u in range {
            out.push(g.weighted_degree(u as u32));
        }
    });
    // Σ of weighted degrees per community.
    let mut comm_total: Vec<f64> = degree.clone();
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut improved_any = false;
    // Scratch: weight from the moving node to each neighbouring community.
    let mut to_comm: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for _sweep in 0..params.max_sweeps {
        let mut gain_this_sweep = 0.0;
        for &u in &order {
            let cu = labels[u as usize];
            to_comm.clear();
            for &(v, w) in g.neighbors(u) {
                *to_comm.entry(labels[v as usize]).or_insert(0.0) += w;
            }
            let ku = degree[u as usize];
            comm_total[cu as usize] -= ku;
            let base =
                to_comm.get(&cu).copied().unwrap_or(0.0) - ku * comm_total[cu as usize] / two_m;
            let (mut best_comm, mut best_gain) = (cu, 0.0f64);
            for (&c, &w_uc) in &to_comm {
                if c == cu {
                    continue;
                }
                // ΔQ of moving u into c (constant factors dropped). Ties
                // break towards the smaller community id so the result is
                // independent of HashMap iteration order.
                let gain = w_uc - ku * comm_total[c as usize] / two_m - base;
                if gain > best_gain + 1e-12
                    || (gain > best_gain - 1e-12 && best_comm != cu && c < best_comm)
                {
                    best_gain = gain.max(best_gain);
                    best_comm = c;
                }
            }
            comm_total[best_comm as usize] += ku;
            if best_comm != cu {
                labels[u as usize] = best_comm;
                improved_any = true;
                gain_this_sweep += best_gain;
            }
        }
        if gain_this_sweep < params.min_gain * two_m {
            break;
        }
    }
    (labels, improved_any)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modularity::modularity;
    use pgb_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planted_two_communities(rng: &mut StdRng) -> Graph {
        // Two dense 20-node blobs with a couple of bridges.
        let mut edges = Vec::new();
        for base in [0u32, 20u32] {
            for i in 0..20 {
                for j in (i + 1)..20 {
                    if rng.gen_bool(0.4) {
                        edges.push((base + i, base + j));
                    }
                }
            }
        }
        edges.push((0, 20));
        edges.push((5, 25));
        Graph::from_edges(40, edges).unwrap()
    }

    #[test]
    fn recovers_planted_partition() {
        let mut rng = StdRng::seed_from_u64(200);
        let g = planted_two_communities(&mut rng);
        let p = louvain(&g, &LouvainParams::default(), &mut rng);
        // Strong planted structure: nodes 0..20 vs 20..40 should separate
        // (allowing Louvain to find either exactly 2 or a few communities
        // nested inside the two blobs).
        let q = modularity(&g, &p);
        assert!(q > 0.3, "modularity {q}");
        // Check the two blobs are not merged.
        let left = p.label(3);
        let right = p.label(23);
        assert_ne!(left, right);
    }

    #[test]
    fn two_triangles_exact() {
        let mut rng = StdRng::seed_from_u64(201);
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]).unwrap();
        let p = louvain(&g, &LouvainParams::default(), &mut rng);
        assert_eq!(p.community_count(), 2);
        assert_eq!(p.label(0), p.label(1));
        assert_eq!(p.label(0), p.label(2));
        assert_eq!(p.label(3), p.label(4));
        assert_ne!(p.label(0), p.label(3));
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let mut rng = StdRng::seed_from_u64(202);
        let p = louvain(&Graph::new(0), &LouvainParams::default(), &mut rng);
        assert!(p.is_empty());
        let p = louvain(&Graph::new(5), &LouvainParams::default(), &mut rng);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn weighted_louvain_respects_weights() {
        let mut rng = StdRng::seed_from_u64(203);
        // A 4-cycle where two opposite edges are heavy: the heavy pairs
        // should end up together.
        let mut w = WeightedGraph::new(4);
        w.add_edge(0, 1, 10.0);
        w.add_edge(2, 3, 10.0);
        w.add_edge(1, 2, 0.1);
        w.add_edge(3, 0, 0.1);
        let p = louvain_weighted(&w, &LouvainParams::default(), &mut rng);
        assert_eq!(p.label(0), p.label(1));
        assert_eq!(p.label(2), p.label(3));
        assert_ne!(p.label(0), p.label(2));
    }

    #[test]
    fn louvain_nondegenerate_on_er() {
        let mut rng = StdRng::seed_from_u64(204);
        let g = pgb_models::erdos_renyi_gnp(300, 0.05, &mut rng);
        let p = louvain(&g, &LouvainParams::default(), &mut rng);
        let k = p.community_count();
        assert!(k > 1 && k < 300, "communities {k}");
        // Louvain should beat the trivial partitions on any graph.
        let q = modularity(&g, &p);
        assert!(q > 0.0, "modularity {q}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]).unwrap();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            louvain(&g, &LouvainParams::default(), &mut rng)
        };
        assert_eq!(run(7).labels(), run(7).labels());
    }
}
