//! # pgb-community
//!
//! Community detection for the PGB benchmark:
//!
//! * [`partition`] — the [`Partition`] type (node → community labels).
//! * [`modularity`](mod@modularity) — Newman modularity for unweighted and weighted graphs.
//! * [`louvain`](mod@louvain) — the Louvain method over weighted graphs. PrivGraph runs
//!   it on a noisy super-graph (phase 1), and the benchmark's
//!   community-detection query (Q12) runs it on both the true and the
//!   synthetic graph.
//! * [`label_prop`] — label propagation, a cheap baseline detector.
//! * [`weighted`] — the small weighted-graph structure Louvain aggregates
//!   into.

pub mod label_prop;
pub mod louvain;
pub mod modularity;
pub mod partition;
pub mod weighted;

pub use label_prop::label_propagation;
pub use louvain::{louvain, louvain_weighted, LouvainParams};
pub use modularity::{modularity, modularity_weighted};
pub use partition::Partition;
pub use weighted::WeightedGraph;
