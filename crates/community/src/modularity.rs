//! Newman modularity (query Q13 of the benchmark).

use crate::{Partition, WeightedGraph};
use pgb_graph::Graph;

/// Modularity of `partition` on the unweighted graph `g`:
/// `Q = Σ_c (e_c / m − (d_c / 2m)²)`, where `e_c` is the number of
/// intra-community edges and `d_c` the total degree of community `c`.
/// Returns 0.0 for edgeless graphs (the convention used by the reference
/// evaluation code).
pub fn modularity(g: &Graph, partition: &Partition) -> f64 {
    assert_eq!(g.node_count(), partition.len(), "partition/graph size mismatch");
    let m = g.edge_count() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let mut intra: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    let mut degree: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for (u, v) in g.edges() {
        let (cu, cv) = (partition.label(u), partition.label(v));
        if cu == cv {
            *intra.entry(cu).or_insert(0.0) += 1.0;
        }
    }
    for u in g.nodes() {
        *degree.entry(partition.label(u)).or_insert(0.0) += g.degree(u) as f64;
    }
    // Sum community terms in label order: float addition is not
    // associative, so reducing in HashMap iteration order would make the
    // last bits of Q vary between otherwise identical runs.
    let mut communities: Vec<(u32, f64)> = degree.into_iter().collect();
    communities.sort_unstable_by_key(|&(c, _)| c);
    communities
        .into_iter()
        .map(|(c, d)| {
            let e = intra.get(&c).copied().unwrap_or(0.0);
            e / m - (d / (2.0 * m)).powi(2)
        })
        .sum()
}

/// Weighted modularity over a [`WeightedGraph`] (used by Louvain's
/// aggregated levels): same formula with weights in place of counts.
pub fn modularity_weighted(g: &WeightedGraph, labels: &[u32]) -> f64 {
    assert_eq!(g.node_count(), labels.len(), "label/graph size mismatch");
    let two_m = g.total_weight();
    if two_m <= 0.0 {
        return 0.0;
    }
    let mut intra: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    let mut degree: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for u in 0..g.node_count() as u32 {
        let cu = labels[u as usize];
        *degree.entry(cu).or_insert(0.0) += g.weighted_degree(u);
        *intra.entry(cu).or_insert(0.0) += g.self_loop(u); // w counted once per loop
        for &(v, w) in g.neighbors(u) {
            if v > u && labels[v as usize] == cu {
                *intra.entry(cu).or_insert(0.0) += w;
            }
        }
    }
    // Label-ordered reduction for run-to-run determinism (see
    // `modularity`).
    let mut communities: Vec<(u32, f64)> = degree.into_iter().collect();
    communities.sort_unstable_by_key(|&(c, _)| c);
    communities
        .into_iter()
        .map(|(c, d)| {
            let e = intra.get(&c).copied().unwrap_or(0.0);
            e / (two_m / 2.0) - (d / two_m).powi(2)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::Graph;

    /// Two triangles joined by a single bridge edge.
    fn two_triangles() -> Graph {
        Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn perfect_split_scores_high() {
        let g = two_triangles();
        let p = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let q = modularity(&g, &p);
        // Hand computation: m = 7, each community has 3 intra edges and
        // total degree 7 ⇒ Q = 2·(3/7 − (7/14)²) = 6/7 − 1/2 = 5/14.
        assert!((q - 5.0 / 14.0).abs() < 1e-12, "Q = {q}");
    }

    #[test]
    fn whole_partition_scores_zero() {
        let g = two_triangles();
        let q = modularity(&g, &Partition::whole(6));
        assert!(q.abs() < 1e-12);
    }

    #[test]
    fn singletons_score_negative() {
        let g = two_triangles();
        let q = modularity(&g, &Partition::singletons(6));
        assert!(q < 0.0);
    }

    #[test]
    fn good_split_beats_bad_split() {
        let g = two_triangles();
        let good = modularity(&g, &Partition::from_labels(vec![0, 0, 0, 1, 1, 1]));
        let bad = modularity(&g, &Partition::from_labels(vec![0, 1, 0, 1, 0, 1]));
        assert!(good > bad + 0.3);
    }

    #[test]
    fn empty_graph_zero() {
        let g = Graph::new(4);
        assert_eq!(modularity(&g, &Partition::whole(4)), 0.0);
    }

    #[test]
    fn weighted_matches_unweighted_for_unit_weights() {
        let g = two_triangles();
        let w = WeightedGraph::from_graph(&g);
        let labels = vec![0, 0, 0, 1, 1, 1];
        let qw = modularity_weighted(&w, &labels);
        let q = modularity(&g, &Partition::from_labels(labels));
        assert!((qw - q).abs() < 1e-12, "{qw} vs {q}");
    }

    #[test]
    fn weighted_aggregation_invariant() {
        // Modularity of a partition equals the modularity of the same
        // partition on the aggregated graph with singleton labels.
        let g = two_triangles();
        let w = WeightedGraph::from_graph(&g);
        let labels = vec![0u32, 0, 0, 1, 1, 1];
        let agg = w.aggregate(&labels, 2);
        let q1 = modularity_weighted(&w, &labels);
        let q2 = modularity_weighted(&agg, &[0, 1]);
        assert!((q1 - q2).abs() < 1e-12, "{q1} vs {q2}");
    }
}
