//! Label propagation (Raghavan et al., 2007): a near-linear-time baseline
//! community detector, used in ablations against Louvain.

use crate::Partition;
use pgb_graph::Graph;
use rand::Rng;

/// Runs synchronous-order label propagation: every node repeatedly adopts
/// the most frequent label among its neighbours (ties broken uniformly at
/// random) until a sweep changes nothing or `max_sweeps` is hit.
pub fn label_propagation<R: Rng + ?Sized>(g: &Graph, max_sweeps: usize, rng: &mut R) -> Partition {
    let n = g.node_count();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for _ in 0..max_sweeps {
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut changed = false;
        for &u in &order {
            if g.degree(u) == 0 {
                continue;
            }
            counts.clear();
            for &v in g.neighbors(u) {
                *counts.entry(labels[v as usize]).or_insert(0) += 1;
            }
            let best = counts.values().copied().max().unwrap_or(0);
            let mut candidates: Vec<u32> =
                counts.iter().filter(|(_, &c)| c == best).map(|(&l, _)| l).collect();
            // Sorted so the RNG draw is reproducible regardless of
            // HashMap iteration order.
            candidates.sort_unstable();
            let new = candidates[rng.gen_range(0..candidates.len())];
            if new != labels[u as usize] {
                labels[u as usize] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut p = Partition::from_labels(labels);
    p.normalize();
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn separates_disconnected_cliques() {
        let mut rng = StdRng::seed_from_u64(210);
        let mut edges = Vec::new();
        for base in [0u32, 5u32] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((base + i, base + j));
                }
            }
        }
        let g = Graph::from_edges(10, edges).unwrap();
        let p = label_propagation(&g, 20, &mut rng);
        assert_eq!(p.community_count(), 2);
        assert_ne!(p.label(0), p.label(5));
    }

    #[test]
    fn clique_collapses_to_one_label() {
        let mut rng = StdRng::seed_from_u64(211);
        let mut edges = Vec::new();
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(8, edges).unwrap();
        let p = label_propagation(&g, 30, &mut rng);
        assert_eq!(p.community_count(), 1);
    }

    #[test]
    fn isolated_nodes_keep_own_labels() {
        let mut rng = StdRng::seed_from_u64(212);
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let p = label_propagation(&g, 10, &mut rng);
        // Nodes 2 and 3 are isolated: they stay as singleton communities.
        assert_ne!(p.label(2), p.label(3));
        assert_ne!(p.label(2), p.label(0));
    }

    #[test]
    fn empty_graph() {
        let mut rng = StdRng::seed_from_u64(213);
        let p = label_propagation(&Graph::new(0), 5, &mut rng);
        assert!(p.is_empty());
    }
}
