//! Node partitions (community assignments).

use pgb_graph::NodeId;
use std::collections::HashMap;

/// A partition of the node set `0..len` into communities, stored as a
/// label per node. Labels are arbitrary `u32`s; [`Partition::normalize`]
/// compacts them to `0..community_count`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    labels: Vec<u32>,
}

impl Partition {
    /// Wraps a label vector.
    pub fn from_labels(labels: Vec<u32>) -> Self {
        Partition { labels }
    }

    /// The all-singletons partition over `n` nodes.
    pub fn singletons(n: usize) -> Self {
        Partition { labels: (0..n as u32).collect() }
    }

    /// The single-community partition over `n` nodes.
    pub fn whole(n: usize) -> Self {
        Partition { labels: vec![0; n] }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the partition covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label of node `u`.
    pub fn label(&self, u: NodeId) -> u32 {
        self.labels[u as usize]
    }

    /// The raw label slice.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Re-assigns node `u` to community `c`.
    pub fn assign(&mut self, u: NodeId, c: u32) {
        self.labels[u as usize] = c;
    }

    /// Number of distinct communities.
    pub fn community_count(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.labels.iter().for_each(|&l| {
            seen.insert(l);
        });
        seen.len()
    }

    /// Compacts labels to `0..community_count` in first-appearance order;
    /// returns the number of communities.
    pub fn normalize(&mut self) -> usize {
        let mut map: HashMap<u32, u32> = HashMap::new();
        for l in &mut self.labels {
            let next = map.len() as u32;
            *l = *map.entry(*l).or_insert(next);
        }
        map.len()
    }

    /// Community membership lists, indexed by normalized label order.
    pub fn communities(&self) -> Vec<Vec<NodeId>> {
        let mut map: HashMap<u32, u32> = HashMap::new();
        let mut out: Vec<Vec<NodeId>> = Vec::new();
        for (u, &l) in self.labels.iter().enumerate() {
            let idx = *map.entry(l).or_insert_with(|| {
                out.push(Vec::new());
                (out.len() - 1) as u32
            });
            out[idx as usize].push(u as NodeId);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Partition::singletons(3).community_count(), 3);
        assert_eq!(Partition::whole(3).community_count(), 1);
        assert_eq!(Partition::whole(0).len(), 0);
        assert!(Partition::from_labels(vec![]).is_empty());
    }

    #[test]
    fn normalize_compacts() {
        let mut p = Partition::from_labels(vec![9, 9, 4, 9, 4, 7]);
        let k = p.normalize();
        assert_eq!(k, 3);
        assert_eq!(p.labels(), &[0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn communities_partition_nodes() {
        let p = Partition::from_labels(vec![5, 2, 5, 2, 2]);
        let comms = p.communities();
        assert_eq!(comms.len(), 2);
        assert_eq!(comms[0], vec![0, 2]);
        assert_eq!(comms[1], vec![1, 3, 4]);
        let total: usize = comms.iter().map(Vec::len).sum();
        assert_eq!(total, p.len());
    }

    #[test]
    fn assign_changes_label() {
        let mut p = Partition::whole(4);
        p.assign(2, 7);
        assert_eq!(p.label(2), 7);
        assert_eq!(p.community_count(), 2);
    }
}
