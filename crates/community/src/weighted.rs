//! A compact weighted undirected graph used by Louvain's aggregation
//! phase and by PrivGraph's noisy super-graph.
//!
//! The two full-graph scans — lifting an unweighted [`Graph`]
//! ([`WeightedGraph::from_graph`]) and community coarsening
//! ([`WeightedGraph::aggregate`]) — are chunked over nodes and run on the
//! ambient [`pgb_par::current_parallelism`] budget. Both keep float
//! *arithmetic* out of the chunk merge (merges only append contribution
//! lists in node order); every weight sum happens afterwards in a fixed
//! order, so the resulting graph is bit-identical at any thread count.

use pgb_graph::{Graph, NodeId};

/// Nodes per chunk for the parallel scans.
const NODE_CHUNK: usize = 16_384;

/// An undirected graph with `f64` edge weights and per-node self-loop
//  weights (self-loops arise from community aggregation).
#[derive(Clone, Debug)]
pub struct WeightedGraph {
    adj: Vec<Vec<(NodeId, f64)>>,
    self_loops: Vec<f64>,
    /// Total weight `2m`: twice the sum of edge weights plus twice the
    /// self-loop weights (a self-loop contributes its weight to both
    /// endpoints, i.e. 2w to the degree of its node — the Louvain
    /// convention).
    total: f64,
}

impl WeightedGraph {
    /// An empty weighted graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        WeightedGraph { adj: vec![Vec::new(); n], self_loops: vec![0.0; n], total: 0.0 }
    }

    /// Lifts an unweighted [`Graph`] (every edge weight 1).
    ///
    /// Built directly from the CSR adjacency in parallel node chunks: each
    /// node's weighted list is its id-sorted neighbour segment at weight 1
    /// — exactly the list the incremental [`WeightedGraph::add_edge`] path
    /// produces, without the per-edge linear find.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let adj: Vec<Vec<(NodeId, f64)>> = pgb_par::par_map_chunks(n, NODE_CHUNK, |range, out| {
            for u in range {
                out.push(g.neighbors(u as NodeId).iter().map(|&v| (v, 1.0)).collect());
            }
        });
        // 2m exactly — the same value the add_edge path accumulates in
        // unit steps (integers are exact in f64).
        let total = 2.0 * g.edge_count() as f64;
        WeightedGraph { adj, self_loops: vec![0.0; n], total }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds weight `weight` to the edge `{u, v}` (accumulating if called
    /// twice); `u == v` accumulates a self-loop.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or `weight` is negative/NaN.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) {
        assert!(weight >= 0.0 && weight.is_finite(), "invalid weight {weight}");
        let n = self.node_count();
        assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of range {n}");
        if weight == 0.0 {
            return;
        }
        if u == v {
            self.self_loops[u as usize] += weight;
            self.total += 2.0 * weight;
            return;
        }
        for (a, b) in [(u, v), (v, u)] {
            let list = &mut self.adj[a as usize];
            match list.iter_mut().find(|(x, _)| *x == b) {
                Some((_, w)) => *w += weight,
                None => list.push((b, weight)),
            }
        }
        self.total += 2.0 * weight;
    }

    /// Weighted neighbours of `u` (self-loops excluded).
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, f64)] {
        &self.adj[u as usize]
    }

    /// Self-loop weight at `u`.
    pub fn self_loop(&self, u: NodeId) -> f64 {
        self.self_loops[u as usize]
    }

    /// Weighted degree of `u`: incident edge weights plus twice the
    /// self-loop weight.
    pub fn weighted_degree(&self, u: NodeId) -> f64 {
        let nbr: f64 = self.adj[u as usize].iter().map(|&(_, w)| w).sum();
        nbr + 2.0 * self.self_loops[u as usize]
    }

    /// Total weight `2m`.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Aggregates nodes by `labels` (values must be `0..k`): returns the
    /// `k`-node graph whose edge weights sum the inter-community weights
    /// and whose self-loops sum the intra-community weights.
    ///
    /// Two chunked parallel phases, both thread-count-invariant:
    ///
    /// 1. **Bucketing** — node chunks append each contribution `(c₂, w)`
    ///    (or `(c, w)` for intra-community / self-loop weight) to the
    ///    affected communities' buckets; chunk buckets append-merge in
    ///    chunk order, so every community sees its contributions in
    ///    ascending-node order — the order the old sequential `add_edge`
    ///    loop produced.
    /// 2. **Row folding** — community chunks fold their buckets into the
    ///    weighted rows: neighbour entries keep first-occurrence order
    ///    and accumulate in contribution order, exactly like repeated
    ///    `add_edge` calls.
    ///
    /// The total weight is re-accumulated by one sequential pass over the
    /// input in ascending-node order — the *chronological* order the old
    /// per-edge `add_edge` loop used — so even with non-integer weights
    /// (PrivGraph's noisy super-graphs) every output field is bit-identical
    /// to the pre-parallel implementation, at any thread count.
    pub fn aggregate(&self, labels: &[u32], k: usize) -> WeightedGraph {
        assert_eq!(labels.len(), self.node_count(), "label vector length mismatch");
        let buckets: Vec<Vec<(u32, f64)>> = pgb_par::par_fold_chunks(
            self.node_count(),
            NODE_CHUNK,
            || vec![Vec::new(); k],
            |buckets: &mut Vec<Vec<(u32, f64)>>, range| {
                for u in range {
                    let cu = labels[u];
                    if self.self_loops[u] > 0.0 {
                        buckets[cu as usize].push((cu, self.self_loops[u]));
                    }
                    for &(v, w) in &self.adj[u] {
                        if v as usize > u {
                            let cv = labels[v as usize];
                            if cu == cv {
                                buckets[cu as usize].push((cu, w));
                            } else {
                                buckets[cu as usize].push((cv, w));
                                buckets[cv as usize].push((cu, w));
                            }
                        }
                    }
                }
            },
            |buckets, other| {
                for (b, mut o) in buckets.iter_mut().zip(other) {
                    b.append(&mut o);
                }
            },
        );
        let rows: Vec<(Vec<(NodeId, f64)>, f64)> =
            pgb_par::par_map_chunks(k, NODE_CHUNK, |range, out| {
                for c in range {
                    let c = c as u32;
                    let mut list: Vec<(NodeId, f64)> = Vec::new();
                    let mut self_w = 0.0f64;
                    for &(c2, w) in &buckets[c as usize] {
                        if c2 == c {
                            self_w += w;
                        } else if let Some(entry) = list.iter_mut().find(|(x, _)| *x == c2) {
                            entry.1 += w;
                        } else {
                            list.push((c2, w));
                        }
                    }
                    out.push((list, self_w));
                }
            });
        let mut adj = Vec::with_capacity(k);
        let mut self_loops = Vec::with_capacity(k);
        for (list, s) in rows {
            adj.push(list);
            self_loops.push(s);
        }
        // `total` in chronological (ascending-node) contribution order:
        // exactly the `total += 2.0 * w` sequence the old sequential
        // `add_edge` loop performed, so float weights reproduce the
        // pre-parallel bits — and the order is fixed, so neither chunking
        // nor threads can move it.
        let mut total = 0.0;
        for u in 0..self.node_count() {
            if self.self_loops[u] > 0.0 {
                total += 2.0 * self.self_loops[u];
            }
            for &(v, w) in &self.adj[u] {
                if v as usize > u {
                    total += 2.0 * w;
                }
            }
        }
        WeightedGraph { adj, self_loops, total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::Graph;

    #[test]
    fn from_graph_weights() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let w = WeightedGraph::from_graph(&g);
        assert_eq!(w.total_weight(), 4.0);
        assert_eq!(w.weighted_degree(1), 2.0);
        assert_eq!(w.weighted_degree(0), 1.0);
    }

    #[test]
    fn add_edge_accumulates() {
        let mut w = WeightedGraph::new(2);
        w.add_edge(0, 1, 1.5);
        w.add_edge(1, 0, 0.5);
        assert_eq!(w.neighbors(0), &[(1, 2.0)]);
        assert_eq!(w.total_weight(), 4.0);
    }

    #[test]
    fn self_loops_count_double() {
        let mut w = WeightedGraph::new(1);
        w.add_edge(0, 0, 3.0);
        assert_eq!(w.self_loop(0), 3.0);
        assert_eq!(w.weighted_degree(0), 6.0);
        assert_eq!(w.total_weight(), 6.0);
    }

    #[test]
    fn zero_weight_ignored() {
        let mut w = WeightedGraph::new(2);
        w.add_edge(0, 1, 0.0);
        assert!(w.neighbors(0).is_empty());
        assert_eq!(w.total_weight(), 0.0);
    }

    #[test]
    fn aggregate_preserves_total_weight() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let w = WeightedGraph::from_graph(&g);
        let agg = w.aggregate(&[0, 0, 1, 1], 2);
        assert_eq!(agg.node_count(), 2);
        // Intra: {0,1} and {2,3} → self-loops of weight 1 each.
        assert_eq!(agg.self_loop(0), 1.0);
        assert_eq!(agg.self_loop(1), 1.0);
        // Inter: {1,2} and {3,0} → edge weight 2.
        assert_eq!(agg.neighbors(0), &[(1, 2.0)]);
        assert_eq!(agg.total_weight(), w.total_weight());
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn negative_weight_panics() {
        WeightedGraph::new(2).add_edge(0, 1, -1.0);
    }

    #[test]
    fn scans_bit_identical_at_any_thread_budget() {
        // Non-integer weights on purpose: the bucket/append discipline must
        // keep f64 accumulation in a fixed order regardless of threads.
        let mut w = WeightedGraph::new(40);
        for u in 0..40u32 {
            for v in (u + 1)..40 {
                if (u * 31 + v * 17) % 5 == 0 {
                    w.add_edge(u, v, 0.1 + (u as f64 + 0.3) / (v as f64 + 1.7));
                }
            }
        }
        w.add_edge(3, 3, 0.25);
        let labels: Vec<u32> = (0..40u32).map(|u| u % 7).collect();
        let run = |threads: usize| pgb_par::with_parallelism(threads, || w.aggregate(&labels, 7));
        let reference = run(1);
        for threads in [2, 3, 8, 0] {
            let agg = run(threads);
            assert_eq!(agg.total_weight().to_bits(), reference.total_weight().to_bits());
            for c in 0..7u32 {
                assert_eq!(agg.neighbors(c), reference.neighbors(c), "community {c}");
                assert_eq!(agg.self_loop(c).to_bits(), reference.self_loop(c).to_bits());
            }
        }
    }

    #[test]
    fn aggregate_bit_matches_pre_parallel_reference() {
        // The old aggregate was a sequential add_edge loop in ascending-
        // node order; the bucketed parallel version must reproduce its
        // exact bits — including the f64 accumulation order — on
        // non-integer weights (PrivGraph's noisy super-graphs).
        let mut w = WeightedGraph::new(30);
        for u in 0..30u32 {
            for v in (u + 1)..30 {
                if (u * 13 + v * 7) % 4 == 0 {
                    w.add_edge(u, v, 0.05 + (v as f64 + 0.11) / (u as f64 + 2.9));
                }
            }
        }
        w.add_edge(5, 5, 1.0 / 3.0);
        let labels: Vec<u32> = (0..30u32).map(|u| (u * u) % 5).collect();
        let (k, agg) = (5, w.aggregate(&labels, 5));
        let mut reference = WeightedGraph::new(k);
        for u in 0..30u32 {
            let cu = labels[u as usize];
            if w.self_loop(u) > 0.0 {
                reference.add_edge(cu, cu, w.self_loop(u));
            }
            for &(v, weight) in w.neighbors(u) {
                if v > u {
                    let cv = labels[v as usize];
                    reference.add_edge(cu, if cu == cv { cu } else { cv }, weight);
                }
            }
        }
        assert_eq!(agg.total_weight().to_bits(), reference.total_weight().to_bits());
        for c in 0..k as u32 {
            assert_eq!(agg.neighbors(c), reference.neighbors(c), "community {c}");
            assert_eq!(agg.self_loop(c).to_bits(), reference.self_loop(c).to_bits());
        }
    }

    #[test]
    fn from_graph_matches_incremental_construction() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]).unwrap();
        let fast = WeightedGraph::from_graph(&g);
        let mut slow = WeightedGraph::new(6);
        for (u, v) in g.edges() {
            slow.add_edge(u, v, 1.0);
        }
        assert_eq!(fast.total_weight(), slow.total_weight());
        for u in 0..6u32 {
            assert_eq!(fast.neighbors(u), slow.neighbors(u), "node {u}");
        }
    }
}
