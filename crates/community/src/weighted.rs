//! A compact weighted undirected graph used by Louvain's aggregation
//! phase and by PrivGraph's noisy super-graph.

use pgb_graph::{Graph, NodeId};

/// An undirected graph with `f64` edge weights and per-node self-loop
//  weights (self-loops arise from community aggregation).
#[derive(Clone, Debug)]
pub struct WeightedGraph {
    adj: Vec<Vec<(NodeId, f64)>>,
    self_loops: Vec<f64>,
    /// Total weight `2m`: twice the sum of edge weights plus twice the
    /// self-loop weights (a self-loop contributes its weight to both
    /// endpoints, i.e. 2w to the degree of its node — the Louvain
    /// convention).
    total: f64,
}

impl WeightedGraph {
    /// An empty weighted graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        WeightedGraph { adj: vec![Vec::new(); n], self_loops: vec![0.0; n], total: 0.0 }
    }

    /// Lifts an unweighted [`Graph`] (every edge weight 1).
    pub fn from_graph(g: &Graph) -> Self {
        let mut w = WeightedGraph::new(g.node_count());
        for (u, v) in g.edges() {
            w.add_edge(u, v, 1.0);
        }
        w
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds weight `weight` to the edge `{u, v}` (accumulating if called
    /// twice); `u == v` accumulates a self-loop.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or `weight` is negative/NaN.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) {
        assert!(weight >= 0.0 && weight.is_finite(), "invalid weight {weight}");
        let n = self.node_count();
        assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of range {n}");
        if weight == 0.0 {
            return;
        }
        if u == v {
            self.self_loops[u as usize] += weight;
            self.total += 2.0 * weight;
            return;
        }
        for (a, b) in [(u, v), (v, u)] {
            let list = &mut self.adj[a as usize];
            match list.iter_mut().find(|(x, _)| *x == b) {
                Some((_, w)) => *w += weight,
                None => list.push((b, weight)),
            }
        }
        self.total += 2.0 * weight;
    }

    /// Weighted neighbours of `u` (self-loops excluded).
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, f64)] {
        &self.adj[u as usize]
    }

    /// Self-loop weight at `u`.
    pub fn self_loop(&self, u: NodeId) -> f64 {
        self.self_loops[u as usize]
    }

    /// Weighted degree of `u`: incident edge weights plus twice the
    /// self-loop weight.
    pub fn weighted_degree(&self, u: NodeId) -> f64 {
        let nbr: f64 = self.adj[u as usize].iter().map(|&(_, w)| w).sum();
        nbr + 2.0 * self.self_loops[u as usize]
    }

    /// Total weight `2m`.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Aggregates nodes by `labels` (values must be `0..k`): returns the
    /// `k`-node graph whose edge weights sum the inter-community weights
    /// and whose self-loops sum the intra-community weights.
    pub fn aggregate(&self, labels: &[u32], k: usize) -> WeightedGraph {
        assert_eq!(labels.len(), self.node_count(), "label vector length mismatch");
        let mut out = WeightedGraph::new(k);
        for u in 0..self.node_count() as u32 {
            let cu = labels[u as usize];
            if self.self_loops[u as usize] > 0.0 {
                out.add_edge(cu, cu, self.self_loops[u as usize]);
            }
            for &(v, w) in &self.adj[u as usize] {
                if v > u {
                    let cv = labels[v as usize];
                    if cu == cv {
                        out.add_edge(cu, cu, w);
                    } else {
                        out.add_edge(cu, cv, w);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::Graph;

    #[test]
    fn from_graph_weights() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let w = WeightedGraph::from_graph(&g);
        assert_eq!(w.total_weight(), 4.0);
        assert_eq!(w.weighted_degree(1), 2.0);
        assert_eq!(w.weighted_degree(0), 1.0);
    }

    #[test]
    fn add_edge_accumulates() {
        let mut w = WeightedGraph::new(2);
        w.add_edge(0, 1, 1.5);
        w.add_edge(1, 0, 0.5);
        assert_eq!(w.neighbors(0), &[(1, 2.0)]);
        assert_eq!(w.total_weight(), 4.0);
    }

    #[test]
    fn self_loops_count_double() {
        let mut w = WeightedGraph::new(1);
        w.add_edge(0, 0, 3.0);
        assert_eq!(w.self_loop(0), 3.0);
        assert_eq!(w.weighted_degree(0), 6.0);
        assert_eq!(w.total_weight(), 6.0);
    }

    #[test]
    fn zero_weight_ignored() {
        let mut w = WeightedGraph::new(2);
        w.add_edge(0, 1, 0.0);
        assert!(w.neighbors(0).is_empty());
        assert_eq!(w.total_weight(), 0.0);
    }

    #[test]
    fn aggregate_preserves_total_weight() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let w = WeightedGraph::from_graph(&g);
        let agg = w.aggregate(&[0, 0, 1, 1], 2);
        assert_eq!(agg.node_count(), 2);
        // Intra: {0,1} and {2,3} → self-loops of weight 1 each.
        assert_eq!(agg.self_loop(0), 1.0);
        assert_eq!(agg.self_loop(1), 1.0);
        // Inter: {1,2} and {3,0} → edge weight 2.
        assert_eq!(agg.neighbors(0), &[(1, 2.0)]);
        assert_eq!(agg.total_weight(), w.total_weight());
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn negative_weight_panics() {
        WeightedGraph::new(2).add_edge(0, 1, -1.0);
    }
}
