//! Cooperative cancellation with deterministic work ticks.
//!
//! A serving layer needs to bound runaway requests, but a wall-clock
//! timeout is scheduling-dependent: the same request would succeed on an
//! idle machine and fail on a loaded one, breaking the byte-identical
//! transcript contract. The deterministic alternative is to meter work in
//! **ticks** — one tick per chunk claim in the [`crate`] primitives (the
//! chunk decomposition is a pure function of `(len, chunk)`, never of the
//! thread count) — and cancel when a request's tick budget is exceeded.
//! Whether a run of `T` chunks against a remaining budget of `B` ticks is
//! cancelled depends only on `T > B`, so the *decision* is identical at
//! any worker count even though the *detection point* races.
//!
//! ## How cancellation propagates
//!
//! A [`CancelToken`] is installed for a scope with [`with_token`]; the
//! parallel primitives charge it one tick per chunk (and every chunk
//! claim polls the cancelled flag). When a charge fails:
//!
//! * worker threads inside [`crate::par_collect`]-family sections stop
//!   claiming chunks **quietly** — `std::thread::scope` replaces scoped
//!   panic payloads with a generic message, so workers must not carry the
//!   signal themselves;
//! * after the scope joins, the *calling* thread raises the typed unwind
//!   payload [`CancelUnwind`] via `panic_any`, which survives to whatever
//!   `catch_unwind` boundary owns the request;
//! * the boundary inspects [`CancelToken::cause`] to map the unwind to a
//!   structured error (tick deadline vs. wall clock vs. manual).
//!
//! ## Tick shielding
//!
//! Work that is a scheduling artifact — e.g. a cache leader measuring on
//! behalf of coalesced waiters — must not bill ticks to whichever request
//! happened to lead, or the cancellation decision would depend on cache
//! state and worker interleaving. [`shield_ticks`] suspends tick charging
//! (the cancelled flag and wall clock are still polled) for its scope.
//!
//! ## The wall-clock escape hatch
//!
//! A token may also carry a wall-clock deadline for real deployments.
//! Wall cancellation is explicitly **excluded from the determinism
//! contract**: it exists so an operator can bound latency, and its
//! rejections are structurally reported but not byte-stable.

use std::cell::RefCell;
use std::panic::panic_any;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a token was cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelCause {
    /// The deterministic work-tick budget was exceeded.
    Ticks,
    /// The wall-clock deadline passed (excluded from determinism).
    Wall,
    /// [`CancelToken::cancel`] was called (operator abort, injected
    /// fault).
    Manual,
}

const CAUSE_LIVE: u8 = 0;
const CAUSE_TICKS: u8 = 1;
const CAUSE_WALL: u8 = 2;
const CAUSE_MANUAL: u8 = 3;

#[derive(Debug)]
struct TokenState {
    /// Tick budget; `u64::MAX` ⇒ unmetered.
    limit: u64,
    /// Wall-clock deadline, if any.
    wall: Option<Instant>,
    /// Ticks charged so far. Monotone; the final value is racy once the
    /// token cancels (in-flight workers may each charge once more), which
    /// is why reports carry the deterministic `limit`, never this.
    ticks: AtomicU64,
    /// First-cause latch (`CAUSE_*`); set once, never cleared.
    cause: AtomicU8,
}

/// A shareable cancellation token: a tick budget, an optional wall-clock
/// deadline, and a latched cancel flag. Clones share state.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<TokenState>,
}

impl CancelToken {
    /// A token with an optional tick budget (`None` ⇒ unmetered) and an
    /// optional wall-clock deadline measured from now.
    pub fn new(tick_limit: Option<u64>, wall: Option<Duration>) -> Self {
        CancelToken {
            inner: Arc::new(TokenState {
                limit: tick_limit.unwrap_or(u64::MAX),
                wall: wall.map(|d| Instant::now() + d),
                ticks: AtomicU64::new(0),
                cause: AtomicU8::new(CAUSE_LIVE),
            }),
        }
    }

    /// A token that never cancels on its own (manual cancel still works).
    pub fn unlimited() -> Self {
        Self::new(None, None)
    }

    /// The tick budget, if the token is metered.
    pub fn tick_limit(&self) -> Option<u64> {
        (self.inner.limit != u64::MAX).then_some(self.inner.limit)
    }

    /// Ticks charged so far. Only a lower bound once cancelled — see
    /// [`TokenState::ticks`].
    pub fn ticks(&self) -> u64 {
        self.inner.ticks.load(Ordering::Relaxed)
    }

    /// Cancels the token manually (idempotent; an earlier cause wins).
    pub fn cancel(&self) {
        self.set_cause(CAUSE_MANUAL);
    }

    /// The latched cancellation cause, or `None` while live.
    pub fn cause(&self) -> Option<CancelCause> {
        match self.inner.cause.load(Ordering::Relaxed) {
            CAUSE_TICKS => Some(CancelCause::Ticks),
            CAUSE_WALL => Some(CancelCause::Wall),
            CAUSE_MANUAL => Some(CancelCause::Manual),
            _ => None,
        }
    }

    fn set_cause(&self, cause: u8) {
        // First cause wins; Relaxed is enough — the flag is a monotone
        // latch, and the tick-crossing decision never reads it (each
        // charge re-derives `exceeded` from the monotone counter).
        let _ = self.inner.cause.compare_exchange(
            CAUSE_LIVE,
            cause,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Charges `n` ticks. Returns `false` (latching a cause) when the
    /// token is cancelled, the wall deadline has passed, or the charge
    /// crosses the tick budget. Deterministic for metered tokens: the
    /// counter is a shared monotone sum, so whether the budget is crossed
    /// depends on the total charged, not on which thread charges when.
    pub fn charge(&self, n: u64) -> bool {
        let s = &self.inner;
        if s.cause.load(Ordering::Relaxed) != CAUSE_LIVE {
            return false;
        }
        if let Some(wall) = s.wall {
            if Instant::now() >= wall {
                self.set_cause(CAUSE_WALL);
                return false;
            }
        }
        let before = s.ticks.fetch_add(n, Ordering::Relaxed);
        if before.saturating_add(n) > s.limit {
            self.set_cause(CAUSE_TICKS);
            return false;
        }
        true
    }

    /// Polls the cancelled flag and wall deadline without charging ticks.
    /// Returns `true` while live.
    pub fn poll(&self) -> bool {
        let s = &self.inner;
        if s.cause.load(Ordering::Relaxed) != CAUSE_LIVE {
            return false;
        }
        if let Some(wall) = s.wall {
            if Instant::now() >= wall {
                self.set_cause(CAUSE_WALL);
                return false;
            }
        }
        true
    }
}

/// The typed unwind payload a cancelled scope propagates with
/// `panic_any`. Request boundaries downcast for it to distinguish
/// cancellation from a genuine panic.
#[derive(Debug)]
pub struct CancelUnwind;

/// The per-thread cancellation context: the installed token and whether
/// tick charging is currently shielded.
#[derive(Clone)]
pub(crate) struct Ctx {
    token: CancelToken,
    shielded: bool,
}

thread_local! {
    static CANCEL_CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

struct CtxRestore(Option<Ctx>);
impl Drop for CtxRestore {
    fn drop(&mut self) {
        CANCEL_CTX.with(|c| *c.borrow_mut() = self.0.take());
    }
}

/// Runs `f` with `token` installed as the current thread's cancellation
/// context (tick charging active), restoring the previous context after —
/// panic-safe, scoped, per-thread.
pub fn with_token<T>(token: &CancelToken, f: impl FnOnce() -> T) -> T {
    let prev =
        CANCEL_CTX.with(|c| c.borrow_mut().replace(Ctx { token: token.clone(), shielded: false }));
    let _restore = CtxRestore(prev);
    f()
}

/// Runs `f` with tick charging suspended (the cancelled flag and wall
/// deadline are still polled at every would-be charge). No-op when no
/// token is installed. Used for work whose attribution is a scheduling
/// artifact — see the module docs.
pub fn shield_ticks<T>(f: impl FnOnce() -> T) -> T {
    let prev = CANCEL_CTX.with(|c| {
        let mut slot = c.borrow_mut();
        match slot.take() {
            Some(ctx) => {
                let prev = ctx.clone();
                *slot = Some(Ctx { shielded: true, ..ctx });
                Some(Some(prev))
            }
            None => None,
        }
    });
    match prev {
        Some(prev) => {
            let _restore = CtxRestore(prev);
            f()
        }
        None => f(),
    }
}

/// Snapshot of the current context, for propagation into scoped workers.
pub(crate) fn snapshot() -> Option<Ctx> {
    CANCEL_CTX.with(|c| c.borrow().clone())
}

/// Runs `f` with `ctx` installed (shield state included), restoring the
/// worker thread's previous context after.
pub(crate) fn with_snapshot<T>(ctx: Option<Ctx>, f: impl FnOnce() -> T) -> T {
    let prev = CANCEL_CTX.with(|c| std::mem::replace(&mut *c.borrow_mut(), ctx));
    let _restore = CtxRestore(prev);
    f()
}

/// Charges `n` ticks against the current context (shield-aware: a
/// shielded context polls instead of charging). Returns `true` when no
/// token is installed or the token is still live.
pub fn charge_current(n: u64) -> bool {
    CANCEL_CTX.with(|c| match &*c.borrow() {
        Some(ctx) if ctx.shielded => ctx.token.poll(),
        Some(ctx) => ctx.token.charge(n),
        None => true,
    })
}

/// Whether the current context's token has been cancelled (flag and wall
/// poll only; no charge). `false` when no token is installed.
pub fn current_cancelled() -> bool {
    CANCEL_CTX.with(|c| match &*c.borrow() {
        Some(ctx) => !ctx.token.poll(),
        None => false,
    })
}

/// Cancels the current context's token (manual cause), if one is
/// installed. The fault-injection layer's `Cancel` action.
pub fn cancel_current() {
    CANCEL_CTX.with(|c| {
        if let Some(ctx) = &*c.borrow() {
            ctx.token.cancel();
        }
    });
}

/// Charges `n` ticks; on a failed charge, raises [`CancelUnwind`] so the
/// owning `catch_unwind` boundary can map the cancellation to a
/// structured error.
pub fn checkpoint(n: u64) {
    if !charge_current(n) {
        panic_any(CancelUnwind);
    }
}

/// Non-panicking sibling of [`checkpoint`]: charges `n` ticks and returns
/// the latched cause on failure, for boundaries that can return an error
/// directly instead of unwinding.
pub fn try_checkpoint(n: u64) -> Result<(), CancelCause> {
    if charge_current(n) {
        return Ok(());
    }
    Err(CANCEL_CTX.with(|c| {
        c.borrow()
            .as_ref()
            .and_then(|ctx| ctx.token.cause())
            // charge_current only fails with an installed, cancelled token.
            .unwrap_or(CancelCause::Manual)
    }))
}

/// Raises [`CancelUnwind`] if the current token is cancelled (poll only —
/// called by `run_chunks` on the calling thread after its scope joins, so
/// the typed payload is not laundered through `std::thread::scope`'s
/// generic scoped-thread panic).
pub fn bail_if_cancelled() {
    if current_cancelled() {
        panic_any(CancelUnwind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn charge_crosses_the_budget_exactly_once() {
        let t = CancelToken::new(Some(3), None);
        assert!(t.charge(1));
        assert!(t.charge(2));
        assert!(!t.charge(1), "fourth tick crosses the budget of 3");
        assert_eq!(t.cause(), Some(CancelCause::Ticks));
        assert!(!t.charge(1), "cancelled tokens stay cancelled");
        assert!(!t.poll());
    }

    #[test]
    fn unlimited_tokens_only_cancel_manually() {
        let t = CancelToken::unlimited();
        assert!(t.charge(1 << 40));
        assert!(t.poll());
        t.cancel();
        assert_eq!(t.cause(), Some(CancelCause::Manual));
        assert!(!t.charge(1));
    }

    #[test]
    fn first_cause_wins() {
        let t = CancelToken::new(Some(0), None);
        assert!(!t.charge(1));
        t.cancel();
        assert_eq!(t.cause(), Some(CancelCause::Ticks));
    }

    #[test]
    fn wall_deadline_cancels_polls() {
        let t = CancelToken::new(None, Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(5));
        assert!(!t.poll());
        assert_eq!(t.cause(), Some(CancelCause::Wall));
    }

    #[test]
    fn with_token_scopes_and_restores() {
        assert!(charge_current(1), "no token installed: charges are free");
        let t = CancelToken::new(Some(1), None);
        with_token(&t, || {
            assert!(charge_current(1));
            assert!(!charge_current(1));
        });
        assert!(charge_current(1), "context restored after the scope");
        assert_eq!(t.cause(), Some(CancelCause::Ticks));
    }

    #[test]
    fn shield_suspends_charging_but_polls_the_flag() {
        let t = CancelToken::new(Some(2), None);
        with_token(&t, || {
            shield_ticks(|| {
                for _ in 0..100 {
                    assert!(charge_current(1), "shielded charges are free");
                }
            });
            assert_eq!(t.ticks(), 0, "no tick lands while shielded");
            t.cancel();
            shield_ticks(|| assert!(!charge_current(1), "shield still sees the flag"));
        });
    }

    #[test]
    fn checkpoint_raises_the_typed_payload() {
        let t = CancelToken::new(Some(0), None);
        let err = catch_unwind(AssertUnwindSafe(|| with_token(&t, || checkpoint(1))))
            .expect_err("budget of 0 cancels the first checkpoint");
        assert!(err.is::<CancelUnwind>(), "payload must be the typed marker");
        assert_eq!(t.cause(), Some(CancelCause::Ticks));
    }

    #[test]
    fn try_checkpoint_reports_the_cause() {
        let t = CancelToken::new(Some(1), None);
        with_token(&t, || {
            assert_eq!(try_checkpoint(1), Ok(()));
            assert_eq!(try_checkpoint(1), Err(CancelCause::Ticks));
        });
    }
}
