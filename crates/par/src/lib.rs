//! # pgb-par
//!
//! The deterministic parallelism foundation of the PGB workspace. The
//! benchmark runner parallelises across grid *cells*, but a grid with few
//! (dataset, algorithm, ε) cells leaves most cores idle while TmF scans the
//! upper triangle, DER fills its quadtree leaves — or, on the evaluation
//! side, while the query suite runs its triangle pass and BFS sweep over a
//! large synthetic graph. All of those phases are embarrassingly parallel
//! over independent regions, so this crate gives them a shared harness with
//! one hard guarantee: **output is byte-identical at any thread count**.
//!
//! `pgb_core::par` re-exports this crate wholesale, so generator call sites
//! and the runner keep their historical paths; `pgb-graph`, `pgb-queries`,
//! and `pgb-community` depend on it directly for the query-suite hot passes
//! (degree histogram, triangle pass, BFS sweep, Louvain scans).
//!
//! ## The derived-stream chunking discipline
//!
//! [`par_collect`] splits an index range into fixed-size chunks whose
//! boundaries depend only on `(len, chunk)` — never on the thread count —
//! and draws exactly **one** `u64` base seed from the caller's RNG. Chunk
//! `i` then works on its own stream [`derive_stream`]`(base, i)` (the same
//! mixer family `QuerySuite::evaluate_all` and the runner's per-cell
//! derivation use), and chunk outputs are concatenated in chunk order. The
//! thread pool only decides *when* a chunk runs, not *what* it computes, so
//! for a fixed caller seed the result is identical whether the chunks run
//! on one thread or sixteen. Because every derived stream is independent,
//! the sampled distribution is the same as a serial pass would produce.
//!
//! ## RNG-free passes
//!
//! Deterministic scans (histograms, triangle counting, BFS merging, graph
//! coarsening) need the chunking discipline but no randomness, so they use
//! [`par_map_chunks`] (chunk outputs concatenated in chunk order) and
//! [`par_fold_chunks`] (per-chunk accumulators merged in chunk order).
//! Bit-identity across thread budgets then rests on the *merge algebra*,
//! not on scheduling: a merge that only appends in chunk order or combines
//! exact integers is identical however chunks are grouped, which is why the
//! query-suite passes keep every floating-point reduction out of the
//! chunk-merge step (see `par_fold_chunks`' contract).
//!
//! ## The thread budget
//!
//! How many workers a parallel section may use is scoped, not global:
//! [`with_parallelism`] pins the budget for the current thread (the runner
//! uses it to split `BenchmarkConfig::threads` between cell-level workers
//! and intra-cell parallelism), and [`current_parallelism`] reads it,
//! falling back to the machine's available parallelism when unset. Nested
//! parallel sections inside a worker run serially — the budget is already
//! spent one level up.
//!
//! How a *pool of workers* divides a shared budget over a draining task
//! queue is the job of [`BudgetLedger`]: workers re-claim their share per
//! task, so threads released by finished workers flow to the tail of the
//! queue instead of idling (the benchmark runner's elastic scheduler).
//!
//! ## Deterministic cancellation
//!
//! Callers that must bound runaway work install a [`cancel::CancelToken`]
//! around a parallel section; every chunk claim then charges one **work
//! tick** against the token's budget. Because the chunk decomposition is a
//! pure function of `(len, chunk)`, whether a section exceeds its tick
//! budget is identical at any thread count — see [`cancel`] for the full
//! story (quiet worker stop, typed [`cancel::CancelUnwind`] payload raised
//! by the calling thread, tick shielding, the wall-clock escape hatch).

pub mod cancel;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default indices per chunk for fine-grained index work (per-edge or
/// per-drop loops): large enough to amortise stream derivation and task
/// handoff, small enough that an 8-way machine load-balances a
/// few-hundred-thousand-element range.
pub const DEFAULT_CHUNK: usize = 8192;

thread_local! {
    /// 0 ⇒ unset (fall back to available parallelism).
    static THREAD_BUDGET: Cell<usize> = const { Cell::new(0) };
    /// The elastic grant scope installed by [`with_elastic_parallelism`],
    /// if any: the ledger to re-poll and the live grant it grows.
    static ELASTIC_SLOT: RefCell<Option<(Arc<BudgetLedger>, Grant)>> = const { RefCell::new(None) };
}

/// The machine's available parallelism (1 if it cannot be queried).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// The intra-cell thread budget for the current thread, in precedence
/// order: the innermost [`with_parallelism`] scope if one is active; else
/// the current [`with_elastic_parallelism`] grant, **re-polled against its
/// ledger** (grow-only — see [`BudgetLedger::regrant`]) so a parallel
/// section entered late in a task absorbs threads released since the
/// claim; else the machine's available parallelism.
pub fn current_parallelism() -> usize {
    let t = THREAD_BUDGET.with(Cell::get);
    if t != 0 {
        return t;
    }
    let elastic = ELASTIC_SLOT.with(|slot| {
        let mut slot = slot.borrow_mut();
        let (ledger, grant) = slot.as_mut()?;
        ledger.regrant(grant);
        Some(grant.threads())
    });
    elastic.unwrap_or_else(available_parallelism)
}

/// Runs `f` with the current thread's parallelism budget set to `threads`
/// (0 ⇒ reset to the available-parallelism default), restoring the previous
/// budget afterwards — panic-safe, scoped, and per-thread.
///
/// The budget only affects *scheduling*; results of the parallel sections
/// inside `f` are identical for every value of `threads`.
pub fn with_parallelism<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_BUDGET.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_BUDGET.with(|c| c.replace(threads)));
    f()
}

/// Runs `f` under an elastic grant: parallel sections inside `f` read
/// their budget from `grant`, and every [`current_parallelism`] call
/// re-polls `ledger` (grow-only, [`BudgetLedger::regrant`]) so a task that
/// outlives its siblings absorbs the threads they release mid-task —
/// instead of keeping the share computed at claim time, which strands the
/// pool on the tail of the queue.
///
/// Returns `f`'s output together with the (possibly grown) grant, which
/// the caller must still [`release`](BudgetLedger::release). Like the
/// grants themselves, re-granting is *scheduling only*: the derived-stream
/// discipline makes `f`'s output identical whether or not it grew.
///
/// If `f` panics, the grant is released to the ledger during unwinding so
/// the pool identity (`available + Σ outstanding pooled ≡ budget`) still
/// holds. Nested elastic scopes on one thread are not supported (the
/// inner scope would shadow the outer grant); an explicit
/// [`with_parallelism`] scope inside `f` takes precedence as usual.
pub fn with_elastic_parallelism<T>(
    ledger: Arc<BudgetLedger>,
    grant: Grant,
    f: impl FnOnce() -> T,
) -> (T, Grant) {
    /// Clears the slot on scope exit; on unwind (slot still occupied) the
    /// grant goes back to the ledger rather than leaking pooled threads.
    struct SlotGuard;
    impl Drop for SlotGuard {
        fn drop(&mut self) {
            if let Some((ledger, grant)) = ELASTIC_SLOT.with(|slot| slot.borrow_mut().take()) {
                ledger.release(grant);
            }
        }
    }

    ELASTIC_SLOT.with(|slot| {
        let prev = slot.borrow_mut().replace((ledger, grant));
        assert!(prev.is_none(), "nested with_elastic_parallelism scopes are not supported");
    });
    let _guard = SlotGuard;
    let out = f();
    let (_, grant) = ELASTIC_SLOT
        .with(|slot| slot.borrow_mut().take())
        .expect("elastic slot cleared inside the scope");
    (out, grant)
}

/// An elastic thread-budget ledger shared by the workers of a task pool.
///
/// The benchmark runner's workers used to split the total thread budget
/// once at spawn (`budget / workers` each), which strands threads on the
/// tail of a grid: when the task queue drains below the worker count,
/// finished workers' threads sit idle while the remaining tasks keep their
/// small static share. The ledger instead tracks the *live* state — how
/// many tasks are still unclaimed and how many threads finished workers
/// have returned to the pool — and each worker recomputes its intra-task
/// budget per **claimed** task:
///
/// * [`claim`](BudgetLedger::claim) atomically pops the next task index and
///   grants `ceil(available / claimants)` pooled threads, where
///   `claimants = min(workers, remaining tasks)` — on the tail the divisor
///   shrinks, so late tasks inherit the threads earlier tasks released.
/// * A worker whose claim finds an empty pool still runs (a [`Grant`] is
///   always ≥ 1 thread), so the *transient* oversubscription is bounded:
///   at most one unpooled thread per worker beyond the first, i.e. the sum
///   of outstanding grants never exceeds `budget + workers − 1`.
/// * [`release`](BudgetLedger::release) returns the pooled part of a grant,
///   so `available + Σ outstanding pooled ≡ budget` at all times and the
///   ledger drains back to exactly `budget` once every grant is released.
/// * [`regrant`](BudgetLedger::regrant) grows a *held* grant from the live
///   pool mid-task (grow-only). [`with_elastic_parallelism`] re-polls it on
///   every [`current_parallelism`] read, so the last running tasks absorb
///   threads released after their claim instead of finishing on the share
///   computed when the pool was crowded.
///
/// Grants are *scheduling only*: callers run their task under
/// [`with_parallelism`]`(grant.threads(), …)`, and the derived-stream
/// discipline makes the task's output identical for every grant size. The
/// same goes for the *order* tasks are handed out in: the ledger pops
/// indices `0, 1, 2, …` over whatever task list the caller built, so a
/// caller that wants expensive tasks claimed first simply sorts its task
/// list by a cost key before creating the ledger (the benchmark runner's
/// cost-aware claim order does exactly that).
#[derive(Debug)]
pub struct BudgetLedger {
    budget: usize,
    workers: usize,
    tasks: usize,
    inner: Mutex<LedgerInner>,
}

#[derive(Debug)]
struct LedgerInner {
    /// Next unclaimed task index (`tasks` ⇒ queue drained).
    next: usize,
    /// Threads currently in the pool (≤ `budget`).
    available: usize,
}

/// A thread grant held by a worker for the duration of one claimed task.
///
/// `threads` is what the worker may use ([`with_parallelism`] budget);
/// `pooled` is the part accounted against the ledger's pool (`threads`
/// when the pool could cover the grant, `0` for the minimum-one-thread
/// grant handed out when the pool was momentarily empty). Return it with
/// [`BudgetLedger::release`] when the task completes.
#[derive(Debug)]
#[must_use = "a grant holds pooled threads until released"]
pub struct Grant {
    threads: usize,
    pooled: usize,
}

impl Grant {
    /// The intra-task thread budget this grant authorises (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many of the granted threads came out of the shared pool.
    pub fn pooled(&self) -> usize {
        self.pooled
    }
}

impl BudgetLedger {
    /// A ledger distributing `budget` threads (≥ 1 enforced) over `tasks`
    /// tasks claimed by at most `workers` concurrent workers.
    pub fn new(budget: usize, workers: usize, tasks: usize) -> Self {
        let budget = budget.max(1);
        let workers = workers.max(1);
        BudgetLedger {
            budget,
            workers,
            tasks,
            inner: Mutex::new(LedgerInner { next: 0, available: budget }),
        }
    }

    /// The total thread budget the ledger was created with.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The worker count the oversubscription bound is stated against.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Threads currently sitting in the pool (released and unclaimed).
    pub fn available(&self) -> usize {
        self.inner.lock().expect("ledger lock poisoned").available
    }

    /// Tasks not yet claimed.
    pub fn remaining_tasks(&self) -> usize {
        self.tasks - self.inner.lock().expect("ledger lock poisoned").next
    }

    /// Claims the next task, or `None` when the queue is drained. The
    /// returned grant divides the pool by the number of workers that can
    /// still be claiming concurrently (`min(workers, remaining tasks)`),
    /// and is never zero: an empty pool yields a 1-thread grant with
    /// `pooled = 0`, which is what makes the oversubscription transient
    /// and bounded rather than a deadlock.
    pub fn claim(&self) -> Option<(usize, Grant)> {
        let mut s = self.inner.lock().expect("ledger lock poisoned");
        if s.next >= self.tasks {
            return None;
        }
        let task = s.next;
        s.next += 1;
        // Including this one — `task` was just popped.
        let remaining = self.tasks - task;
        let claimants = remaining.min(self.workers).max(1);
        let pooled = if s.available == 0 { 0 } else { s.available.div_ceil(claimants) };
        debug_assert!(pooled <= s.available);
        s.available -= pooled;
        Some((task, Grant { threads: pooled.max(1), pooled }))
    }

    /// Grows `grant` from the pool, if the pool has anything to give —
    /// the mid-task half of the elastic scheduler. The holder's share is
    /// recomputed against the live state with the holder counted as one
    /// claimant alongside the still-unclaimed tasks
    /// (`claimants = min(remaining + 1, workers)`), so a worker on the
    /// queue's tail absorbs the whole pool while a worker mid-queue takes
    /// only its fair slice. **Grow-only**: a grant never shrinks — threads
    /// already promised to a running parallel section stay granted — so
    /// repeated re-polls are monotone and the pool identity
    /// `available + Σ outstanding pooled ≡ budget` is preserved.
    pub fn regrant(&self, grant: &mut Grant) {
        let mut s = self.inner.lock().expect("ledger lock poisoned");
        if s.available == 0 {
            return;
        }
        let remaining = self.tasks - s.next;
        let claimants = (remaining + 1).min(self.workers).max(1);
        // Fair share of the threads in play *for this holder* — the pool
        // plus what it already holds, divided over the holder and the
        // claims that can still arrive. Top up to the share; a grant
        // already at or above it keeps what it has (never shrinks). With
        // the queue drained (`claimants == 1`) the share is the whole
        // pool, so the last running tasks absorb everything released.
        let target = (s.available + grant.threads).div_ceil(claimants);
        let extra = target.saturating_sub(grant.threads).min(s.available);
        if extra == 0 {
            if grant.pooled == 0 && grant.threads == 1 {
                // The minimum oversubscribed grant converts to a pooled
                // thread as soon as one is free, ending its transient
                // oversubscription without changing its budget.
                s.available -= 1;
                grant.pooled = 1;
            }
            return;
        }
        s.available -= extra;
        grant.threads += extra;
        grant.pooled += extra;
    }

    /// Returns a grant's pooled threads, making them grantable to the next
    /// claim. Unpooled (oversubscribed) threads simply vanish — they were
    /// never deducted from the pool.
    pub fn release(&self, grant: Grant) {
        let mut s = self.inner.lock().expect("ledger lock poisoned");
        s.available += grant.pooled;
        debug_assert!(
            s.available <= self.budget,
            "pool overflow: released more threads than the budget holds"
        );
    }
}

/// Derives the deterministic RNG for chunk `index` of a parallel section
/// whose single caller draw was `base` — the same xorshift-multiply mixer
/// family as the runner's per-cell and the query suite's per-intermediate
/// derivations, so streams are independent across chunks and of the
/// caller's subsequent draws.
pub fn derive_stream(base: u64, index: u64) -> StdRng {
    let mut h = base ^ 0x2545_F491_4F6C_DD1D;
    h ^= index.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(h << 6).wrapping_add(h >> 2);
    h = h.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    h ^= h >> 32;
    StdRng::seed_from_u64(h)
}

/// The fixed chunk decomposition of `0..len`: every chunk has exactly
/// `chunk` indices except a shorter final one. Depends only on the inputs,
/// never on the thread count — this is what makes chunk streams stable.
///
/// # Panics
/// Panics if `chunk == 0`.
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..len).step_by(chunk).map(|start| start..(start + chunk).min(len)).collect()
}

/// Runs `produce` once per chunk over [`current_parallelism`] workers with
/// a dynamic cursor and returns the per-chunk outputs **in chunk order**.
/// The shared engine behind [`par_collect`], [`par_map_chunks`], and
/// [`par_fold_chunks`]; callers have already handled the `workers <= 1`
/// inline case.
fn run_chunks<T, F>(ranges: &[Range<usize>], workers: usize, produce: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let slots: Vec<OnceLock<T>> = (0..ranges.len()).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    // The calling thread's cancellation context rides into every worker,
    // so chunk claims charge the request's token no matter which thread
    // runs them.
    let ctx = cancel::snapshot();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (slots, cursor, produce, ctx) = (&slots, &cursor, &produce, ctx.clone());
            scope.spawn(move || {
                cancel::with_snapshot(ctx, || {
                    // A worker *is* the parallelism; anything nested runs serial.
                    with_parallelism(1, || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= ranges.len() {
                            break;
                        }
                        // Cancelled: stop claiming *quietly* — a scoped
                        // panic would be laundered into a payload-free
                        // generic by std::thread::scope; the calling
                        // thread raises the typed unwind below instead.
                        if !cancel::charge_current(1) {
                            break;
                        }
                        assert!(
                            slots[i].set(produce(i, ranges[i].clone())).is_ok(),
                            "the atomic cursor hands out each chunk once"
                        );
                    });
                });
            });
        }
    });
    cancel::bail_if_cancelled();
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every claimed chunk publishes its slot"))
        .collect()
}

/// Runs `f` once per chunk of `0..len` and returns all chunk outputs
/// concatenated in chunk order.
///
/// Draws exactly one `u64` from `rng` (regardless of `len`, `chunk`, or
/// the thread budget) and hands chunk `i` the stream
/// [`derive_stream`]`(base, i)` plus an output vector to push into. Chunks
/// are distributed over [`current_parallelism`] workers with a dynamic
/// cursor, so unequal chunk costs load-balance; a budget of 1 (or a single
/// chunk) runs inline with no thread spawn. Output, by construction, does
/// not depend on the worker count.
pub fn par_collect<T, F>(len: usize, chunk: usize, rng: &mut dyn RngCore, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(Range<usize>, &mut StdRng, &mut Vec<T>) + Sync,
{
    let base = rng.next_u64();
    let ranges = chunk_ranges(len, chunk);
    let workers = current_parallelism().min(ranges.len());
    if workers <= 1 {
        let mut out = Vec::new();
        for (i, r) in ranges.into_iter().enumerate() {
            // Same tick per chunk as the parallel path charges per claim,
            // so the cancellation decision is budget-invariant.
            cancel::checkpoint(1);
            f(r, &mut derive_stream(base, i as u64), &mut out);
        }
        return out;
    }
    let parts = run_chunks(&ranges, workers, |i, r| {
        let mut out = Vec::new();
        f(r, &mut derive_stream(base, i as u64), &mut out);
        out
    });
    concat(parts)
}

/// RNG-free sibling of [`par_collect`]: runs `f` once per chunk of
/// `0..len` and returns all chunk outputs concatenated in chunk order.
///
/// For deterministic per-index maps (degree extraction, adjacency
/// filtering, per-node feature vectors): the chunk decomposition is fixed
/// by `(len, chunk)` and outputs concatenate in chunk order, so the result
/// is identical at any thread budget — each element is computed
/// independently and lands at the same position regardless of scheduling.
pub fn par_map_chunks<T, F>(len: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(Range<usize>, &mut Vec<T>) + Sync,
{
    let ranges = chunk_ranges(len, chunk);
    let workers = current_parallelism().min(ranges.len());
    if workers <= 1 {
        let mut out = Vec::new();
        for r in ranges {
            cancel::checkpoint(1);
            f(r, &mut out);
        }
        return out;
    }
    let parts = run_chunks(&ranges, workers, |_, r| {
        let mut out = Vec::new();
        f(r, &mut out);
        out
    });
    concat(parts)
}

/// Parallel chunked fold: `fold` accumulates each chunk of `0..len` into
/// an accumulator from `init`, and accumulators are combined **in chunk
/// order** with `merge`. Returns `init()` when `len == 0`.
///
/// ## Bit-identity contract
///
/// A thread budget of 1 folds every chunk into a *single* accumulator (no
/// per-chunk allocation, no merge — the sequential pass, verbatim), while
/// a parallel run folds per-chunk accumulators and merges them in chunk
/// order. Results are therefore byte-identical across thread budgets iff
/// fold-then-merge regroups freely, which holds for the accumulators the
/// query-suite passes use:
///
/// * exact-integer arithmetic (`u64` histogram counts, triangle credits,
///   `u128` distance totals, `max` reductions) — associative and
///   commutative, any grouping yields the same bits;
/// * order-preserving appends (bucket lists, concatenated rows) — chunk
///   order is the element order either way.
///
/// Keep floating-point *summation* out of `merge`: `(a + b) + c` and
/// `a + (b + c)` may differ in the last ulp, so a float accumulator would
/// make the 1-thread and n-thread groupings drift. The query-suite passes
/// instead carry floats through appends and do the arithmetic afterwards
/// in a fixed order.
pub fn par_fold_chunks<A, I, F, M>(len: usize, chunk: usize, init: I, fold: F, mut merge: M) -> A
where
    A: Send + Sync,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, Range<usize>) + Sync,
    M: FnMut(&mut A, A),
{
    let ranges = chunk_ranges(len, chunk);
    let workers = current_parallelism().min(ranges.len());
    if workers <= 1 {
        let mut acc = init();
        for r in ranges {
            cancel::checkpoint(1);
            fold(&mut acc, r);
        }
        return acc;
    }
    let parts = run_chunks(&ranges, workers, |_, r| {
        let mut acc = init();
        fold(&mut acc, r);
        acc
    });
    let mut parts = parts.into_iter();
    let mut acc = parts.next().expect("workers > 1 implies at least one chunk");
    for part in parts {
        merge(&mut acc, part);
    }
    acc
}

/// Concatenates chunk outputs in chunk order.
fn concat<T>(parts: Vec<Vec<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for part in parts {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chunk_ranges_cover_exactly() {
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(chunk_ranges(3, 10), vec![0..3]);
        assert!(chunk_ranges(0, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        chunk_ranges(5, 0);
    }

    #[test]
    fn output_identical_across_thread_budgets() {
        let run = |threads: usize| {
            with_parallelism(threads, || {
                let mut rng = StdRng::seed_from_u64(99);
                par_collect(10_000, 128, &mut rng, |range, rng, out| {
                    for i in range {
                        out.push((i as u64) ^ rng.gen_range(0..1_000_000u64));
                    }
                })
            })
        };
        let serial = run(1);
        assert_eq!(serial.len(), 10_000);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn caller_rng_advances_by_exactly_one_draw() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let _ = par_collect(5_000, 64, &mut a, |range, rng, out: &mut Vec<u64>| {
            for _ in range {
                out.push(rng.next_u64());
            }
        });
        b.next_u64(); // the single base draw
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn with_parallelism_scopes_and_restores() {
        let outer = current_parallelism();
        with_parallelism(3, || {
            assert_eq!(current_parallelism(), 3);
            with_parallelism(1, || assert_eq!(current_parallelism(), 1));
            assert_eq!(current_parallelism(), 3);
        });
        assert_eq!(current_parallelism(), outer);
    }

    #[test]
    fn empty_range_still_draws_base() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let out = par_collect(0, 16, &mut a, |_, _, _: &mut Vec<u8>| unreachable!());
        assert!(out.is_empty());
        b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn map_chunks_equals_sequential_map_at_any_budget() {
        let expected: Vec<u64> = (0..5_000u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        for threads in [1, 2, 3, 8, 0] {
            let got = with_parallelism(threads, || {
                par_map_chunks(5_000, 64, |range, out| {
                    for i in range {
                        out.push((i as u64).wrapping_mul(0x9E37));
                    }
                })
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_chunks_empty_range() {
        let out: Vec<u8> = par_map_chunks(0, 16, |_, _| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn fold_chunks_integer_accumulators_budget_invariant() {
        // An exact-integer histogram: fold-then-merge regroups freely, so
        // every budget (including the single-accumulator inline path) must
        // produce identical bytes.
        let run = |threads: usize| {
            with_parallelism(threads, || {
                par_fold_chunks(
                    10_000,
                    128,
                    || vec![0u64; 7],
                    |acc, range| {
                        for i in range {
                            acc[i % 7] += (i as u64) % 13;
                        }
                    },
                    |acc, other| {
                        for (a, b) in acc.iter_mut().zip(other) {
                            *a += b;
                        }
                    },
                )
            })
        };
        let serial = run(1);
        for threads in [2, 3, 8, 0] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn fold_chunks_append_merge_preserves_chunk_order() {
        // Order-preserving appends: the merged list is the chunk-order
        // concatenation, i.e. exactly the sequential traversal order.
        let expected: Vec<usize> = (0..1_000).collect();
        for threads in [1, 2, 8] {
            let got = with_parallelism(threads, || {
                par_fold_chunks(
                    1_000,
                    32,
                    Vec::new,
                    |acc: &mut Vec<usize>, range| acc.extend(range),
                    |acc, mut other| acc.append(&mut other),
                )
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn fold_chunks_empty_range_returns_init() {
        let acc = par_fold_chunks(0, 16, || 42u64, |_, _| unreachable!(), |_, _| unreachable!());
        assert_eq!(acc, 42);
    }

    #[test]
    fn ledger_saturating_grid_grants_one_each() {
        // More tasks than budget: every worker starts with exactly 1.
        let ledger = BudgetLedger::new(4, 4, 100);
        let grants: Vec<Grant> = (0..4).map(|_| ledger.claim().unwrap().1).collect();
        assert!(grants.iter().all(|g| g.threads() == 1 && g.pooled() == 1));
        assert_eq!(ledger.available(), 0);
        for g in grants {
            ledger.release(g);
        }
        assert_eq!(ledger.available(), 4);
    }

    #[test]
    fn ledger_tail_inherits_released_threads() {
        // 4 workers, budget 4, 6 tasks: the tail tasks (5, 6) are claimed
        // after earlier grants return, and with remaining < workers the
        // divisor shrinks — released threads are re-granted, not stranded.
        let ledger = BudgetLedger::new(4, 4, 6);
        let head: Vec<(usize, Grant)> = (0..4).map(|_| ledger.claim().unwrap()).collect();
        for (_, g) in head {
            ledger.release(g);
        }
        // Tail: 2 tasks remain, whole pool back in play ⇒ 4 / 2 = 2 each.
        let (t, g5) = ledger.claim().unwrap();
        assert_eq!(t, 4);
        assert_eq!(g5.threads(), 2);
        let (_, g6) = ledger.claim().unwrap();
        assert_eq!(g6.threads(), 2);
        assert!(ledger.claim().is_none());
        ledger.release(g5);
        ledger.release(g6);
        assert_eq!(ledger.available(), 4);
    }

    #[test]
    fn ledger_single_task_gets_whole_budget() {
        let ledger = BudgetLedger::new(8, 4, 1);
        let (_, g) = ledger.claim().unwrap();
        assert_eq!(g.threads(), 8);
        ledger.release(g);
        assert_eq!(ledger.available(), 8);
    }

    #[test]
    fn ledger_empty_pool_still_grants_one_thread() {
        // Budget 1, 4 workers: three claims find the pool empty and run
        // oversubscribed on 1 unpooled thread each — the transient total is
        // 4 = budget + workers − 1, never more.
        let ledger = BudgetLedger::new(1, 4, 8);
        let grants: Vec<Grant> = (0..4).map(|_| ledger.claim().unwrap().1).collect();
        let outstanding: usize = grants.iter().map(Grant::threads).sum();
        assert_eq!(outstanding, 4);
        assert_eq!(grants.iter().map(Grant::pooled).sum::<usize>(), 1);
        for g in grants {
            ledger.release(g);
        }
        assert_eq!(ledger.available(), 1);
    }

    #[test]
    fn ledger_zero_budget_clamped_to_one() {
        let ledger = BudgetLedger::new(0, 0, 2);
        assert_eq!(ledger.budget(), 1);
        assert_eq!(ledger.workers(), 1);
        let (_, g) = ledger.claim().unwrap();
        assert_eq!(g.threads(), 1);
        ledger.release(g);
    }

    #[test]
    fn tick_totals_are_identical_across_thread_budgets() {
        // 100 elements / chunk 16 ⇒ 7 chunks, charged once each whether
        // they run inline or over 8 workers.
        for threads in [1usize, 2, 8, 0] {
            let token = cancel::CancelToken::unlimited();
            cancel::with_token(&token, || {
                with_parallelism(threads, || {
                    par_map_chunks(100, 16, |range, out: &mut Vec<usize>| out.extend(range))
                })
            });
            assert_eq!(token.ticks(), 7, "threads = {threads}");
        }
    }

    #[test]
    fn cancellation_decision_is_budget_invariant() {
        // 7 chunks against tick budgets straddling 7: cancelled iff
        // chunks > budget, at every thread budget, with the typed payload.
        for threads in [1usize, 2, 8, 0] {
            for (limit, cancelled) in [(6u64, true), (7, false), (8, false)] {
                let token = cancel::CancelToken::new(Some(limit), None);
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cancel::with_token(&token, || {
                        with_parallelism(threads, || {
                            par_map_chunks(100, 16, |range, out: &mut Vec<usize>| out.extend(range))
                        })
                    })
                }));
                assert_eq!(out.is_err(), cancelled, "threads = {threads}, limit = {limit}");
                if let Err(payload) = out {
                    assert!(payload.is::<cancel::CancelUnwind>());
                    assert_eq!(token.cause(), Some(cancel::CancelCause::Ticks));
                } else {
                    assert_eq!(token.cause(), None);
                }
            }
        }
    }

    #[test]
    fn par_collect_and_fold_charge_ticks_too() {
        let token = cancel::CancelToken::unlimited();
        cancel::with_token(&token, || {
            let mut rng = StdRng::seed_from_u64(3);
            let _ =
                par_collect(64, 16, &mut rng, |range, _, out: &mut Vec<usize>| out.extend(range));
            let _ = par_fold_chunks(
                64,
                16,
                || 0usize,
                |acc, range| *acc += range.len(),
                |acc, other| *acc += other,
            );
        });
        assert_eq!(token.ticks(), 8, "4 collect chunks + 4 fold chunks");
    }

    #[test]
    fn derived_streams_differ_per_chunk() {
        let mut s0 = derive_stream(42, 0);
        let mut s1 = derive_stream(42, 1);
        assert_ne!(
            (0..4).map(|_| s0.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| s1.next_u64()).collect::<Vec<_>>()
        );
    }
}
