//! Financial-network stand-in (poli-large: |V| = 15600, |E| ≈ 17.5k,
//! ACC ≈ 0.40).
//!
//! poli-large is an extreme combination: average degree barely above 2,
//! yet ACC ≈ 0.4 — the signature of a graph assembled from many tiny
//! cliques (triangles) plus a sparse web of connector edges. The stand-in
//! reproduces exactly that: disjoint triangles on a calibrated fraction of
//! the nodes, with the remainder wired as a sparse random graph and a few
//! bridges keeping things loosely connected.

use pgb_graph::{Graph, GraphBuilder};
use rand::Rng;

/// Node count (Table VI).
const N: usize = 15_600;
/// Number of disjoint triangles: each contributes 3 degree-2 nodes with
/// local clustering 1, so ACC ≈ 3·T / N ⇒ T ≈ 0.3967·N/3 ≈ 2063.
const TRIANGLES: usize = 2_063;
/// Total target edges.
const EDGES: usize = 17_500;

/// Generates the poli-large-like graph.
pub fn poli_large_like<R: Rng + ?Sized>(rng: &mut R) -> Graph {
    let mut b = GraphBuilder::with_capacity(N, EDGES);
    // Phase 1: disjoint triangles on nodes [0, 3·TRIANGLES).
    for t in 0..TRIANGLES {
        let base = (3 * t) as u32;
        b.push(base, base + 1);
        b.push(base + 1, base + 2);
        b.push(base + 2, base);
    }
    // Phase 2: sparse random web over the remaining nodes.
    let rest_start = 3 * TRIANGLES;
    let rest = N - rest_start;
    let web_edges = EDGES - 3 * TRIANGLES - 200;
    for _ in 0..web_edges {
        let u = (rest_start + rng.gen_range(0..rest)) as u32;
        let v = (rest_start + rng.gen_range(0..rest)) as u32;
        if u != v {
            b.push(u, v);
        }
    }
    // Phase 3: a few bridges from the web into triangle-land so the graph
    // is not two disconnected universes. Attaching to only one corner per
    // triangle leaves the other two corners' clustering intact.
    for _ in 0..200 {
        let corner = (3 * rng.gen_range(0..TRIANGLES)) as u32;
        let v = (rest_start + rng.gen_range(0..rest)) as u32;
        b.push(corner, v);
    }
    b.build().expect("ids bounded by N")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_queries::clustering::average_clustering;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_table_vi_shape() {
        let mut rng = StdRng::seed_from_u64(30);
        let g = poli_large_like(&mut rng);
        assert_eq!(g.node_count(), N);
        let m = g.edge_count() as f64;
        assert!((m - 17_500.0).abs() / 17_500.0 < 0.1, "edges {m}");
        let acc = average_clustering(&g);
        assert!((0.33..=0.46).contains(&acc), "ACC {acc}");
        // The defining oddity: near-tree density with high clustering.
        assert!(g.average_degree() < 2.6);
    }
}
