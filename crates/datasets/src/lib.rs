//! # pgb-datasets
//!
//! The benchmark's graph datasets (element G of the 4-tuple; Table VI of
//! the paper) plus CA-GrQc from the verification appendix.
//!
//! The original PGB pulls six graphs from SNAP / Network Repository, which
//! are not available offline. Following the substitution policy in
//! DESIGN.md, each real graph is replaced by a **deterministic synthetic
//! stand-in generated to match the axes the paper's analysis attributes
//! algorithm behaviour to**: node count, edge count, average clustering
//! coefficient, and type-specific structure (community strength, degree
//! tail, planarity). The two synthetic datasets (ER, BA) are generated
//! exactly as in the paper.
//!
//! ```
//! use pgb_datasets::Dataset;
//!
//! let g = Dataset::Facebook.generate(0);
//! let t = Dataset::Facebook.target();
//! assert_eq!(g.node_count(), t.nodes);
//! ```

pub mod collab;
pub mod financial;
pub mod p2p;
pub mod roadnet;
pub mod social;
pub mod temporal;

use pgb_graph::Graph;
use pgb_models::{barabasi_albert, erdos_renyi_gnp};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The graph-type taxonomy of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphType {
    /// T1 — people and relationships.
    Social,
    /// T2 — webpages and hyperlinks.
    Web,
    /// T3 — researchers and collaborations.
    Academic,
    /// T4 — intersections and roads.
    Traffic,
    /// T5 — products and links.
    Financial,
    /// T6 — apps and relationships.
    Technology,
    /// T7 — model-generated graphs.
    Synthetic,
}

/// Target statistics for a dataset (the `|V|`, `|E|`, ACC, Type columns of
/// Table VI).
#[derive(Clone, Copy, Debug)]
pub struct TargetStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges (approximate for the stand-ins; the tolerance each
    /// stand-in is tested to is in its module).
    pub edges: usize,
    /// Average clustering coefficient.
    pub acc: f64,
    /// Domain of the original graph.
    pub graph_type: GraphType,
}

/// The benchmark datasets: the 8 rows of Table VI plus CA-GrQc (appendix
/// A verification experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Minnesota road network (traffic).
    Minnesota,
    /// Facebook ego networks (social).
    Facebook,
    /// Wikipedia adminship votes (web).
    WikiVote,
    /// arXiv HEP-PH collaborations (academic).
    CaHepPh,
    /// econ-poli-large (financial).
    PoliLarge,
    /// Gnutella P2P snapshot (technology).
    Gnutella,
    /// Erdős–Rényi G(10000, p) (synthetic, binomial degrees).
    ErGraph,
    /// Barabási–Albert n=10000, m=5 (synthetic, power-law degrees).
    BaGraph,
    /// arXiv GR-QC collaborations (verification appendix, Table XI).
    CaGrQc,
}

impl Dataset {
    /// The 8 benchmark datasets of Table VI, in table order.
    pub const TABLE_VI: [Dataset; 8] = [
        Dataset::Minnesota,
        Dataset::Facebook,
        Dataset::WikiVote,
        Dataset::CaHepPh,
        Dataset::PoliLarge,
        Dataset::Gnutella,
        Dataset::ErGraph,
        Dataset::BaGraph,
    ];

    /// All datasets, including the verification graph.
    pub const ALL: [Dataset; 9] = [
        Dataset::Minnesota,
        Dataset::Facebook,
        Dataset::WikiVote,
        Dataset::CaHepPh,
        Dataset::PoliLarge,
        Dataset::Gnutella,
        Dataset::ErGraph,
        Dataset::BaGraph,
        Dataset::CaGrQc,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Minnesota => "Minnesota",
            Dataset::Facebook => "Facebook",
            Dataset::WikiVote => "Wiki-Vote",
            Dataset::CaHepPh => "ca-HepPh",
            Dataset::PoliLarge => "poli-large",
            Dataset::Gnutella => "Gnutella",
            Dataset::ErGraph => "ER graph",
            Dataset::BaGraph => "BA graph",
            Dataset::CaGrQc => "CA-GrQc",
        }
    }

    /// The Table VI target statistics (CA-GrQc's from the SNAP page /
    /// Table XI ground truth).
    pub fn target(&self) -> TargetStats {
        match self {
            Dataset::Minnesota => TargetStats {
                nodes: 2_600,
                edges: 3_300,
                acc: 0.0160,
                graph_type: GraphType::Traffic,
            },
            Dataset::Facebook => TargetStats {
                nodes: 4_039,
                edges: 88_234,
                acc: 0.6055,
                graph_type: GraphType::Social,
            },
            Dataset::WikiVote => TargetStats {
                nodes: 7_115,
                edges: 103_689,
                acc: 0.1409,
                graph_type: GraphType::Web,
            },
            Dataset::CaHepPh => TargetStats {
                nodes: 12_008,
                edges: 118_521,
                acc: 0.6115,
                graph_type: GraphType::Academic,
            },
            Dataset::PoliLarge => TargetStats {
                nodes: 15_600,
                edges: 17_500,
                acc: 0.3967,
                graph_type: GraphType::Financial,
            },
            Dataset::Gnutella => TargetStats {
                nodes: 22_687,
                edges: 54_705,
                acc: 0.0053,
                graph_type: GraphType::Technology,
            },
            Dataset::ErGraph => TargetStats {
                nodes: 10_000,
                edges: 250_278,
                acc: 0.0050,
                graph_type: GraphType::Synthetic,
            },
            Dataset::BaGraph => TargetStats {
                nodes: 10_000,
                edges: 49_975,
                acc: 0.0074,
                graph_type: GraphType::Synthetic,
            },
            Dataset::CaGrQc => TargetStats {
                nodes: 5_241,
                edges: 14_484,
                acc: 0.529,
                graph_type: GraphType::Academic,
            },
        }
    }

    /// Generates the dataset deterministically from `seed` (the same seed
    /// always yields the same graph; different datasets decorrelate their
    /// streams internally).
    pub fn generate(&self, seed: u64) -> Graph {
        // Mix the dataset identity into the seed so that e.g. ER and BA
        // with the same user seed are independent.
        let tag = *self as u64 + 1;
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(tag));
        match self {
            Dataset::Minnesota => roadnet::minnesota_like(&mut rng),
            Dataset::Facebook => social::facebook_like(&mut rng),
            Dataset::WikiVote => social::wiki_vote_like(&mut rng),
            Dataset::CaHepPh => collab::hep_ph_like(&mut rng),
            Dataset::PoliLarge => financial::poli_large_like(&mut rng),
            Dataset::Gnutella => p2p::gnutella_like(&mut rng),
            Dataset::ErGraph => {
                let t = self.target();
                let pairs = t.nodes as f64 * (t.nodes as f64 - 1.0) / 2.0;
                erdos_renyi_gnp(t.nodes, t.edges as f64 / pairs, &mut rng)
            }
            Dataset::BaGraph => barabasi_albert(10_000, 5, &mut rng),
            Dataset::CaGrQc => collab::gr_qc_like(&mut rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), Dataset::ALL.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Minnesota.generate(42);
        let b = Dataset::Minnesota.generate(42);
        assert_eq!(a.edge_vec(), b.edge_vec());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::ErGraph.generate(1);
        let b = Dataset::ErGraph.generate(2);
        assert_ne!(a.edge_vec(), b.edge_vec());
    }

    #[test]
    fn node_counts_exact() {
        for d in Dataset::ALL {
            let g = d.generate(0);
            assert_eq!(g.node_count(), d.target().nodes, "{}", d.name());
            assert!(g.check_invariants(), "{}", d.name());
        }
    }

    #[test]
    fn er_and_ba_match_paper_exactly() {
        let ba = Dataset::BaGraph.generate(0);
        assert_eq!(ba.edge_count(), 49_975);
        let er = Dataset::ErGraph.generate(0);
        let m = er.edge_count() as f64;
        assert!((m - 250_278.0).abs() < 3_000.0, "ER edges {m}");
    }
}
