//! Social and web stand-ins.
//!
//! * Facebook (|V| = 4039, |E| ≈ 88k, ACC ≈ 0.61): dense ego-network
//!   communities. Generated as a union of Watts–Strogatz-like dense
//!   communities (very high internal clustering) joined by sparse random
//!   inter-community edges.
//! * Wiki-Vote (|V| = 7115, |E| ≈ 104k, ACC ≈ 0.14): heavy-tailed degrees
//!   with moderate clustering. Generated with BTER over a power-law
//!   degree sequence.

use pgb_graph::{Graph, GraphBuilder};
use pgb_models::{bter, BterParams, CcdSpec};
use rand::Rng;

/// Samples a truncated discrete power-law degree sequence with the given
/// exponent, support `[d_min, d_max]`, scaled so the sequence sums to
/// approximately `2 × target_edges`.
pub fn power_law_degrees<R: Rng + ?Sized>(
    n: usize,
    exponent: f64,
    d_min: u32,
    d_max: u32,
    target_edges: usize,
    rng: &mut R,
) -> Vec<u32> {
    assert!(d_min >= 1 && d_min <= d_max, "invalid degree range");
    // Inverse-CDF sampling of P(d) ∝ d^(−exponent) over [d_min, d_max].
    let weights: Vec<f64> = (d_min..=d_max).map(|d| (d as f64).powf(-exponent)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut degrees: Vec<u32> = (0..n)
        .map(|_| {
            let r: f64 = rng.gen_range(0.0f64..1.0);
            let idx = cdf.partition_point(|&c| c < r);
            d_min + idx.min(cdf.len() - 1) as u32
        })
        .collect();
    // Rescale to the target edge mass.
    let sum: u64 = degrees.iter().map(|&d| d as u64).sum();
    let scale = (2.0 * target_edges as f64) / sum as f64;
    for d in &mut degrees {
        *d = (((*d as f64) * scale).round() as u32).clamp(1, n as u32 - 1);
    }
    degrees
}

/// Facebook-like generator: ~55 dense communities with power-law-ish
/// sizes, each internally a near-clique neighbourhood (ring-plus-chords),
/// plus sparse inter-community edges.
pub fn facebook_like<R: Rng + ?Sized>(rng: &mut R) -> Graph {
    let n = 4_039usize;
    // Community size profile: a few hubs of ~350, tail of ~40.
    let mut sizes = Vec::new();
    let mut remaining = n;
    while remaining > 0 {
        let s = if sizes.len() < 9 { rng.gen_range(260..=330) } else { rng.gen_range(25..=90) };
        let s = s.min(remaining);
        sizes.push(s);
        remaining -= s;
    }
    let mut b = GraphBuilder::with_capacity(n, 90_000);
    let mut base = 0usize;
    let mut communities: Vec<(usize, usize)> = Vec::new();
    for &s in &sizes {
        communities.push((base, s));
        // Internal structure: each node links its k nearest ring
        // neighbours — clustering ≈ 3(k−2)/(4(k−1)) ≈ 0.7 for the dense
        // communities, matching ego-network cores.
        if s >= 3 {
            let k = (0.098 * s as f64).ceil() as usize;
            let k = k.clamp(2, s - 1);
            for i in 0..s {
                for off in 1..=k {
                    let j = (i + off) % s;
                    if i != j {
                        b.push((base + i) as u32, (base + j) as u32);
                    }
                }
            }
        }
        base += s;
    }
    // Sparse inter-community edges (~4% of total mass).
    for _ in 0..3_500 {
        let (b1, s1) = communities[rng.gen_range(0..communities.len())];
        let (b2, s2) = communities[rng.gen_range(0..communities.len())];
        if b1 == b2 {
            continue;
        }
        let u = (b1 + rng.gen_range(0..s1)) as u32;
        let v = (b2 + rng.gen_range(0..s2)) as u32;
        b.push(u, v);
    }
    b.build().expect("ids bounded by n")
}

/// Wiki-Vote-like generator: BTER over a heavy-tailed degree sequence
/// with a moderately decaying clustering profile.
pub fn wiki_vote_like<R: Rng + ?Sized>(rng: &mut R) -> Graph {
    let n = 7_115usize;
    let degrees = power_law_degrees(n, 1.55, 1, 300, 108_000, rng);
    bter(&degrees, &BterParams { ccd: CcdSpec::Decaying { c_max: 0.05, decay: 0.55 } }, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_queries::clustering::average_clustering;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_degrees_hit_edge_mass() {
        let mut rng = StdRng::seed_from_u64(10);
        let d = power_law_degrees(5_000, 2.0, 2, 400, 50_000, &mut rng);
        let sum: u64 = d.iter().map(|&x| x as u64).sum();
        assert!((sum as f64 - 100_000.0).abs() / 100_000.0 < 0.05, "sum {sum}");
        assert!(d.iter().all(|&x| x >= 1));
    }

    #[test]
    fn facebook_matches_table_vi_shape() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = facebook_like(&mut rng);
        assert_eq!(g.node_count(), 4_039);
        let m = g.edge_count() as f64;
        assert!((m - 88_234.0).abs() / 88_234.0 < 0.15, "edges {m}");
        let acc = average_clustering(&g);
        assert!((0.5..=0.72).contains(&acc), "ACC {acc}");
    }

    #[test]
    fn wiki_vote_matches_table_vi_shape() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = wiki_vote_like(&mut rng);
        assert_eq!(g.node_count(), 7_115);
        let m = g.edge_count() as f64;
        assert!((m - 103_689.0).abs() / 103_689.0 < 0.2, "edges {m}");
        let acc = average_clustering(&g);
        assert!((0.08..=0.22).contains(&acc), "ACC {acc}");
        // Heavy tail: the hub degree dwarfs the average (~29).
        assert!(g.max_degree() > 150, "max degree {}", g.max_degree());
    }
}
