//! Road-network stand-in (Minnesota: |V| = 2600, |E| ≈ 3300, ACC ≈ 0.016).
//!
//! Road networks are near-planar with degrees concentrated on 2–4 and
//! almost no triangles. A 50 × 52 grid with a third of its edges removed
//! reproduces the degree profile and sparsity; a sprinkling of diagonal
//! shortcuts supplies the small triangle count behind ACC ≈ 0.016.

use pgb_graph::Graph;
use pgb_models::lattice::irregular_grid;
use rand::Rng;

/// Grid rows (50 × 52 = 2600 nodes, Table VI's |V|).
const ROWS: usize = 50;
/// Grid columns.
const COLS: usize = 52;
/// Fraction of grid edges removed: the intact grid has 5098 edges and the
/// target is ≈ 3300 including diagonals.
const DROP: f64 = 0.37;
/// Number of diagonal shortcuts, calibrated so measured ACC ≈ 0.016.
const DIAGONALS: usize = 60;

/// Generates the Minnesota-like road network.
pub fn minnesota_like<R: Rng + ?Sized>(rng: &mut R) -> Graph {
    irregular_grid(ROWS, COLS, DROP, DIAGONALS, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_table_vi_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = minnesota_like(&mut rng);
        assert_eq!(g.node_count(), 2_600);
        let m = g.edge_count() as f64;
        assert!((m - 3_300.0).abs() / 3_300.0 < 0.10, "edges {m}");
        let acc = pgb_queries::clustering::average_clustering(&g);
        assert!((0.005..=0.035).contains(&acc), "ACC {acc}");
        assert!(g.max_degree() <= 6, "road networks have small degrees");
    }
}
