//! Collaboration-network stand-ins (academic type): unions of author
//! cliques, one per paper.
//!
//! * ca-HepPh: |V| = 12008, |E| ≈ 118.5k, ACC ≈ 0.61 — includes very
//!   large collaborations (hundreds of authors), hence the huge edge count
//!   at moderate node count.
//! * CA-GrQc: |V| = 5241, |E| ≈ 14.5k, ACC ≈ 0.53 — smaller collaborations.

use pgb_graph::Graph;
use pgb_models::cliques::{clique_cover, CliqueCoverParams};
use rand::Rng;

/// ca-HepPh-like generator. Mostly small papers with a heavy tail of
/// large collaborations: clique sizes are drawn from a two-regime mix.
pub fn hep_ph_like<R: Rng + ?Sized>(rng: &mut R) -> Graph {
    // The generic clique-cover model takes a uniform size range; to get
    // HepPh's size mix we run two covers over the same node set and merge.
    let n = 12_008;
    let small = clique_cover(
        &CliqueCoverParams { n, cliques: 2_900, size_min: 3, size_max: 8, recurrence: 0.1 },
        rng,
    );
    let large = clique_cover(
        &CliqueCoverParams { n, cliques: 50, size_min: 30, size_max: 80, recurrence: 0.0 },
        rng,
    );
    let mut edges = small.edge_vec();
    edges.extend(large.edges());
    Graph::from_edges(n, edges).expect("both covers share the node range")
}

/// CA-GrQc-like generator: small collaborations only.
pub fn gr_qc_like<R: Rng + ?Sized>(rng: &mut R) -> Graph {
    clique_cover(
        &CliqueCoverParams { n: 5_241, cliques: 1_750, size_min: 3, size_max: 6, recurrence: 0.05 },
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_queries::clustering::average_clustering;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hep_ph_matches_table_vi_shape() {
        let mut rng = StdRng::seed_from_u64(20);
        let g = hep_ph_like(&mut rng);
        assert_eq!(g.node_count(), 12_008);
        let m = g.edge_count() as f64;
        assert!((m - 118_521.0).abs() / 118_521.0 < 0.2, "edges {m}");
        let acc = average_clustering(&g);
        assert!((0.48..=0.75).contains(&acc), "ACC {acc}");
    }

    #[test]
    fn gr_qc_matches_ground_truth_shape() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = gr_qc_like(&mut rng);
        assert_eq!(g.node_count(), 5_241);
        let m = g.edge_count() as f64;
        assert!((m - 14_484.0).abs() / 14_484.0 < 0.2, "edges {m}");
        let acc = average_clustering(&g);
        assert!((0.40..=0.65).contains(&acc), "ACC {acc}");
    }
}
