//! Seeded synthetic **temporal** datasets: timestamped event logs for the
//! temporal scenario axis.
//!
//! There is no offline temporal graph in the paper's Table VI, so the
//! temporal benchmark ships a deterministic stand-in: a Barabási–Albert
//! growth process replayed as an event log. Each arriving node attaches to
//! `m` earlier nodes by preferential attachment, and the clock between
//! arrivals advances by `1 + Geometric(1/2)` ticks, so inter-event times
//! are irregular and window boundaries cut the growth process at
//! non-trivial points.
//!
//! ```
//! use pgb_datasets::temporal::TemporalDataset;
//!
//! let events = TemporalDataset::BaGrowth.events(0);
//! let seq = events.snapshots(4).unwrap();
//! assert_eq!(seq.window_count(), 4);
//! assert_eq!(seq.node_count(), 600);
//! ```

use pgb_graph::temporal::{SnapshotSequence, TemporalEdge};
use pgb_graph::{GraphError, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A timestamped edge log over a fixed node space, ready to be windowed
/// into a [`SnapshotSequence`].
#[derive(Clone, Debug)]
pub struct TemporalEvents {
    /// Number of nodes in the shared node space.
    pub n: usize,
    /// The event log, in arrival order (timestamps non-decreasing).
    pub events: Vec<TemporalEdge>,
}

impl TemporalEvents {
    /// Windows the log into `windows` equal-width snapshots.
    pub fn snapshots(&self, windows: usize) -> Result<SnapshotSequence, GraphError> {
        SnapshotSequence::build(self.n, &self.events, windows)
    }
}

/// The temporal datasets of the benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TemporalDataset {
    /// BA growth, 600 nodes, m = 3 — the small/CI-scale log.
    BaGrowth,
    /// BA growth, 2400 nodes, m = 4 — the larger harness-scale log.
    BaGrowthLarge,
}

impl TemporalDataset {
    /// All temporal datasets, small first.
    pub const ALL: [TemporalDataset; 2] =
        [TemporalDataset::BaGrowth, TemporalDataset::BaGrowthLarge];

    /// Display name used in the temporal CSV's dataset column.
    pub fn name(&self) -> &'static str {
        match self {
            TemporalDataset::BaGrowth => "BA-growth",
            TemporalDataset::BaGrowthLarge => "BA-growth-large",
        }
    }

    /// Node count of the grown graph.
    pub fn nodes(&self) -> usize {
        match self {
            TemporalDataset::BaGrowth => 600,
            TemporalDataset::BaGrowthLarge => 2_400,
        }
    }

    /// Attachment parameter `m` of the growth process.
    pub fn attachment(&self) -> usize {
        match self {
            TemporalDataset::BaGrowth => 3,
            TemporalDataset::BaGrowthLarge => 4,
        }
    }

    /// Generates the event log deterministically from `seed`. Mirrors
    /// [`crate::Dataset::generate`]'s seed mixing, with tags offset by 101
    /// so temporal streams never collide with the static datasets'.
    pub fn events(&self, seed: u64) -> TemporalEvents {
        let tag = *self as u64 + 101;
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(tag));
        ba_growth_events(self.nodes(), self.attachment(), &mut rng)
    }
}

/// A Barabási–Albert growth process recorded as a timestamped event log.
///
/// Nodes `0..m` form the seed clique's hub set; node `m` arrives first and
/// connects to all of them. Every later arrival `v` draws `m` distinct
/// targets by preferential attachment (uniform over the repeated-endpoints
/// vector, so probability ∝ degree), emitting its edges in draw order at
/// the arrival's timestamp. The clock starts at 0 and advances by
/// `1 + Geometric(1/2)` between arrivals.
pub fn ba_growth_events(n: usize, m: usize, rng: &mut StdRng) -> TemporalEvents {
    assert!(m >= 1, "attachment parameter m must be at least 1");
    assert!(n > m, "BA growth needs more than m nodes, got n = {n}, m = {m}");
    // Every edge endpoint appears once per incident edge; uniform draws
    // from this vector are degree-proportional.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * m * (n - m));
    let mut events = Vec::with_capacity(m * (n - m));
    let mut t: u64 = 0;
    for v in m..n {
        let mut targets: Vec<NodeId> = Vec::with_capacity(m);
        if v == m {
            // First arrival: no degrees exist yet — connect to all seeds.
            targets.extend(0..m as NodeId);
        } else {
            while targets.len() < m {
                let pick = endpoints[rng.gen_range(0..endpoints.len())];
                if !targets.contains(&pick) {
                    targets.push(pick);
                }
            }
        }
        for &u in &targets {
            events.push((v as NodeId, u, t));
            endpoints.push(v as NodeId);
            endpoints.push(u);
        }
        // 1 + Geometric(1/2): at least one tick, fair-coin tail.
        t += 1;
        while rng.gen_bool(0.5) {
            t += 1;
        }
    }
    TemporalEvents { n, events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_deterministic() {
        let a = TemporalDataset::BaGrowth.events(7);
        let b = TemporalDataset::BaGrowth.events(7);
        assert_eq!(a.events, b.events);
        let c = TemporalDataset::BaGrowth.events(8);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn edge_count_and_node_space_match_ba() {
        for d in TemporalDataset::ALL {
            let ev = d.events(0);
            let (n, m) = (d.nodes(), d.attachment());
            assert_eq!(ev.n, n, "{}", d.name());
            assert_eq!(ev.events.len(), m * (n - m), "{}", d.name());
            let seq = ev.snapshots(1).unwrap();
            assert_eq!(seq.node_count(), n);
            // No duplicate or self-loop edges in a growth process: the CSR
            // union keeps every event.
            assert_eq!(seq.snapshot(0).edge_count(), m * (n - m), "{}", d.name());
        }
    }

    #[test]
    fn timestamps_are_strictly_increasing_per_arrival() {
        let ev = TemporalDataset::BaGrowth.events(3);
        let m = TemporalDataset::BaGrowth.attachment();
        for pair in ev.events.chunks(m).collect::<Vec<_>>().windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(a.iter().all(|e| e.2 == a[0].2), "one timestamp per arrival");
            assert!(b[0].2 > a[0].2, "clock advances by at least one tick");
        }
    }

    #[test]
    fn windows_split_growth_into_growing_prefixes() {
        let seq = TemporalDataset::BaGrowth.events(0).snapshots(4).unwrap();
        assert_eq!(seq.window_count(), 4);
        for w in 0..4 {
            assert!(seq.snapshot(w).edge_count() > 0, "window {w} non-trivial");
        }
    }

    #[test]
    fn first_arrival_connects_to_all_seeds() {
        let ev = ba_growth_events(10, 3, &mut StdRng::seed_from_u64(0));
        assert_eq!(&ev.events[..3], &[(3, 0, 0), (3, 1, 0), (3, 2, 0)]);
    }

    #[test]
    fn temporal_tags_decorrelate_from_static_datasets() {
        // Same user seed, different streams: the +101 tag offset keeps the
        // temporal logs independent of every static dataset's RNG.
        let ev = TemporalDataset::BaGrowth.events(0);
        let ev2 = TemporalDataset::BaGrowthLarge.events(0);
        assert_ne!(ev.events[..30], ev2.events[..30]);
    }
}
