//! P2P-network stand-in (Gnutella: |V| = 22687, |E| ≈ 54.7k,
//! ACC ≈ 0.005).
//!
//! Gnutella overlays have mildly heavy-tailed degrees and essentially no
//! clustering (peers connect to strangers). A configuration-model draw
//! over a truncated power-law degree sequence reproduces both properties.

use crate::social::power_law_degrees;
use pgb_graph::Graph;
use pgb_models::configuration_model;
use rand::Rng;

/// Generates the Gnutella-like P2P graph.
pub fn gnutella_like<R: Rng + ?Sized>(rng: &mut R) -> Graph {
    let n = 22_687usize;
    // Mild tail (many leaf peers, ultrapeers up to ~90 connections).
    let degrees = power_law_degrees(n, 1.9, 1, 90, 54_705, rng);
    configuration_model(&degrees, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_queries::clustering::average_clustering;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_table_vi_shape() {
        let mut rng = StdRng::seed_from_u64(40);
        let g = gnutella_like(&mut rng);
        assert_eq!(g.node_count(), 22_687);
        let m = g.edge_count() as f64;
        assert!((m - 54_705.0).abs() / 54_705.0 < 0.1, "edges {m}");
        let acc = average_clustering(&g);
        assert!(acc < 0.02, "ACC {acc}");
    }
}
