//! Property-based tests for sliding-window budget composition: no
//! interleaving of spends across windows can overdraw a window share or the
//! overall grant, failed spends mutate nothing, and draining every window
//! consumes the grant exactly (up to the accountant's FP slack).

use pgb_dp::window::WindowComposition;
use proptest::prelude::*;

proptest! {
    #[test]
    fn interleaved_spends_never_overdraw(
        total in 0.01f64..10.0,
        weights in proptest::collection::vec(0.1f64..10.0, 1..6),
        // (window selector, fraction of the window share to request)
        spends in proptest::collection::vec((0usize..6, 0.01f64..0.9), 1..40),
    ) {
        let mut comp = WindowComposition::weighted(total, &weights).unwrap();
        for (sel, frac) in spends {
            let w = sel % weights.len();
            let _ = comp.spend(w, "step", comp.share(w) * frac); // may fail
            // Neither level is ever overdrawn, whatever the interleaving.
            prop_assert!(comp.spent() <= comp.total() + 1e-9);
            for w in 0..comp.windows() {
                prop_assert!(comp.window_spent(w) <= comp.share(w) + 1e-9);
            }
        }
        // The labelled ledger accounts for every accepted spend exactly.
        let entry_sum: f64 = comp.entries().iter().map(|&(_, e)| e).sum();
        prop_assert_eq!(entry_sum.to_bits(), comp.spent().to_bits());
    }

    #[test]
    fn failed_spends_mutate_nothing(
        total in 0.01f64..10.0,
        windows in 1usize..6,
    ) {
        let mut comp = WindowComposition::even(total, windows).unwrap();
        let before_spent = comp.spent();
        let before_entries = comp.entries().len();
        // Over a window share (but possibly within the grant): must fail
        // without moving anything.
        prop_assert!(comp.spend(0, "over", comp.share(0) * 1.5).is_err());
        prop_assert_eq!(comp.spent().to_bits(), before_spent.to_bits());
        prop_assert_eq!(comp.entries().len(), before_entries);
        prop_assert_eq!(comp.window_spent(0), 0.0);
    }

    #[test]
    fn draining_all_windows_consumes_the_grant(
        total in 0.01f64..10.0,
        weights in proptest::collection::vec(0.1f64..10.0, 1..8),
    ) {
        let mut comp = WindowComposition::weighted(total, &weights).unwrap();
        let drained: f64 = (0..comp.windows())
            .map(|w| comp.spend_window_remaining(w, "window measure"))
            .sum();
        // Σ window spends ≡ grant: the shares sum to the total by the
        // split arithmetic, and the drain clamps to the grant remainder,
        // so nothing is left over (and nothing was overdrawn).
        prop_assert!((drained - total).abs() < 1e-9, "drained {drained} vs {total}");
        prop_assert!(comp.remaining() < 1e-9);
        prop_assert!(comp.spent() <= comp.total() + 1e-9);
    }

    #[test]
    fn partial_spend_then_drain_still_respects_shares(
        total in 0.1f64..10.0,
        windows in 2usize..6,
        frac in 0.1f64..0.8,
    ) {
        let mut comp = WindowComposition::even(total, windows).unwrap();
        comp.spend(0, "partial", comp.share(0) * frac).unwrap();
        for w in 0..windows {
            comp.spend_window_remaining(w, "drain");
        }
        prop_assert!((comp.spent() - total).abs() < 1e-9);
        for w in 0..windows {
            prop_assert!(comp.window_spent(w) <= comp.share(w) + 1e-9);
        }
    }
}
