//! Statistical conformance of the DP primitives against their closed
//! forms, via the shared `pgb_dp::testing` harness. Seeds are fixed and
//! every bound allows 5 standard errors of the relevant estimator (see the
//! tolerance discipline in `pgb_dp::testing`), so failures indicate real
//! distributional drift, not unlucky draws.

use pgb_dp::exponential::{exponential_mechanism, exponential_mechanism_sparse};
use pgb_dp::geometric::sample_two_sided_geometric;
use pgb_dp::laplace::sample_laplace;
use pgb_dp::testing::{assert_chi_square, assert_mean, assert_variance};
use rand::rngs::StdRng;
use rand::SeedableRng;

const Z: f64 = 5.0;

#[test]
fn laplace_scale_matches_closed_form() {
    // Lap(b): mean 0, Var = 2b², E|X| = b — across the scales the
    // mechanisms actually use (1/ε for ε ∈ {0.1 … 10}).
    let mut rng = StdRng::seed_from_u64(1001);
    for scale in [0.1, 1.0, 10.0] {
        let samples: Vec<f64> = (0..100_000).map(|_| sample_laplace(scale, &mut rng)).collect();
        let var = 2.0 * scale * scale;
        assert_mean(&samples, 0.0, var, Z);
        assert_variance(&samples, var, Z);
        let abs: Vec<f64> = samples.iter().map(|x| x.abs()).collect();
        // |X| is Exp(1/b): mean b, variance b².
        assert_mean(&abs, scale, scale * scale, Z);
    }
}

#[test]
fn two_sided_geometric_variance_matches_closed_form() {
    // TwoSidedGeometric(α): mean 0, Var = 2α/(1−α)². α = e^(−ε/Δ) for the
    // ε values the geometric mechanism sees.
    let mut rng = StdRng::seed_from_u64(1002);
    for epsilon in [0.5f64, 1.0, 2.0] {
        let alpha = (-epsilon).exp();
        let samples: Vec<f64> =
            (0..100_000).map(|_| sample_two_sided_geometric(alpha, &mut rng) as f64).collect();
        let var = 2.0 * alpha / (1.0 - alpha).powi(2);
        assert_mean(&samples, 0.0, var, Z);
        assert_variance(&samples, var, Z);
    }
}

/// Closed-form exponential-mechanism selection probabilities:
/// `P(i) ∝ exp(ε·qᵢ/(2Δq))`.
fn softmax_probs(scores: &[f64], sensitivity: f64, epsilon: f64) -> Vec<f64> {
    let factor = epsilon / (2.0 * sensitivity);
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = scores.iter().map(|&s| (factor * (s - max)).exp()).collect();
    let total: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / total).collect()
}

#[test]
fn exponential_mechanism_selection_frequencies_match_softmax() {
    let mut rng = StdRng::seed_from_u64(1003);
    let scores = [0.0, 1.0, 2.0, 3.5];
    let (sensitivity, epsilon) = (1.0, 2.0);
    let probs = softmax_probs(&scores, sensitivity, epsilon);
    let trials = 50_000;
    let mut counts = vec![0u64; scores.len()];
    for _ in 0..trials {
        counts[exponential_mechanism(&scores, sensitivity, epsilon, &mut rng)] += 1;
    }
    assert_chi_square(&counts, &probs, Z);
}

#[test]
fn sparse_exponential_mechanism_matches_same_softmax() {
    // The sparse form must realise the *same* distribution as densifying:
    // 6 candidates, two scored, four implicit zeros.
    let mut rng = StdRng::seed_from_u64(1004);
    let dense = [0.0, 2.0, 0.0, 1.0, 0.0, 0.0];
    let sparse = [(1usize, 2.0f64), (3, 1.0)];
    let (sensitivity, epsilon) = (1.0, 2.0);
    let probs = softmax_probs(&dense, sensitivity, epsilon);
    let trials = 50_000;
    let mut counts = vec![0u64; dense.len()];
    for _ in 0..trials {
        counts
            [exponential_mechanism_sparse(&sparse, dense.len(), sensitivity, epsilon, &mut rng)] +=
            1;
    }
    assert_chi_square(&counts, &probs, Z);
}
