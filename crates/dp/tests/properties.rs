//! Property-based tests for the DP machinery: budget arithmetic can never
//! overspend, mechanism outputs stay in range, and calibration helpers
//! are monotone in their parameters.

use pgb_dp::budget::Budget;
use pgb_dp::exponential::{exponential_mechanism, exponential_mechanism_sparse};
use pgb_dp::geometric::geometric_mechanism;
use pgb_dp::laplace::{laplace_mechanism, noisy_count, sample_laplace};
use pgb_dp::randomized_response::{rr_keep_probability, rr_unbias};
use pgb_dp::sensitivity::{smooth_sensitivity, SmoothParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn budget_split_preserves_total(
        total in 0.01f64..100.0,
        w1 in 0.1f64..10.0,
        w2 in 0.1f64..10.0,
        w3 in 0.1f64..10.0,
    ) {
        let mut b = Budget::new(total).unwrap();
        let shares = b.split(&[w1, w2, w3]).unwrap();
        let sum: f64 = shares.iter().sum();
        prop_assert!((sum - total).abs() < 1e-9, "shares sum {sum} vs {total}");
        prop_assert!(shares.iter().all(|&s| s > 0.0));
        prop_assert!(b.remaining() < 1e-12);
    }

    #[test]
    fn budget_never_overspends(
        total in 0.01f64..10.0,
        spends in proptest::collection::vec(0.001f64..1.0, 1..20),
    ) {
        let mut b = Budget::new(total).unwrap();
        for s in spends {
            let _ = b.spend(s); // may fail; must never corrupt state
            prop_assert!(b.spent() <= b.total() + 1e-9);
            prop_assert!(b.remaining() >= 0.0);
        }
    }

    #[test]
    fn laplace_sample_finite(scale in 0.001f64..1e6, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = sample_laplace(scale, &mut rng);
        prop_assert!(x.is_finite());
    }

    #[test]
    fn laplace_mechanism_finite(
        value in -1e9f64..1e9,
        sens in 0.01f64..100.0,
        eps in 0.01f64..100.0,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = laplace_mechanism(value, sens, eps, &mut rng);
        prop_assert!(x.is_finite());
    }

    #[test]
    fn noisy_count_never_negative(
        count in 0u64..1_000_000,
        eps in 0.001f64..10.0,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = noisy_count(count, 1.0, eps, &mut rng);
        // u64 by type; also bounded sanely for large ε.
        if eps >= 10.0 {
            prop_assert!(c <= count * 2 + 100);
        }
    }

    #[test]
    fn geometric_mechanism_in_range(
        count in 0u64..10_000,
        eps in 0.01f64..20.0,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let _ = geometric_mechanism(count, 1.0, eps, &mut rng); // must not panic/wrap
    }

    #[test]
    fn exponential_returns_valid_index(
        scores in proptest::collection::vec(-1e3f64..1e3, 1..64),
        eps in 0.01f64..50.0,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let i = exponential_mechanism(&scores, 1.0, eps, &mut rng);
        prop_assert!(i < scores.len());
    }

    #[test]
    fn sparse_exponential_valid_index(
        total in 1usize..10_000,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nonzero: Vec<(usize, f64)> =
            (0..total.min(8)).map(|i| (i * (total / 8).max(1) % total, i as f64)).collect();
        let mut dedup = nonzero.clone();
        dedup.sort_unstable_by_key(|a| a.0);
        dedup.dedup_by_key(|x| x.0);
        let i = exponential_mechanism_sparse(&dedup, total, 1.0, 1.0, &mut rng);
        prop_assert!(i < total);
    }

    #[test]
    fn rr_probabilities_consistent(eps in 0.01f64..30.0) {
        let p = rr_keep_probability(eps);
        prop_assert!(p > 0.5 && p < 1.0);
        // Unbias of the exact expectation recovers the truth.
        let total = 1000.0;
        let ones = 137.0;
        let expected_noisy = ones * p + (total - ones) * (1.0 - p);
        let est = rr_unbias(expected_noisy, total, eps);
        prop_assert!((est - ones).abs() < 1e-6, "est {est}");
    }

    #[test]
    fn budget_arbitrary_op_sequences_never_overdraw(
        total in 0.01f64..10.0,
        ops in proptest::collection::vec((0usize..3, 0.001f64..2.0, 1usize..4), 1..24),
    ) {
        // Ops: 0 ⇒ spend(x), 1 ⇒ split over k equal weights, 2 ⇒
        // spend_remaining. Whatever interleaving, the accounting
        // invariants hold after every step: nothing spent beyond the
        // total (modulo the documented fp slack), and consumed +
        // remaining ≡ ε at all times.
        let mut b = Budget::new(total).unwrap();
        for (op, x, k) in ops {
            let before = b.spent();
            match op {
                0 => {
                    match b.spend(x) {
                        Ok(granted) => prop_assert!((granted - x).abs() < 1e-12),
                        // A failed spend must not consume anything.
                        Err(_) => prop_assert!((b.spent() - before).abs() < 1e-12),
                    }
                }
                1 => {
                    if let Ok(shares) = b.split(&vec![1.0; k]) {
                        // A split consumes exactly what it hands out.
                        let handed: f64 = shares.iter().sum();
                        prop_assert!((b.spent() - before - handed).abs() < 1e-9);
                        prop_assert!(shares.iter().all(|&s| s > 0.0));
                    }
                }
                _ => {
                    let r = b.spend_remaining();
                    prop_assert!((b.spent() - before - r).abs() < 1e-12);
                }
            }
            prop_assert!(b.spent() <= b.total() + 1e-9, "overdraw: {} > {}", b.spent(), b.total());
            prop_assert!((b.spent() + b.remaining() - total).abs() < 1e-9,
                "consumed {} + remaining {} != total {total}", b.spent(), b.remaining());
        }
    }

    #[test]
    fn exhausted_budget_always_errors(
        total in 0.01f64..10.0,
        request in 0.001f64..10.0,
        k in 1usize..5,
        drain_by_split in 0usize..2,
    ) {
        // However the budget was drained — split or spend_remaining —
        // every further spend and split must error, and the error must be
        // Exhausted (not a validation artefact).
        let mut b = Budget::new(total).unwrap();
        if drain_by_split == 1 {
            b.split(&vec![1.0; k]).unwrap();
        } else {
            b.spend_remaining();
        }
        prop_assert!(b.remaining() < 1e-12);
        let spend_exhausted =
            matches!(b.spend(request).unwrap_err(), pgb_dp::BudgetError::Exhausted { .. });
        prop_assert!(spend_exhausted, "spend after drain must report Exhausted");
        let split_exhausted =
            matches!(b.split(&vec![1.0; k]).unwrap_err(), pgb_dp::BudgetError::Exhausted { .. });
        prop_assert!(split_exhausted, "split after drain must report Exhausted");
    }

    #[test]
    fn smooth_sensitivity_bounds(
        d_max in 1usize..1000,
        eps in 0.05f64..10.0,
    ) {
        let params = SmoothParams::for_laplace(eps, 0.01);
        let ls = |k: usize| 4.0 * (d_max + k) as f64 + 1.0;
        let s = smooth_sensitivity(ls, params.beta, 100_000);
        // At least the local sensitivity, at most global-ish (4n + 1).
        prop_assert!(s >= ls(0));
        prop_assert!(s <= 4.0 * 200_000.0 + 1.0);
    }
}
