//! Sliding-window budget composition for temporal releases.
//!
//! A temporal mechanism re-releases once per time window, and each window's
//! release must be paid for out of one overall grant: by sequential
//! composition, a per-window split `Σ_w ε_w ≤ ε` gives ε-DP over the whole
//! sequence. [`WindowComposition`] enforces that with two nested invariants:
//!
//! 1. **the grant** — every spend goes through one [`BudgetAccountant`], so
//!    the labelled global ledger can never be overdrawn and stays auditable
//!    (`entries()` sums to `spent()` exactly, as with any accountant);
//! 2. **the window shares** — the grant is pre-split proportionally to the
//!    window weights with the same exact-FP arithmetic as [`Budget::split`]
//!    (`total · w / Σw`), and a spend against window `w` is additionally
//!    checked against that window's share (with the usual
//!    `EPS_SLACK` tolerance), so no interleaving of spends across windows
//!    can push one window past its allocation.
//!
//! Failed spends mutate nothing at either level.

use std::borrow::Cow;

use crate::budget::{BudgetAccountant, BudgetError, EPS_SLACK};

/// A per-window ε split over one [`BudgetAccountant`] grant.
///
/// ```
/// use pgb_dp::window::WindowComposition;
///
/// let mut comp = WindowComposition::even(1.0, 4).unwrap();
/// for w in 0..4 {
///     let share = comp.spend_window_remaining(w, "window measure");
///     assert!((share - 0.25).abs() < 1e-12);
/// }
/// assert!((comp.spent() - 1.0).abs() < 1e-12);
/// assert_eq!(comp.entries().len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct WindowComposition {
    accountant: BudgetAccountant,
    shares: Vec<f64>,
    spent: Vec<f64>,
}

impl WindowComposition {
    /// An even split of `total` ε over `windows` windows.
    pub fn even(total: f64, windows: usize) -> Result<Self, BudgetError> {
        if windows == 0 {
            return Err(BudgetError::InvalidSplit);
        }
        Self::weighted(total, &vec![1.0; windows])
    }

    /// A split of `total` ε proportional to `weights` (one per window).
    /// Weights must be positive and finite; shares are `total · w / Σw`,
    /// matching [`crate::Budget::split`]'s arithmetic exactly.
    pub fn weighted(total: f64, weights: &[f64]) -> Result<Self, BudgetError> {
        let accountant = BudgetAccountant::new(total)?;
        if weights.is_empty() || weights.iter().any(|&w| !(w > 0.0 && w.is_finite())) {
            return Err(BudgetError::InvalidSplit);
        }
        let sum: f64 = weights.iter().sum();
        let shares: Vec<f64> = weights.iter().map(|w| total * w / sum).collect();
        let spent = vec![0.0; weights.len()];
        Ok(WindowComposition { accountant, shares, spent })
    }

    /// Number of windows.
    pub fn windows(&self) -> usize {
        self.shares.len()
    }

    /// The overall grant.
    pub fn total(&self) -> f64 {
        self.accountant.total()
    }

    /// ε consumed across all windows.
    pub fn spent(&self) -> f64 {
        self.accountant.spent()
    }

    /// ε still available in the overall grant.
    pub fn remaining(&self) -> f64 {
        self.accountant.remaining()
    }

    /// Window `w`'s allocated share. Panics if out of range.
    pub fn share(&self, w: usize) -> f64 {
        self.shares[w]
    }

    /// ε consumed by window `w`. Panics if out of range.
    pub fn window_spent(&self, w: usize) -> f64 {
        self.spent[w]
    }

    /// ε still available to window `w`. Panics if out of range.
    pub fn window_remaining(&self, w: usize) -> f64 {
        (self.shares[w] - self.spent[w]).max(0.0)
    }

    /// The labelled `(label, ε)` entries of the underlying accountant, in
    /// spend order across all windows.
    pub fn entries(&self) -> &[(Cow<'static, str>, f64)] {
        self.accountant.entries()
    }

    /// Registers a labelled spend of `epsilon` against window `w`, checking
    /// the window share first and the overall grant second. Errors (from
    /// either level) mutate nothing. Panics if `w` is out of range.
    pub fn spend(
        &mut self,
        w: usize,
        label: impl Into<Cow<'static, str>>,
        epsilon: f64,
    ) -> Result<f64, BudgetError> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(BudgetError::InvalidEpsilon(epsilon));
        }
        if self.spent[w] + epsilon > self.shares[w] + EPS_SLACK {
            return Err(BudgetError::Exhausted {
                requested: epsilon,
                remaining: self.window_remaining(w),
            });
        }
        let e = self.accountant.spend(label, epsilon)?;
        self.spent[w] += e;
        Ok(e)
    }

    /// Drains window `w`'s remaining share (clamped to the grant remainder,
    /// so accumulated FP slack can never overdraw the accountant) under
    /// `label` and returns it. A drained window records nothing and returns
    /// 0.0. Panics if `w` is out of range.
    pub fn spend_window_remaining(&mut self, w: usize, label: impl Into<Cow<'static, str>>) -> f64 {
        let r = self.window_remaining(w).min(self.accountant.remaining());
        if r > 0.0 {
            self.accountant.spend(label, r).expect("clamped to the grant remainder");
            self.spent[w] += r;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_shares() {
        let comp = WindowComposition::even(2.0, 4).unwrap();
        assert_eq!(comp.windows(), 4);
        for w in 0..4 {
            assert!((comp.share(w) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_split_matches_budget_split_arithmetic() {
        let comp = WindowComposition::weighted(2.0, &[1.0, 3.0]).unwrap();
        assert!((comp.share(0) - 0.5).abs() < 1e-12);
        assert!((comp.share(1) - 1.5).abs() < 1e-12);
        // Same inputs through Budget::split must agree bit-for-bit.
        let mut b = crate::Budget::new(2.0).unwrap();
        let shares = b.split(&[1.0, 3.0]).unwrap();
        assert_eq!(comp.share(0).to_bits(), shares[0].to_bits());
        assert_eq!(comp.share(1).to_bits(), shares[1].to_bits());
    }

    #[test]
    fn window_overdraw_rejected_even_with_global_room() {
        let mut comp = WindowComposition::even(1.0, 2).unwrap();
        // 0.6 fits the grant (1.0) but not window 0's share (0.5).
        let err = comp.spend(0, "phase", 0.6).unwrap_err();
        assert!(matches!(err, BudgetError::Exhausted { .. }));
        // Nothing moved, at either level.
        assert_eq!(comp.spent(), 0.0);
        assert_eq!(comp.window_spent(0), 0.0);
        assert!(comp.entries().is_empty());
        // The other window is untouched and spendable.
        comp.spend(1, "phase", 0.5).unwrap();
        assert!((comp.spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interleaved_spends_respect_both_levels() {
        let mut comp = WindowComposition::even(1.0, 2).unwrap();
        comp.spend(0, "a", 0.25).unwrap();
        comp.spend(1, "b", 0.25).unwrap();
        comp.spend(0, "c", 0.25).unwrap();
        assert!(comp.spend(0, "over", 0.25).is_err()); // window 0 drained
        comp.spend(1, "d", 0.25).unwrap();
        assert!((comp.spent() - 1.0).abs() < 1e-12);
        let entry_sum: f64 = comp.entries().iter().map(|&(_, e)| e).sum();
        assert_eq!(entry_sum, comp.spent());
    }

    #[test]
    fn drain_sums_to_grant() {
        let mut comp = WindowComposition::weighted(1.0, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let drained: f64 = (0..4).map(|w| comp.spend_window_remaining(w, "w")).sum();
        assert!((drained - 1.0).abs() < 1e-9);
        assert!(comp.remaining() < 1e-9);
        // Re-draining yields nothing and records nothing.
        assert_eq!(comp.spend_window_remaining(0, "again"), 0.0);
        assert_eq!(comp.entries().len(), 4);
    }

    #[test]
    fn single_window_share_is_exact() {
        // total · 1 / 1 is exact in IEEE arithmetic, so a single-window
        // composition must hand back the grant bit-for-bit (the
        // single-window ≡ static regression depends on this).
        for total in [0.1, 1.0, 3.7] {
            let mut comp = WindowComposition::even(total, 1).unwrap();
            let share = comp.spend_window_remaining(0, "all");
            assert_eq!(share.to_bits(), total.to_bits());
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(WindowComposition::even(0.0, 2).is_err());
        assert!(WindowComposition::even(1.0, 0).is_err());
        assert!(WindowComposition::weighted(1.0, &[]).is_err());
        assert!(WindowComposition::weighted(1.0, &[1.0, 0.0]).is_err());
        assert!(WindowComposition::weighted(1.0, &[1.0, -1.0]).is_err());
        assert!(WindowComposition::weighted(1.0, &[1.0, f64::NAN]).is_err());
        let mut comp = WindowComposition::even(1.0, 2).unwrap();
        assert!(comp.spend(0, "zero", 0.0).is_err());
        assert!(comp.spend(0, "neg", -0.1).is_err());
    }
}
