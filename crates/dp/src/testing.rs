//! Statistical assertion helpers for testing randomised mechanisms.
//!
//! The DP mechanisms in this crate have closed-form moments (Laplace:
//! `Var = 2b²`, two-sided geometric: `Var = 2α/(1−α)²`) and closed-form
//! selection probabilities (exponential mechanism: softmax in
//! `ε·q/(2Δq)`). Their tests draw large fixed-seed samples and check the
//! empirical statistics against those forms; this module centralises the
//! estimators and the tolerance discipline so every mechanism test states
//! its bound the same way.
//!
//! ## Tolerance discipline
//!
//! All assertions take a `z` budget in *standard errors* of the estimator
//! under the null (the sample really does follow the claimed law):
//!
//! * [`assert_mean`] — the sample mean of `N` draws has standard error
//!   `σ/√N`; the assertion allows `z` of them.
//! * [`assert_variance`] — the sample variance is asymptotically normal
//!   with standard error `√((m₄ − m₂²)/N)`, estimated from the sample's
//!   own fourth moment; the assertion allows `z` of them.
//! * [`assert_chi_square`] — Pearson's statistic against expected category
//!   probabilities is asymptotically `χ²(df)` with `df = k − 1`; the
//!   assertion allows `df + z·√(2·df)` (mean plus `z` standard deviations
//!   of the χ² law).
//!
//! Tests in this workspace use `z = 5` with samples of 10⁴–10⁵ draws:
//! under the null a 5σ excursion has probability below 10⁻⁶, and the
//! seeds are fixed, so a failure means the implementation (or the claimed
//! closed form) is wrong — not an unlucky run.

/// Sample size, mean, and (population-normalised) variance of a sample.
#[derive(Clone, Copy, Debug)]
pub struct Moments {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample variance (`Σ(x−x̄)²/n`).
    pub variance: f64,
    /// Fourth central moment (`Σ(x−x̄)⁴/n`) — drives the variance
    /// estimator's own standard error.
    pub fourth: f64,
}

/// Computes [`Moments`] in two passes.
///
/// # Panics
/// Panics on an empty sample.
pub fn moments(samples: &[f64]) -> Moments {
    assert!(!samples.is_empty(), "moments of an empty sample");
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let (mut m2, mut m4) = (0.0, 0.0);
    for &x in samples {
        let d = x - mean;
        m2 += d * d;
        m4 += d * d * d * d;
    }
    Moments { n, mean, variance: m2 / n as f64, fourth: m4 / n as f64 }
}

/// Asserts the sample mean is within `z` standard errors (`z·σ/√N`, with
/// `σ² = expected_variance`) of `expected_mean`.
///
/// # Panics
/// Panics with both the observed and allowed deviation when the bound is
/// exceeded, and on invalid inputs (empty sample, non-positive variance).
pub fn assert_mean(samples: &[f64], expected_mean: f64, expected_variance: f64, z: f64) {
    assert!(expected_variance > 0.0, "expected variance must be positive");
    let m = moments(samples);
    let tol = z * (expected_variance / m.n as f64).sqrt();
    let dev = (m.mean - expected_mean).abs();
    assert!(
        dev <= tol,
        "sample mean {:.6} deviates from {expected_mean:.6} by {dev:.6} > {tol:.6} ({z}σ, N = {})",
        m.mean,
        m.n
    );
}

/// Asserts the sample variance is within `z` standard errors of
/// `expected_variance`, using the sample's own fourth moment for the
/// estimator's standard error `√((m₄ − m₂²)/N)`.
///
/// # Panics
/// Panics with both the observed and allowed deviation when the bound is
/// exceeded, and on invalid inputs.
pub fn assert_variance(samples: &[f64], expected_variance: f64, z: f64) {
    assert!(expected_variance > 0.0, "expected variance must be positive");
    let m = moments(samples);
    let se = ((m.fourth - m.variance * m.variance).max(0.0) / m.n as f64).sqrt();
    // Guard against a degenerate fourth-moment estimate on tiny samples.
    let tol = z * se.max(expected_variance * 1e-3);
    let dev = (m.variance - expected_variance).abs();
    assert!(
        dev <= tol,
        "sample variance {:.6} deviates from {expected_variance:.6} by {dev:.6} > {tol:.6} \
         ({z}σ, N = {})",
        m.variance,
        m.n
    );
}

/// Pearson's χ² statistic of observed category counts against expected
/// probabilities.
///
/// # Panics
/// Panics if the slices' lengths differ, the counts are all zero, or the
/// probabilities do not sum to ≈ 1.
pub fn chi_square(observed: &[u64], probs: &[f64]) -> f64 {
    assert_eq!(observed.len(), probs.len(), "counts and probabilities must align");
    let total: u64 = observed.iter().sum();
    assert!(total > 0, "chi-square of an empty sample");
    let psum: f64 = probs.iter().sum();
    assert!((psum - 1.0).abs() < 1e-9, "probabilities sum to {psum}, not 1");
    observed
        .iter()
        .zip(probs)
        .map(|(&o, &p)| {
            let e = total as f64 * p;
            (o as f64 - e).powi(2) / e
        })
        .sum()
}

/// Asserts Pearson's χ² statistic stays below `df + z·√(2·df)` — the χ²
/// law's mean plus `z` of its standard deviations, `df = k − 1`.
///
/// # Panics
/// Panics with the statistic and the threshold when the bound is exceeded.
pub fn assert_chi_square(observed: &[u64], probs: &[f64], z: f64) {
    let df = (observed.len() - 1).max(1) as f64;
    let threshold = df + z * (2.0 * df).sqrt();
    let stat = chi_square(observed, probs);
    assert!(
        stat <= threshold,
        "χ² = {stat:.3} exceeds {threshold:.3} (df = {df}, {z}σ) for counts {observed:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_of_known_sample() {
        // Variance of {-1, 1} is 1, fourth moment 1.
        let m = moments(&[-1.0, 1.0, -1.0, 1.0]);
        assert_eq!(m.n, 4);
        assert_eq!(m.mean, 0.0);
        assert_eq!(m.variance, 1.0);
        assert_eq!(m.fourth, 1.0);
    }

    #[test]
    fn mean_assertion_accepts_truth_rejects_shift() {
        let samples: Vec<f64> = (0..10_000).map(|i| (i % 2) as f64 * 2.0 - 1.0).collect();
        assert_mean(&samples, 0.0, 1.0, 5.0);
        let shifted = std::panic::catch_unwind(|| assert_mean(&samples, 0.5, 1.0, 5.0));
        assert!(shifted.is_err());
    }

    #[test]
    fn variance_assertion_accepts_truth_rejects_inflation() {
        let samples: Vec<f64> = (0..10_000).map(|i| (i % 2) as f64 * 2.0 - 1.0).collect();
        assert_variance(&samples, 1.0, 5.0);
        let wrong = std::panic::catch_unwind(|| assert_variance(&samples, 2.0, 5.0));
        assert!(wrong.is_err());
    }

    #[test]
    fn chi_square_zero_for_exact_match() {
        let stat = chi_square(&[250, 250, 250, 250], &[0.25; 4]);
        assert!(stat.abs() < 1e-12);
    }

    #[test]
    fn chi_square_rejects_skewed_counts() {
        let skewed = std::panic::catch_unwind(|| {
            assert_chi_square(&[900, 100, 0, 0], &[0.25; 4], 5.0);
        });
        assert!(skewed.is_err());
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn chi_square_length_mismatch_panics() {
        chi_square(&[1, 2], &[0.5, 0.25, 0.25]);
    }
}
