//! The Laplace mechanism (Dwork et al., TCC 2006).
//!
//! Adds `Lap(Δf / ε)` noise to a numeric query with global sensitivity
//! `Δf`, giving ε-DP. This is the workhorse perturbation of TmF, PrivGraph,
//! DGG, and the dK-1 variant of DP-dK.

use rand::Rng;

/// Draws one sample from the Laplace distribution with the given `scale`
/// (mean 0), via inverse-CDF sampling.
///
/// # Panics
/// Panics if `scale` is not positive and finite.
pub fn sample_laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    assert!(scale > 0.0 && scale.is_finite(), "Laplace scale must be positive, got {scale}");
    // u ∈ (-1/2, 1/2); the open interval keeps ln() finite.
    let u: f64 = rng.gen_range(-0.5f64..0.5f64);
    let u = if u == -0.5 { -0.5 + f64::EPSILON } else { u };
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// The Laplace mechanism: `value + Lap(sensitivity / ε)`.
///
/// # Panics
/// Panics if `sensitivity ≤ 0` or `ε ≤ 0`.
pub fn laplace_mechanism<R: Rng + ?Sized>(
    value: f64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
    assert!(sensitivity > 0.0, "sensitivity must be positive, got {sensitivity}");
    value + sample_laplace(sensitivity / epsilon, rng)
}

/// Applies the Laplace mechanism element-wise to a vector query whose
/// *total* L1 sensitivity is `sensitivity` (the noise scale is shared, as
/// in the vector Laplace mechanism).
pub fn laplace_mechanism_vec<R: Rng + ?Sized>(
    values: &[f64],
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> Vec<f64> {
    let scale = sensitivity / epsilon;
    assert!(scale > 0.0 && scale.is_finite(), "invalid Laplace scale {scale}");
    values.iter().map(|&v| v + sample_laplace(scale, rng)).collect()
}

/// Noisy non-negative integer count: Laplace mechanism followed by rounding
/// and clamping at zero — the standard post-processing PGB's algorithms use
/// for counts (edge counts, degree values, community sizes).
pub fn noisy_count<R: Rng + ?Sized>(
    count: u64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> u64 {
    let noisy = laplace_mechanism(count as f64, sensitivity, epsilon, rng);
    noisy.round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn laplace_mean_and_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let scale = 2.0;
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_laplace(scale, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        // E|X| = scale for Laplace.
        let mean_abs = samples.iter().map(|x| x.abs()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((mean_abs - scale).abs() < 0.05, "mean abs {mean_abs}");
    }

    #[test]
    fn laplace_variance() {
        let mut rng = StdRng::seed_from_u64(2);
        let scale = 1.5;
        let n = 200_000;
        let var = (0..n).map(|_| sample_laplace(scale, &mut rng).powi(2)).sum::<f64>() / n as f64;
        // Var = 2 scale².
        assert!((var - 2.0 * scale * scale).abs() < 0.15, "var {var}");
    }

    #[test]
    fn mechanism_centers_on_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean =
            (0..n).map(|_| laplace_mechanism(100.0, 1.0, 2.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn more_budget_less_noise() {
        let mut rng = StdRng::seed_from_u64(4);
        let spread = |eps: f64, rng: &mut StdRng| {
            (0..20_000).map(|_| (laplace_mechanism(0.0, 1.0, eps, rng)).abs()).sum::<f64>()
                / 20_000.0
        };
        let loose = spread(0.1, &mut rng);
        let tight = spread(10.0, &mut rng);
        assert!(loose > 50.0 * tight, "loose {loose} tight {tight}");
    }

    #[test]
    fn vector_mechanism_length() {
        let mut rng = StdRng::seed_from_u64(5);
        let out = laplace_mechanism_vec(&[1.0, 2.0, 3.0], 2.0, 1.0, &mut rng);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn noisy_count_clamps_at_zero() {
        let mut rng = StdRng::seed_from_u64(6);
        // With tiny epsilon the noise dwarfs the count; clamping must hold.
        for _ in 0..1000 {
            let c = noisy_count(1, 1.0, 0.01, &mut rng);
            assert!(c < u64::MAX / 2); // no negative wraparound
        }
    }

    #[test]
    fn noisy_count_accurate_at_high_epsilon() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = noisy_count(1000, 1.0, 100.0, &mut rng);
        assert!((990..=1010).contains(&c), "count {c}");
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        laplace_mechanism(0.0, 1.0, 0.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn bad_scale_panics() {
        let mut rng = StdRng::seed_from_u64(9);
        sample_laplace(f64::NAN, &mut rng);
    }
}
