//! Warner's randomized response (JASA 1965) for single bits.
//!
//! Keeping a bit with probability `e^ε / (1 + e^ε)` and flipping it
//! otherwise satisfies ε-DP for that bit. Applied to adjacency-vector
//! entries it is the canonical Edge-LDP primitive; the paper's §IV-B notes
//! its density problem on sparse graphs, which the `density_inflation`
//! helper quantifies.

use rand::Rng;

/// Probability of reporting the true bit under ε-RR.
pub fn rr_keep_probability(epsilon: f64) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
    let e = epsilon.exp();
    e / (1.0 + e)
}

/// Probability of flipping the bit under ε-RR.
pub fn rr_flip_probability(epsilon: f64) -> f64 {
    1.0 - rr_keep_probability(epsilon)
}

/// Applies ε-randomized response to one bit.
pub fn randomized_response<R: Rng + ?Sized>(bit: bool, epsilon: f64, rng: &mut R) -> bool {
    if rng.gen_bool(rr_keep_probability(epsilon)) {
        bit
    } else {
        !bit
    }
}

/// Unbiased estimator inverting RR aggregates: given `noisy_ones` positive
/// reports out of `total` randomized bits, estimates the true number of
/// ones.
pub fn rr_unbias(noisy_ones: f64, total: f64, epsilon: f64) -> f64 {
    let p = rr_keep_probability(epsilon);
    // E[noisy] = p·ones + (1 − p)(total − ones)  ⇒  solve for ones.
    (noisy_ones - (1.0 - p) * total) / (2.0 * p - 1.0)
}

/// Expected edge count after applying RR to every cell of an `n`-node
/// graph's adjacency upper triangle with `m` true edges — the "density
/// problem": for sparse graphs this is dominated by flipped zeros.
pub fn density_inflation(n: usize, m: usize, epsilon: f64) -> f64 {
    let cells = n as f64 * (n as f64 - 1.0) / 2.0;
    let p = rr_keep_probability(epsilon);
    m as f64 * p + (cells - m as f64) * (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keep_probability_monotone_in_epsilon() {
        assert!(rr_keep_probability(0.1) < rr_keep_probability(1.0));
        assert!(rr_keep_probability(1.0) < rr_keep_probability(5.0));
        assert!((rr_keep_probability(1.0) - 1.0f64.exp() / (1.0 + 1.0f64.exp())).abs() < 1e-12);
    }

    #[test]
    fn keep_plus_flip_is_one() {
        for eps in [0.1, 1.0, 3.0] {
            assert!((rr_keep_probability(eps) + rr_flip_probability(eps) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_keep_rate() {
        let mut rng = StdRng::seed_from_u64(30);
        let eps = 1.0;
        let n = 100_000;
        let kept = (0..n).filter(|_| randomized_response(true, eps, &mut rng)).count();
        let observed = kept as f64 / n as f64;
        assert!((observed - rr_keep_probability(eps)).abs() < 0.01, "{observed}");
    }

    #[test]
    fn dp_ratio_bounded_by_exp_epsilon() {
        // P(report 1 | true 1) / P(report 1 | true 0) = p/(1−p) = e^ε.
        let eps = 2.0f64;
        let p = rr_keep_probability(eps);
        let ratio = p / (1.0 - p);
        assert!((ratio - eps.exp()).abs() < 1e-9);
    }

    #[test]
    fn unbias_recovers_truth_in_expectation() {
        let mut rng = StdRng::seed_from_u64(31);
        let eps = 1.0;
        let total = 200_000usize;
        let true_ones = 2_000usize;
        let mut noisy_ones = 0usize;
        for i in 0..total {
            if randomized_response(i < true_ones, eps, &mut rng) {
                noisy_ones += 1;
            }
        }
        let est = rr_unbias(noisy_ones as f64, total as f64, eps);
        assert!((est - true_ones as f64).abs() < 900.0, "estimate {est}");
    }

    #[test]
    fn density_inflation_explodes_for_sparse_graphs() {
        // 10⁴ nodes, 10⁴ edges, ε = 1: noisy graph is ~10⁷ edges.
        let inflated = density_inflation(10_000, 10_000, 1.0);
        assert!(inflated > 1e6, "inflated {inflated}");
        // With a huge ε the count stays near the truth.
        let faithful = density_inflation(10_000, 10_000, 20.0);
        assert!((faithful - 10_000.0).abs() < 200.0, "faithful {faithful}");
    }
}
