//! The exponential mechanism (McSherry & Talwar, FOCS 2007).
//!
//! Selects a candidate `o` with probability proportional to
//! `exp(ε · q(D, o) / (2 Δq))`. PrivGraph uses it to assign nodes to
//! communities privately; PrivHRG's MCMC targets an exponential-mechanism
//! stationary distribution over dendrograms.

use rand::Rng;

/// Samples an index into `scores` with probability proportional to
/// `exp(ε · scoreᵢ / (2 Δq))`, where `sensitivity` is the quality-function
/// sensitivity Δq.
///
/// Implemented with the Gumbel-max trick, which is numerically stable for
/// arbitrarily large score magnitudes (no overflowing `exp`) and needs only
/// one pass.
///
/// # Panics
/// Panics if `scores` is empty, or if `ε ≤ 0` or `sensitivity ≤ 0`.
pub fn exponential_mechanism<R: Rng + ?Sized>(
    scores: &[f64],
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> usize {
    assert!(!scores.is_empty(), "exponential mechanism needs at least one candidate");
    assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
    assert!(sensitivity > 0.0, "sensitivity must be positive, got {sensitivity}");
    let factor = epsilon / (2.0 * sensitivity);
    let mut best = 0usize;
    let mut best_key = f64::NEG_INFINITY;
    for (i, &s) in scores.iter().enumerate() {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gumbel = -(-u.ln()).ln();
        let key = factor * s + gumbel;
        if key > best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// The acceptance form used inside Markov chains whose stationary
/// distribution is the exponential mechanism (PrivHRG): the
/// Metropolis–Hastings acceptance probability for moving from a state with
/// quality `current` to one with quality `proposed`.
pub fn mcmc_acceptance(current: f64, proposed: f64, sensitivity: f64, epsilon: f64) -> f64 {
    assert!(epsilon > 0.0 && sensitivity > 0.0, "invalid ε or Δ");
    let log_ratio = epsilon * (proposed - current) / (2.0 * sensitivity);
    log_ratio.min(0.0).exp()
}

/// Exponential mechanism over a *sparse* score vector: `total` candidates
/// of which only `nonzero` (index, score) pairs have non-zero quality;
/// all others implicitly score 0.
///
/// Exactly equivalent to densifying the scores and calling
/// [`exponential_mechanism`], but runs in `O(|nonzero|)` — the form
/// PrivGraph's per-node community adjustment needs when the candidate set
/// is large (e.g. one community per node initially).
///
/// # Panics
/// Panics if `total == 0`, any index is out of range, `ε ≤ 0`, or
/// `sensitivity ≤ 0`.
pub fn exponential_mechanism_sparse<R: Rng + ?Sized>(
    nonzero: &[(usize, f64)],
    total: usize,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> usize {
    assert!(total > 0, "exponential mechanism needs at least one candidate");
    assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
    assert!(sensitivity > 0.0, "sensitivity must be positive, got {sensitivity}");
    let factor = epsilon / (2.0 * sensitivity);
    // Stabilise with the max exponent (zero-score candidates have exp 0).
    let max_exp = nonzero.iter().map(|&(_, s)| factor * s).fold(0.0f64, f64::max);
    let zero_count = total - nonzero.len();
    let zero_mass = zero_count as f64 * (-max_exp).exp();
    let masses: Vec<f64> = nonzero
        .iter()
        .map(|&(i, s)| {
            assert!(i < total, "candidate index {i} out of range {total}");
            (factor * s - max_exp).exp()
        })
        .collect();
    let total_mass = zero_mass + masses.iter().sum::<f64>();
    let mut pick = rng.gen_range(0.0..total_mass);
    for (&(i, _), &m) in nonzero.iter().zip(&masses) {
        if pick < m {
            return i;
        }
        pick -= m;
    }
    // Landed in the zero-score mass: uniform among candidates not listed.
    // Draw until an unlisted index comes up (listed indices are few).
    let listed: std::collections::HashSet<usize> = nonzero.iter().map(|&(i, _)| i).collect();
    if listed.len() >= total {
        // All candidates listed; numerical slack pushed us past the end.
        return nonzero.last().expect("nonzero non-empty when covering all").0;
    }
    loop {
        let i = rng.gen_range(0..total);
        if !listed.contains(&i) {
            return i;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prefers_high_scores() {
        let mut rng = StdRng::seed_from_u64(20);
        let scores = [0.0, 0.0, 10.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[exponential_mechanism(&scores, 1.0, 2.0, &mut rng)] += 1;
        }
        assert!(counts[2] > 9_500, "counts {counts:?}");
    }

    #[test]
    fn empirical_probabilities_match_theory() {
        let mut rng = StdRng::seed_from_u64(21);
        let scores = [0.0, 1.0];
        let (eps, sens) = (2.0, 1.0);
        let mut hi = 0usize;
        let n = 100_000;
        for _ in 0..n {
            if exponential_mechanism(&scores, sens, eps, &mut rng) == 1 {
                hi += 1;
            }
        }
        // P(1) = e^(ε/2Δ) / (1 + e^(ε/2Δ)) = e / (1 + e) ≈ 0.731.
        let expected = (eps / (2.0 * sens)).exp() / (1.0 + (eps / (2.0 * sens)).exp());
        let observed = hi as f64 / n as f64;
        assert!((observed - expected).abs() < 0.01, "{observed} vs {expected}");
    }

    #[test]
    fn uniform_when_scores_equal() {
        let mut rng = StdRng::seed_from_u64(22);
        let scores = [5.0; 4];
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[exponential_mechanism(&scores, 1.0, 1.0, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts {counts:?}");
        }
    }

    #[test]
    fn stable_for_huge_scores() {
        let mut rng = StdRng::seed_from_u64(23);
        // Naive exp() would overflow; Gumbel-max must not.
        let scores = [1e308, 1e308 - 1.0];
        let i = exponential_mechanism(&scores, 1.0, 1.0, &mut rng);
        assert!(i < 2);
    }

    #[test]
    fn acceptance_probability_bounds() {
        assert_eq!(mcmc_acceptance(0.0, 1.0, 1.0, 1.0), 1.0); // uphill always accepted
        let p = mcmc_acceptance(1.0, 0.0, 1.0, 2.0);
        assert!((p - (-1.0f64).exp()).abs() < 1e-12);
        assert!(mcmc_acceptance(10.0, -10.0, 1.0, 1.0) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panic() {
        let mut rng = StdRng::seed_from_u64(24);
        exponential_mechanism(&[], 1.0, 1.0, &mut rng);
    }

    #[test]
    fn sparse_matches_dense_distribution() {
        let mut rng = StdRng::seed_from_u64(25);
        // 5 candidates: index 1 scores 2.0, index 3 scores 1.0, rest 0.
        let dense = [0.0, 2.0, 0.0, 1.0, 0.0];
        let sparse = [(1usize, 2.0f64), (3, 1.0)];
        let trials = 60_000;
        let mut dense_counts = [0usize; 5];
        let mut sparse_counts = [0usize; 5];
        for _ in 0..trials {
            dense_counts[exponential_mechanism(&dense, 1.0, 2.0, &mut rng)] += 1;
            sparse_counts[exponential_mechanism_sparse(&sparse, 5, 1.0, 2.0, &mut rng)] += 1;
        }
        for i in 0..5 {
            let (d, s) =
                (dense_counts[i] as f64 / trials as f64, sparse_counts[i] as f64 / trials as f64);
            assert!((d - s).abs() < 0.012, "index {i}: dense {d} sparse {s}");
        }
    }

    #[test]
    fn sparse_all_zero_scores_uniform() {
        let mut rng = StdRng::seed_from_u64(26);
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            counts[exponential_mechanism_sparse(&[], 4, 1.0, 1.0, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5_000.0).abs() < 400.0, "{counts:?}");
        }
    }

    #[test]
    fn sparse_huge_candidate_set_is_fast() {
        let mut rng = StdRng::seed_from_u64(27);
        // 10⁶ candidates but only two scored: must run instantly and
        // prefer the high scorer.
        let sparse = [(123_456usize, 50.0f64), (999_999, 1.0)];
        let mut hits = 0;
        for _ in 0..200 {
            if exponential_mechanism_sparse(&sparse, 1_000_000, 1.0, 2.0, &mut rng) == 123_456 {
                hits += 1;
            }
        }
        assert!(hits > 190, "hits {hits}");
    }
}
