//! # pgb-dp
//!
//! Differential-privacy machinery for the PGB benchmark: the randomized
//! mechanisms of the *perturbation* stage (Fig. 1 of the paper) and the
//! sensitivity / budget bookkeeping they are calibrated with.
//!
//! * [`laplace`] — the Laplace mechanism for numeric queries (ε-DP).
//! * [`geometric`] — the two-sided geometric (discrete Laplace) mechanism
//!   for integer counts.
//! * [`exponential`] — the exponential mechanism for categorical selection.
//! * [`randomized_response`](mod@randomized_response) — Warner's randomized response for bits.
//! * [`sensitivity`] — global / local / smooth sensitivity, including the
//!   smooth-sensitivity-calibrated Laplace noise that gives (ε, δ)-DP
//!   (used by DP-dK and PrivSKG).
//! * [`budget`] — ε/δ privacy parameters, sequential-composition budget
//!   accounting, and the labelled [`BudgetAccountant`] that mechanisms'
//!   measure phases register their splits against.
//! * [`window`] — sliding-window composition for temporal releases: a
//!   per-window ε split ([`WindowComposition`]) whose spends are checked
//!   against both the window share and the overall grant.
//! * [`testing`] — statistical assertion helpers (moment checks with
//!   standard-error tolerances, Pearson χ²) the mechanism tests verify
//!   their closed forms with.
//!
//! All sampling is generic over [`rand::Rng`] so benchmark runs are
//! reproducible from a seed.
//!
//! ```
//! use pgb_dp::budget::PrivacyParams;
//! use pgb_dp::laplace::laplace_mechanism;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let eps = PrivacyParams::pure(1.0).unwrap();
//! // A counting query has global sensitivity 1.
//! let noisy = laplace_mechanism(42.0, 1.0, eps.epsilon(), &mut rng);
//! assert!((noisy - 42.0).abs() < 50.0); // Lap(1) noise, loose sanity bound
//! ```

pub mod budget;
pub mod exponential;
pub mod geometric;
pub mod laplace;
pub mod randomized_response;
pub mod sensitivity;
pub mod testing;
pub mod window;

pub use budget::{Budget, BudgetAccountant, BudgetError, PrivacyParams};
pub use exponential::exponential_mechanism;
pub use geometric::{geometric_mechanism, sample_two_sided_geometric};
pub use laplace::{laplace_mechanism, sample_laplace};
pub use randomized_response::{randomized_response, rr_flip_probability, rr_keep_probability};
pub use sensitivity::{smooth_laplace_mechanism, smooth_sensitivity, SmoothParams};
pub use window::WindowComposition;
