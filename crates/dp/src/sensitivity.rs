//! Sensitivity notions: global, local, and smooth (Nissim, Raskhodnikova &
//! Smith, STOC 2007).
//!
//! Global sensitivity can be wildly pessimistic for graph statistics (the
//! paper's principle M2): the dK-2 series has global sensitivity Θ(n) but
//! local sensitivity O(d_max). Smooth sensitivity upper-bounds local
//! sensitivity with a function that changes slowly between neighbouring
//! datasets, allowing far less noise at the cost of a (ε, δ) guarantee.
//! DP-dK and PrivSKG — the two smooth-sensitivity algorithms in the
//! benchmark (Table I, column Δ) — calibrate through this module.

use crate::laplace::sample_laplace;
use rand::Rng;

/// Parameters of a smooth-sensitivity-calibrated mechanism.
#[derive(Clone, Copy, Debug)]
pub struct SmoothParams {
    /// The smoothing rate β.
    pub beta: f64,
    /// The ε of the resulting (ε, δ) guarantee.
    pub epsilon: f64,
    /// The δ of the resulting (ε, δ) guarantee.
    pub delta: f64,
}

impl SmoothParams {
    /// Standard calibration for adding Laplace noise scaled to smooth
    /// sensitivity: `β = ε / (2 ln(2/δ))` yields (ε, δ)-DP when the noise is
    /// `Lap(2 S_β(D) / ε)` (Nissim et al., Lemma 2.6).
    ///
    /// # Panics
    /// Panics unless `ε > 0` and `0 < δ < 1`.
    pub fn for_laplace(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1), got {delta}");
        let beta = epsilon / (2.0 * (2.0 / delta).ln());
        SmoothParams { beta, epsilon, delta }
    }
}

/// Computes the β-smooth sensitivity
/// `S_β(D) = max_k e^(−βk) · LS_k(D)` given a callback producing
/// `LS_k(D)` — an upper bound on the local sensitivity at Hamming distance
/// `k` from the dataset — evaluated for `k = 0..=max_distance`.
///
/// For the graph statistics in PGB, `LS_k` is a simple closed form (e.g.
/// `4(d_max + k) + 1` for the dK-2 series under edge neighbouring), so a
/// linear scan over `k` is exact. The scan stops early once the geometric
/// factor `e^(−βk)` provably dominates any further linear growth of `LS_k`.
pub fn smooth_sensitivity<F>(ls_at_distance: F, beta: f64, max_distance: usize) -> f64
where
    F: Fn(usize) -> f64,
{
    assert!(beta > 0.0, "beta must be positive, got {beta}");
    let mut best = 0.0f64;
    for k in 0..=max_distance {
        let candidate = (-beta * k as f64).exp() * ls_at_distance(k);
        if candidate > best {
            best = candidate;
        }
        // Early exit: for k ≥ 2/β the factor e^(−βk) shrinks faster than
        // any linear LS growth can compensate once candidates decline.
        if k as f64 > 2.0 / beta && candidate < best * 0.5 {
            break;
        }
    }
    best
}

/// Adds Laplace noise calibrated to smooth sensitivity:
/// `value + Lap(2 S_β(D) / ε)`, which is (ε, δ)-DP when
/// `params = SmoothParams::for_laplace(ε, δ)` and `smooth_sens = S_β(D)`.
pub fn smooth_laplace_mechanism<R: Rng + ?Sized>(
    value: f64,
    smooth_sens: f64,
    params: SmoothParams,
    rng: &mut R,
) -> f64 {
    assert!(smooth_sens > 0.0, "smooth sensitivity must be positive, got {smooth_sens}");
    value + sample_laplace(2.0 * smooth_sens / params.epsilon, rng)
}

/// Local sensitivity at distance `k` for the **dK-2 series** (joint degree
/// distribution) under edge neighbouring: toggling one edge `{u, v}`
/// changes the degree of `u` and `v`, relocating every incident edge's JDD
/// entry (two L1 units each) plus the toggled edge itself. With degrees
/// bounded by `d_max + k` after `k` edge changes:
/// `LS_k ≤ 4 (d_max + k) + 1`.
pub fn dk2_local_sensitivity_at(d_max: usize, k: usize) -> f64 {
    4.0 * (d_max + k) as f64 + 1.0
}

/// Local sensitivity at distance `k` for the **triangle count** under edge
/// neighbouring: toggling edge `{u, v}` changes the count by the number of
/// common neighbours, at most `d_max + k` after `k` changes.
pub fn triangle_local_sensitivity_at(d_max: usize, k: usize) -> f64 {
    (d_max + k) as f64
}

/// Local sensitivity at distance `k` for the **wedge (2-star) count** under
/// edge neighbouring: toggling `{u, v}` changes the wedge count by
/// `dᵤ + dᵥ` (new wedges centred at u and v) ≤ `2 (d_max + k)`.
pub fn wedge_local_sensitivity_at(d_max: usize, k: usize) -> f64 {
    2.0 * (d_max + k) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beta_calibration_formula() {
        let p = SmoothParams::for_laplace(1.0, 0.01);
        assert!((p.beta - 1.0 / (2.0 * (200.0f64).ln())).abs() < 1e-12);
    }

    #[test]
    fn smooth_at_least_local_at_zero() {
        let ls = |k: usize| 4.0 * (10 + k) as f64 + 1.0;
        let s = smooth_sensitivity(ls, 0.1, 10_000);
        assert!(s >= ls(0));
    }

    #[test]
    fn smooth_below_worst_case_global() {
        // Global sensitivity for dK-2 on an n-node graph is Θ(n); smooth
        // sensitivity with a modest β should be far below it for d_max ≪ n.
        let n = 10_000usize;
        let d_max = 50usize;
        let beta = SmoothParams::for_laplace(1.0, 0.01).beta;
        let s = smooth_sensitivity(|k| dk2_local_sensitivity_at(d_max, k), beta, n);
        let global = 4.0 * n as f64 + 1.0;
        assert!(s < global / 10.0, "smooth {s} vs global {global}");
    }

    #[test]
    fn smooth_maximum_found_internally() {
        // A bump at k = 5 must be caught despite early-exit logic.
        let ls = |k: usize| if k == 5 { 1_000.0 } else { 1.0 };
        let s = smooth_sensitivity(ls, 0.01, 100);
        assert!((s - 1_000.0 * (-0.05f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn smooth_monotone_in_beta() {
        let ls = |k: usize| 4.0 * (20 + k) as f64 + 1.0;
        let s_small_beta = smooth_sensitivity(ls, 0.01, 10_000);
        let s_large_beta = smooth_sensitivity(ls, 1.0, 10_000);
        assert!(s_small_beta >= s_large_beta);
    }

    #[test]
    fn smooth_laplace_centers_on_value() {
        let mut rng = StdRng::seed_from_u64(40);
        let params = SmoothParams::for_laplace(2.0, 0.01);
        let n = 50_000;
        let mean =
            (0..n).map(|_| smooth_laplace_mechanism(10.0, 3.0, params, &mut rng)).sum::<f64>()
                / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn local_sensitivity_forms() {
        assert_eq!(dk2_local_sensitivity_at(3, 0), 13.0);
        assert_eq!(triangle_local_sensitivity_at(3, 2), 5.0);
        assert_eq!(wedge_local_sensitivity_at(3, 1), 8.0);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0,1)")]
    fn pure_delta_rejected_for_smooth() {
        SmoothParams::for_laplace(1.0, 0.0);
    }
}
