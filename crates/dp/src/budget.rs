//! Privacy parameters and budget accounting.
//!
//! PGB compares all algorithms at identical total budgets (principle P of
//! the 4-tuple), so every algorithm in `pgb-core` draws its per-phase ε
//! shares through a [`Budget`], which enforces sequential composition:
//! spent shares must sum to at most the total.

use std::borrow::Cow;
use std::fmt;

/// A privacy guarantee: ε-DP when `delta == 0`, (ε, δ)-DP otherwise.
///
/// The benchmark sets δ = 0.01 for DP-dK and PrivSKG (following the
/// original papers) and δ = 0 for everything else.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrivacyParams {
    epsilon: f64,
    delta: f64,
}

impl PrivacyParams {
    /// Pure ε-DP parameters. Fails unless `0 < ε` and `ε` is finite.
    pub fn pure(epsilon: f64) -> Result<Self, BudgetError> {
        Self::approx(epsilon, 0.0)
    }

    /// (ε, δ)-DP parameters. Fails unless `0 < ε < ∞` and `0 ≤ δ < 1`.
    pub fn approx(epsilon: f64, delta: f64) -> Result<Self, BudgetError> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(BudgetError::InvalidEpsilon(epsilon));
        }
        if !(0.0..1.0).contains(&delta) {
            return Err(BudgetError::InvalidDelta(delta));
        }
        Ok(PrivacyParams { epsilon, delta })
    }

    /// The ε component.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The δ component (0 for pure DP).
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Whether this is pure ε-DP.
    #[inline]
    pub fn is_pure(&self) -> bool {
        self.delta == 0.0
    }
}

impl fmt::Display for PrivacyParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pure() {
            write!(f, "ε={}", self.epsilon)
        } else {
            write!(f, "(ε={}, δ={})", self.epsilon, self.delta)
        }
    }
}

/// Errors from privacy-parameter validation and budget accounting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BudgetError {
    /// ε must be positive and finite.
    InvalidEpsilon(f64),
    /// δ must lie in `[0, 1)`.
    InvalidDelta(f64),
    /// A spend would exceed the remaining budget.
    Exhausted {
        /// ε requested by the spend.
        requested: f64,
        /// ε still available.
        remaining: f64,
    },
    /// Budget split weights must be positive.
    InvalidSplit,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::InvalidEpsilon(e) => write!(f, "invalid epsilon {e}"),
            BudgetError::InvalidDelta(d) => write!(f, "invalid delta {d}"),
            BudgetError::Exhausted { requested, remaining } => {
                write!(f, "budget exhausted: requested ε={requested}, remaining ε={remaining}")
            }
            BudgetError::InvalidSplit => write!(f, "split weights must be positive"),
        }
    }
}

impl std::error::Error for BudgetError {}

/// Tracks ε consumption under sequential composition.
///
/// ```
/// use pgb_dp::budget::Budget;
///
/// let mut b = Budget::new(1.0).unwrap();
/// let phase1 = b.spend(0.4).unwrap();
/// let phase2 = b.spend_remaining();
/// assert!((phase1 - 0.4).abs() < 1e-12);
/// assert!((phase2 - 0.6).abs() < 1e-12);
/// assert!(b.spend(0.1).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct Budget {
    total: f64,
    spent: f64,
}

/// Slack used when comparing accumulated floating-point ε spends (shared
/// with the sliding-window composition in [`crate::window`]).
pub(crate) const EPS_SLACK: f64 = 1e-9;

impl Budget {
    /// A budget with `total` ε. Fails unless `0 < total < ∞`.
    pub fn new(total: f64) -> Result<Self, BudgetError> {
        if !(total > 0.0 && total.is_finite()) {
            return Err(BudgetError::InvalidEpsilon(total));
        }
        Ok(Budget { total, spent: 0.0 })
    }

    /// Total ε of the budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ε already consumed.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Consumes `epsilon` from the budget and returns it, or errors if the
    /// remainder is insufficient.
    pub fn spend(&mut self, epsilon: f64) -> Result<f64, BudgetError> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(BudgetError::InvalidEpsilon(epsilon));
        }
        if self.spent + epsilon > self.total + EPS_SLACK {
            return Err(BudgetError::Exhausted { requested: epsilon, remaining: self.remaining() });
        }
        self.spent += epsilon;
        Ok(epsilon)
    }

    /// Consumes and returns everything left. Returns 0.0 if already empty —
    /// callers that require a positive share should check.
    pub fn spend_remaining(&mut self) -> f64 {
        let r = self.remaining();
        self.spent = self.total;
        r
    }

    /// Splits the *entire* budget proportionally to `weights`, consuming it.
    ///
    /// This is how multi-phase algorithms (PrivGraph, PrivHRG, TmF) divide
    /// their ε: the shares sum to the total by construction, so sequential
    /// composition gives ε-DP overall.
    pub fn split(&mut self, weights: &[f64]) -> Result<Vec<f64>, BudgetError> {
        if weights.is_empty() || weights.iter().any(|&w| !(w > 0.0 && w.is_finite())) {
            return Err(BudgetError::InvalidSplit);
        }
        let remaining = self.remaining();
        if remaining <= 0.0 {
            return Err(BudgetError::Exhausted { requested: 0.0, remaining });
        }
        let sum: f64 = weights.iter().sum();
        let shares: Vec<f64> = weights.iter().map(|w| remaining * w / sum).collect();
        self.spent = self.total;
        Ok(shares)
    }
}

/// A labelled ε ledger for a mechanism's *measure* phase.
///
/// Where [`Budget`] only enforces sequential composition arithmetically,
/// the accountant additionally records **what** each share was spent on —
/// one `(label, ε)` entry per perturbation step — so a private intermediate
/// can report its exact spend (`PrivateSynthesis::epsilon_spent` in
/// `pgb-core`) and serving layers can audit per-tenant consumption
/// (`pgb-serve`'s `TenantAccountant` holds one per tenant). Mechanisms
/// register their splits against it instead of doing ad-hoc
/// `epsilon * fraction` arithmetic inline.
///
/// Labels are [`Cow`]s: mechanisms pass `&'static str` phase names for
/// free, while a serving layer can record owned per-request labels
/// (`"req0007 er/TmF ε=0.5"`) without interning.
///
/// ```
/// use pgb_dp::budget::BudgetAccountant;
///
/// let mut acc = BudgetAccountant::new(1.0).unwrap();
/// let eps_cells = acc.spend("cells", 0.9).unwrap();
/// let eps_count = acc.spend_remaining("edge count");
/// assert!((eps_cells - 0.9).abs() < 1e-12);
/// assert!((eps_count - 0.1).abs() < 1e-12);
/// assert!((acc.spent() - 1.0).abs() < 1e-12);
/// assert_eq!(acc.entries().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct BudgetAccountant {
    budget: Budget,
    entries: Vec<(Cow<'static, str>, f64)>,
}

impl BudgetAccountant {
    /// An accountant over `total` ε. Fails unless `0 < total < ∞`.
    pub fn new(total: f64) -> Result<Self, BudgetError> {
        Ok(BudgetAccountant { budget: Budget::new(total)?, entries: Vec::new() })
    }

    /// Total ε of the underlying budget.
    pub fn total(&self) -> f64 {
        self.budget.total()
    }

    /// ε consumed so far, summed over the registered entries.
    pub fn spent(&self) -> f64 {
        self.budget.spent()
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        self.budget.remaining()
    }

    /// The registered `(label, ε)` entries, in spend order.
    pub fn entries(&self) -> &[(Cow<'static, str>, f64)] {
        &self.entries
    }

    /// Registers a labelled spend of `epsilon` and returns it, or errors if
    /// the remainder is insufficient (nothing is recorded on error).
    pub fn spend(
        &mut self,
        label: impl Into<Cow<'static, str>>,
        epsilon: f64,
    ) -> Result<f64, BudgetError> {
        let e = self.budget.spend(epsilon)?;
        self.entries.push((label.into(), e));
        Ok(e)
    }

    /// Registers everything left under `label` and returns it. A drained
    /// accountant records nothing and returns 0.0.
    pub fn spend_remaining(&mut self, label: impl Into<Cow<'static, str>>) -> f64 {
        let e = self.budget.spend_remaining();
        if e > 0.0 {
            self.entries.push((label.into(), e));
        }
        e
    }

    /// Splits the remaining budget proportionally to the entries' weights,
    /// registering one labelled share each; the shares sum to the remainder
    /// by construction (sequential composition over the phases).
    pub fn split(&mut self, shares: &[(&'static str, f64)]) -> Result<Vec<f64>, BudgetError> {
        let weights: Vec<f64> = shares.iter().map(|&(_, w)| w).collect();
        let eps = self.budget.split(&weights)?;
        for (&(label, _), &e) in shares.iter().zip(&eps) {
            self.entries.push((Cow::Borrowed(label), e));
        }
        Ok(eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_params_validate() {
        assert!(PrivacyParams::pure(1.0).is_ok());
        assert!(PrivacyParams::pure(0.0).is_err());
        assert!(PrivacyParams::pure(-1.0).is_err());
        assert!(PrivacyParams::pure(f64::INFINITY).is_err());
        assert!(PrivacyParams::pure(f64::NAN).is_err());
    }

    #[test]
    fn approx_params_validate_delta() {
        assert!(PrivacyParams::approx(1.0, 0.01).is_ok());
        assert!(PrivacyParams::approx(1.0, 1.0).is_err());
        assert!(PrivacyParams::approx(1.0, -0.1).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(PrivacyParams::pure(2.0).unwrap().to_string(), "ε=2");
        assert_eq!(PrivacyParams::approx(2.0, 0.01).unwrap().to_string(), "(ε=2, δ=0.01)");
    }

    #[test]
    fn spend_tracks_and_overdraw_errors() {
        let mut b = Budget::new(1.0).unwrap();
        b.spend(0.5).unwrap();
        assert!((b.remaining() - 0.5).abs() < 1e-12);
        let err = b.spend(0.6).unwrap_err();
        assert!(matches!(err, BudgetError::Exhausted { .. }));
        // The failed spend must not consume anything.
        assert!((b.remaining() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spend_rejects_nonpositive() {
        let mut b = Budget::new(1.0).unwrap();
        assert!(b.spend(0.0).is_err());
        assert!(b.spend(-0.5).is_err());
    }

    #[test]
    fn exact_total_spend_allowed_despite_fp() {
        let mut b = Budget::new(1.0).unwrap();
        for _ in 0..10 {
            b.spend(0.1).unwrap(); // 10 × 0.1 accumulates fp error
        }
        assert!(b.remaining() < 1e-9);
    }

    #[test]
    fn split_consumes_everything() {
        let mut b = Budget::new(2.0).unwrap();
        let shares = b.split(&[1.0, 3.0]).unwrap();
        assert!((shares[0] - 0.5).abs() < 1e-12);
        assert!((shares[1] - 1.5).abs() < 1e-12);
        assert_eq!(b.remaining(), 0.0);
    }

    #[test]
    fn split_after_spend_uses_remainder() {
        let mut b = Budget::new(1.0).unwrap();
        b.spend(0.2).unwrap();
        let shares = b.split(&[1.0, 1.0]).unwrap();
        assert!((shares[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn accountant_accepts_owned_labels() {
        // Serving layers record per-request labels built at runtime; the
        // Cow-based API must take them without interning, alongside the
        // static phase names mechanisms use, and a rejected spend must
        // record no entry.
        let mut acc = BudgetAccountant::new(1.0).unwrap();
        acc.spend(format!("req{:04} er/TmF ε={}", 7, 0.25), 0.25).unwrap();
        acc.spend("static phase", 0.5).unwrap();
        assert!(acc.spend(String::from("too big"), 0.5).is_err());
        assert_eq!(acc.entries().len(), 2);
        assert_eq!(acc.entries()[0].0, "req0007 er/TmF ε=0.25");
        assert_eq!(acc.entries()[1].0, "static phase");
        let entry_sum: f64 = acc.entries().iter().map(|&(_, e)| e).sum();
        assert_eq!(entry_sum, acc.spent());
    }

    #[test]
    fn split_validates_weights() {
        let mut b = Budget::new(1.0).unwrap();
        assert!(b.split(&[]).is_err());
        assert!(b.split(&[1.0, 0.0]).is_err());
        assert!(b.split(&[1.0, -1.0]).is_err());
    }
}
