//! Privacy parameters and budget accounting.
//!
//! PGB compares all algorithms at identical total budgets (principle P of
//! the 4-tuple), so every algorithm in `pgb-core` draws its per-phase ε
//! shares through a [`Budget`], which enforces sequential composition:
//! spent shares must sum to at most the total.

use std::borrow::Cow;
use std::fmt;

/// A privacy guarantee: ε-DP when `delta == 0`, (ε, δ)-DP otherwise.
///
/// The benchmark sets δ = 0.01 for DP-dK and PrivSKG (following the
/// original papers) and δ = 0 for everything else.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrivacyParams {
    epsilon: f64,
    delta: f64,
}

impl PrivacyParams {
    /// Pure ε-DP parameters. Fails unless `0 < ε` and `ε` is finite.
    pub fn pure(epsilon: f64) -> Result<Self, BudgetError> {
        Self::approx(epsilon, 0.0)
    }

    /// (ε, δ)-DP parameters. Fails unless `0 < ε < ∞` and `0 ≤ δ < 1`.
    pub fn approx(epsilon: f64, delta: f64) -> Result<Self, BudgetError> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(BudgetError::InvalidEpsilon(epsilon));
        }
        if !(0.0..1.0).contains(&delta) {
            return Err(BudgetError::InvalidDelta(delta));
        }
        Ok(PrivacyParams { epsilon, delta })
    }

    /// The ε component.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The δ component (0 for pure DP).
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Whether this is pure ε-DP.
    #[inline]
    pub fn is_pure(&self) -> bool {
        self.delta == 0.0
    }
}

impl fmt::Display for PrivacyParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pure() {
            write!(f, "ε={}", self.epsilon)
        } else {
            write!(f, "(ε={}, δ={})", self.epsilon, self.delta)
        }
    }
}

/// Errors from privacy-parameter validation and budget accounting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BudgetError {
    /// ε must be positive and finite.
    InvalidEpsilon(f64),
    /// δ must lie in `[0, 1)`.
    InvalidDelta(f64),
    /// A spend would exceed the remaining budget.
    Exhausted {
        /// ε requested by the spend.
        requested: f64,
        /// ε still available.
        remaining: f64,
    },
    /// Budget split weights must be positive.
    InvalidSplit,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::InvalidEpsilon(e) => write!(f, "invalid epsilon {e}"),
            BudgetError::InvalidDelta(d) => write!(f, "invalid delta {d}"),
            BudgetError::Exhausted { requested, remaining } => {
                write!(f, "budget exhausted: requested ε={requested}, remaining ε={remaining}")
            }
            BudgetError::InvalidSplit => write!(f, "split weights must be positive"),
        }
    }
}

impl std::error::Error for BudgetError {}

/// Tracks ε consumption under sequential composition.
///
/// ```
/// use pgb_dp::budget::Budget;
///
/// let mut b = Budget::new(1.0).unwrap();
/// let phase1 = b.spend(0.4).unwrap();
/// let phase2 = b.spend_remaining();
/// assert!((phase1 - 0.4).abs() < 1e-12);
/// assert!((phase2 - 0.6).abs() < 1e-12);
/// assert!(b.spend(0.1).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct Budget {
    total: f64,
    spent: f64,
}

/// Slack used when comparing accumulated floating-point ε spends (shared
/// with the sliding-window composition in [`crate::window`]).
pub(crate) const EPS_SLACK: f64 = 1e-9;

impl Budget {
    /// A budget with `total` ε. Fails unless `0 < total < ∞`.
    pub fn new(total: f64) -> Result<Self, BudgetError> {
        if !(total > 0.0 && total.is_finite()) {
            return Err(BudgetError::InvalidEpsilon(total));
        }
        Ok(Budget { total, spent: 0.0 })
    }

    /// Total ε of the budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ε already consumed.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Consumes `epsilon` from the budget and returns it, or errors if the
    /// remainder is insufficient.
    pub fn spend(&mut self, epsilon: f64) -> Result<f64, BudgetError> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(BudgetError::InvalidEpsilon(epsilon));
        }
        if self.spent + epsilon > self.total + EPS_SLACK {
            return Err(BudgetError::Exhausted { requested: epsilon, remaining: self.remaining() });
        }
        self.spent += epsilon;
        Ok(epsilon)
    }

    /// Consumes and returns everything left. Returns 0.0 if already empty —
    /// callers that require a positive share should check.
    pub fn spend_remaining(&mut self) -> f64 {
        let r = self.remaining();
        self.spent = self.total;
        r
    }

    /// Splits the *entire* budget proportionally to `weights`, consuming it.
    ///
    /// This is how multi-phase algorithms (PrivGraph, PrivHRG, TmF) divide
    /// their ε: the shares sum to the total by construction, so sequential
    /// composition gives ε-DP overall.
    pub fn split(&mut self, weights: &[f64]) -> Result<Vec<f64>, BudgetError> {
        if weights.is_empty() || weights.iter().any(|&w| !(w > 0.0 && w.is_finite())) {
            return Err(BudgetError::InvalidSplit);
        }
        let remaining = self.remaining();
        if remaining <= 0.0 {
            return Err(BudgetError::Exhausted { requested: 0.0, remaining });
        }
        let sum: f64 = weights.iter().sum();
        let shares: Vec<f64> = weights.iter().map(|w| remaining * w / sum).collect();
        self.spent = self.total;
        Ok(shares)
    }
}

/// A labelled ε ledger for a mechanism's *measure* phase.
///
/// Where [`Budget`] only enforces sequential composition arithmetically,
/// the accountant additionally records **what** each share was spent on —
/// one `(label, ε)` entry per perturbation step — so a private intermediate
/// can report its exact spend (`PrivateSynthesis::epsilon_spent` in
/// `pgb-core`) and serving layers can audit per-tenant consumption
/// (`pgb-serve`'s `TenantAccountant` holds one per tenant). Mechanisms
/// register their splits against it instead of doing ad-hoc
/// `epsilon * fraction` arithmetic inline.
///
/// Labels are [`Cow`]s: mechanisms pass `&'static str` phase names for
/// free, while a serving layer can record owned per-request labels
/// (`"req0007 er/TmF ε=0.5"`) without interning.
///
/// ```
/// use pgb_dp::budget::BudgetAccountant;
///
/// let mut acc = BudgetAccountant::new(1.0).unwrap();
/// let eps_cells = acc.spend("cells", 0.9).unwrap();
/// let eps_count = acc.spend_remaining("edge count");
/// assert!((eps_cells - 0.9).abs() < 1e-12);
/// assert!((eps_count - 0.1).abs() < 1e-12);
/// assert!((acc.spent() - 1.0).abs() < 1e-12);
/// assert_eq!(acc.entries().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct BudgetAccountant {
    budget: Budget,
    entries: Vec<(Cow<'static, str>, f64)>,
}

impl BudgetAccountant {
    /// An accountant over `total` ε. Fails unless `0 < total < ∞`.
    pub fn new(total: f64) -> Result<Self, BudgetError> {
        Ok(BudgetAccountant { budget: Budget::new(total)?, entries: Vec::new() })
    }

    /// Total ε of the underlying budget.
    pub fn total(&self) -> f64 {
        self.budget.total()
    }

    /// ε consumed so far, summed over the registered entries.
    pub fn spent(&self) -> f64 {
        self.budget.spent()
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        self.budget.remaining()
    }

    /// The registered `(label, ε)` entries, in spend order.
    pub fn entries(&self) -> &[(Cow<'static, str>, f64)] {
        &self.entries
    }

    /// Registers a labelled spend of `epsilon` and returns it, or errors if
    /// the remainder is insufficient (nothing is recorded on error).
    pub fn spend(
        &mut self,
        label: impl Into<Cow<'static, str>>,
        epsilon: f64,
    ) -> Result<f64, BudgetError> {
        let e = self.budget.spend(epsilon)?;
        self.entries.push((label.into(), e));
        Ok(e)
    }

    /// Registers everything left under `label` and returns it. A drained
    /// accountant records nothing and returns 0.0.
    pub fn spend_remaining(&mut self, label: impl Into<Cow<'static, str>>) -> f64 {
        let e = self.budget.spend_remaining();
        if e > 0.0 {
            self.entries.push((label.into(), e));
        }
        e
    }

    /// Splits the remaining budget proportionally to the entries' weights,
    /// registering one labelled share each; the shares sum to the remainder
    /// by construction (sequential composition over the phases).
    pub fn split(&mut self, shares: &[(&'static str, f64)]) -> Result<Vec<f64>, BudgetError> {
        let weights: Vec<f64> = shares.iter().map(|&(_, w)| w).collect();
        let eps = self.budget.split(&weights)?;
        for (&(label, _), &e) in shares.iter().zip(&eps) {
            self.entries.push((Cow::Borrowed(label), e));
        }
        Ok(eps)
    }

    /// Serializes the full accounting state — total, spent, and every
    /// `(label, ε)` entry in spend order — as a self-contained byte string.
    ///
    /// All floats are stored as exact IEEE-754 bit patterns, so a decoded
    /// accountant is bit-identical, not merely approximately equal; durable
    /// logs (`pgb-serve`'s WAL checkpoints) rely on this to compare
    /// recovered state against recorded state byte-for-byte.
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.entries.len() * 24);
        out.extend_from_slice(&self.budget.total().to_bits().to_le_bytes());
        out.extend_from_slice(&self.budget.spent().to_bits().to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (label, eps) in &self.entries {
            out.extend_from_slice(&(label.len() as u64).to_le_bytes());
            out.extend_from_slice(label.as_bytes());
            out.extend_from_slice(&eps.to_bits().to_le_bytes());
        }
        out
    }

    /// Rebuilds an accountant from [`encode_bytes`](Self::encode_bytes)
    /// output by *re-spending* every entry through the normal accounting
    /// API — a forged byte string can therefore never over-restore a
    /// budget past its total. Fails with [`DecodeError`] on truncated
    /// input, trailing garbage, invalid spends, or a recorded `spent`
    /// field that the replayed entries do not reproduce bit-exactly.
    pub fn decode_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut cur = Cursor { bytes, at: 0 };
        let total = f64::from_bits(cur.u64()?);
        let spent_bits = cur.u64()?;
        let count = cur.u64()?;
        let mut acc = BudgetAccountant::new(total).map_err(DecodeError::Budget)?;
        for _ in 0..count {
            let len = cur.u64()?;
            let label = std::str::from_utf8(cur.take(len as usize)?)
                .map_err(|_| DecodeError::Malformed("entry label is not UTF-8"))?
                .to_owned();
            let eps = f64::from_bits(cur.u64()?);
            acc.spend(label, eps).map_err(DecodeError::Budget)?;
        }
        if cur.at != bytes.len() {
            return Err(DecodeError::Malformed("trailing bytes after final entry"));
        }
        if acc.spent().to_bits() != spent_bits {
            return Err(DecodeError::SpentMismatch {
                recorded: f64::from_bits(spent_bits),
                replayed: acc.spent(),
            });
        }
        Ok(acc)
    }
}

/// Errors from [`BudgetAccountant::decode_bytes`].
#[derive(Clone, Debug, PartialEq)]
pub enum DecodeError {
    /// The byte string ended mid-field or carried trailing garbage.
    Malformed(&'static str),
    /// A replayed entry failed budget validation (overdraw, bad ε, bad
    /// total) — the serialized state was never reachable through the API.
    Budget(BudgetError),
    /// The replayed entries do not reproduce the recorded `spent` value
    /// bit-exactly.
    SpentMismatch {
        /// `spent` as recorded in the byte string.
        recorded: f64,
        /// `spent` after replaying every entry.
        replayed: f64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Malformed(what) => write!(f, "malformed accountant bytes: {what}"),
            DecodeError::Budget(e) => write!(f, "accountant bytes replay a spend that fails: {e}"),
            DecodeError::SpentMismatch { recorded, replayed } => write!(
                f,
                "accountant bytes record spent={recorded} but entries replay to {replayed}"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A bounds-checked byte reader for [`BudgetAccountant::decode_bytes`].
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(DecodeError::Malformed("byte string ends mid-field"))?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take(8) yields 8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_params_validate() {
        assert!(PrivacyParams::pure(1.0).is_ok());
        assert!(PrivacyParams::pure(0.0).is_err());
        assert!(PrivacyParams::pure(-1.0).is_err());
        assert!(PrivacyParams::pure(f64::INFINITY).is_err());
        assert!(PrivacyParams::pure(f64::NAN).is_err());
    }

    #[test]
    fn approx_params_validate_delta() {
        assert!(PrivacyParams::approx(1.0, 0.01).is_ok());
        assert!(PrivacyParams::approx(1.0, 1.0).is_err());
        assert!(PrivacyParams::approx(1.0, -0.1).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(PrivacyParams::pure(2.0).unwrap().to_string(), "ε=2");
        assert_eq!(PrivacyParams::approx(2.0, 0.01).unwrap().to_string(), "(ε=2, δ=0.01)");
    }

    #[test]
    fn spend_tracks_and_overdraw_errors() {
        let mut b = Budget::new(1.0).unwrap();
        b.spend(0.5).unwrap();
        assert!((b.remaining() - 0.5).abs() < 1e-12);
        let err = b.spend(0.6).unwrap_err();
        assert!(matches!(err, BudgetError::Exhausted { .. }));
        // The failed spend must not consume anything.
        assert!((b.remaining() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spend_rejects_nonpositive() {
        let mut b = Budget::new(1.0).unwrap();
        assert!(b.spend(0.0).is_err());
        assert!(b.spend(-0.5).is_err());
    }

    #[test]
    fn exact_total_spend_allowed_despite_fp() {
        let mut b = Budget::new(1.0).unwrap();
        for _ in 0..10 {
            b.spend(0.1).unwrap(); // 10 × 0.1 accumulates fp error
        }
        assert!(b.remaining() < 1e-9);
    }

    #[test]
    fn split_consumes_everything() {
        let mut b = Budget::new(2.0).unwrap();
        let shares = b.split(&[1.0, 3.0]).unwrap();
        assert!((shares[0] - 0.5).abs() < 1e-12);
        assert!((shares[1] - 1.5).abs() < 1e-12);
        assert_eq!(b.remaining(), 0.0);
    }

    #[test]
    fn split_after_spend_uses_remainder() {
        let mut b = Budget::new(1.0).unwrap();
        b.spend(0.2).unwrap();
        let shares = b.split(&[1.0, 1.0]).unwrap();
        assert!((shares[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn accountant_accepts_owned_labels() {
        // Serving layers record per-request labels built at runtime; the
        // Cow-based API must take them without interning, alongside the
        // static phase names mechanisms use, and a rejected spend must
        // record no entry.
        let mut acc = BudgetAccountant::new(1.0).unwrap();
        acc.spend(format!("req{:04} er/TmF ε={}", 7, 0.25), 0.25).unwrap();
        acc.spend("static phase", 0.5).unwrap();
        assert!(acc.spend(String::from("too big"), 0.5).is_err());
        assert_eq!(acc.entries().len(), 2);
        assert_eq!(acc.entries()[0].0, "req0007 er/TmF ε=0.25");
        assert_eq!(acc.entries()[1].0, "static phase");
        let entry_sum: f64 = acc.entries().iter().map(|&(_, e)| e).sum();
        assert_eq!(entry_sum, acc.spent());
    }

    #[test]
    fn accountant_round_trips_through_bytes_bit_exactly() {
        let mut acc = BudgetAccountant::new(1.0).unwrap();
        acc.spend("req0000 er/TmF ε=0.1", 0.1).unwrap();
        acc.spend("req0001 ba/Dgg ε=0.3", 0.3).unwrap();
        acc.spend_remaining("drain");
        let bytes = acc.encode_bytes();
        let back = BudgetAccountant::decode_bytes(&bytes).unwrap();
        assert_eq!(back.total().to_bits(), acc.total().to_bits());
        assert_eq!(back.spent().to_bits(), acc.spent().to_bits());
        assert_eq!(back.entries(), acc.entries());
        assert_eq!(back.encode_bytes(), bytes, "encode ∘ decode is the identity on bytes");
    }

    #[test]
    fn empty_accountant_round_trips() {
        let acc = BudgetAccountant::new(0.5).unwrap();
        let back = BudgetAccountant::decode_bytes(&acc.encode_bytes()).unwrap();
        assert_eq!(back.entries().len(), 0);
        assert_eq!(back.spent(), 0.0);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_garbage() {
        let mut acc = BudgetAccountant::new(1.0).unwrap();
        acc.spend("phase", 0.5).unwrap();
        let bytes = acc.encode_bytes();
        for cut in 0..bytes.len() {
            assert!(
                BudgetAccountant::decode_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            BudgetAccountant::decode_bytes(&padded),
            Err(DecodeError::Malformed("trailing bytes after final entry"))
        ));
    }

    #[test]
    fn decode_cannot_over_restore() {
        // Forge a byte string whose entries overdraw the recorded total:
        // replaying through the real spend API must reject it.
        let mut acc = BudgetAccountant::new(1.0).unwrap();
        acc.spend("a", 0.8).unwrap();
        let mut bytes = acc.encode_bytes();
        let again = bytes[24..].to_vec(); // duplicate the single entry
        bytes.extend_from_slice(&again);
        bytes[16..24].copy_from_slice(&2u64.to_le_bytes()); // entry count 1 → 2
        assert!(matches!(
            BudgetAccountant::decode_bytes(&bytes),
            Err(DecodeError::Budget(BudgetError::Exhausted { .. }))
        ));
    }

    #[test]
    fn decode_detects_spent_mismatch() {
        let mut acc = BudgetAccountant::new(1.0).unwrap();
        acc.spend("a", 0.25).unwrap();
        let mut bytes = acc.encode_bytes();
        bytes[8..16].copy_from_slice(&0.75f64.to_bits().to_le_bytes());
        assert!(matches!(
            BudgetAccountant::decode_bytes(&bytes),
            Err(DecodeError::SpentMismatch { .. })
        ));
    }

    #[test]
    fn decode_absurd_length_prefix_errors_cleanly() {
        let mut acc = BudgetAccountant::new(1.0).unwrap();
        acc.spend("label", 0.5).unwrap();
        let mut bytes = acc.encode_bytes();
        // Entry label length → u64::MAX: must error, not overflow or OOM.
        bytes[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(BudgetAccountant::decode_bytes(&bytes).is_err());
    }

    #[test]
    fn split_validates_weights() {
        let mut b = Budget::new(1.0).unwrap();
        assert!(b.split(&[]).is_err());
        assert!(b.split(&[1.0, 0.0]).is_err());
        assert!(b.split(&[1.0, -1.0]).is_err());
    }
}
