//! The two-sided geometric (discrete Laplace) mechanism.
//!
//! For integer-valued queries (counts), adding two-sided geometric noise
//! with ratio `α = e^(−ε/Δ)` gives ε-DP and never leaves the integers —
//! useful for the intra/inter-community edge counts in PrivGraph, where
//! rounding Laplace noise would add an extra post-processing bias.

use rand::Rng;

/// Draws a sample from the two-sided geometric distribution with ratio
/// `alpha`, i.e. `P(k) = (1 − α) / (1 + α) · α^|k|` over all integers.
///
/// Implemented as the difference of two i.i.d. geometric variables, which
/// has exactly this law.
///
/// # Panics
/// Panics unless `0 < alpha < 1`.
pub fn sample_two_sided_geometric<R: Rng + ?Sized>(alpha: f64, rng: &mut R) -> i64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1), got {alpha}");
    let g = |rng: &mut R| -> i64 {
        // Geometric on {0, 1, …} with success probability 1 − α via
        // inversion: floor(ln U / ln α).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        (u.ln() / alpha.ln()).floor() as i64
    };
    g(rng) - g(rng)
}

/// The geometric mechanism: `count + TwoSidedGeometric(e^(−ε/Δ))`,
/// clamped at zero.
///
/// # Panics
/// Panics if `sensitivity ≤ 0` or `ε ≤ 0`.
pub fn geometric_mechanism<R: Rng + ?Sized>(
    count: u64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> u64 {
    assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
    assert!(sensitivity > 0.0, "sensitivity must be positive, got {sensitivity}");
    let alpha = (-epsilon / sensitivity).exp();
    let noisy = count as i64 + sample_two_sided_geometric(alpha, rng);
    noisy.max(0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn symmetric_around_zero() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 100_000;
        let sum: i64 = (0..n).map(|_| sample_two_sided_geometric(0.5, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn variance_matches_theory() {
        // Var = 2α / (1 − α)².
        let alpha: f64 = 0.6;
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let var = (0..n)
            .map(|_| (sample_two_sided_geometric(alpha, &mut rng) as f64).powi(2))
            .sum::<f64>()
            / n as f64;
        let theory = 2.0 * alpha / (1.0 - alpha).powi(2);
        assert!((var - theory).abs() / theory < 0.05, "var {var} vs {theory}");
    }

    #[test]
    fn probability_ratio_respects_epsilon() {
        // Empirical check of the DP inequality at the distribution level:
        // P(k) / P(k+1) = 1/α = e^ε for Δ = 1.
        let epsilon = 1.0f64;
        let alpha = (-epsilon).exp();
        let mut rng = StdRng::seed_from_u64(12);
        let n = 400_000;
        let mut hist = std::collections::HashMap::new();
        for _ in 0..n {
            *hist.entry(sample_two_sided_geometric(alpha, &mut rng)).or_insert(0u64) += 1;
        }
        let p0 = hist[&0] as f64;
        let p1 = hist[&1] as f64;
        let ratio = p0 / p1;
        assert!((ratio - epsilon.exp()).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn mechanism_clamps_and_centers() {
        let mut rng = StdRng::seed_from_u64(13);
        let mean =
            (0..50_000).map(|_| geometric_mechanism(50, 1.0, 1.0, &mut rng) as f64).sum::<f64>()
                / 50_000.0;
        assert!((mean - 50.0).abs() < 0.25, "mean {mean}");
        // Clamping: tiny counts with huge noise never wrap.
        for _ in 0..1000 {
            let _ = geometric_mechanism(0, 1.0, 0.05, &mut rng); // must not panic
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1)")]
    fn invalid_alpha_panics() {
        let mut rng = StdRng::seed_from_u64(14);
        sample_two_sided_geometric(1.0, &mut rng);
    }
}
