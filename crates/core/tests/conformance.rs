//! Table-driven conformance contract over the full algorithm suite: every
//! generator — the six of Table V plus DER — validates ε the same way,
//! degrades gracefully on graphs too small for its representation, and
//! preserves the input's node count (the pipeline invariant the benchmark
//! runner and the query-error metrics rely on).

use pgb_core::{standard_suite, Der, GenerateError, GraphGenerator};
use pgb_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All 7 generators: the standard suite plus the appendix-C DER baseline.
fn all_generators() -> Vec<Box<dyn GraphGenerator>> {
    let mut algos = standard_suite();
    algos.push(Box::new(Der::default()));
    algos
}

#[test]
fn suite_has_the_expected_seven() {
    let names: Vec<&str> = all_generators().iter().map(|a| a.name()).collect();
    assert_eq!(names, ["DP-dK", "TmF", "PrivSKG", "PrivHRG", "PrivGraph", "DGG", "DER"]);
}

#[test]
fn every_generator_rejects_invalid_epsilon() {
    let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
    for algo in all_generators() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut rng = StdRng::seed_from_u64(9000);
            match algo.generate(&g, bad, &mut rng) {
                Err(GenerateError::InvalidEpsilon(e)) => {
                    // The error must carry the offending value (NaN
                    // compares unequal to itself — compare bit patterns).
                    assert_eq!(e.to_bits(), bad.to_bits(), "{} at ε={bad}", algo.name());
                }
                other => panic!(
                    "{} must reject ε = {bad} with InvalidEpsilon, got {other:?}",
                    algo.name()
                ),
            }
        }
    }
}

#[test]
fn every_generator_honors_graph_too_small() {
    // On inputs below a mechanism's representational minimum the contract
    // allows exactly two outcomes: a valid graph that still has the
    // input's node count, or a GraphTooSmall error whose fields are
    // consistent (required > actual = input size). Panics and node-count
    // drift are conformance failures.
    for n in [0usize, 1, 2, 3] {
        let g = if n >= 2 { Graph::from_edges(n, [(0, 1)]).unwrap() } else { Graph::new(n) };
        for algo in all_generators() {
            let mut rng = StdRng::seed_from_u64(9100 + n as u64);
            match algo.generate(&g, 1.0, &mut rng) {
                Ok(out) => {
                    assert_eq!(out.node_count(), n, "{} changed n for n={n}", algo.name());
                    assert!(out.check_invariants(), "{} invalid output at n={n}", algo.name());
                }
                Err(GenerateError::GraphTooSmall { required, actual }) => {
                    assert_eq!(actual, n, "{} misreported the input size", algo.name());
                    assert!(required > n, "{} claims required {required} ≤ {n}", algo.name());
                }
                Err(other) => {
                    panic!("{} failed on n={n} with non-size error {other:?}", algo.name())
                }
            }
        }
    }
}

#[test]
fn every_generator_preserves_node_count() {
    let mut rng = StdRng::seed_from_u64(9200);
    let g = pgb_models::erdos_renyi_gnp(48, 0.12, &mut rng);
    for algo in all_generators() {
        for eps in [0.1, 1.0, 10.0] {
            let mut rng = StdRng::seed_from_u64(9300);
            let out = algo
                .generate(&g, eps, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed at ε={eps}: {e}", algo.name()));
            assert_eq!(out.node_count(), 48, "{} at ε={eps}", algo.name());
            assert!(out.check_invariants(), "{} at ε={eps}", algo.name());
        }
    }
}
