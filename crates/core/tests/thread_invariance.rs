//! The thread-invariance contract of the parallelised generators: for a
//! fixed seed, `generate` must return the *same graph* — same CSR arrays,
//! not just the same distribution — under any intra-cell thread budget.
//! This is what makes `BenchmarkConfig::threads` a pure scheduling knob.

use pgb_core::{par, Der, GraphGenerator, PrivGraph, PrivSkg, TmF};
use pgb_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn community_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for base in [0u32, 60, 120] {
        for i in 0..60 {
            for j in (i + 1)..60 {
                if rand::Rng::gen_bool(&mut rng, 0.15) {
                    edges.push((base + i, base + j));
                }
            }
        }
    }
    for _ in 0..60 {
        let u = rand::Rng::gen_range(&mut rng, 0..180u32);
        let v = rand::Rng::gen_range(&mut rng, 0..180u32);
        if u != v {
            edges.push((u.min(v), u.max(v)));
        }
    }
    Graph::from_edges(180, edges).unwrap()
}

fn assert_thread_invariant(algo: &dyn GraphGenerator, g: &Graph, epsilon: f64) {
    let run = |threads: usize| {
        par::with_parallelism(threads, || {
            let mut rng = StdRng::seed_from_u64(4242);
            algo.generate(g, epsilon, &mut rng).expect("valid inputs")
        })
    };
    let reference = run(1);
    assert!(reference.check_invariants());
    for threads in [2, 3, 8] {
        let out = run(threads);
        assert_eq!(
            out.csr(),
            reference.csr(),
            "{} at ε={epsilon} differs between 1 and {threads} threads",
            algo.name()
        );
    }
}

#[test]
fn tmf_output_is_thread_invariant() {
    let g = community_graph(1);
    for eps in [0.5, 5.0] {
        assert_thread_invariant(&TmF::default(), &g, eps);
    }
}

#[test]
fn der_output_is_thread_invariant() {
    let g = community_graph(2);
    for eps in [0.5, 5.0] {
        assert_thread_invariant(&Der::default(), &g, eps);
    }
}

#[test]
fn privskg_output_is_thread_invariant() {
    let g = community_graph(3);
    for eps in [0.5, 5.0] {
        assert_thread_invariant(&PrivSkg::default(), &g, eps);
    }
}

#[test]
fn privgraph_output_is_thread_invariant() {
    let g = community_graph(4);
    for eps in [0.5, 5.0] {
        assert_thread_invariant(&PrivGraph::default(), &g, eps);
    }
}

#[test]
fn caller_rng_position_is_thread_invariant() {
    // Beyond equal outputs, the generators must leave the caller's RNG at
    // the same position regardless of the thread budget — the runner
    // evaluates the query suite with the same RNG right after generation.
    let g = community_graph(5);
    let algos: Vec<Box<dyn GraphGenerator>> = vec![
        Box::new(TmF::default()),
        Box::new(Der::default()),
        Box::new(PrivSkg::default()),
        Box::new(PrivGraph::default()),
    ];
    for algo in &algos {
        let next_draw = |threads: usize| {
            par::with_parallelism(threads, || {
                let mut rng = StdRng::seed_from_u64(77);
                algo.generate(&g, 1.0, &mut rng).expect("valid inputs");
                rand::RngCore::next_u64(&mut rng)
            })
        };
        assert_eq!(next_draw(1), next_draw(8), "{} moved the caller RNG", algo.name());
    }
}
