//! The elastic scheduler's contract, from the outside in:
//!
//! * a tail-heavy grid (`available_parallelism() + 2` cells — exactly the
//!   shape where the old static split strands threads) produces
//!   byte-identical CSV across `Scheduler::{Static, Elastic}` × threads
//!   {1, 2, 8, 0}, and
//! * [`BudgetLedger`] invariants survive arbitrary claim/release
//!   interleavings: outstanding grants never exceed the oversubscription
//!   bound `budget + workers − 1`, pooled accounting is exact
//!   (`available + Σ outstanding pooled ≡ budget`), released threads are
//!   re-grantable, and the ledger drains back to exactly `budget`.

use pgb_core::benchmark::{run_benchmark, BenchmarkConfig, Scheduler};
use pgb_core::par::{available_parallelism, BudgetLedger, Grant};
use pgb_core::{GraphGenerator, TmF};
use pgb_queries::Query;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn csv_byte_identical_across_schedulers_on_tail_heavy_grid() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = pgb_models::erdos_renyi_gnp(60, 0.12, &mut rng);
    let datasets = vec![("er".to_string(), g)];
    let algorithms: Vec<Box<dyn GraphGenerator>> = vec![Box::new(TmF::default())];
    // One ε per cell: the grid is `cores + 2` cells of one (dataset,
    // algorithm) pair, so with `threads = cores` the queue drains below
    // the worker count right at the tail.
    let cells = available_parallelism() + 2;
    let epsilons: Vec<f64> = (0..cells).map(|i| 0.5 + 0.25 * i as f64).collect();
    let mut config = BenchmarkConfig {
        epsilons,
        repetitions: 3,
        queries: vec![Query::EdgeCount, Query::Triangles, Query::DegreeDistribution],
        seed: 11,
        threads: 1,
        sched: Scheduler::Static,
        ..Default::default()
    };
    let reference = run_benchmark(&algorithms, &datasets, &config).to_csv();
    assert_eq!(reference.lines().count(), cells * 3 + 1);
    for sched in [Scheduler::Static, Scheduler::Elastic] {
        for threads in [1, 2, 8, 0] {
            config.sched = sched;
            config.threads = threads;
            let csv = run_benchmark(&algorithms, &datasets, &config).to_csv();
            assert_eq!(csv, reference, "CSV drifted at sched = {sched:?}, threads = {threads}");
        }
    }
}

proptest! {
    /// Arbitrary interleavings of claims (while under the worker cap) and
    /// releases (of arbitrary outstanding grants) — after *every* step the
    /// oversubscription bound and the pooled-accounting identity hold, and
    /// the ledger drains to exactly `budget` once the queue and all grants
    /// are gone.
    #[test]
    fn ledger_invariants_under_arbitrary_interleavings(
        budget in 1usize..9,
        workers in 1usize..6,
        tasks in 0usize..24,
        ops in proptest::collection::vec(0usize..1000, 0..64),
    ) {
        let ledger = BudgetLedger::new(budget, workers, tasks);
        let mut outstanding: Vec<Grant> = Vec::new();
        let mut claimed = 0usize;
        for op in ops {
            if op % 2 == 0 && outstanding.len() < ledger.workers() {
                if let Some((t, g)) = ledger.claim() {
                    prop_assert_eq!(t, claimed, "tasks hand out in order");
                    claimed += 1;
                    prop_assert!(g.threads() >= 1, "a grant is never empty");
                    prop_assert!(g.pooled() <= g.threads());
                    outstanding.push(g);
                }
            } else if !outstanding.is_empty() {
                let victim = (op / 2) % outstanding.len();
                ledger.release(outstanding.swap_remove(victim));
            }
            let granted: usize = outstanding.iter().map(Grant::threads).sum();
            // The bound is `budget + workers − 1`, written `<` to keep
            // the arithmetic in usize-safe form.
            prop_assert!(
                granted < ledger.budget() + ledger.workers(),
                "oversubscription bound violated: {} granted, budget {}, workers {}",
                granted, ledger.budget(), ledger.workers(),
            );
            let pooled: usize = outstanding.iter().map(Grant::pooled).sum();
            prop_assert_eq!(
                pooled + ledger.available(), ledger.budget(),
                "pooled threads leaked or double-counted"
            );
        }
        for g in outstanding.drain(..) {
            ledger.release(g);
        }
        while let Some((_, g)) = ledger.claim() {
            claimed += 1;
            ledger.release(g);
        }
        prop_assert_eq!(claimed, tasks, "every task is claimable exactly once");
        prop_assert_eq!(ledger.available(), ledger.budget(), "ledger must drain to the full budget");
    }

    /// Every released thread is re-grantable: after a head-of-queue burst
    /// returns its grants, the pool is whole again, and the final task's
    /// claimant (remaining = 1, nothing outstanding) is granted the entire
    /// budget.
    #[test]
    fn released_threads_flow_to_the_tail(
        budget in 1usize..16,
        workers in 1usize..8,
        tasks in 2usize..32,
    ) {
        let ledger = BudgetLedger::new(budget, workers, tasks);
        // A head-of-queue burst of up to `workers` concurrent grants,
        // stopping short of the final task so the tail claim below exists.
        let head: Vec<Grant> = (0..workers.min(tasks - 1))
            .filter_map(|_| ledger.claim().map(|(_, g)| g))
            .collect();
        for g in head {
            ledger.release(g);
        }
        prop_assert_eq!(ledger.available(), ledger.budget());
        let mut last_grant = 0usize;
        while let Some((t, g)) = ledger.claim() {
            let threads = g.threads();
            ledger.release(g);
            if t == tasks - 1 {
                last_grant = threads;
            }
        }
        prop_assert_eq!(
            last_grant, ledger.budget(),
            "the tail claim must inherit every released thread"
        );
    }
}
