//! The elastic scheduler's contract, from the outside in:
//!
//! * a tail-heavy grid (`available_parallelism() + 2` cells — exactly the
//!   shape where the old static split strands threads) produces
//!   byte-identical CSV across `Scheduler::{Static, Elastic}` × threads
//!   {1, 2, 8, 0}, and
//! * the elastic scheduler claims (cell, repetition-block) sub-tasks in
//!   descending predicted-cost order — unobserved algorithms first on the
//!   static-seed key, observed ones on their EWMA of measured cell times —
//!   while emitting the exact same grid as grid-order claiming, and
//! * [`BudgetLedger`] invariants survive arbitrary claim/release
//!   interleavings: outstanding grants never exceed the oversubscription
//!   bound `budget + workers − 1`, pooled accounting is exact
//!   (`available + Σ outstanding pooled ≡ budget`), released threads are
//!   re-grantable, and the ledger drains back to exactly `budget`.

use pgb_core::benchmark::{
    algorithm_cost_weight, run_benchmark, BenchmarkConfig, MeasureReuse, Scheduler,
};
use pgb_core::generator::GenerateError;
use pgb_core::par::{available_parallelism, BudgetLedger, Grant};
use pgb_core::{GraphGenerator, PrivateSynthesis, TmF};
use pgb_graph::Graph;
use pgb_queries::Query;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

#[test]
fn csv_byte_identical_across_schedulers_on_tail_heavy_grid() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = pgb_models::erdos_renyi_gnp(60, 0.12, &mut rng);
    let datasets = vec![("er".to_string(), g)];
    let algorithms: Vec<Box<dyn GraphGenerator>> = vec![Box::new(TmF::default())];
    // One ε per cell: the grid is `cores + 2` cells of one (dataset,
    // algorithm) pair, so with `threads = cores` the queue drains below
    // the worker count right at the tail.
    let cells = available_parallelism() + 2;
    let epsilons: Vec<f64> = (0..cells).map(|i| 0.5 + 0.25 * i as f64).collect();
    let mut config = BenchmarkConfig {
        epsilons,
        repetitions: 3,
        queries: vec![Query::EdgeCount, Query::Triangles, Query::DegreeDistribution],
        seed: 11,
        threads: 1,
        sched: Scheduler::Static,
        ..Default::default()
    };
    let reference = run_benchmark(&algorithms, &datasets, &config).to_csv();
    assert_eq!(reference.lines().count(), cells * 3 + 1);
    for sched in [Scheduler::Static, Scheduler::Elastic] {
        for threads in [1, 2, 8, 0] {
            config.sched = sched;
            config.threads = threads;
            let csv = run_benchmark(&algorithms, &datasets, &config).to_csv();
            assert_eq!(csv, reference, "CSV drifted at sched = {sched:?}, threads = {threads}");
        }
    }
}

/// A generator that records every `measure` call as `(name, n, ε)` into a
/// shared log — with one worker (threads = 1), the call order *is* the
/// elastic scheduler's claim order — and counts measure/sample calls so
/// the [`MeasureReuse`] contract is observable from the outside.
struct Recording {
    label: &'static str,
    log: Arc<Mutex<Vec<(String, usize, f64)>>>,
    measures: Arc<AtomicUsize>,
    samples: Arc<AtomicUsize>,
}

impl Recording {
    fn new(label: &'static str, log: Arc<Mutex<Vec<(String, usize, f64)>>>) -> Recording {
        Recording {
            label,
            log,
            measures: Arc::new(AtomicUsize::new(0)),
            samples: Arc::new(AtomicUsize::new(0)),
        }
    }
}

/// The identity intermediate of [`Recording`]: sampling hands back the
/// measured graph and bumps the shared sample counter.
struct RecordingSynthesis {
    graph: Graph,
    epsilon: f64,
    samples: Arc<AtomicUsize>,
}

impl PrivateSynthesis for RecordingSynthesis {
    fn name(&self) -> &'static str {
        "recorded graph"
    }

    fn epsilon_spent(&self) -> f64 {
        self.epsilon
    }

    fn heap_bytes(&self) -> usize {
        0
    }

    fn sample(&self, _rng: &mut dyn rand::RngCore) -> Graph {
        self.samples.fetch_add(1, Ordering::Relaxed);
        self.graph.clone()
    }
}

impl GraphGenerator for Recording {
    fn name(&self) -> &'static str {
        self.label
    }

    fn measure(
        &self,
        graph: &Graph,
        epsilon: f64,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        self.log.lock().unwrap().push((self.label.to_string(), graph.node_count(), epsilon));
        self.measures.fetch_add(1, Ordering::Relaxed);
        Ok(Box::new(RecordingSynthesis {
            graph: graph.clone(),
            epsilon,
            samples: Arc::clone(&self.samples),
        }))
    }
}

#[test]
fn elastic_claims_expensive_cells_first_without_changing_output() {
    // The cost model starts cold: every algorithm is unobserved and ranks
    // on the static seed × n². With seeds DER = 16, TmF = 1 and datasets
    // of 20 vs 90 nodes, the first claim must be DER/90 (129600) — and
    // once that sub-task completes, DER is *observed*, so the second claim
    // must be the costliest still-unobserved one, TmF/90 (8100), even
    // though DER/20 (6400) would come next on pure seed order too. From
    // the third claim on, both algorithms rank on their measured EWMA —
    // real wall time, deliberately not deterministic — so the tail is
    // asserted as a set. (The deterministic EWMA ordering itself is unit
    // tested on `CostModel` directly, with injected observations.)
    assert!(algorithm_cost_weight("DER") > algorithm_cost_weight("TmF"));
    let log = Arc::new(Mutex::new(Vec::new()));
    let algorithms: Vec<Box<dyn GraphGenerator>> = vec![
        Box::new(Recording::new("TmF", Arc::clone(&log))),
        Box::new(Recording::new("DER", Arc::clone(&log))),
    ];
    let mut rng = StdRng::seed_from_u64(21);
    let datasets = vec![
        ("small".to_string(), pgb_models::erdos_renyi_gnp(20, 0.2, &mut rng)),
        ("large".to_string(), pgb_models::erdos_renyi_gnp(90, 0.08, &mut rng)),
    ];
    let config = BenchmarkConfig {
        epsilons: vec![1.0],
        repetitions: 1,
        queries: vec![Query::EdgeCount, Query::Triangles],
        seed: 5,
        threads: 1, // one worker ⇒ generation order ≡ claim order
        sched: Scheduler::Elastic,
        ..Default::default()
    };
    let results = run_benchmark(&algorithms, &datasets, &config);
    let claimed: Vec<(String, usize)> =
        log.lock().unwrap().iter().map(|(name, n, _)| (name.clone(), *n)).collect();
    assert_eq!(claimed.len(), 4, "every cell claimed exactly once: {claimed:?}");
    assert_eq!(claimed[0], ("DER".to_string(), 90), "cold start: largest seed × n² first");
    assert_eq!(
        claimed[1],
        ("TmF".to_string(), 90),
        "exploration: unobserved TmF must outrank already-observed DER"
    );
    let mut tail: Vec<(String, usize)> = claimed[2..].to_vec();
    tail.sort();
    assert_eq!(
        tail,
        vec![("DER".to_string(), 20), ("TmF".to_string(), 20)],
        "the observed tail is EWMA-ordered (time-dependent) but complete"
    );

    // Scheduling only: the emitted grid is identical to grid-order claiming
    // (the static scheduler) at any thread count.
    let reference = {
        let mut c = config.clone();
        c.sched = Scheduler::Static;
        run_benchmark(&algorithms, &datasets, &c).to_csv()
    };
    assert_eq!(results.to_csv(), reference, "cost-aware claiming changed the CSV");
    let row0 = &results.outcomes[0];
    assert_eq!((row0.dataset.as_str(), row0.algorithm.as_str()), ("small", "TmF"), "grid order");
}

#[test]
fn per_cell_reuse_measures_once_per_cell_under_both_schedulers() {
    // The ISSUE's amortisation contract, observed through call counts:
    // under `--reuse rep` every repetition pays a measurement; under
    // `--reuse cell` the measurement runs once per (dataset, algorithm, ε)
    // cell and repetitions only re-sample — at every thread budget, under
    // both schedulers (the elastic path shares the intermediate across
    // repetition blocks through a per-cell `OnceLock`).
    let mut rng = StdRng::seed_from_u64(33);
    let datasets = vec![("er".to_string(), pgb_models::erdos_renyi_gnp(40, 0.15, &mut rng))];
    let reps = 3;
    let cells = 2; // 1 dataset × 1 algorithm × 2 ε
    for sched in [Scheduler::Static, Scheduler::Elastic] {
        for threads in [1, 4] {
            for (reuse, expect_measures) in
                [(MeasureReuse::PerRep, cells * reps), (MeasureReuse::PerCell, cells)]
            {
                let rec = Recording::new("Rec", Arc::new(Mutex::new(Vec::new())));
                let (measures, samples) = (Arc::clone(&rec.measures), Arc::clone(&rec.samples));
                let algorithms: Vec<Box<dyn GraphGenerator>> = vec![Box::new(rec)];
                let config = BenchmarkConfig {
                    epsilons: vec![0.5, 2.0],
                    repetitions: reps,
                    queries: vec![Query::EdgeCount],
                    seed: 9,
                    threads,
                    sched,
                    reuse,
                    ..Default::default()
                };
                let results = run_benchmark(&algorithms, &datasets, &config);
                assert!(results.outcomes.iter().all(|o| o.runs == reps));
                let ctx = format!("{sched:?} threads={threads} {reuse:?}");
                assert_eq!(measures.load(Ordering::Relaxed), expect_measures, "{ctx}");
                assert_eq!(samples.load(Ordering::Relaxed), cells * reps, "{ctx}");
            }
        }
    }
}

proptest! {
    /// Arbitrary interleavings of claims (while under the worker cap),
    /// releases (of arbitrary outstanding grants), and mid-task
    /// *re-grants* of arbitrary outstanding grants — after *every* step
    /// the oversubscription bound and the pooled-accounting identity
    /// hold, grants only ever grow, and the ledger drains to exactly
    /// `budget` once the queue and all grants are gone.
    #[test]
    fn ledger_invariants_under_arbitrary_interleavings(
        budget in 1usize..9,
        workers in 1usize..6,
        tasks in 0usize..24,
        ops in proptest::collection::vec(0usize..1000, 0..64),
    ) {
        let ledger = BudgetLedger::new(budget, workers, tasks);
        let mut outstanding: Vec<Grant> = Vec::new();
        let mut claimed = 0usize;
        for op in ops {
            match op % 3 {
                0 if outstanding.len() < ledger.workers() => {
                    if let Some((t, g)) = ledger.claim() {
                        prop_assert_eq!(t, claimed, "tasks hand out in order");
                        claimed += 1;
                        prop_assert!(g.threads() >= 1, "a grant is never empty");
                        prop_assert!(g.pooled() <= g.threads());
                        outstanding.push(g);
                    }
                }
                2 if !outstanding.is_empty() => {
                    let victim = (op / 3) % outstanding.len();
                    let g = &mut outstanding[victim];
                    let before = g.threads();
                    ledger.regrant(g);
                    prop_assert!(g.threads() >= before, "regrant must be grow-only");
                    prop_assert!(g.pooled() <= g.threads());
                }
                _ if !outstanding.is_empty() => {
                    let victim = (op / 3) % outstanding.len();
                    ledger.release(outstanding.swap_remove(victim));
                }
                _ => {}
            }
            let granted: usize = outstanding.iter().map(Grant::threads).sum();
            // The bound is `budget + workers − 1`, written `<` to keep
            // the arithmetic in usize-safe form.
            prop_assert!(
                granted < ledger.budget() + ledger.workers(),
                "oversubscription bound violated: {} granted, budget {}, workers {}",
                granted, ledger.budget(), ledger.workers(),
            );
            let pooled: usize = outstanding.iter().map(Grant::pooled).sum();
            prop_assert_eq!(
                pooled + ledger.available(), ledger.budget(),
                "pooled threads leaked or double-counted"
            );
        }
        for g in outstanding.drain(..) {
            ledger.release(g);
        }
        while let Some((_, g)) = ledger.claim() {
            claimed += 1;
            ledger.release(g);
        }
        prop_assert_eq!(claimed, tasks, "every task is claimable exactly once");
        prop_assert_eq!(ledger.available(), ledger.budget(), "ledger must drain to the full budget");
    }

    /// Every released thread is re-grantable: after a head-of-queue burst
    /// returns its grants, the pool is whole again, and the final task's
    /// claimant (remaining = 1, nothing outstanding) is granted the entire
    /// budget.
    #[test]
    fn released_threads_flow_to_the_tail(
        budget in 1usize..16,
        workers in 1usize..8,
        tasks in 2usize..32,
    ) {
        let ledger = BudgetLedger::new(budget, workers, tasks);
        // A head-of-queue burst of up to `workers` concurrent grants,
        // stopping short of the final task so the tail claim below exists.
        let head: Vec<Grant> = (0..workers.min(tasks - 1))
            .filter_map(|_| ledger.claim().map(|(_, g)| g))
            .collect();
        for g in head {
            ledger.release(g);
        }
        prop_assert_eq!(ledger.available(), ledger.budget());
        let mut last_grant = 0usize;
        while let Some((t, g)) = ledger.claim() {
            let threads = g.threads();
            ledger.release(g);
            if t == tasks - 1 {
                last_grant = threads;
            }
        }
        prop_assert_eq!(
            last_grant, ledger.budget(),
            "the tail claim must inherit every released thread"
        );
    }
}
