//! The two-phase pipeline contract, for every mechanism in the suite:
//!
//! * `generate()` ≡ `measure()` followed by one `sample()` on the same
//!   RNG — CSR-byte-identical output and identical RNG cursor — at every
//!   thread budget in {1, 2, 8, 0};
//! * `sample()` is ε-free post-processing: it never touches the
//!   measure-phase RNG (re-sampling leaves the measuring stream's cursor
//!   exactly where `measure` left it), and two samples on identically
//!   seeded fresh streams are identical while different streams may
//!   legitimately differ;
//! * the measure phase is the *only* budget spender: `epsilon_spent()`
//!   reports exactly the requested ε, invalid ε is rejected with the
//!   offending bit pattern, and `sample` cannot fail — on any graph the
//!   intermediate was measured from, including degenerate ones.

use pgb_core::{standard_suite, Der, GenerateError, GraphGenerator, PrivHrg};
use pgb_graph::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// All 7 generators, with PrivHRG's MCMC shortened so the property sweep
/// stays fast — the phase-split contract is independent of chain length.
fn all_generators_fast() -> Vec<Box<dyn GraphGenerator>> {
    let mut algos: Vec<Box<dyn GraphGenerator>> =
        standard_suite().into_iter().filter(|a| a.name() != "PrivHRG").collect();
    algos.push(Box::new(PrivHrg { steps_per_node: 5, ..PrivHrg::default() }));
    algos.push(Box::new(Der::default()));
    algos
}

/// A graph's canonical CSR content: node count plus the sorted-deduped
/// edge list CSR is built from. Equal fingerprints ⇔ byte-equal CSR.
fn fingerprint(g: &Graph) -> (usize, Vec<(u32, u32)>) {
    (g.node_count(), g.edge_vec())
}

fn raw_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..100))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole equivalence: the provided `generate` and an explicit
    /// `measure` + `sample` on one RNG produce byte-identical CSR *and*
    /// leave the RNG at the same cursor, for every mechanism, at every
    /// thread budget (0 ⇒ ambient parallelism).
    #[test]
    fn generate_is_measure_then_sample(
        (n, edges) in raw_edges(),
        eps_exp in -2i32..4,
        seed in 0u64..1000,
    ) {
        let g = Graph::from_edges(n, edges).unwrap();
        let epsilon = 10f64.powi(eps_exp) * 2.0;
        for algo in all_generators_fast() {
            for threads in [1usize, 2, 8, 0] {
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_b = StdRng::seed_from_u64(seed);
                let body = |rng_a: &mut StdRng, rng_b: &mut StdRng| {
                    let one = algo
                        .generate(&g, epsilon, rng_a)
                        .unwrap_or_else(|e| panic!("{} generate: {e}", algo.name()));
                    let m = algo
                        .measure(&g, epsilon, rng_b)
                        .unwrap_or_else(|e| panic!("{} measure: {e}", algo.name()));
                    let two = m.sample(rng_b);
                    (fingerprint(&one), fingerprint(&two))
                };
                let (one, two) = if threads == 0 {
                    body(&mut rng_a, &mut rng_b)
                } else {
                    pgb_core::par::with_parallelism(threads, || body(&mut rng_a, &mut rng_b))
                };
                prop_assert_eq!(
                    one,
                    two,
                    "{} at ε={}, threads={}: generate ≠ measure∘sample",
                    algo.name(), epsilon, threads
                );
                // Both pipelines consumed exactly the same number of draws:
                // the next value of each stream coincides.
                prop_assert_eq!(
                    rng_a.next_u64(),
                    rng_b.next_u64(),
                    "{} at ε={}, threads={}: RNG cursors diverged",
                    algo.name(), epsilon, threads
                );
            }
        }
    }

    /// Re-sampling is free: after `measure`, the measuring RNG's cursor is
    /// never advanced by `sample` calls, and identically seeded sample
    /// streams reproduce the same graph.
    #[test]
    fn sample_never_draws_from_the_measure_rng(
        (n, edges) in raw_edges(),
        seed in 0u64..1000,
    ) {
        let g = Graph::from_edges(n, edges).unwrap();
        for algo in all_generators_fast() {
            let mut measure_rng = StdRng::seed_from_u64(seed);
            let m = algo.measure(&g, 1.0, &mut measure_rng).unwrap();
            // Snapshot the measure stream's cursor, then sample twice.
            let mut cursor_probe = measure_rng.clone();
            let expected_next = cursor_probe.next_u64();
            let s1 = m.sample(&mut StdRng::seed_from_u64(seed ^ 0xDEAD));
            let s2 = m.sample(&mut StdRng::seed_from_u64(seed ^ 0xBEEF));
            prop_assert_eq!(
                measure_rng.next_u64(), expected_next,
                "{}: sample() advanced the measure-phase RNG", algo.name()
            );
            // Same sample stream ⇒ same graph (sampling is a pure function
            // of the intermediate and the construction RNG).
            let s1_again = m.sample(&mut StdRng::seed_from_u64(seed ^ 0xDEAD));
            prop_assert_eq!(fingerprint(&s1), fingerprint(&s1_again), "{}", algo.name());
            prop_assert_eq!(s1.node_count(), n, "{}", algo.name());
            prop_assert_eq!(s2.node_count(), n, "{}", algo.name());
            prop_assert!(s1.check_invariants() && s2.check_invariants(), "{}", algo.name());
        }
    }
}

#[test]
fn epsilon_spent_reports_the_requested_budget() {
    let mut rng = StdRng::seed_from_u64(1234);
    let g = pgb_models::erdos_renyi_gnp(30, 0.2, &mut rng);
    for algo in all_generators_fast() {
        for eps in [0.1, 1.0, 2.5, 10.0] {
            let mut rng = StdRng::seed_from_u64(77);
            let m = algo.measure(&g, eps, &mut rng).unwrap();
            assert_eq!(
                m.epsilon_spent(),
                eps,
                "{} ({}) must spend exactly the requested ε",
                algo.name(),
                m.name()
            );
            assert!(!m.name().is_empty(), "{}", algo.name());
        }
    }
}

#[test]
fn measure_rejects_invalid_epsilon_with_the_offending_bits() {
    let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
    for algo in all_generators_fast() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut rng = StdRng::seed_from_u64(9000);
            match algo.measure(&g, bad, &mut rng) {
                Err(GenerateError::InvalidEpsilon(e)) => {
                    assert_eq!(e.to_bits(), bad.to_bits(), "{} at ε={bad}", algo.name());
                }
                other => panic!(
                    "{} measure must reject ε = {bad} with InvalidEpsilon, got {:?}",
                    algo.name(),
                    other.map(|m| m.name())
                ),
            }
        }
    }
}

#[test]
fn sample_cannot_fail_on_degenerate_graphs() {
    // `sample` returns a `Graph`, not a `Result` — the type promises
    // construction never errors. Exercise the promise on the inputs where
    // mechanisms degrade: empty, single-node, and edgeless graphs.
    for n in [0usize, 1, 2, 5] {
        let g = Graph::new(n);
        for algo in all_generators_fast() {
            let mut rng = StdRng::seed_from_u64(4000 + n as u64);
            match algo.measure(&g, 1.0, &mut rng) {
                Ok(m) => {
                    for s in 0..3u64 {
                        let out = m.sample(&mut StdRng::seed_from_u64(s));
                        assert_eq!(out.node_count(), n, "{} n={n}", algo.name());
                        assert!(out.check_invariants(), "{} n={n}", algo.name());
                    }
                    assert_eq!(m.epsilon_spent(), 1.0, "{} n={n}", algo.name());
                }
                Err(GenerateError::GraphTooSmall { required, actual }) => {
                    assert_eq!(actual, n, "{}", algo.name());
                    assert!(required > n, "{}", algo.name());
                }
                Err(other) => panic!("{} failed on n={n}: {other:?}", algo.name()),
            }
        }
    }
}

#[test]
fn heap_bytes_reflects_the_intermediate_footprint() {
    // heap_bytes is an estimate, but it must be sane: zero-allocation
    // intermediates (empty graphs) report 0 or near-0, and a real
    // measurement on a non-trivial graph reports a non-zero footprint for
    // the mechanisms whose intermediates own buffers.
    let mut rng = StdRng::seed_from_u64(555);
    let g = pgb_models::barabasi_albert(200, 3, &mut rng);
    for algo in all_generators_fast() {
        let mut rng = StdRng::seed_from_u64(556);
        let m = algo.measure(&g, 1.0, &mut rng).unwrap();
        // PrivSKG's intermediate is a 2×2 initiator — legitimately 0 heap.
        if algo.name() != "PrivSKG" {
            assert!(m.heap_bytes() > 0, "{} ({}) reports no heap", algo.name(), m.name());
        }
    }
}
