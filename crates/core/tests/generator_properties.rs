//! Property-based tests over the whole algorithm suite: any mechanism, on
//! any random graph, at any reasonable ε, must return a structurally
//! valid simple graph — no panics, no invariant violations.

use pgb_core::{standard_suite, Der, GraphGenerator};
use pgb_graph::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn raw_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..60).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..150))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn suite_outputs_always_valid(
        (n, edges) in raw_edges(),
        eps_exp in -2i32..4,
        seed in 0u64..1000,
    ) {
        let g = Graph::from_edges(n, edges).unwrap();
        let epsilon = 10f64.powi(eps_exp) * 2.0;
        for algo in standard_suite() {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = algo
                .generate(&g, epsilon, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed at ε={epsilon}: {e}", algo.name()));
            prop_assert!(
                out.check_invariants(),
                "{} produced an invalid graph at ε={epsilon}",
                algo.name()
            );
        }
    }

    #[test]
    fn der_outputs_always_valid(
        (n, edges) in raw_edges(),
        seed in 0u64..1000,
    ) {
        let g = Graph::from_edges(n, edges).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = Der::default().generate(&g, 1.0, &mut rng).unwrap();
        prop_assert!(out.check_invariants());
        prop_assert_eq!(out.node_count(), n);
    }
}
