//! The temporal pipeline's contracts, from the outside in:
//!
//! * per-snapshot CSR bytes out of [`TemporalGenerator::generate`] are
//!   identical under any intra-cell thread budget (proptest over seeds and
//!   window counts, budgets {1, 2, 8, 0});
//! * the temporal-grid CSV is byte-identical across thread budgets
//!   {1, 2, 8, 0} × both schedulers × both measurement-reuse modes;
//! * degenerate windows flow through: a burst event log (empty trailing
//!   windows) still generates and evaluates, and a single-window temporal
//!   run reproduces the static mechanism bit-for-bit at the full ε;
//! * the complete-grid `runs = 0` guarantee holds for failing mechanisms.

use pgb_core::benchmark::{run_temporal_benchmark, BenchmarkConfig, MeasureReuse, Scheduler};
use pgb_core::generator::GenerateError;
use pgb_core::par::{derive_stream, with_parallelism};
use pgb_core::temporal::TemporalGenerator;
use pgb_core::{GraphGenerator, PrivateSynthesis, TmF};
use pgb_graph::temporal::SnapshotSequence;
use pgb_graph::Graph;
use pgb_queries::Query;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic event log: a sliding ring of interactions whose
/// timestamps spread arrivals over the horizon, so every window count
/// produces non-trivially different snapshots.
fn ring_events(n: u32, seed: u64) -> Vec<(u32, u32, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..3 * n)
        .map(|i| {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            if v == u {
                v = (v + 1) % n;
            }
            (u, v, i as u64)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Per-snapshot CSR bytes must not depend on the thread budget — the
    /// temporal analogue of the static thread-invariance contract, across
    /// budgets {1, 2, 8, 0} (0 ⇒ available parallelism).
    #[test]
    fn temporal_generate_thread_invariant(
        seed in 0u64..50,
        windows in 1usize..5,
    ) {
        let seq = SnapshotSequence::build(40, &ring_events(40, seed), windows).unwrap();
        let tgen = TemporalGenerator::new(Box::new(TmF::default()));
        let run = |threads: usize| {
            with_parallelism(threads, || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
                tgen.generate(&seq, 1.0, &mut rng).expect("valid inputs")
            })
        };
        let reference = run(1);
        prop_assert_eq!(reference.len(), windows);
        for budget in [2, 8, 0] {
            let other = run(budget);
            for (w, (a, b)) in reference.iter().zip(&other).enumerate() {
                prop_assert_eq!(
                    a.csr(), b.csr(),
                    "window {} differs between budgets 1 and {}", w, budget
                );
            }
        }
    }
}

fn temporal_setup() -> (Vec<TemporalGenerator>, Vec<(String, SnapshotSequence)>, BenchmarkConfig) {
    let datasets = vec![
        ("ring-a".to_string(), SnapshotSequence::build(40, &ring_events(40, 3), 3).unwrap()),
        ("ring-b".to_string(), SnapshotSequence::build(30, &ring_events(30, 4), 2).unwrap()),
    ];
    let config = BenchmarkConfig {
        epsilons: vec![0.5, 5.0],
        repetitions: 2,
        queries: vec![Query::EdgeCount, Query::Triangles, Query::DegreeDistribution],
        seed: 17,
        threads: 1,
        ..Default::default()
    };
    (pgb_core::temporal_suite(), datasets, config)
}

#[test]
fn temporal_csv_byte_identical_across_threads_and_schedulers() {
    // The acceptance criterion: the temporal-grid CSV (window rows and
    // drift rows alike) is byte-identical across thread budgets
    // {1, 2, 8, 0} and both schedulers, in both measurement-reuse modes.
    let (algorithms, datasets, mut config) = temporal_setup();
    for reuse in [MeasureReuse::PerRep, MeasureReuse::PerCell] {
        config.reuse = reuse;
        config.sched = Scheduler::default();
        config.threads = 1;
        let reference = run_temporal_benchmark(&algorithms, &datasets, &config).to_csv();
        // 2 algos × (ring-a: (3+1)·3 + ring-b: (2+1)·3) rows × 2 ε + header.
        assert_eq!(reference.lines().count(), 2 * 2 * (12 + 9) + 1, "{reuse:?}");
        for sched in [Scheduler::Static, Scheduler::Elastic] {
            for threads in [1, 2, 8, 0] {
                config.sched = sched;
                config.threads = threads;
                let csv = run_temporal_benchmark(&algorithms, &datasets, &config).to_csv();
                assert_eq!(
                    csv, reference,
                    "temporal CSV drifted at sched = {sched:?}, threads = {threads}, {reuse:?}"
                );
            }
        }
    }
}

#[test]
fn temporal_grid_layout_is_complete_with_drift_rows() {
    let (algorithms, datasets, config) = temporal_setup();
    let results = run_temporal_benchmark(&algorithms, &datasets, &config);
    assert_eq!(results.window_counts, vec![3, 2]);
    // Fixed layout: dataset-major, algorithm, ε, window 0..W then drift,
    // then query — every row present with runs == repetitions.
    let mut expected = Vec::new();
    for (di, name) in results.datasets.iter().enumerate() {
        for algo in &results.algorithms {
            for &eps in &results.epsilons {
                let w = results.window_counts[di];
                for slot in 0..=w {
                    for &q in &results.queries {
                        expected.push((
                            algo.clone(),
                            name.clone(),
                            eps,
                            (slot < w).then_some(slot),
                            q,
                        ));
                    }
                }
            }
        }
    }
    assert_eq!(results.outcomes.len(), expected.len());
    for (o, (algo, ds, eps, window, q)) in results.outcomes.iter().zip(&expected) {
        assert_eq!((&o.algorithm, &o.dataset, &o.query), (algo, ds, q));
        assert!((o.epsilon - eps).abs() < 1e-12);
        assert_eq!(o.window, *window, "{o:?}");
        assert_eq!(o.runs, 2, "{o:?}");
        assert!(o.mean_error.is_finite(), "{o:?}");
    }
    let csv = results.to_csv();
    assert!(csv.starts_with("algorithm,dataset,epsilon,window,query,metric,mean_error,runs\n"));
    assert!(csv.contains(",drift,"), "drift rows must be labelled: {csv}");
}

#[test]
fn burst_log_with_empty_windows_flows_through() {
    // All events in one instant: windows 1..3 are empty snapshots. The
    // per-window mechanism must still measure (at its share), sample, and
    // evaluate every window, and drift rows must stay finite.
    let events: Vec<(u32, u32, u64)> = (0..30u32).map(|i| (i, (i + 1) % 30, 7)).collect();
    let seq = SnapshotSequence::build(30, &events, 3).unwrap();
    assert_eq!(seq.snapshot(1).edge_count(), 0);
    assert_eq!(seq.snapshot(2).edge_count(), 0);
    let tgen = TemporalGenerator::new(Box::new(TmF::default()));
    let mut rng = StdRng::seed_from_u64(23);
    let syn = tgen.measure(&seq, 1.5, &mut rng).unwrap();
    assert!((syn.epsilon_spent() - 1.5).abs() < 1e-9, "empty windows still pay their share");
    let graphs = syn.sample(&mut rng);
    assert_eq!(graphs.len(), 3);

    let datasets = vec![("burst".to_string(), seq)];
    let config = BenchmarkConfig {
        epsilons: vec![1.0],
        repetitions: 2,
        queries: vec![Query::EdgeCount, Query::AverageDegree],
        seed: 29,
        threads: 2,
        ..Default::default()
    };
    let results = run_temporal_benchmark(&[tgen], &datasets, &config);
    assert_eq!(results.outcomes.len(), (3 + 1) * 2);
    for o in &results.outcomes {
        assert_eq!(o.runs, 2, "{o:?}");
        assert!(o.mean_error.is_finite(), "{o:?}");
    }
}

#[test]
fn single_window_reproduces_the_static_mechanism_exactly() {
    // W = 1: the composition hands the full grant to the one window
    // (ε · 1/1 is exact in IEEE arithmetic), and the per-window streams
    // are pure functions of the caller draws — so the temporal pipeline
    // must equal the static mechanism run by hand on matched streams.
    let events = ring_events(40, 9);
    let seq = SnapshotSequence::build(40, &events, 1).unwrap();
    let tgen = TemporalGenerator::new(Box::new(TmF::default()));
    for eps in [0.3, 1.0, 7.0] {
        let mut rng = StdRng::seed_from_u64(31);
        let measured = tgen.measure(&seq, eps, &mut rng).unwrap();
        assert_eq!(measured.epsilon_spent().to_bits(), eps.to_bits(), "exact grant at W = 1");
        let temporal = measured.sample(&mut rng);

        let mut mirror = StdRng::seed_from_u64(31);
        let static_syn = TmF::default()
            .measure(seq.snapshot(0), eps, &mut derive_stream(mirror.next_u64(), 0))
            .unwrap();
        let static_graph = static_syn.sample(&mut derive_stream(mirror.next_u64(), 0));
        assert_eq!(temporal[0].csr(), static_graph.csr(), "ε = {eps}");
    }

    // And its drift rows are exactly zero: no adjacent windows exist.
    let datasets = vec![("single".to_string(), seq)];
    let config = BenchmarkConfig {
        epsilons: vec![1.0],
        repetitions: 1,
        queries: vec![Query::EdgeCount],
        seed: 37,
        threads: 1,
        ..Default::default()
    };
    let results = run_temporal_benchmark(&[tgen], &datasets, &config);
    let drift = results.outcomes.iter().find(|o| o.window.is_none()).unwrap();
    assert_eq!(drift.mean_error, 0.0);
}

/// A mechanism whose every measure fails — the temporal mirror of the
/// static complete-grid guarantee.
struct AlwaysFails;

impl GraphGenerator for AlwaysFails {
    fn name(&self) -> &'static str {
        "Fails"
    }

    fn measure(
        &self,
        _graph: &Graph,
        _epsilon: f64,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        Err(GenerateError::GraphTooSmall { required: usize::MAX, actual: 0 })
    }
}

#[test]
fn failing_mechanism_still_emits_complete_temporal_grid() {
    let (_, datasets, mut config) = temporal_setup();
    let algorithms = vec![TemporalGenerator::new(Box::new(AlwaysFails))];
    for sched in [Scheduler::Static, Scheduler::Elastic] {
        for reuse in [MeasureReuse::PerRep, MeasureReuse::PerCell] {
            config.sched = sched;
            config.reuse = reuse;
            let results = run_temporal_benchmark(&algorithms, &datasets, &config);
            // (3+1)·3 + (2+1)·3 rows per ε, 2 ε, 1 algorithm.
            assert_eq!(results.outcomes.len(), 2 * (12 + 9), "{sched:?} {reuse:?}");
            for o in &results.outcomes {
                assert_eq!(o.runs, 0, "{sched:?} {reuse:?}: {o:?}");
                assert!(o.mean_error.is_nan(), "{sched:?} {reuse:?}: {o:?}");
            }
        }
    }
}
