//! # pgb-core
//!
//! The heart of the PGB benchmark: faithful Rust re-implementations of the
//! six differentially private synthetic-graph generation algorithms the
//! paper evaluates, plus DER from the appendix, and the benchmark
//! framework (the 4-tuple (M, G, P, U), the runner, and the Definition 5 /
//! Definition 6 scoring) that compares them.
//!
//! All algorithms satisfy **ε-Edge CDP** on unattributed graphs — the
//! common privacy definition PGB fixes for fair comparison (principle M1).
//! DP-dK's dK-2 variant and PrivSKG use smooth sensitivity and therefore
//! provide (ε, δ)-Edge CDP with δ = 0.01, exactly as in the paper.
//!
//! | algorithm | representation | perturbation | construction |
//! |-----------|----------------|--------------|--------------|
//! | [`DpDk`] | degree histogram / joint degree distribution | Laplace / smooth-sensitivity Laplace | Havel–Hakimi / dK-2 wiring |
//! | [`TmF`] | adjacency matrix | Laplace + high-pass filter | top-m̃ cells |
//! | [`PrivSkg`] | Kronecker initiator | smooth-sensitivity Laplace on moments | Kronecker sampling |
//! | [`PrivHrg`] | HRG dendrogram | exponential-mechanism MCMC + Laplace | dendrogram sampling |
//! | [`PrivGraph`] | community structure | Laplace + exponential mechanism | Chung–Lu |
//! | [`Dgg`] | degree sequence | Laplace | BTER |
//! | [`Der`] | adjacency quadtree | Laplace | uniform region fill |
//!
//! ## Quick start
//!
//! ```
//! use pgb_core::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = pgb_models::erdos_renyi_gnp(200, 0.05, &mut rng);
//! let synthetic = TmF::default().generate(&g, 2.0, &mut rng).unwrap();
//! assert_eq!(synthetic.node_count(), g.node_count());
//! ```

pub mod benchmark;
pub mod der;
pub mod dgg;
pub mod dpdk;
pub mod exec;
pub mod fault;
pub mod generator;
pub mod privgraph;
pub mod privhrg;
pub mod privskg;
pub mod temporal;
pub mod tmf;

/// The deterministic parallelism layer (chunked index ranges, derived RNG
/// streams, scoped thread budgets, the elastic [`par::BudgetLedger`]) now
/// lives in the foundational `pgb-par` crate so `pgb-graph`, `pgb-queries`,
/// and `pgb-community` can parallelise the query-suite hot passes on the
/// same discipline; this alias keeps every historical
/// `pgb_core::par::…` / `crate::par::…` path working unchanged.
pub use pgb_par as par;

pub use der::{Der, DerSynthesis};
pub use dgg::{Dgg, DggSynthesis};
pub use dpdk::{DkSynthesis, DkVariant, DpDk};
pub use generator::{GenerateError, GraphGenerator, PrivateSynthesis};
pub use privgraph::{PrivGraph, PrivGraphSynthesis};
pub use privhrg::{HrgSynthesis, PrivHrg};
pub use privskg::{PrivSkg, SkgSynthesis};
pub use temporal::{temporal_suite, TemporalGenerator, TemporalSynthesis};
pub use tmf::{TmF, TmfSynthesis};

/// The standard PGB algorithm suite: the six mechanisms of Table V, boxed
/// and ready for the benchmark runner.
pub fn standard_suite() -> Vec<Box<dyn GraphGenerator>> {
    vec![
        Box::new(DpDk::default()),
        Box::new(TmF::default()),
        Box::new(PrivSkg::default()),
        Box::new(PrivHrg::default()),
        Box::new(PrivGraph::default()),
        Box::new(Dgg::default()),
    ]
}

/// Convenience prelude.
pub mod prelude {
    pub use crate::benchmark::{
        BenchmarkConfig, BenchmarkResults, ErrorMetric, ExperimentOutcome, MeasureReuse, Scheduler,
    };
    pub use crate::{
        standard_suite, Der, Dgg, DkVariant, DpDk, GenerateError, GraphGenerator, PrivGraph,
        PrivHrg, PrivSkg, PrivateSynthesis, TmF,
    };
}
