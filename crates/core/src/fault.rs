//! Seeded fault injection: named fault points that are zero-cost when
//! disabled and deterministically misbehave under an armed [`FaultPlan`].
//!
//! Robustness claims ("no budget overdraw under faults", "the cache is
//! never poisoned", "recovery replays a clean prefix") are only as good as
//! the faults they were tested against. This module lets the chaos tests
//! drive *seeded* fault schedules through the real code paths instead of
//! hand-built mock failures:
//!
//! * Production code marks its hazardous spots with
//!   [`point`]`("cache.measure", &[FaultAction::Panic, …])` (infallible
//!   sites: the fault fires as a panic or a cancellation) or
//!   [`point_io`]`("wal.append")` (fallible I/O sites: the fault fires as
//!   an `io::Error`). Disabled — the default — a point is one relaxed
//!   atomic load.
//! * A test arms a [`FaultPlan`] (seed + per-mille fire rate) with
//!   [`install`]; each point keeps a per-name hit counter, and whether hit
//!   `n` of point `p` fires is a pure hash of `(seed, p, n)`. Single-
//!   threaded drives are therefore exactly reproducible from the seed;
//!   concurrent drives reproduce the *decision table* even though the hit
//!   interleaving varies — which is the right contract, because the
//!   invariants under test must hold for every interleaving anyway.
//!
//! ## Fault-point catalogue
//!
//! | point | actions | site |
//! |-------|---------|------|
//! | `cache.measure` | panic, cancel | `pgb-serve`: the measure closure, inside the single-flight leader |
//! | `serve.sample` | panic, cancel | `pgb-serve`: per-sample boundary of request execution |
//! | `wal.append` | error | `pgb-serve`: WAL record append (fires under the admission lock, so only an error — a panic would poison it) |
//! | `exec.claim` | panic | `pgb-core::exec`: the elastic worker claim loop (simulated worker crash) |
//!
//! Injected panics carry [`INJECTED_MARKER`] in their payload so test
//! panic hooks (see [`install_quiet_panic_hook`]) can silence exactly
//! them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Marker substring every injected panic / error message carries.
pub const INJECTED_MARKER: &str = "injected fault";

/// What a firing fault point does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with an [`INJECTED_MARKER`] payload.
    Panic,
    /// Return an `io::Error` (only [`point_io`] sites).
    Error,
    /// Cancel the current [`pgb_par::cancel::CancelToken`], if installed.
    Cancel,
}

/// A seeded fault schedule: hit `n` of point `p` fires iff
/// `hash(seed, p, n) mod 1000 < rate_permille`.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Seed of the decision hash.
    pub seed: u64,
    /// Fire rate in per-mille (0 ⇒ never, 1000 ⇒ every hit).
    pub rate_permille: u16,
}

struct Armed {
    plan: FaultPlan,
    /// Per-point hit counters — the `n` of the decision hash.
    counters: Mutex<HashMap<&'static str, u64>>,
}

/// Fast-path gate: a disabled fault layer costs one relaxed load per
/// point.
static ENABLED: AtomicBool = AtomicBool::new(false);
static ARMED: Mutex<Option<Arc<Armed>>> = Mutex::new(None);

/// Arms `plan` process-wide. Tests that install plans must serialize with
/// each other (the chaos suites hold a lock across install → drive →
/// [`clear`]).
pub fn install(plan: FaultPlan) {
    let armed = Arc::new(Armed { plan, counters: Mutex::new(HashMap::new()) });
    *ARMED.lock().expect("fault plan lock poisoned") = Some(armed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disarms fault injection; every point returns to its zero-cost path.
pub fn clear() {
    ENABLED.store(false, Ordering::Relaxed);
    *ARMED.lock().expect("fault plan lock poisoned") = None;
}

/// Whether a plan is currently armed.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The decision hash: same mixer family as `pgb_par::derive_stream`.
fn mix(seed: u64, name: &str, hit: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= seed ^ 0x2545_F491_4F6C_DD1D;
    h ^= hit.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(h << 6).wrapping_add(h >> 2);
    h = h.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    h ^= h >> 32;
    h
}

/// Rolls point `name`'s next hit against the armed plan. `Some(h)` with
/// the decision hash when it fires.
fn roll(name: &'static str) -> Option<u64> {
    let armed = ARMED.lock().expect("fault plan lock poisoned").clone()?;
    let hit = {
        let mut counters = armed.counters.lock().expect("fault counters lock poisoned");
        let slot = counters.entry(name).or_insert(0);
        let hit = *slot;
        *slot += 1;
        hit
    };
    let h = mix(armed.plan.seed, name, hit);
    (h % 1000 < armed.plan.rate_permille as u64).then_some(h >> 10)
}

/// An infallible fault point: under an armed plan, a firing hit performs
/// one of `allowed` (chosen by the decision hash) — `Panic` raises an
/// [`INJECTED_MARKER`] panic, `Cancel` cancels the current token.
/// `Error` entries are ignored here (infallible sites cannot return one).
/// Zero-cost when disabled.
#[inline]
pub fn point(name: &'static str, allowed: &[FaultAction]) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    fire(name, allowed);
}

#[cold]
fn fire(name: &'static str, allowed: &[FaultAction]) {
    let Some(h) = roll(name) else { return };
    if allowed.is_empty() {
        return;
    }
    match allowed[(h % allowed.len() as u64) as usize] {
        FaultAction::Panic => std::panic::panic_any(format!("{INJECTED_MARKER}: {name}")),
        FaultAction::Cancel => pgb_par::cancel::cancel_current(),
        FaultAction::Error => {}
    }
}

/// A fallible fault point: under an armed plan, a firing hit returns an
/// injected `io::Error`. For sites that hold locks or other state a panic
/// would poison. Zero-cost when disabled.
#[inline]
pub fn point_io(name: &'static str) -> std::io::Result<()> {
    if !ENABLED.load(Ordering::Relaxed) {
        return Ok(());
    }
    match roll(name) {
        Some(_) => Err(std::io::Error::other(format!("{INJECTED_MARKER}: {name}"))),
        None => Ok(()),
    }
}

/// Installs a panic hook (once, wrapping the previous hook) that silences
/// exactly the deliberate unwinds this layer produces: injected-fault
/// panics and `pgb_par::cancel::CancelUnwind` deadline unwinds. Everything
/// else still reaches the previous hook. Binaries and chaos tests call
/// this so expected unwinds don't spray backtraces.
pub fn install_quiet_panic_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let expected = payload.is::<pgb_par::cancel::CancelUnwind>()
                || payload
                    .downcast_ref::<&str>()
                    .map(|s| s.contains(INJECTED_MARKER))
                    .or_else(|| {
                        payload.downcast_ref::<String>().map(|s| s.contains(INJECTED_MARKER))
                    })
                    .unwrap_or(false);
            if !expected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex as StdMutex;

    /// The fault plan is process-global; tests arming it serialize here.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disabled_points_do_nothing() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        point("test.free", &[FaultAction::Panic]);
        assert!(point_io("test.free").is_ok());
        assert!(!is_enabled());
    }

    #[test]
    fn decisions_are_a_pure_function_of_seed_and_hit_index() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let drive = || -> Vec<bool> {
            install(FaultPlan { seed: 42, rate_permille: 300 });
            let fired = (0..64).map(|_| point_io("test.det").is_err()).collect();
            clear();
            fired
        };
        let a = drive();
        let b = drive();
        assert_eq!(a, b, "same seed, same hit order, same decisions");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(fired > 0 && fired < 64, "rate 30% fires some but not all of 64 hits: {fired}");
    }

    #[test]
    fn panic_action_carries_the_marker() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        install_quiet_panic_hook();
        install(FaultPlan { seed: 7, rate_permille: 1000 });
        let err = catch_unwind(AssertUnwindSafe(|| {
            point("test.panic", &[FaultAction::Panic]);
        }))
        .expect_err("rate 1000 always fires");
        clear();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains(INJECTED_MARKER), "{msg}");
    }

    #[test]
    fn cancel_action_cancels_the_current_token() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        install(FaultPlan { seed: 7, rate_permille: 1000 });
        let token = pgb_par::cancel::CancelToken::unlimited();
        pgb_par::cancel::with_token(&token, || {
            point("test.cancel", &[FaultAction::Cancel]);
        });
        clear();
        assert_eq!(token.cause(), Some(pgb_par::cancel::CancelCause::Manual));
    }
}
