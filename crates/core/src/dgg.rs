//! DGG (Qin et al., CCS 2017, re-centralised): the benchmark's baseline.
//!
//! Representation: the degree sequence. Perturbation: the Laplace
//! mechanism (toggling one edge changes two degrees by 1 each, so the
//! vector's L1 sensitivity is 2). Construction: BTER, which clusters
//! similar-degree nodes — the reason DGG shines on high-ACC graphs
//! (paper §VI-A).
//!
//! The original DGG/LDPGen is an Edge-LDP protocol; PGB re-implements it
//! under the central model so it is comparable with the rest of the suite
//! (§V-A2), which is exactly what this module does.

use crate::generator::{
    check_epsilon, vec_heap_bytes, GenerateError, GraphGenerator, PrivateSynthesis,
};
use pgb_dp::laplace::laplace_mechanism;
use pgb_dp::BudgetAccountant;
use pgb_graph::Graph;
use pgb_models::{bter, BterParams};
use rand::RngCore;

/// The DGG baseline generator.
#[derive(Clone, Debug, Default)]
pub struct Dgg {
    /// BTER construction parameters (clustering profile).
    pub bter: BterParams,
}

/// L1 sensitivity of the degree sequence under edge neighbouring.
const DEGREE_SENSITIVITY: f64 = 2.0;

/// DGG's private intermediate: the Laplace-noised degree sequence. BTER
/// construction reads only this, so re-sampling is ε-free.
#[derive(Clone, Debug)]
pub struct DggSynthesis {
    noisy_degrees: Vec<u32>,
    bter: BterParams,
    epsilon: f64,
}

impl PrivateSynthesis for DggSynthesis {
    fn name(&self) -> &'static str {
        "DGG"
    }

    fn epsilon_spent(&self) -> f64 {
        self.epsilon
    }

    fn heap_bytes(&self) -> usize {
        vec_heap_bytes(&self.noisy_degrees)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Graph {
        bter(&self.noisy_degrees, &self.bter, rng)
    }
}

impl GraphGenerator for Dgg {
    fn name(&self) -> &'static str {
        "DGG"
    }

    fn measure(
        &self,
        graph: &Graph,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        check_epsilon(epsilon)?;
        let mut acc = BudgetAccountant::new(epsilon)?;
        let eps_deg = acc.spend_remaining("degree sequence");
        let n = graph.node_count();
        let max_degree = n.saturating_sub(1) as f64;
        let noisy_degrees: Vec<u32> = graph
            .nodes()
            .map(|u| {
                let noisy =
                    laplace_mechanism(graph.degree(u) as f64, DEGREE_SENSITIVITY, eps_deg, rng);
                noisy.round().clamp(0.0, max_degree) as u32
            })
            .collect();
        Ok(Box::new(DggSynthesis { noisy_degrees, bter: self.bter.clone(), epsilon: acc.total() }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_graph(rng: &mut StdRng) -> Graph {
        pgb_models::erdos_renyi_gnp(300, 0.05, rng)
    }

    #[test]
    fn output_is_valid_graph_with_same_nodes() {
        let mut rng = StdRng::seed_from_u64(400);
        let g = toy_graph(&mut rng);
        let out = Dgg::default().generate(&g, 1.0, &mut rng).unwrap();
        assert_eq!(out.node_count(), g.node_count());
        assert!(out.check_invariants());
    }

    #[test]
    fn high_epsilon_preserves_degree_mass() {
        let mut rng = StdRng::seed_from_u64(401);
        let g = toy_graph(&mut rng);
        let out = Dgg::default().generate(&g, 100.0, &mut rng).unwrap();
        let (m0, m1) = (g.edge_count() as f64, out.edge_count() as f64);
        assert!((m1 - m0).abs() / m0 < 0.25, "m0 {m0} m1 {m1}");
    }

    #[test]
    fn low_epsilon_still_valid() {
        let mut rng = StdRng::seed_from_u64(402);
        let g = toy_graph(&mut rng);
        let out = Dgg::default().generate(&g, 0.01, &mut rng).unwrap();
        assert!(out.check_invariants());
        assert_eq!(out.node_count(), 300);
    }

    #[test]
    fn rejects_bad_epsilon() {
        let mut rng = StdRng::seed_from_u64(403);
        let g = Graph::new(5);
        assert!(matches!(
            Dgg::default().generate(&g, 0.0, &mut rng),
            Err(GenerateError::InvalidEpsilon(_))
        ));
    }

    #[test]
    fn handles_empty_graph() {
        let mut rng = StdRng::seed_from_u64(404);
        let out = Dgg::default().generate(&Graph::new(0), 1.0, &mut rng).unwrap();
        assert_eq!(out.node_count(), 0);
    }

    #[test]
    fn deterministic_with_seed() {
        let mut r1 = StdRng::seed_from_u64(405);
        let g = toy_graph(&mut r1);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let out_a = Dgg::default().generate(&g, 1.0, &mut a).unwrap();
        let out_b = Dgg::default().generate(&g, 1.0, &mut b).unwrap();
        assert_eq!(out_a.edge_vec(), out_b.edge_vec());
    }
}
