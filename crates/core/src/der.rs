//! DER — Density-based Exploration and Reconstruction (Chen, Fung, Yu &
//! Desai, VLDB Journal 2014).
//!
//! Included for the appendix-C comparison (Fig. 7): DER is the baseline
//! the paper contrasts against TmF and PrivGraph. It explores the
//! adjacency matrix with a quadtree — each region's 1-count is perturbed
//! with Laplace noise (regions at one level partition the matrix, so a
//! level costs one ε share by parallel composition; levels compose
//! sequentially) — and reconstructs by spreading each leaf's noisy count
//! uniformly over its cells.

use crate::generator::{
    check_epsilon, vec_heap_bytes, GenerateError, GraphGenerator, PrivateSynthesis,
};
use crate::par;
use pgb_dp::laplace::sample_laplace;
use pgb_dp::BudgetAccountant;
use pgb_graph::{Graph, GraphBuilder};
use rand::{Rng, RngCore};

/// The DER generator.
#[derive(Clone, Debug)]
pub struct Der {
    /// Regions stop splitting once they hold at most this many cells.
    pub leaf_cells: u64,
    /// Maximum quadtree depth (also the number of sequential ε shares).
    pub max_depth: usize,
}

impl Default for Der {
    fn default() -> Self {
        Der { leaf_cells: 256, max_depth: 10 }
    }
}

/// A rectangular region of the upper-triangle adjacency matrix.
#[derive(Clone, Copy, Debug)]
struct Region {
    r0: u32,
    r1: u32,
    c0: u32,
    c1: u32,
}

impl Region {
    /// Number of upper-triangle cells (i < j) inside the region.
    fn cells(&self) -> u64 {
        let mut total = 0u64;
        for i in self.r0..self.r1 {
            let lo = self.c0.max(i + 1);
            if lo < self.c1 {
                total += (self.c1 - lo) as u64;
            }
        }
        total
    }
}

/// Count of true edges inside a region (upper-triangle cells only).
fn region_ones(g: &Graph, region: &Region) -> u64 {
    let mut count = 0u64;
    for i in region.r0..region.r1 {
        let nbrs = g.neighbors(i);
        let lo = region.c0.max(i + 1);
        if lo >= region.c1 {
            continue;
        }
        let start = nbrs.partition_point(|&v| v < lo);
        let end = nbrs.partition_point(|&v| v < region.c1);
        count += (end - start) as u64;
    }
    count
}

/// DER's private intermediate: the noisy quadtree, flattened to its
/// leaves as `(region, noisy count, cells)`. Reconstruction spreads each
/// leaf's count uniformly over its cells, reading nothing else from the
/// input graph, so re-sampling is ε-free.
#[derive(Clone, Debug)]
pub struct DerSynthesis {
    n: usize,
    leaves: Vec<(Region, u64, u64)>,
    epsilon: f64,
}

impl PrivateSynthesis for DerSynthesis {
    fn name(&self) -> &'static str {
        "DER"
    }

    fn epsilon_spent(&self) -> f64 {
        self.epsilon
    }

    fn heap_bytes(&self) -> usize {
        vec_heap_bytes(&self.leaves)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Graph {
        if self.n < 2 {
            return Graph::new(self.n);
        }
        // Reconstruction: every leaf's cells are sampled on its own derived
        // stream — leaves are coarse, uneven work items, so one item per
        // chunk lets the worker cursor load-balance them.
        let leaves = &self.leaves;
        let pairs: Vec<(u32, u32)> = par::par_collect(leaves.len(), 1, rng, |range, rng, out| {
            for &(region, count, cells) in &leaves[range] {
                sample_region_cells(&region, count, cells, rng, out);
            }
        });
        let mut b = GraphBuilder::with_capacity(self.n, pairs.len());
        b.extend(pairs);
        b.build_parallel(par::current_parallelism()).expect("ids bounded by n")
    }
}

impl GraphGenerator for Der {
    fn name(&self) -> &'static str {
        "DER"
    }

    fn measure(
        &self,
        graph: &Graph,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        check_epsilon(epsilon)?;
        let n = graph.node_count();
        if n < 2 {
            return Ok(Box::new(DerSynthesis { n, leaves: Vec::new(), epsilon }));
        }
        let depth_needed =
            ((n as f64 * n as f64 / self.leaf_cells as f64).log(4.0).ceil() as usize).max(1);
        let depth = depth_needed.min(self.max_depth.max(1));
        // The depth levels compose sequentially (regions within a level are
        // disjoint, so a level is one parallel-composition share).
        let mut acc = BudgetAccountant::new(epsilon)?;
        let eps_explore = acc.spend_remaining("quadtree region counts");
        let eps_level = eps_explore / depth as f64;

        // Level-synchronous quadtree exploration. The serial version walked
        // a DFS stack, perturbing each region as it was pushed; here every
        // level's children are counted and perturbed in parallel chunks
        // (regions at one level are disjoint, so their Laplace draws are
        // independent), with per-chunk derived streams keeping the noisy
        // counts — and therefore the tree shape — identical at any thread
        // count. Leaves are collected in deterministic frontier order.
        const REGION_CHUNK: usize = 8;
        let root = Region { r0: 0, r1: n as u32, c0: 0, c1: n as u32 };
        let root_count =
            (region_ones(graph, &root) as f64 + sample_laplace(1.0 / eps_level, rng)).max(0.0);
        let mut frontier = vec![(root, depth.saturating_sub(1), root_count)];
        let mut leaves: Vec<(Region, u64, u64)> = Vec::new(); // (region, count, cells)
        while !frontier.is_empty() {
            let mut children: Vec<(Region, usize)> = Vec::new();
            for (region, levels_left, noisy) in frontier.drain(..) {
                let cells = region.cells();
                if cells == 0 || noisy < 0.5 {
                    continue;
                }
                let full = noisy >= cells as f64 * 0.98;
                if levels_left == 0 || cells <= self.leaf_cells || full {
                    // Leaf: spread the (clamped) count uniformly.
                    let count = (noisy.round() as u64).min(cells);
                    leaves.push((region, count, cells));
                    continue;
                }
                // Split into quadrants; each child gets a fresh noisy count
                // at the next level's budget.
                let rm = (region.r0 + region.r1) / 2;
                let cm = (region.c0 + region.c1) / 2;
                for (r0, r1, c0, c1) in [
                    (region.r0, rm, region.c0, cm),
                    (region.r0, rm, cm, region.c1),
                    (rm, region.r1, region.c0, cm),
                    (rm, region.r1, cm, region.c1),
                ] {
                    if r0 >= r1 || c0 >= c1 {
                        continue;
                    }
                    let child = Region { r0, r1, c0, c1 };
                    if child.cells() == 0 {
                        continue;
                    }
                    children.push((child, levels_left - 1));
                }
            }
            frontier = par::par_collect(children.len(), REGION_CHUNK, rng, |range, rng, out| {
                for &(child, levels_left) in &children[range] {
                    let child_noisy = (region_ones(graph, &child) as f64
                        + sample_laplace(1.0 / eps_level, rng))
                    .max(0.0);
                    out.push((child, levels_left, child_noisy));
                }
            });
        }

        Ok(Box::new(DerSynthesis { n, leaves, epsilon: acc.total() }))
    }
}

/// Samples `count` distinct upper-triangle cells of `region` uniformly and
/// pushes them as edge pairs.
fn sample_region_cells(
    region: &Region,
    count: u64,
    cells: u64,
    rng: &mut dyn RngCore,
    out: &mut Vec<(u32, u32)>,
) {
    if count == 0 {
        return;
    }
    if count * 2 >= cells {
        // Dense: enumerate and subsample.
        let mut all: Vec<(u32, u32)> = Vec::with_capacity(cells as usize);
        for i in region.r0..region.r1 {
            let lo = region.c0.max(i + 1);
            for j in lo..region.c1 {
                all.push((i, j));
            }
        }
        for idx in 0..(count as usize).min(all.len()) {
            let j = rng.gen_range(idx..all.len());
            all.swap(idx, j);
            out.push(all[idx]);
        }
        return;
    }
    // Sparse: rejection-sample distinct cells.
    let mut seen = std::collections::HashSet::with_capacity(count as usize * 2);
    let mut placed = 0u64;
    let mut attempts = 0u64;
    let max_attempts = count * 30 + 200;
    while placed < count && attempts < max_attempts {
        attempts += 1;
        let i = rng.gen_range(region.r0..region.r1);
        let lo = region.c0.max(i + 1);
        if lo >= region.c1 {
            continue;
        }
        let j = rng.gen_range(lo..region.c1);
        if seen.insert((i, j)) {
            out.push((i, j));
            placed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn region_cell_arithmetic() {
        // Full 4×4 upper triangle: 6 cells.
        let r = Region { r0: 0, r1: 4, c0: 0, c1: 4 };
        assert_eq!(r.cells(), 6);
        // Off-diagonal block rows 0..2 × cols 2..4: all 4 cells (i < j).
        let r = Region { r0: 0, r1: 2, c0: 2, c1: 4 };
        assert_eq!(r.cells(), 4);
        // Below-diagonal block has no upper-triangle cells.
        let r = Region { r0: 2, r1: 4, c0: 0, c1: 2 };
        assert_eq!(r.cells(), 0);
    }

    #[test]
    fn region_ones_counts_edges() {
        let g = Graph::from_edges(4, [(0, 1), (0, 3), (2, 3)]).unwrap();
        let all = Region { r0: 0, r1: 4, c0: 0, c1: 4 };
        assert_eq!(region_ones(&g, &all), 3);
        let top_right = Region { r0: 0, r1: 2, c0: 2, c1: 4 };
        assert_eq!(region_ones(&g, &top_right), 1); // (0,3)
    }

    #[test]
    fn output_valid_and_edge_count_reasonable() {
        let mut rng = StdRng::seed_from_u64(460);
        let g = pgb_models::erdos_renyi_gnp(200, 0.05, &mut rng);
        let out = Der::default().generate(&g, 5.0, &mut rng).unwrap();
        assert_eq!(out.node_count(), 200);
        assert!(out.check_invariants());
        let (m0, m1) = (g.edge_count() as f64, out.edge_count() as f64);
        assert!((m1 - m0).abs() / m0 < 0.5, "m0 {m0} m1 {m1}");
    }

    #[test]
    fn dense_region_reconstruction() {
        let mut rng = StdRng::seed_from_u64(461);
        // A near-complete small graph: DER should keep it dense.
        let mut edges = Vec::new();
        for i in 0..20u32 {
            for j in (i + 1)..20 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(20, edges).unwrap();
        let out = Der::default().generate(&g, 10.0, &mut rng).unwrap();
        assert!(out.edge_count() as f64 > 0.8 * g.edge_count() as f64);
    }

    #[test]
    fn low_epsilon_valid() {
        let mut rng = StdRng::seed_from_u64(462);
        let g = pgb_models::erdos_renyi_gnp(100, 0.05, &mut rng);
        let out = Der::default().generate(&g, 0.1, &mut rng).unwrap();
        assert!(out.check_invariants());
    }

    #[test]
    fn tiny_graphs_ok() {
        let mut rng = StdRng::seed_from_u64(463);
        assert_eq!(Der::default().generate(&Graph::new(0), 1.0, &mut rng).unwrap().node_count(), 0);
        assert_eq!(Der::default().generate(&Graph::new(1), 1.0, &mut rng).unwrap().node_count(), 1);
    }
}
