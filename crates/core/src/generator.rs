//! The [`GraphGenerator`] trait every PGB mechanism implements, and the
//! error type shared by them.

use pgb_graph::Graph;
use rand::RngCore;
use std::fmt;

/// Errors a generation run can produce.
#[derive(Debug)]
pub enum GenerateError {
    /// The privacy budget was non-positive or non-finite.
    InvalidEpsilon(f64),
    /// The input graph is too small for the mechanism's representation
    /// (e.g. PrivHRG needs at least 2 nodes for a dendrogram).
    GraphTooSmall {
        /// Nodes required by the mechanism.
        required: usize,
        /// Nodes in the input.
        actual: usize,
    },
    /// Internal budget accounting failed (a bug in the mechanism's split).
    Budget(pgb_dp::BudgetError),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::InvalidEpsilon(e) => write!(f, "invalid privacy budget ε = {e}"),
            GenerateError::GraphTooSmall { required, actual } => {
                write!(f, "input graph has {actual} nodes, mechanism requires {required}")
            }
            GenerateError::Budget(e) => write!(f, "budget accounting error: {e}"),
        }
    }
}

impl std::error::Error for GenerateError {}

impl From<pgb_dp::BudgetError> for GenerateError {
    fn from(e: pgb_dp::BudgetError) -> Self {
        GenerateError::Budget(e)
    }
}

/// A private intermediate: the output of a mechanism's *measure* phase.
///
/// This is the paper's representation + perturbation product — a noisy dK
/// series, a perturbed dendrogram, a noisy quadtree, … — after which the
/// raw graph is no longer needed. Because it is a function of the input
/// only through an ε-DP mechanism, anything computed from it is DP by
/// post-processing invariance: [`PrivateSynthesis::sample`] takes no ε and
/// may be called arbitrarily often without further privacy cost. That is
/// the measurement-reuse pattern the runner's per-cell mode amortises on.
pub trait PrivateSynthesis: Send + Sync {
    /// Name of the mechanism that produced this intermediate.
    fn name(&self) -> &'static str;

    /// The ε actually consumed producing this intermediate. For every PGB
    /// mechanism this equals the ε requested from `measure`.
    fn epsilon_spent(&self) -> f64;

    /// Approximate heap footprint of the cached intermediate in bytes,
    /// for future cache accounting. Excludes the `size_of::<Self>()`
    /// inline part; counts owned buffers.
    fn heap_bytes(&self) -> usize;

    /// Constructs one synthetic graph from the intermediate. Pure
    /// post-processing: consumes randomness from `rng` but no privacy
    /// budget, and never fails on an intermediate `measure` returned.
    fn sample(&self, rng: &mut dyn RngCore) -> Graph;
}

/// A differentially private synthetic-graph generation algorithm.
///
/// Implementations follow the paper's common framework (Fig. 1) as two
/// explicit phases: [`GraphGenerator::measure`] performs *representation*
/// and *perturbation* under the given ε (Edge CDP) and is the only place
/// budget is spent; the returned [`PrivateSynthesis`] performs
/// *construction*, ε-free. [`GraphGenerator::generate`] is a provided
/// one-shot convenience (measure, then one sample) whose output — RNG
/// draw order included — is identical to the pre-split pipeline. The
/// trait is object-safe so the benchmark can hold a heterogeneous suite.
pub trait GraphGenerator: Send + Sync {
    /// Short display name, matching the paper's tables.
    fn name(&self) -> &'static str;

    /// The δ of the guarantee: 0 for pure ε-Edge-CDP mechanisms, 0.01 for
    /// the smooth-sensitivity mechanisms (DP-dK, PrivSKG), as in §V-C.
    fn delta(&self) -> f64 {
        0.0
    }

    /// Measures `graph` under `epsilon`-Edge CDP (or (`epsilon`,
    /// [`GraphGenerator::delta`])-Edge CDP), returning the private
    /// intermediate that [`PrivateSynthesis::sample`] constructs synthetic
    /// graphs from. All privacy budget is spent here.
    fn measure(
        &self,
        graph: &Graph,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError>;

    /// Generates one synthetic graph: `measure` followed by a single
    /// `sample` on the same RNG.
    fn generate(
        &self,
        graph: &Graph,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Graph, GenerateError> {
        Ok(self.measure(graph, epsilon, rng)?.sample(rng))
    }
}

/// Bytes owned by a `Vec`'s heap buffer (capacity, not length — that is
/// what the allocator is actually holding).
pub(crate) fn vec_heap_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Validates the privacy budget common to all mechanisms.
pub(crate) fn check_epsilon(epsilon: f64) -> Result<(), GenerateError> {
    if epsilon > 0.0 && epsilon.is_finite() {
        Ok(())
    } else {
        Err(GenerateError::InvalidEpsilon(epsilon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(check_epsilon(0.5).is_ok());
        assert!(check_epsilon(0.0).is_err());
        assert!(check_epsilon(-1.0).is_err());
        assert!(check_epsilon(f64::NAN).is_err());
        assert!(check_epsilon(f64::INFINITY).is_err());
    }

    #[test]
    fn error_display() {
        let e = GenerateError::GraphTooSmall { required: 2, actual: 0 };
        assert!(e.to_string().contains("requires 2"));
        let e = GenerateError::InvalidEpsilon(-1.0);
        assert!(e.to_string().contains("-1"));
    }
}
