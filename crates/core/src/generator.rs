//! The [`GraphGenerator`] trait every PGB mechanism implements, and the
//! error type shared by them.

use pgb_graph::Graph;
use rand::RngCore;
use std::fmt;

/// Errors a generation run can produce.
#[derive(Debug)]
pub enum GenerateError {
    /// The privacy budget was non-positive or non-finite.
    InvalidEpsilon(f64),
    /// The input graph is too small for the mechanism's representation
    /// (e.g. PrivHRG needs at least 2 nodes for a dendrogram).
    GraphTooSmall {
        /// Nodes required by the mechanism.
        required: usize,
        /// Nodes in the input.
        actual: usize,
    },
    /// Internal budget accounting failed (a bug in the mechanism's split).
    Budget(pgb_dp::BudgetError),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::InvalidEpsilon(e) => write!(f, "invalid privacy budget ε = {e}"),
            GenerateError::GraphTooSmall { required, actual } => {
                write!(f, "input graph has {actual} nodes, mechanism requires {required}")
            }
            GenerateError::Budget(e) => write!(f, "budget accounting error: {e}"),
        }
    }
}

impl std::error::Error for GenerateError {}

impl From<pgb_dp::BudgetError> for GenerateError {
    fn from(e: pgb_dp::BudgetError) -> Self {
        GenerateError::Budget(e)
    }
}

/// A differentially private synthetic-graph generation algorithm.
///
/// Implementations follow the paper's common framework (Fig. 1):
/// *representation* of the input graph, *perturbation* under the given ε
/// (Edge CDP), and *construction* of a synthetic graph. The trait is
/// object-safe so the benchmark can hold a heterogeneous suite.
pub trait GraphGenerator: Send + Sync {
    /// Short display name, matching the paper's tables.
    fn name(&self) -> &'static str;

    /// The δ of the guarantee: 0 for pure ε-Edge-CDP mechanisms, 0.01 for
    /// the smooth-sensitivity mechanisms (DP-dK, PrivSKG), as in §V-C.
    fn delta(&self) -> f64 {
        0.0
    }

    /// Generates a synthetic graph from `graph` under `epsilon`-Edge CDP
    /// (or (`epsilon`, [`GraphGenerator::delta`])-Edge CDP).
    fn generate(
        &self,
        graph: &Graph,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Graph, GenerateError>;
}

/// Validates the privacy budget common to all mechanisms.
pub(crate) fn check_epsilon(epsilon: f64) -> Result<(), GenerateError> {
    if epsilon > 0.0 && epsilon.is_finite() {
        Ok(())
    } else {
        Err(GenerateError::InvalidEpsilon(epsilon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(check_epsilon(0.5).is_ok());
        assert!(check_epsilon(0.0).is_err());
        assert!(check_epsilon(-1.0).is_err());
        assert!(check_epsilon(f64::NAN).is_err());
        assert!(check_epsilon(f64::INFINITY).is_err());
    }

    #[test]
    fn error_display() {
        let e = GenerateError::GraphTooSmall { required: 2, actual: 0 };
        assert!(e.to_string().contains("requires 2"));
        let e = GenerateError::InvalidEpsilon(-1.0);
        assert!(e.to_string().contains("-1"));
    }
}
