//! The temporal generation pipeline: a [`TemporalGenerator`] wraps any
//! static [`GraphGenerator`] and re-runs its two-phase measure/sample
//! split once per window of a [`SnapshotSequence`].
//!
//! The refactor deliberately changes nothing about the inner mechanism:
//! per-window TmF *is* static TmF applied to each window's snapshot. What
//! the wrapper adds is the two contracts a longitudinal release needs:
//!
//! * **budget composition** — the grant is split across windows through
//!   [`WindowComposition`] (evenly by default, or by explicit weights for
//!   `--window-eps`), and each window's measure drains exactly its share,
//!   so Σ window spends ≡ ε by sequential composition;
//! * **RNG discipline** — `measure` and `sample` each draw exactly one
//!   `u64` from the caller and hand every window its own
//!   [`derive_stream`](pgb_par::derive_stream) substream. The caller's RNG
//!   is the per-cell stream in the runner, so measurement randomness is
//!   derived per (window, cell) and results are independent of window
//!   evaluation order, scheduler, and thread budget.
//!
//! With a single window the composition hands back the grant bit-for-bit
//! (`ε · 1/1`), so a one-window temporal run reproduces the static
//! pipeline exactly on matched streams — the degenerate-case regression
//! in `tests/temporal.rs` pins that.

use crate::generator::{check_epsilon, GenerateError, GraphGenerator, PrivateSynthesis};
use pgb_dp::{BudgetError, WindowComposition};
use pgb_graph::temporal::SnapshotSequence;
use pgb_graph::Graph;
use rand::RngCore;

/// A per-window lift of a static mechanism, with windowed budget
/// composition and derived per-window RNG streams.
///
/// ```
/// use pgb_core::temporal::TemporalGenerator;
/// use pgb_core::TmF;
/// use pgb_graph::temporal::SnapshotSequence;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let events = [(0, 1, 0), (1, 2, 5), (2, 3, 9)];
/// let seq = SnapshotSequence::build(4, &events, 3).unwrap();
/// let tgen = TemporalGenerator::new(Box::new(TmF::default()));
/// let mut rng = StdRng::seed_from_u64(7);
/// let graphs = tgen.generate(&seq, 1.0, &mut rng).unwrap();
/// assert_eq!(graphs.len(), 3);
/// assert!(graphs.iter().all(|g| g.node_count() == 4));
/// ```
pub struct TemporalGenerator {
    inner: Box<dyn GraphGenerator>,
    window_weights: Option<Vec<f64>>,
}

impl TemporalGenerator {
    /// Wraps `inner` with an even per-window budget split.
    pub fn new(inner: Box<dyn GraphGenerator>) -> Self {
        TemporalGenerator { inner, window_weights: None }
    }

    /// Replaces the even split with an explicit per-window weight vector
    /// (the `--window-eps` flag); shares are `ε · w / Σw`. The length must
    /// match the sequence's window count at `measure` time.
    pub fn with_window_weights(mut self, weights: Vec<f64>) -> Self {
        self.window_weights = Some(weights);
        self
    }

    /// The wrapped mechanism's display name.
    pub fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// The wrapped mechanism's δ (unchanged by windowing: each window is
    /// measured under the same guarantee at its share of ε).
    pub fn delta(&self) -> f64 {
        self.inner.delta()
    }

    /// Measures every window of `seq` under its share of `epsilon`,
    /// returning the per-window private intermediates. Draws exactly one
    /// `u64` from `rng`; window `w` measures on `derive_stream(base, w)`.
    pub fn measure(
        &self,
        seq: &SnapshotSequence,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<TemporalSynthesis, GenerateError> {
        check_epsilon(epsilon)?;
        let windows = seq.window_count();
        let mut comp = match &self.window_weights {
            None => WindowComposition::even(epsilon, windows)?,
            Some(w) if w.len() == windows => WindowComposition::weighted(epsilon, w)?,
            Some(_) => return Err(GenerateError::Budget(BudgetError::InvalidSplit)),
        };
        let base = rng.next_u64();
        let mut syntheses = Vec::with_capacity(windows);
        for w in 0..windows {
            let share = comp.spend_window_remaining(w, "window measure");
            if share <= 0.0 {
                // Unreachable for positive weights, but a zero share must
                // not silently reach the inner mechanism.
                return Err(GenerateError::InvalidEpsilon(share));
            }
            let mut wrng = pgb_par::derive_stream(base, w as u64);
            syntheses.push(self.inner.measure(seq.snapshot(w), share, &mut wrng)?);
        }
        Ok(TemporalSynthesis { windows: syntheses })
    }

    /// One synthetic snapshot sequence: `measure` followed by a single
    /// `sample` on the same RNG, mirroring [`GraphGenerator::generate`].
    pub fn generate(
        &self,
        seq: &SnapshotSequence,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Graph>, GenerateError> {
        Ok(self.measure(seq, epsilon, rng)?.sample(rng))
    }
}

/// The temporal private intermediate: one [`PrivateSynthesis`] per window.
/// Like its static counterpart, sampling is ε-free post-processing and may
/// be repeated (the per-cell measurement-reuse mode relies on it).
pub struct TemporalSynthesis {
    windows: Vec<Box<dyn PrivateSynthesis>>,
}

impl TemporalSynthesis {
    /// Number of windows.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Window `w`'s private intermediate. Panics if out of range.
    pub fn window(&self, w: usize) -> &dyn PrivateSynthesis {
        self.windows[w].as_ref()
    }

    /// Total ε consumed across all windows (≡ the grant, by composition).
    pub fn epsilon_spent(&self) -> f64 {
        self.windows.iter().map(|s| s.epsilon_spent()).sum()
    }

    /// Heap footprint of all per-window intermediates, in bytes.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of_val(self.windows.as_slice())
            + self.windows.iter().map(|s| s.heap_bytes()).sum::<usize>()
    }

    /// Constructs one synthetic graph per window. Draws exactly one `u64`
    /// from `rng`; window `w` samples on `derive_stream(base, w)`.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Vec<Graph> {
        let base = rng.next_u64();
        self.windows
            .iter()
            .enumerate()
            .map(|(w, s)| s.sample(&mut pgb_par::derive_stream(base, w as u64)))
            .collect()
    }
}

/// The temporal mechanism roster of the benchmark: the standard suite's
/// single-shot mechanisms lifted per-window. TmF is the headline temporal
/// mechanism (the paper's strongest all-rounder stays the strongest under
/// windowing); DGG rides along as the structural contrast.
pub fn temporal_suite() -> Vec<TemporalGenerator> {
    vec![
        TemporalGenerator::new(Box::new(crate::TmF::default())),
        TemporalGenerator::new(Box::new(crate::Dgg::default())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TmF;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq(windows: usize) -> SnapshotSequence {
        let events: Vec<(u32, u32, u64)> =
            (0..30u32).map(|i| (i, (i + 1) % 30, i as u64)).collect();
        SnapshotSequence::build(30, &events, windows).unwrap()
    }

    #[test]
    fn spends_the_whole_grant_across_windows() {
        let tgen = TemporalGenerator::new(Box::new(TmF::default()));
        let mut rng = StdRng::seed_from_u64(1);
        let syn = tgen.measure(&seq(4), 2.0, &mut rng).unwrap();
        assert_eq!(syn.window_count(), 4);
        assert!((syn.epsilon_spent() - 2.0).abs() < 1e-9);
        for w in 0..4 {
            assert!((syn.window(w).epsilon_spent() - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn weighted_split_respects_weights() {
        let tgen =
            TemporalGenerator::new(Box::new(TmF::default())).with_window_weights(vec![1.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let syn = tgen.measure(&seq(2), 1.0, &mut rng).unwrap();
        assert!((syn.window(0).epsilon_spent() - 0.25).abs() < 1e-9);
        assert!((syn.window(1).epsilon_spent() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn weight_count_mismatch_errors() {
        let tgen = TemporalGenerator::new(Box::new(TmF::default())).with_window_weights(vec![1.0]);
        let mut rng = StdRng::seed_from_u64(3);
        match tgen.measure(&seq(2), 1.0, &mut rng) {
            Err(GenerateError::Budget(BudgetError::InvalidSplit)) => {}
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("mismatched weight count must not measure"),
        }
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let tgen = TemporalGenerator::new(Box::new(TmF::default()));
        let mut rng = StdRng::seed_from_u64(4);
        assert!(tgen.generate(&seq(2), 0.0, &mut rng).is_err());
        assert!(tgen.generate(&seq(2), f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn sample_is_repeatable_post_processing() {
        let tgen = TemporalGenerator::new(Box::new(TmF::default()));
        let mut rng = StdRng::seed_from_u64(5);
        let syn = tgen.measure(&seq(3), 1.0, &mut rng).unwrap();
        let spent = syn.epsilon_spent();
        let a = syn.sample(&mut StdRng::seed_from_u64(9));
        let b = syn.sample(&mut StdRng::seed_from_u64(9));
        for (ga, gb) in a.iter().zip(&b) {
            assert_eq!(ga.csr(), gb.csr());
        }
        assert_eq!(syn.epsilon_spent(), spent); // sampling is ε-free
    }

    #[test]
    fn generate_matches_measure_then_sample() {
        let tgen = TemporalGenerator::new(Box::new(TmF::default()));
        let s = seq(3);
        let one_shot = tgen.generate(&s, 1.0, &mut StdRng::seed_from_u64(6)).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let two_phase = tgen.measure(&s, 1.0, &mut rng).unwrap().sample(&mut rng);
        for (a, b) in one_shot.iter().zip(&two_phase) {
            assert_eq!(a.csr(), b.csr());
        }
    }

    #[test]
    fn temporal_suite_names() {
        let names: Vec<&str> = temporal_suite().iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["TmF", "DGG"]);
    }
}
