//! PrivSKG (Mir & Wright, EDBT/ICDT PAIS 2012): a differentially private
//! estimator for the stochastic Kronecker graph model.
//!
//! Representation: a symmetric 2×2 Kronecker initiator. Perturbation:
//! noisy graph *moments* — edge count (Laplace, global sensitivity 1),
//! wedge and triangle counts (Laplace calibrated to smooth sensitivity,
//! (ε, δ)-DP) — followed by a moment-matching fit of the initiator.
//! Construction: Kronecker ball-drop sampling over `2^k` nodes, then a
//! uniform induced subsample back to the input's node count (the moment
//! targets are pre-scaled by the matching subsampling factors, so the
//! subsample's expected moments hit the noisy targets).

use crate::generator::{check_epsilon, GenerateError, GraphGenerator, PrivateSynthesis};
use crate::par;
use pgb_dp::laplace::sample_laplace;
use pgb_dp::sensitivity::{
    smooth_sensitivity, triangle_local_sensitivity_at, wedge_local_sensitivity_at, SmoothParams,
};
use pgb_dp::BudgetAccountant;
use pgb_graph::{Graph, NodeId};
use pgb_models::{Initiator, KroneckerModel};
use pgb_queries::counting::{triangle_count, wedge_count};
use rand::{Rng, RngCore};

/// The PrivSKG generator.
#[derive(Clone, Debug)]
pub struct PrivSkg {
    /// δ of the smooth-sensitivity guarantee; 0.01 in §V-C.
    pub delta: f64,
    /// Moment-fit grid resolution (entries per axis in the coarse pass).
    pub grid_steps: usize,
}

impl Default for PrivSkg {
    fn default() -> Self {
        PrivSkg { delta: 0.01, grid_steps: 14 }
    }
}

/// The noisy moment targets the initiator is fitted against.
#[derive(Clone, Copy, Debug)]
struct MomentTargets {
    edges: f64,
    wedges: f64,
    triangles: f64,
}

/// Squared-log-error loss between a model's moments and the targets.
fn moment_loss(model: &KroneckerModel, t: &MomentTargets) -> f64 {
    let le = |x: f64| (x.max(0.0) + 1.0).ln();
    (le(model.expected_edges()) - le(t.edges)).powi(2)
        + (le(model.expected_wedges()) - le(t.wedges)).powi(2)
        + (le(model.expected_triangles()) - le(t.triangles)).powi(2)
}

/// Coarse grid search followed by coordinate descent with shrinking steps.
fn fit_initiator(k: u32, targets: &MomentTargets, grid_steps: usize) -> Initiator {
    let steps = grid_steps.max(4);
    let grid: Vec<f64> = (1..=steps).map(|i| i as f64 / (steps as f64 + 1.0)).collect();
    let mut best = Initiator::new(0.5, 0.5, 0.5);
    let mut best_loss = f64::INFINITY;
    for &a in &grid {
        for &b in &grid {
            for &c in &grid {
                if c > a {
                    continue; // symmetry: relabeling bits swaps a and c
                }
                let m = KroneckerModel { initiator: Initiator::new(a, b, c), k };
                let loss = moment_loss(&m, targets);
                if loss < best_loss {
                    best_loss = loss;
                    best = m.initiator;
                }
            }
        }
    }
    // Coordinate descent refinement.
    let mut step = 1.0 / (steps as f64 + 1.0);
    let mut current = best;
    for _ in 0..40 {
        let mut improved = false;
        for axis in 0..3 {
            for dir in [-1.0, 1.0] {
                let mut cand = current;
                let field = match axis {
                    0 => &mut cand.a,
                    1 => &mut cand.b,
                    _ => &mut cand.c,
                };
                *field = (*field + dir * step).clamp(1e-4, 1.0 - 1e-4);
                let m = KroneckerModel { initiator: cand, k };
                let loss = moment_loss(&m, targets);
                if loss < best_loss {
                    best_loss = loss;
                    current = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            step *= 0.5;
            if step < 1e-5 {
                break;
            }
        }
    }
    current
}

/// PrivSKG's private intermediate: the moment-matched Kronecker initiator
/// (fitted against the noisy edge/wedge/triangle targets). Ball-drop
/// sampling and the induced subsample read only the model, so re-sampling
/// is ε-free.
#[derive(Clone, Copy, Debug)]
pub struct SkgSynthesis {
    n: usize,
    model: Option<KroneckerModel>,
    epsilon: f64,
}

impl PrivateSynthesis for SkgSynthesis {
    fn name(&self) -> &'static str {
        "PrivSKG"
    }

    fn epsilon_spent(&self) -> f64 {
        self.epsilon
    }

    fn heap_bytes(&self) -> usize {
        0 // the initiator is a few inline floats; nothing heap-allocated
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Graph {
        let model = match self.model {
            Some(m) => m,
            None => return Graph::new(self.n),
        };
        let n = self.n;
        // Kronecker region edge sampling: ball drops are i.i.d., so the
        // drop total splits into fixed chunks with independent derived
        // streams — same distribution as one serial pass, byte-identical
        // at any thread count.
        let drops = model.sample_drop_count(rng);
        let pairs: Vec<(u32, u32)> =
            par::par_collect(drops as usize, par::DEFAULT_CHUNK, rng, |range, rng, out| {
                model.sample_drops(range.len() as u64, rng, out);
            });
        let mut builder = pgb_graph::GraphBuilder::with_capacity(model.node_count(), pairs.len());
        builder.extend(pairs);
        let big = builder.build_parallel(par::current_parallelism()).expect("ids bounded by 2^k");

        // Uniform induced subsample down to n nodes.
        if big.node_count() == n {
            return big;
        }
        let mut ids: Vec<NodeId> = (0..big.node_count() as u32).collect();
        for i in 0..n {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        ids.truncate(n);
        ids.sort_unstable();
        let (sub, _) = big.induced_subgraph(&ids);
        sub
    }
}

impl GraphGenerator for PrivSkg {
    fn name(&self) -> &'static str {
        "PrivSKG"
    }

    fn delta(&self) -> f64 {
        self.delta
    }

    fn measure(
        &self,
        graph: &Graph,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        check_epsilon(epsilon)?;
        let n = graph.node_count();
        if n < 2 {
            return Ok(Box::new(SkgSynthesis { n, model: None, epsilon }));
        }
        let mut acc = BudgetAccountant::new(epsilon)?;
        let shares =
            acc.split(&[("edge count", 1.0), ("wedge count", 1.0), ("triangle count", 1.0)])?;
        let (eps_m, eps_w, eps_t) = (shares[0], shares[1], shares[2]);
        let d_max = graph.max_degree();

        // Noisy moments. Edge count: global sensitivity 1 (pure DP share).
        let noisy_edges = (graph.edge_count() as f64 + sample_laplace(1.0 / eps_m, rng)).max(1.0);
        // Wedges and triangles: smooth sensitivity, (ε, δ) shares.
        let wedge_params = SmoothParams::for_laplace(eps_w, self.delta);
        let s_w =
            smooth_sensitivity(|k| wedge_local_sensitivity_at(d_max, k), wedge_params.beta, n);
        let noisy_wedges =
            (wedge_count(graph) as f64 + sample_laplace(2.0 * s_w / eps_w, rng)).max(1.0);
        let tri_params = SmoothParams::for_laplace(eps_t, self.delta);
        let s_t =
            smooth_sensitivity(|k| triangle_local_sensitivity_at(d_max, k), tri_params.beta, n);
        let noisy_triangles =
            (triangle_count(graph) as f64 + sample_laplace(2.0 * s_t / eps_t, rng)).max(0.0);

        // Fit over 2^k ≥ n nodes; pre-scale the targets for the final
        // induced subsample (edges shrink by f², wedges/triangles by f³).
        let k = (n as f64).log2().ceil() as u32;
        let f = n as f64 / (1usize << k) as f64;
        let targets = MomentTargets {
            edges: noisy_edges / (f * f),
            wedges: noisy_wedges / (f * f * f),
            triangles: noisy_triangles / (f * f * f),
        };
        let initiator = fit_initiator(k, &targets, self.grid_steps);
        let model = KroneckerModel { initiator, k };
        Ok(Box::new(SkgSynthesis { n, model: Some(model), epsilon: acc.total() }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fit_recovers_self_consistent_moments() {
        // Targets generated from a known initiator must be re-fitted to
        // moments close to those targets.
        let truth = KroneckerModel { initiator: Initiator::new(0.85, 0.45, 0.25), k: 10 };
        let targets = MomentTargets {
            edges: truth.expected_edges(),
            wedges: truth.expected_wedges(),
            triangles: truth.expected_triangles(),
        };
        let fitted = fit_initiator(10, &targets, 14);
        let m = KroneckerModel { initiator: fitted, k: 10 };
        assert!(
            (m.expected_edges() - targets.edges).abs() / targets.edges < 0.1,
            "edges {} vs {}",
            m.expected_edges(),
            targets.edges
        );
        assert!(
            (m.expected_wedges() - targets.wedges).abs() / targets.wedges < 0.3,
            "wedges {} vs {}",
            m.expected_wedges(),
            targets.wedges
        );
    }

    #[test]
    fn output_node_count_matches_input() {
        let mut rng = StdRng::seed_from_u64(430);
        let g = pgb_models::erdos_renyi_gnp(300, 0.04, &mut rng);
        let out = PrivSkg::default().generate(&g, 2.0, &mut rng).unwrap();
        assert_eq!(out.node_count(), 300);
        assert!(out.check_invariants());
    }

    #[test]
    fn high_epsilon_tracks_edge_count() {
        let mut rng = StdRng::seed_from_u64(431);
        let g = pgb_models::erdos_renyi_gnp(256, 0.05, &mut rng);
        let out = PrivSkg::default().generate(&g, 50.0, &mut rng).unwrap();
        let (m0, m1) = (g.edge_count() as f64, out.edge_count() as f64);
        assert!((m1 - m0).abs() / m0 < 0.45, "m0 {m0} m1 {m1}");
    }

    #[test]
    fn power_of_two_input_skips_subsampling() {
        let mut rng = StdRng::seed_from_u64(432);
        let g = pgb_models::erdos_renyi_gnp(256, 0.05, &mut rng);
        let out = PrivSkg::default().generate(&g, 5.0, &mut rng).unwrap();
        assert_eq!(out.node_count(), 256);
    }

    #[test]
    fn tiny_graph_ok() {
        let mut rng = StdRng::seed_from_u64(433);
        let out = PrivSkg::default().generate(&Graph::new(1), 1.0, &mut rng).unwrap();
        assert_eq!(out.node_count(), 1);
    }

    #[test]
    fn low_epsilon_valid() {
        let mut rng = StdRng::seed_from_u64(434);
        let g = pgb_models::barabasi_albert(200, 3, &mut rng);
        let out = PrivSkg::default().generate(&g, 0.1, &mut rng).unwrap();
        assert!(out.check_invariants());
        assert_eq!(out.node_count(), 200);
    }
}
