//! Deterministic intra-cell parallelism for the generators' hot loops.
//!
//! The benchmark runner parallelises across grid *cells*, but a grid with
//! few (dataset, algorithm, ε) cells leaves most cores idle while TmF scans
//! the upper triangle, DER fills its quadtree leaves, PrivSKG drops
//! Kronecker edges, and PrivGraph samples intra/inter-community edges. All
//! four perturbation/construction phases are embarrassingly parallel over
//! independent regions, so this module gives them a shared harness with one
//! hard guarantee: **output is byte-identical at any thread count**.
//!
//! ## The derived-stream chunking discipline
//!
//! [`par_collect`] splits an index range into fixed-size chunks whose
//! boundaries depend only on `(len, chunk)` — never on the thread count —
//! and draws exactly **one** `u64` base seed from the caller's RNG. Chunk
//! `i` then works on its own stream [`derive_stream`]`(base, i)` (the same
//! mixer family `QuerySuite::evaluate_all` and the runner's per-cell
//! derivation use), and chunk outputs are concatenated in chunk order. The
//! thread pool only decides *when* a chunk runs, not *what* it computes, so
//! for a fixed caller seed the result is identical whether the chunks run
//! on one thread or sixteen. Because every derived stream is independent,
//! the sampled distribution is the same as a serial pass would produce.
//!
//! ## The thread budget
//!
//! How many workers a [`par_collect`] call may use is scoped, not global:
//! [`with_parallelism`] pins the budget for the current thread (the runner
//! uses it to split `BenchmarkConfig::threads` between cell-level workers
//! and intra-cell parallelism), and [`current_parallelism`] reads it,
//! falling back to the machine's available parallelism when unset. Nested
//! parallel sections inside a `par_collect` worker run serially — the
//! budget is already spent one level up.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default indices per chunk for fine-grained index work (per-edge or
/// per-drop loops): large enough to amortise stream derivation and task
/// handoff, small enough that an 8-way machine load-balances a
/// few-hundred-thousand-element range.
pub const DEFAULT_CHUNK: usize = 8192;

thread_local! {
    /// 0 ⇒ unset (fall back to available parallelism).
    static THREAD_BUDGET: Cell<usize> = const { Cell::new(0) };
}

/// The machine's available parallelism (1 if it cannot be queried).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// The intra-cell thread budget for the current thread: the innermost
/// [`with_parallelism`] scope, or the machine's available parallelism when
/// no scope is active.
pub fn current_parallelism() -> usize {
    let t = THREAD_BUDGET.with(Cell::get);
    if t == 0 {
        available_parallelism()
    } else {
        t
    }
}

/// Runs `f` with the current thread's parallelism budget set to `threads`
/// (0 ⇒ reset to the available-parallelism default), restoring the previous
/// budget afterwards — panic-safe, scoped, and per-thread.
///
/// The budget only affects *scheduling*; results of the `par_collect` calls
/// inside `f` are identical for every value of `threads`.
pub fn with_parallelism<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_BUDGET.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_BUDGET.with(|c| c.replace(threads)));
    f()
}

/// Derives the deterministic RNG for chunk `index` of a parallel section
/// whose single caller draw was `base` — the same xorshift-multiply mixer
/// family as the runner's per-cell and the query suite's per-intermediate
/// derivations, so streams are independent across chunks and of the
/// caller's subsequent draws.
pub fn derive_stream(base: u64, index: u64) -> StdRng {
    let mut h = base ^ 0x2545_F491_4F6C_DD1D;
    h ^= index.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(h << 6).wrapping_add(h >> 2);
    h = h.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    h ^= h >> 32;
    StdRng::seed_from_u64(h)
}

/// The fixed chunk decomposition of `0..len`: every chunk has exactly
/// `chunk` indices except a shorter final one. Depends only on the inputs,
/// never on the thread count — this is what makes chunk streams stable.
///
/// # Panics
/// Panics if `chunk == 0`.
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..len).step_by(chunk).map(|start| start..(start + chunk).min(len)).collect()
}

/// Runs `f` once per chunk of `0..len` and returns all chunk outputs
/// concatenated in chunk order.
///
/// Draws exactly one `u64` from `rng` (regardless of `len`, `chunk`, or
/// the thread budget) and hands chunk `i` the stream
/// [`derive_stream`]`(base, i)` plus an output vector to push into. Chunks
/// are distributed over [`current_parallelism`] workers with a dynamic
/// cursor, so unequal chunk costs load-balance; a budget of 1 (or a single
/// chunk) runs inline with no thread spawn. Output, by construction, does
/// not depend on the worker count.
pub fn par_collect<T, F>(len: usize, chunk: usize, rng: &mut dyn RngCore, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(Range<usize>, &mut StdRng, &mut Vec<T>) + Sync,
{
    let base = rng.next_u64();
    let ranges = chunk_ranges(len, chunk);
    let workers = current_parallelism().min(ranges.len());
    if workers <= 1 {
        let mut out = Vec::new();
        for (i, r) in ranges.into_iter().enumerate() {
            f(r, &mut derive_stream(base, i as u64), &mut out);
        }
        return out;
    }
    let slots: Vec<OnceLock<Vec<T>>> = (0..ranges.len()).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // A worker *is* the parallelism; anything nested runs serial.
                with_parallelism(1, || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= ranges.len() {
                        break;
                    }
                    let mut chunk_rng = derive_stream(base, i as u64);
                    let mut out = Vec::new();
                    f(ranges[i].clone(), &mut chunk_rng, &mut out);
                    assert!(
                        slots[i].set(out).is_ok(),
                        "the atomic cursor hands out each chunk once"
                    );
                });
            });
        }
    });
    let parts: Vec<Vec<T>> = slots
        .into_iter()
        .map(|s| s.into_inner().expect("every claimed chunk publishes its slot"))
        .collect();
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for part in parts {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chunk_ranges_cover_exactly() {
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(chunk_ranges(3, 10), vec![0..3]);
        assert!(chunk_ranges(0, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        chunk_ranges(5, 0);
    }

    #[test]
    fn output_identical_across_thread_budgets() {
        let run = |threads: usize| {
            with_parallelism(threads, || {
                let mut rng = StdRng::seed_from_u64(99);
                par_collect(10_000, 128, &mut rng, |range, rng, out| {
                    for i in range {
                        out.push((i as u64) ^ rng.gen_range(0..1_000_000u64));
                    }
                })
            })
        };
        let serial = run(1);
        assert_eq!(serial.len(), 10_000);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn caller_rng_advances_by_exactly_one_draw() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let _ = par_collect(5_000, 64, &mut a, |range, rng, out: &mut Vec<u64>| {
            for _ in range {
                out.push(rng.next_u64());
            }
        });
        b.next_u64(); // the single base draw
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn with_parallelism_scopes_and_restores() {
        let outer = current_parallelism();
        with_parallelism(3, || {
            assert_eq!(current_parallelism(), 3);
            with_parallelism(1, || assert_eq!(current_parallelism(), 1));
            assert_eq!(current_parallelism(), 3);
        });
        assert_eq!(current_parallelism(), outer);
    }

    #[test]
    fn empty_range_still_draws_base() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let out = par_collect(0, 16, &mut a, |_, _, _: &mut Vec<u8>| unreachable!());
        assert!(out.is_empty());
        b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derived_streams_differ_per_chunk() {
        let mut s0 = derive_stream(42, 0);
        let mut s1 = derive_stream(42, 1);
        assert_ne!(
            (0..4).map(|_| s0.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| s1.next_u64()).collect::<Vec<_>>()
        );
    }
}
