//! The shared elastic task-execution core.
//!
//! Both halves of PGB that fan work over a thread budget — the benchmark
//! runner's (cell, repetition-block) grid and `pgb-serve`'s request
//! execution — used to need the same worker/claim loop: spawn a capped
//! worker pool, have each worker [`claim`](crate::par::BudgetLedger::claim)
//! tasks from a shared [`BudgetLedger`](crate::par::BudgetLedger), run each
//! task under [`with_elastic_parallelism`](crate::par::with_elastic_parallelism)
//! so its grant can grow mid-task as siblings finish, and release the grant
//! afterwards. [`run_elastic`] is that loop, extracted once; callers supply
//! only the task body.
//!
//! The loop is *scheduling only*: which worker runs which task, and with
//! how many threads, cannot affect what the task computes — that is the
//! derived-stream discipline's job (`pgb-par`). Task bodies therefore must
//! publish results into position-addressed slots (or be otherwise
//! order-free), never append to shared state in completion order.

use crate::par::BudgetLedger;
use std::sync::{Arc, OnceLock};

/// Executes tasks `0..tasks` over an elastic worker pool sharing `budget`
/// threads (0 ⇒ the machine's available parallelism).
///
/// Spawns `min(budget, tasks)` scoped workers; each claims task indices in
/// ascending order from a shared [`BudgetLedger`] and runs `run(task)`
/// under an elastic grant, so a long tail task absorbs the threads earlier
/// tasks release (both at claim time and mid-task, via
/// [`crate::par::current_parallelism`]'s re-polling). Callers that want a
/// non-index claim order sort their task list before calling and index
/// through it, as the benchmark runner's cost-aware claim order does.
///
/// Returns once every task has run. If a task panics, its grant is
/// released during unwinding (the pool identity holds) and the panic
/// propagates out of the enclosing thread scope once the other workers
/// drain the queue; callers that must survive task panics catch them
/// inside `run` (as `pgb-serve`'s fault isolation does).
pub fn run_elastic<F>(budget: usize, tasks: usize, run: F)
where
    F: Fn(usize) + Sync,
{
    let budget = if budget == 0 { crate::par::available_parallelism() } else { budget };
    let workers = budget.min(tasks).max(1);
    let ledger = Arc::new(BudgetLedger::new(budget, workers, tasks));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (ledger, run) = (&ledger, &run);
            scope.spawn(move || loop {
                // The fault point sits *before* the claim so a simulated
                // worker crash never strands a claimed grant.
                crate::fault::point("exec.claim", &[crate::fault::FaultAction::Panic]);
                let Some((task, grant)) = ledger.claim() else { break };
                let ((), grant) =
                    crate::par::with_elastic_parallelism(Arc::clone(ledger), grant, || run(task));
                ledger.release(grant);
            });
        }
    });
}

/// [`run_elastic`] with collected outputs: runs `f` once per index of
/// `0..len` over the elastic pool and returns the outputs **in index
/// order**, regardless of which worker computed which index when.
pub fn run_elastic_collect<T, F>(budget: usize, len: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let slots: Vec<OnceLock<T>> = (0..len).map(|_| OnceLock::new()).collect();
    run_elastic(budget, len, |i| {
        assert!(slots[i].set(f(i)).is_ok(), "the ledger hands out each task once");
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every claimed task publishes its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_task_runs_exactly_once() {
        for budget in [1, 2, 8, 0] {
            let counts: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
            run_elastic(budget, counts.len(), |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "budget = {budget}: every task must run exactly once"
            );
        }
    }

    #[test]
    fn collect_preserves_index_order_at_any_budget() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for budget in [1, 3, 8, 0] {
            assert_eq!(run_elastic_collect(budget, 37, |i| i * i), expected, "budget = {budget}");
        }
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        run_elastic(4, 0, |_| unreachable!("no task to run"));
        let out: Vec<u8> = run_elastic_collect(4, 0, |_| unreachable!("no task to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn tasks_see_an_elastic_grant() {
        // Inside a task, `current_parallelism` reads the elastic grant —
        // with one task and a budget of 4 the whole budget is granted.
        run_elastic(4, 1, |_| {
            assert_eq!(crate::par::current_parallelism(), 4);
        });
    }
}
