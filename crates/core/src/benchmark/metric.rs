//! The query → error-metric pairing the benchmark fixes for fairness
//! (principle U2): RE for most scalars, KL for the degree and distance
//! distributions, NMI for community detection, MAE for eigenvector
//! centrality — exactly the assignment of §V-D.

use pgb_metrics::{
    kl_divergence, mean_absolute_error, normalized_mutual_information, relative_error,
};
use pgb_queries::{Query, QueryValue};

/// The error metric used to compare a query's true and synthetic values.
///
/// All metrics are oriented so that **lower is better** (NMI is stored as
/// `1 − NMI`), which lets Definition 5/6 scoring treat every query
/// uniformly as a minimisation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorMetric {
    /// Relative error (E1).
    RelativeError,
    /// Kullback–Leibler divergence (E3).
    KlDivergence,
    /// `1 − NMI` (E11, inverted so lower is better).
    OneMinusNmi,
    /// Mean absolute error (E7).
    Mae,
}

impl ErrorMetric {
    /// Display name (matching the paper's figure axes).
    pub fn name(&self) -> &'static str {
        match self {
            ErrorMetric::RelativeError => "RE",
            ErrorMetric::KlDivergence => "KL",
            ErrorMetric::OneMinusNmi => "1-NMI",
            ErrorMetric::Mae => "MAE",
        }
    }
}

/// The metric §V-D assigns to each query: RE for `|V|`, `|E|`, △, d̄, dσ,
/// lmax, l̄, GCC, ACC, Mod, Ass; KL for the degree distribution **and**
/// the distance distribution ("we use KL for l instead of RE"); NMI for
/// CD; MAE for EVC.
pub fn metric_for(query: Query) -> ErrorMetric {
    match query {
        Query::DegreeDistribution | Query::DistanceDistribution => ErrorMetric::KlDivergence,
        Query::CommunityDetection => ErrorMetric::OneMinusNmi,
        Query::EigenvectorCentrality => ErrorMetric::Mae,
        _ => ErrorMetric::RelativeError,
    }
}

/// Computes the (lower-is-better) error between the true and synthetic
/// value of `query`.
///
/// Mismatched node counts are reconciled the way the reference evaluation
/// code does: centrality vectors are zero-padded to the longer length,
/// and synthetic partitions are truncated / extended with fresh singleton
/// labels to the true node count.
///
/// # Panics
/// Panics if the value shapes do not match the query's shape.
pub fn compute_error(query: Query, true_value: &QueryValue, synthetic: &QueryValue) -> f64 {
    match (metric_for(query), true_value, synthetic) {
        (ErrorMetric::RelativeError, QueryValue::Scalar(t), QueryValue::Scalar(s)) => {
            relative_error(*t, *s)
        }
        (ErrorMetric::KlDivergence, QueryValue::Distribution(t), QueryValue::Distribution(s)) => {
            kl_divergence(t, s)
        }
        (ErrorMetric::OneMinusNmi, QueryValue::Partition(t), QueryValue::Partition(s)) => {
            let aligned = align_partition(s, t.len());
            1.0 - normalized_mutual_information(t, &aligned)
        }
        (ErrorMetric::Mae, QueryValue::Vector(t), QueryValue::Vector(s)) => {
            let len = t.len().max(s.len());
            let pad = |v: &[f64]| {
                let mut out = v.to_vec();
                out.resize(len, 0.0);
                out
            };
            if len == 0 {
                0.0
            } else {
                mean_absolute_error(&pad(t), &pad(s))
            }
        }
        (metric, t, s) => {
            panic!("value shapes {t:?} / {s:?} do not match metric {metric:?} for query {query:?}")
        }
    }
}

/// Truncates or extends a label vector to `len`; new nodes become fresh
/// singleton communities.
///
/// Fresh labels are guaranteed not to occur in `labels` (and to be
/// distinct from each other): they count up from `max + 1`, and when the
/// label space past the maximum is exhausted — `u32::MAX` is a used label
/// — they fall back to scanning from `0` for unused values. The old
/// `wrapping_add` padding wrapped back to label `0` in that case,
/// silently merging padded nodes into an existing community and
/// corrupting the NMI score.
fn align_partition(labels: &[u32], len: usize) -> Vec<u32> {
    let mut out: Vec<u32> = labels.iter().take(len).copied().collect();
    if out.len() >= len {
        return out;
    }
    let needed = (len - out.len()) as u64;
    // Arithmetic in u64 so `max + needed` cannot wrap. Labels strictly
    // above the current maximum can never collide with a used one, so the
    // common path is allocation-free and sequential.
    let start = labels.iter().copied().max().map_or(0u64, |m| m as u64 + 1);
    if start + needed - 1 <= u32::MAX as u64 {
        out.extend((start..start + needed).map(|l| l as u32));
    } else {
        // The space past the maximum is too small (`u32::MAX` is a used
        // label): scan from 0 for values not present in `labels`.
        let used: std::collections::HashSet<u32> = labels.iter().copied().collect();
        let mut candidate = 0u64;
        while out.len() < len {
            while candidate <= u32::MAX as u64 && used.contains(&(candidate as u32)) {
                candidate += 1;
            }
            assert!(
                candidate <= u32::MAX as u64,
                "fresh-label space exhausted: {len} distinct labels needed"
            );
            out.push(candidate as u32);
            candidate += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairing_matches_paper() {
        assert_eq!(metric_for(Query::NodeCount), ErrorMetric::RelativeError);
        assert_eq!(metric_for(Query::Triangles), ErrorMetric::RelativeError);
        assert_eq!(metric_for(Query::DegreeDistribution), ErrorMetric::KlDivergence);
        assert_eq!(metric_for(Query::DistanceDistribution), ErrorMetric::KlDivergence);
        assert_eq!(metric_for(Query::CommunityDetection), ErrorMetric::OneMinusNmi);
        assert_eq!(metric_for(Query::EigenvectorCentrality), ErrorMetric::Mae);
        assert_eq!(metric_for(Query::Modularity), ErrorMetric::RelativeError);
    }

    #[test]
    fn scalar_error() {
        let e =
            compute_error(Query::EdgeCount, &QueryValue::Scalar(100.0), &QueryValue::Scalar(90.0));
        assert!((e - 0.1).abs() < 1e-12);
    }

    #[test]
    fn identical_values_zero_error() {
        let d = QueryValue::Distribution(vec![0.5, 0.5]);
        assert!(compute_error(Query::DegreeDistribution, &d, &d).abs() < 1e-6);
        let p = QueryValue::Partition(vec![0, 0, 1, 1]);
        assert!(compute_error(Query::CommunityDetection, &p, &p).abs() < 1e-9);
        let v = QueryValue::Vector(vec![0.3, 0.4]);
        assert!(compute_error(Query::EigenvectorCentrality, &v, &v).abs() < 1e-12);
    }

    #[test]
    fn partition_alignment_handles_size_mismatch() {
        let t = QueryValue::Partition(vec![0, 0, 1, 1]);
        let s = QueryValue::Partition(vec![0, 0]); // synthetic graph shrank
        let e = compute_error(Query::CommunityDetection, &t, &s);
        assert!((0.0..=1.0).contains(&e));
        let s = QueryValue::Partition(vec![0, 0, 1, 1, 2, 2]); // grew
        let e = compute_error(Query::CommunityDetection, &t, &s);
        assert!((0.0..=1.0).contains(&e));
    }

    #[test]
    fn fresh_labels_never_collide_at_u32_max() {
        // Regression: with `u32::MAX` present, the old `wrapping_add`
        // padding wrapped fresh labels back to 0 and silently merged the
        // padded nodes into community 0, corrupting NMI.
        let aligned = align_partition(&[0, 0, u32::MAX], 6);
        assert_eq!(&aligned[..3], &[0, 0, u32::MAX]);
        let fresh = &aligned[3..];
        // Fresh labels are unused and pairwise distinct — every padded
        // node is a genuine singleton community.
        for (i, &f) in fresh.iter().enumerate() {
            assert!(!aligned[..3].contains(&f), "fresh label {f} collides with a used one");
            assert!(!fresh[..i].contains(&f), "fresh label {f} repeated");
        }

        // End-to-end: the padded nodes must behave as singletons, exactly
        // like an alignment whose label space has room after the maximum.
        let t = QueryValue::Partition(vec![0, 0, 1, 1, 2, 2]);
        let wrapping = QueryValue::Partition(vec![0, 0, u32::MAX]);
        let roomy = QueryValue::Partition(vec![0, 0, 7]);
        let e_wrap = compute_error(Query::CommunityDetection, &t, &wrapping);
        let e_room = compute_error(Query::CommunityDetection, &t, &roomy);
        assert!((e_wrap - e_room).abs() < 1e-12, "{e_wrap} vs {e_room}");
    }

    #[test]
    fn fresh_labels_fill_gaps_when_tail_space_is_short() {
        // max = u32::MAX − 1 with three nodes to pad: only one label fits
        // past the maximum, so the fallback scan must supply the rest from
        // the unused low end without colliding.
        let labels = [5, u32::MAX - 1];
        let aligned = align_partition(&labels, 5);
        assert_eq!(&aligned[..2], &labels);
        let mut all = aligned.clone();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), aligned.len(), "labels must be pairwise distinct: {aligned:?}");
    }

    #[test]
    fn vector_padding() {
        let t = QueryValue::Vector(vec![1.0, 1.0]);
        let s = QueryValue::Vector(vec![1.0]);
        let e = compute_error(Query::EigenvectorCentrality, &t, &s);
        assert!((e - 0.5).abs() < 1e-12); // |1-1|, |1-0| averaged
    }

    #[test]
    #[should_panic(expected = "do not match")]
    fn shape_mismatch_panics() {
        compute_error(
            Query::NodeCount,
            &QueryValue::Scalar(1.0),
            &QueryValue::Distribution(vec![1.0]),
        );
    }
}
