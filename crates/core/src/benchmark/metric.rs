//! The query → error-metric pairing the benchmark fixes for fairness
//! (principle U2): RE for most scalars, KL for the degree and distance
//! distributions, NMI for community detection, MAE for eigenvector
//! centrality — exactly the assignment of §V-D.

use pgb_metrics::{
    kl_divergence, mean_absolute_error, normalized_mutual_information, relative_error,
};
use pgb_queries::{Query, QueryValue};

/// The error metric used to compare a query's true and synthetic values.
///
/// All metrics are oriented so that **lower is better** (NMI is stored as
/// `1 − NMI`), which lets Definition 5/6 scoring treat every query
/// uniformly as a minimisation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorMetric {
    /// Relative error (E1).
    RelativeError,
    /// Kullback–Leibler divergence (E3).
    KlDivergence,
    /// `1 − NMI` (E11, inverted so lower is better).
    OneMinusNmi,
    /// Mean absolute error (E7).
    Mae,
}

impl ErrorMetric {
    /// Display name (matching the paper's figure axes).
    pub fn name(&self) -> &'static str {
        match self {
            ErrorMetric::RelativeError => "RE",
            ErrorMetric::KlDivergence => "KL",
            ErrorMetric::OneMinusNmi => "1-NMI",
            ErrorMetric::Mae => "MAE",
        }
    }
}

/// The metric §V-D assigns to each query: RE for `|V|`, `|E|`, △, d̄, dσ,
/// lmax, l̄, GCC, ACC, Mod, Ass; KL for the degree distribution **and**
/// the distance distribution ("we use KL for l instead of RE"); NMI for
/// CD; MAE for EVC.
pub fn metric_for(query: Query) -> ErrorMetric {
    match query {
        Query::DegreeDistribution | Query::DistanceDistribution => ErrorMetric::KlDivergence,
        Query::CommunityDetection => ErrorMetric::OneMinusNmi,
        Query::EigenvectorCentrality => ErrorMetric::Mae,
        _ => ErrorMetric::RelativeError,
    }
}

/// Computes the (lower-is-better) error between the true and synthetic
/// value of `query`.
///
/// Mismatched node counts are reconciled the way the reference evaluation
/// code does: centrality vectors are zero-padded to the longer length,
/// and synthetic partitions are truncated / extended with fresh singleton
/// labels to the true node count.
///
/// # Panics
/// Panics if the value shapes do not match the query's shape.
pub fn compute_error(query: Query, true_value: &QueryValue, synthetic: &QueryValue) -> f64 {
    match (metric_for(query), true_value, synthetic) {
        (ErrorMetric::RelativeError, QueryValue::Scalar(t), QueryValue::Scalar(s)) => {
            relative_error(*t, *s)
        }
        (ErrorMetric::KlDivergence, QueryValue::Distribution(t), QueryValue::Distribution(s)) => {
            kl_divergence(t, s)
        }
        (ErrorMetric::OneMinusNmi, QueryValue::Partition(t), QueryValue::Partition(s)) => {
            let aligned = align_partition(s, t.len());
            1.0 - normalized_mutual_information(t, &aligned)
        }
        (ErrorMetric::Mae, QueryValue::Vector(t), QueryValue::Vector(s)) => {
            let len = t.len().max(s.len());
            let pad = |v: &[f64]| {
                let mut out = v.to_vec();
                out.resize(len, 0.0);
                out
            };
            if len == 0 {
                0.0
            } else {
                mean_absolute_error(&pad(t), &pad(s))
            }
        }
        (metric, t, s) => {
            panic!("value shapes {t:?} / {s:?} do not match metric {metric:?} for query {query:?}")
        }
    }
}

/// Truncates or extends a label vector to `len`; new nodes become fresh
/// singleton communities.
fn align_partition(labels: &[u32], len: usize) -> Vec<u32> {
    let mut out: Vec<u32> = labels.iter().take(len).copied().collect();
    let mut fresh = labels.iter().copied().max().unwrap_or(0);
    while out.len() < len {
        fresh = fresh.wrapping_add(1);
        out.push(fresh);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairing_matches_paper() {
        assert_eq!(metric_for(Query::NodeCount), ErrorMetric::RelativeError);
        assert_eq!(metric_for(Query::Triangles), ErrorMetric::RelativeError);
        assert_eq!(metric_for(Query::DegreeDistribution), ErrorMetric::KlDivergence);
        assert_eq!(metric_for(Query::DistanceDistribution), ErrorMetric::KlDivergence);
        assert_eq!(metric_for(Query::CommunityDetection), ErrorMetric::OneMinusNmi);
        assert_eq!(metric_for(Query::EigenvectorCentrality), ErrorMetric::Mae);
        assert_eq!(metric_for(Query::Modularity), ErrorMetric::RelativeError);
    }

    #[test]
    fn scalar_error() {
        let e =
            compute_error(Query::EdgeCount, &QueryValue::Scalar(100.0), &QueryValue::Scalar(90.0));
        assert!((e - 0.1).abs() < 1e-12);
    }

    #[test]
    fn identical_values_zero_error() {
        let d = QueryValue::Distribution(vec![0.5, 0.5]);
        assert!(compute_error(Query::DegreeDistribution, &d, &d).abs() < 1e-6);
        let p = QueryValue::Partition(vec![0, 0, 1, 1]);
        assert!(compute_error(Query::CommunityDetection, &p, &p).abs() < 1e-9);
        let v = QueryValue::Vector(vec![0.3, 0.4]);
        assert!(compute_error(Query::EigenvectorCentrality, &v, &v).abs() < 1e-12);
    }

    #[test]
    fn partition_alignment_handles_size_mismatch() {
        let t = QueryValue::Partition(vec![0, 0, 1, 1]);
        let s = QueryValue::Partition(vec![0, 0]); // synthetic graph shrank
        let e = compute_error(Query::CommunityDetection, &t, &s);
        assert!((0.0..=1.0).contains(&e));
        let s = QueryValue::Partition(vec![0, 0, 1, 1, 2, 2]); // grew
        let e = compute_error(Query::CommunityDetection, &t, &s);
        assert!((0.0..=1.0).contains(&e));
    }

    #[test]
    fn vector_padding() {
        let t = QueryValue::Vector(vec![1.0, 1.0]);
        let s = QueryValue::Vector(vec![1.0]);
        let e = compute_error(Query::EigenvectorCentrality, &t, &s);
        assert!((e - 0.5).abs() < 1e-12); // |1-1|, |1-0| averaged
    }

    #[test]
    #[should_panic(expected = "do not match")]
    fn shape_mismatch_panics() {
        compute_error(
            Query::NodeCount,
            &QueryValue::Scalar(1.0),
            &QueryValue::Distribution(vec![1.0]),
        );
    }
}
