//! Best-performance scoring: Definition 5 (Table VII) and Definition 6
//! (Table XII).
//!
//! Definition 5: `C_A(G, ε)` counts, over the query set, how often
//! algorithm `A` achieves the minimum error for dataset `G` at budget
//! `ε`. Definition 6: `C_A(Qᵢ)` counts, over the (dataset × ε) grid, how
//! often `A` achieves the minimum for query `Qᵢ`. Ties credit every
//! minimal algorithm (the paper's Table VII columns sum to more than 15
//! for exactly this reason).

use crate::benchmark::runner::BenchmarkResults;
use pgb_queries::Query;
use std::collections::HashMap;

/// Tolerance for declaring a tie on the minimum error.
const TIE_EPS: f64 = 1e-12;

/// Definition 5: best-performance counts per (algorithm, dataset, ε).
/// Returns a map `(algorithm, dataset, ε-index) → count` over the result
/// set's queries.
pub fn best_counts_per_case(results: &BenchmarkResults) -> HashMap<(String, String, usize), usize> {
    let mut counts: HashMap<(String, String, usize), usize> = HashMap::new();
    for (ei, &eps) in results.epsilons.iter().enumerate() {
        for dataset in &results.datasets {
            for &query in &results.queries {
                credit_winners(results, dataset, eps, query, |algo| {
                    *counts.entry((algo.to_string(), dataset.clone(), ei)).or_insert(0) += 1;
                });
            }
        }
    }
    counts
}

/// Definition 6: best-performance counts per (algorithm, query) over the
/// whole (dataset × ε) grid.
pub fn best_counts_per_query(results: &BenchmarkResults) -> HashMap<(String, Query), usize> {
    let mut counts: HashMap<(String, Query), usize> = HashMap::new();
    for &eps in &results.epsilons {
        for dataset in &results.datasets {
            for &query in &results.queries {
                credit_winners(results, dataset, eps, query, |algo| {
                    *counts.entry((algo.to_string(), query)).or_insert(0) += 1;
                });
            }
        }
    }
    counts
}

/// Finds the minimal-error algorithms for one (dataset, ε, query) cell and
/// invokes `credit` for each. Cells are fetched per algorithm through
/// [`BenchmarkResults::error`]'s positional lookup; `NaN` cells (failed
/// generations) never win or tie.
fn credit_winners<F: FnMut(&str)>(
    results: &BenchmarkResults,
    dataset: &str,
    epsilon: f64,
    query: Query,
    mut credit: F,
) {
    let mut best = f64::INFINITY;
    let mut cells: Vec<(&str, f64)> = Vec::new();
    for algo in &results.algorithms {
        if let Some(err) = results.error(algo, dataset, epsilon, query) {
            cells.push((algo.as_str(), err));
            if err < best {
                best = err;
            }
        }
    }
    if !best.is_finite() {
        return;
    }
    for (algo, err) in cells {
        if err <= best + TIE_EPS {
            credit(algo);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::metric::{metric_for, ErrorMetric};
    use crate::benchmark::runner::ExperimentOutcome;

    fn fake_results() -> BenchmarkResults {
        let mk = |algo: &str, dataset: &str, eps: f64, query: Query, err: f64| ExperimentOutcome {
            algorithm: algo.into(),
            dataset: dataset.into(),
            epsilon: eps,
            query,
            metric: metric_for(query),
            mean_error: err,
            runs: 1,
        };
        BenchmarkResults {
            outcomes: vec![
                // ε = 1, dataset D: A wins Q1, ties with B on Q2.
                mk("A", "D", 1.0, Query::NodeCount, 0.1),
                mk("B", "D", 1.0, Query::NodeCount, 0.2),
                mk("A", "D", 1.0, Query::EdgeCount, 0.3),
                mk("B", "D", 1.0, Query::EdgeCount, 0.3),
                // ε = 2, dataset D: B wins both.
                mk("A", "D", 2.0, Query::NodeCount, 0.5),
                mk("B", "D", 2.0, Query::NodeCount, 0.1),
                mk("A", "D", 2.0, Query::EdgeCount, 0.5),
                mk("B", "D", 2.0, Query::EdgeCount, 0.1),
            ],
            algorithms: vec!["A".into(), "B".into()],
            datasets: vec!["D".into()],
            epsilons: vec![1.0, 2.0],
            queries: vec![Query::NodeCount, Query::EdgeCount],
        }
    }

    #[test]
    fn definition5_counts_with_ties() {
        let counts = best_counts_per_case(&fake_results());
        assert_eq!(counts[&("A".to_string(), "D".to_string(), 0)], 2); // Q1 win + Q2 tie
        assert_eq!(counts[&("B".to_string(), "D".to_string(), 0)], 1); // Q2 tie
        assert_eq!(counts[&("B".to_string(), "D".to_string(), 1)], 2);
        assert!(!counts.contains_key(&("A".to_string(), "D".to_string(), 1)));
    }

    #[test]
    fn definition6_counts() {
        let counts = best_counts_per_query(&fake_results());
        assert_eq!(counts[&("A".to_string(), Query::NodeCount)], 1);
        assert_eq!(counts[&("B".to_string(), Query::NodeCount)], 1);
        assert_eq!(counts[&("A".to_string(), Query::EdgeCount)], 1); // tie at ε=1
        assert_eq!(counts[&("B".to_string(), Query::EdgeCount)], 2); // tie + win
    }

    #[test]
    fn metric_orientation_is_lower_better() {
        // The scoring assumes every metric is a minimisation; make sure
        // the metric module keeps that promise for all queries.
        for q in Query::ALL {
            let m = metric_for(q);
            assert!(matches!(
                m,
                ErrorMetric::RelativeError
                    | ErrorMetric::KlDivergence
                    | ErrorMetric::OneMinusNmi
                    | ErrorMetric::Mae
            ));
        }
    }
}
