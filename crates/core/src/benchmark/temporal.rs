//! The temporal benchmark grid: [`TemporalGenerator`]s × snapshot
//! sequences × ε, with a **window** dimension the static grid never had.
//!
//! Each repetition generates one synthetic snapshot sequence
//! ([`TemporalGenerator::generate`] — per-window budget shares, per-window
//! derived streams) and evaluates the query suite on every window through
//! [`pgb_queries::temporal::suite_drift`], so the shared-intermediate
//! reuse of `evaluate_all` applies per snapshot. Per query the grid then
//! emits:
//!
//! * one row per window — the usual true-vs-synthetic error on that
//!   window's snapshot pair;
//! * one `drift` row — how faithfully the synthetic sequence reproduces
//!   the *evolution* of the true sequence: with `t_w`/`s_w` the true and
//!   synthetic values on window `w` and `d(·,·)` the query's Table-IV
//!   metric, the drift error is `mean_w |d(t_w, t_{w+1}) − d(s_w,
//!   s_{w+1})|` over adjacent windows (0 for single-window grids).
//!
//! Execution mirrors the static runner contract for contract: the same
//! derived [`cell_rng`] family keyed by (dataset, algorithm, ε, rep), the
//! same per-(cell, rep) `OnceLock` slots reduced in repetition order, the
//! same static/elastic scheduler pair (the elastic path claims through the
//! shared [`CostModel`]), and the same complete-grid `runs = 0` guarantee.
//! The CSV is byte-identical across thread budgets and schedulers.

use crate::benchmark::metric::{compute_error, metric_for, ErrorMetric};
use crate::benchmark::runner::{
    cell_rng, measure_rng, pop_costliest, BenchmarkConfig, CostModel, MeasureReuse, Scheduler,
    ELASTIC_TASKS_PER_WORKER,
};
use crate::temporal::{TemporalGenerator, TemporalSynthesis};
use pgb_graph::temporal::SnapshotSequence;
use pgb_queries::{suite_drift, suite_drift_sequence, Query, QueryValue};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// One averaged temporal-benchmark cell: an (algorithm, dataset, ε,
/// window, query) tuple. `window == None` is the query's drift row.
#[derive(Clone, Debug)]
pub struct TemporalOutcome {
    /// Algorithm display name.
    pub algorithm: String,
    /// Dataset display name.
    pub dataset: String,
    /// Privacy budget ε (the *total* grant; windows split it).
    pub epsilon: f64,
    /// Window index, or `None` for the drift row.
    pub window: Option<usize>,
    /// The evaluated query.
    pub query: Query,
    /// The metric the error is expressed in (lower is better). Drift rows
    /// report the mean absolute difference of that metric across adjacent
    /// windows.
    pub metric: ErrorMetric,
    /// Mean error over the repetitions; `NaN` when every repetition's
    /// generation failed (`runs == 0`).
    pub mean_error: f64,
    /// Number of repetitions averaged.
    pub runs: usize,
}

/// All outcomes of a temporal benchmark run, in a fixed complete-grid
/// layout: dataset-major, then algorithm, then ε, then window (`0..W`
/// followed by the drift pseudo-window), then query.
#[derive(Clone, Debug, Default)]
pub struct TemporalBenchmarkResults {
    /// One entry per (dataset, algorithm, ε, window | drift, query).
    pub outcomes: Vec<TemporalOutcome>,
    /// Algorithm names in suite order.
    pub algorithms: Vec<String>,
    /// Dataset names in input order.
    pub datasets: Vec<String>,
    /// Per-dataset window counts (datasets may differ).
    pub window_counts: Vec<usize>,
    /// The swept ε values.
    pub epsilons: Vec<f64>,
    /// The evaluated queries.
    pub queries: Vec<Query>,
}

impl TemporalBenchmarkResults {
    /// Renders all outcomes as CSV
    /// (`algorithm,dataset,epsilon,window,query,metric,mean_error,runs`);
    /// drift rows carry `drift` in the window column.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("algorithm,dataset,epsilon,window,query,metric,mean_error,runs\n");
        for o in &self.outcomes {
            let window = match o.window {
                Some(w) => w.to_string(),
                None => "drift".to_string(),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.6e},{}\n",
                o.algorithm,
                o.dataset,
                o.epsilon,
                window,
                o.query.symbol(),
                o.metric.name(),
                o.mean_error,
                o.runs
            ));
        }
        out
    }
}

/// The true per-window suite values and true drift series of one dataset.
struct TrueSequence {
    /// `per_window[w][qi]`.
    per_window: Vec<Vec<QueryValue>>,
    /// `drift[qi][pair]` = `d(t_pair, t_pair+1)` for adjacent windows.
    drift: Vec<Vec<f64>>,
}

/// Adjacent-window metric series of a value sequence:
/// `out[qi][w] = d(values[w][qi], values[w+1][qi])`.
fn drift_series(queries: &[Query], values: &[Vec<QueryValue>]) -> Vec<Vec<f64>> {
    queries
        .iter()
        .enumerate()
        .map(|(qi, &q)| {
            values.windows(2).map(|pair| compute_error(q, &pair[0][qi], &pair[1][qi])).collect()
        })
        .collect()
}

/// One repetition of a temporal cell: generate the synthetic sequence on
/// the rep's derived stream (or re-`sample` the cell's shared measurement),
/// evaluate every window through the drift sweep, and return the flattened
/// per-row errors (window-major `w × Q`, then the `Q` drift entries).
/// `None` when generation failed — the repetition is skipped, not averaged.
fn run_temporal_rep(
    algorithm: &TemporalGenerator,
    seq: &SnapshotSequence,
    truth: &TrueSequence,
    config: &BenchmarkConfig,
    (di, ai, ei): (usize, usize, usize),
    rep: usize,
    shared: Option<&Option<TemporalSynthesis>>,
) -> Option<Vec<f64>> {
    let mut rng = cell_rng(config.seed, di, ai, ei, rep);
    let graphs = match shared {
        None => algorithm.generate(seq, config.epsilons[ei], &mut rng).ok()?,
        Some(Some(measured)) => measured.sample(&mut rng),
        Some(None) => return None,
    };
    let synth = suite_drift(&graphs, &config.queries, &config.query_params, &mut rng);
    let windows = graphs.len();
    let q = config.queries.len();
    let mut errors = Vec::with_capacity((windows + 1) * q);
    for (wv, tv) in synth.per_window.iter().zip(&truth.per_window) {
        for (qi, &query) in config.queries.iter().enumerate() {
            errors.push(compute_error(query, &tv[qi], &wv[qi]));
        }
    }
    let synth_drift = drift_series(&config.queries, &synth.per_window);
    for (series, pairs) in synth_drift.iter().zip(&truth.drift) {
        let e = if pairs.is_empty() {
            0.0
        } else {
            pairs.iter().zip(series).map(|(t, s)| (t - s).abs()).sum::<f64>() / pairs.len() as f64
        };
        errors.push(e);
    }
    Some(errors)
}

/// Folds a temporal cell's per-repetition error vectors — in repetition
/// order — into its `(W + 1) × Q` outcome rows (windows then drift).
fn reduce_temporal_cell(
    algorithm: &str,
    dataset: &str,
    epsilon: f64,
    windows: usize,
    config: &BenchmarkConfig,
    rep_errors: impl Iterator<Item = Option<Vec<f64>>>,
) -> Vec<TemporalOutcome> {
    let q = config.queries.len();
    let rows = (windows + 1) * q;
    let mut sums = vec![0.0f64; rows];
    let mut runs = 0usize;
    for errors in rep_errors.flatten() {
        debug_assert_eq!(errors.len(), rows);
        for (sum, e) in sums.iter_mut().zip(&errors) {
            *sum += e;
        }
        runs += 1;
    }
    (0..rows)
        .map(|row| {
            let (slot, qi) = (row / q, row % q);
            let query = config.queries[qi];
            TemporalOutcome {
                algorithm: algorithm.to_string(),
                dataset: dataset.to_string(),
                epsilon,
                window: (slot < windows).then_some(slot),
                query,
                metric: metric_for(query),
                mean_error: if runs == 0 { f64::NAN } else { sums[row] / runs as f64 },
                runs,
            }
        })
        .collect()
}

/// The cell's one shared temporal measurement under
/// [`MeasureReuse::PerCell`], on the cell's dedicated stream.
fn measure_temporal_cell(
    algorithm: &TemporalGenerator,
    seq: &SnapshotSequence,
    config: &BenchmarkConfig,
    (di, ai, ei): (usize, usize, usize),
) -> Option<TemporalSynthesis> {
    let mut rng = measure_rng(config.seed, di, ai, ei);
    algorithm.measure(seq, config.epsilons[ei], &mut rng).ok()
}

/// Runs the temporal benchmark grid: every algorithm × snapshot sequence ×
/// ε, `config.repetitions` synthetic sequences per cell, one outcome row
/// per window plus a drift row per query. All the static runner's
/// execution contracts carry over — derived per-cell streams, fixed
/// reduction order, both schedulers, per-cell measurement reuse, the
/// complete-grid `runs = 0` guarantee — so the CSV is byte-identical
/// across thread budgets and schedulers.
pub fn run_temporal_benchmark(
    algorithms: &[TemporalGenerator],
    datasets: &[(String, SnapshotSequence)],
    config: &BenchmarkConfig,
) -> TemporalBenchmarkResults {
    let budget =
        if config.threads == 0 { crate::par::available_parallelism() } else { config.threads };
    // True per-window values and drift series, once per dataset on its own
    // derived stream (the `ai = usize::MAX` slot no real cell occupies),
    // under the full ambient budget — no cell workers are running yet.
    let truths: Vec<TrueSequence> = crate::par::with_parallelism(budget, || {
        datasets
            .iter()
            .enumerate()
            .map(|(di, (_, seq))| {
                let mut rng = cell_rng(config.seed, di, usize::MAX, 0, 0);
                let sweep =
                    suite_drift_sequence(seq, &config.queries, &config.query_params, &mut rng);
                let drift = drift_series(&config.queries, &sweep.per_window);
                TrueSequence { per_window: sweep.per_window, drift }
            })
            .collect()
    });

    // Task grid: (dataset, algorithm, epsilon), in outcome order.
    let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
    for di in 0..datasets.len() {
        for ai in 0..algorithms.len() {
            for ei in 0..config.epsilons.len() {
                tasks.push((di, ai, ei));
            }
        }
    }
    let outcomes = match config.sched {
        Scheduler::Static => {
            run_temporal_static(algorithms, datasets, config, &truths, &tasks, budget)
        }
        Scheduler::Elastic => {
            run_temporal_elastic(algorithms, datasets, config, &truths, &tasks, budget)
        }
    };
    TemporalBenchmarkResults {
        outcomes,
        algorithms: algorithms.iter().map(|a| a.name().to_string()).collect(),
        datasets: datasets.iter().map(|(n, _)| n.clone()).collect(),
        window_counts: datasets.iter().map(|(_, s)| s.window_count()).collect(),
        epsilons: config.epsilons.clone(),
        queries: config.queries.clone(),
    }
}

/// The static scheduler over temporal cells: one task per cell, intra-cell
/// budget split once at spawn — the exact shape of the static grid path.
fn run_temporal_static(
    algorithms: &[TemporalGenerator],
    datasets: &[(String, SnapshotSequence)],
    config: &BenchmarkConfig,
    truths: &[TrueSequence],
    tasks: &[(usize, usize, usize)],
    budget: usize,
) -> Vec<TemporalOutcome> {
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<Vec<TemporalOutcome>>> =
        (0..tasks.len()).map(|_| OnceLock::new()).collect();
    let workers = budget.min(tasks.len().max(1));
    let intra_threads = budget / workers;
    let intra_extra = budget % workers;

    std::thread::scope(|scope| {
        for w in 0..workers {
            let intra = intra_threads + usize::from(w < intra_extra);
            let (next, slots) = (&next, &slots);
            scope.spawn(move || {
                crate::par::with_parallelism(intra, || loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= tasks.len() {
                        break;
                    }
                    let (di, ai, ei) = tasks[t];
                    let (dataset_name, seq) = &datasets[di];
                    let algorithm = &algorithms[ai];
                    let shared = (config.reuse == MeasureReuse::PerCell)
                        .then(|| measure_temporal_cell(algorithm, seq, config, (di, ai, ei)));
                    let local = reduce_temporal_cell(
                        algorithm.name(),
                        dataset_name,
                        config.epsilons[ei],
                        seq.window_count(),
                        config,
                        (0..config.repetitions.max(1)).map(|rep| {
                            run_temporal_rep(
                                algorithm,
                                seq,
                                &truths[di],
                                config,
                                (di, ai, ei),
                                rep,
                                shared.as_ref(),
                            )
                        }),
                    );
                    slots[t].set(local).expect("the atomic cursor hands out each task once");
                });
            });
        }
    });

    slots
        .into_iter()
        .flat_map(|slot| slot.into_inner().expect("every claimed task publishes its slot"))
        .collect()
}

/// The elastic scheduler over temporal cells: (cell, repetition-block)
/// sub-tasks claimed through the shared [`CostModel`] pool, per-rep
/// `OnceLock` slots reduced in repetition order — the temporal mirror of
/// the static grid's elastic path.
fn run_temporal_elastic(
    algorithms: &[TemporalGenerator],
    datasets: &[(String, SnapshotSequence)],
    config: &BenchmarkConfig,
    truths: &[TrueSequence],
    tasks: &[(usize, usize, usize)],
    budget: usize,
) -> Vec<TemporalOutcome> {
    let reps = config.repetitions.max(1);
    let cells = tasks.len();
    let worker_cap = budget.min(cells.saturating_mul(reps)).max(1);
    let blocks_per_cell =
        (worker_cap * ELASTIC_TASKS_PER_WORKER).div_ceil(cells.max(1)).clamp(1, reps);
    let block = reps.div_ceil(blocks_per_cell);
    let mut subtasks: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
    for cell in 0..cells {
        let mut start = 0;
        while start < reps {
            let end = (start + block).min(reps);
            subtasks.push((cell, start..end));
            start = end;
        }
    }
    let model = CostModel::new(algorithms.iter().map(|a| a.name()));
    let pending: std::sync::Mutex<Vec<usize>> =
        std::sync::Mutex::new((0..subtasks.len()).collect());
    let rep_slots: Vec<OnceLock<Option<Vec<f64>>>> =
        (0..cells * reps).map(|_| OnceLock::new()).collect();
    let measured: Vec<OnceLock<Option<TemporalSynthesis>>> =
        (0..cells).map(|_| OnceLock::new()).collect();

    crate::exec::run_elastic(budget, subtasks.len(), |_ticket| {
        let s = pop_costliest(&pending, |s| {
            let (cell, range) = &subtasks[s];
            let (di, ai, _) = tasks[*cell];
            (model.claim_key(ai, datasets[di].1.node_count()), (*cell, range.start))
        });
        let (cell, rep_range) = &subtasks[s];
        let (di, ai, ei) = tasks[*cell];
        let (_, seq) = &datasets[di];
        let started = std::time::Instant::now();
        let shared = (config.reuse == MeasureReuse::PerCell).then(|| {
            measured[*cell]
                .get_or_init(|| measure_temporal_cell(&algorithms[ai], seq, config, (di, ai, ei)))
        });
        for rep in rep_range.clone() {
            let errors = run_temporal_rep(
                &algorithms[ai],
                seq,
                &truths[di],
                config,
                (di, ai, ei),
                rep,
                shared,
            );
            rep_slots[*cell * reps + rep]
                .set(errors)
                .expect("the ledger hands out each sub-task once");
        }
        model.record(ai, seq.node_count(), rep_range.len(), started.elapsed().as_secs_f64());
    });

    let mut rep_results: Vec<Option<Vec<f64>>> = rep_slots
        .into_iter()
        .map(|s| s.into_inner().expect("every claimed sub-task publishes its repetitions"))
        .collect();
    tasks
        .iter()
        .enumerate()
        .flat_map(|(t, &(di, ai, ei))| {
            reduce_temporal_cell(
                algorithms[ai].name(),
                &datasets[di].0,
                config.epsilons[ei],
                datasets[di].1.window_count(),
                config,
                rep_results[t * reps..(t + 1) * reps].iter_mut().map(std::mem::take),
            )
        })
        .collect()
}
