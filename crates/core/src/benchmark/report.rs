//! Plain-text table rendering for the harness binaries.

use crate::benchmark::runner::BenchmarkResults;
use crate::benchmark::scoring::{best_counts_per_case, best_counts_per_query};

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn add_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len().max(cells.len()), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = render_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders Table VII (Definition 5): one block per ε, algorithms as rows,
/// datasets as columns, cells = best-performance counts.
pub fn render_table7(results: &BenchmarkResults) -> String {
    let counts = best_counts_per_case(results);
    let mut out = String::new();
    for (ei, eps) in results.epsilons.iter().enumerate() {
        out.push_str(&format!("ε = {eps}\n"));
        let mut headers = vec!["Algorithm".to_string()];
        headers.extend(results.datasets.iter().cloned());
        let mut table = TextTable::new(headers);
        for algo in &results.algorithms {
            let mut row = vec![algo.clone()];
            for dataset in &results.datasets {
                let c = counts.get(&(algo.clone(), dataset.clone(), ei)).copied().unwrap_or(0);
                row.push(c.to_string());
            }
            table.add_row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Renders Table XII (Definition 6): algorithms as rows, queries as
/// columns, cells = best counts over the (dataset × ε) grid.
pub fn render_table12(results: &BenchmarkResults) -> String {
    let counts = best_counts_per_query(results);
    let mut headers = vec!["Algorithm".to_string()];
    headers.extend(results.queries.iter().map(|q| q.symbol().to_string()));
    let mut table = TextTable::new(headers);
    for algo in &results.algorithms {
        let mut row = vec![algo.clone()];
        for &q in &results.queries {
            let c = counts.get(&(algo.clone(), q)).copied().unwrap_or(0);
            row.push(c.to_string());
        }
        table.add_row(row);
    }
    table.render()
}

/// Renders a Fig.-2-style series block: for one (dataset, query), one row
/// per ε with a column per algorithm.
pub fn render_series(
    results: &BenchmarkResults,
    dataset: &str,
    query: pgb_queries::Query,
) -> String {
    let mut headers = vec!["ε".to_string()];
    headers.extend(results.algorithms.iter().cloned());
    let mut table = TextTable::new(headers);
    for &eps in &results.epsilons {
        let mut row = vec![format!("{eps}")];
        for algo in &results.algorithms {
            let cell = results
                .error(algo, dataset, eps, query)
                .map(|e| format!("{e:.4e}"))
                .unwrap_or_else(|| "-".to_string());
            row.push(cell);
        }
        table.add_row(row);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::metric::metric_for;
    use crate::benchmark::runner::ExperimentOutcome;
    use pgb_queries::Query;

    fn fake_results() -> BenchmarkResults {
        let mk = |algo: &str, eps: f64, err: f64| ExperimentOutcome {
            algorithm: algo.into(),
            dataset: "D".into(),
            epsilon: eps,
            query: Query::EdgeCount,
            metric: metric_for(Query::EdgeCount),
            mean_error: err,
            runs: 1,
        };
        BenchmarkResults {
            outcomes: vec![mk("A", 1.0, 0.1), mk("B", 1.0, 0.4)],
            algorithms: vec!["A".into(), "B".into()],
            datasets: vec!["D".into()],
            epsilons: vec![1.0],
            queries: vec![Query::EdgeCount],
        }
    }

    #[test]
    fn text_table_alignment() {
        let mut t = TextTable::new(["name", "value"]);
        t.add_row(["short", "1"]);
        t.add_row(["a-much-longer-name", "42"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All value cells start at the same column.
        let col = lines[2].rfind('1').unwrap();
        assert_eq!(lines[3].rfind("42").unwrap(), col);
    }

    #[test]
    fn table_renders_ragged_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.add_row(["1"]);
        assert_eq!(t.row_count(), 1);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn table7_contains_counts() {
        let s = render_table7(&fake_results());
        assert!(s.contains("ε = 1"));
        assert!(s.contains('A'));
        // A wins the single cell.
        assert!(s.lines().any(|l| l.starts_with('A') && l.trim_end().ends_with('1')), "{s}");
        assert!(s.lines().any(|l| l.starts_with('B') && l.trim_end().ends_with('0')), "{s}");
    }

    #[test]
    fn table12_contains_queries() {
        let s = render_table12(&fake_results());
        assert!(s.contains("|E|"));
    }

    #[test]
    fn series_renders_errors() {
        let s = render_series(&fake_results(), "D", Query::EdgeCount);
        assert!(s.contains("1.0000e-1") || s.contains("1.0000e1") || s.contains("1.00"));
    }
}
