//! The benchmark runner: executes the (M, G, P) grid, evaluates U, and
//! averages repeated runs.

use crate::benchmark::metric::{compute_error, metric_for, ErrorMetric};
use crate::generator::GraphGenerator;
use pgb_graph::Graph;
use pgb_queries::{Query, QueryParams, QueryValue};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configuration of a benchmark run: the P and U of the 4-tuple plus
/// execution knobs (M and G are passed to [`run_benchmark`] directly).
#[derive(Clone, Debug)]
pub struct BenchmarkConfig {
    /// The privacy budgets to sweep (the paper: {0.1, 0.5, 1, 2, 5, 10}).
    pub epsilons: Vec<f64>,
    /// Repetitions per cell, averaged (the paper: 10).
    pub repetitions: usize,
    /// The queries to evaluate (defaults to all 15).
    pub queries: Vec<Query>,
    /// Query-evaluation parameters (path mode, power-iteration caps).
    pub query_params: QueryParams,
    /// Master seed; every cell derives an independent deterministic
    /// stream from it.
    pub seed: u64,
    /// Worker threads (0 ⇒ available parallelism).
    pub threads: usize,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            epsilons: vec![0.1, 0.5, 1.0, 2.0, 5.0, 10.0],
            repetitions: 10,
            queries: Query::ALL.to_vec(),
            query_params: QueryParams::default(),
            seed: 0,
            threads: 0,
        }
    }
}

/// One averaged benchmark cell: an (algorithm, dataset, ε, query) tuple
/// with its mean error over the repetitions.
#[derive(Clone, Debug)]
pub struct ExperimentOutcome {
    /// Algorithm display name.
    pub algorithm: String,
    /// Dataset display name.
    pub dataset: String,
    /// Privacy budget ε.
    pub epsilon: f64,
    /// The evaluated query.
    pub query: Query,
    /// The metric the error is expressed in (lower is better).
    pub metric: ErrorMetric,
    /// Mean error over the repetitions.
    pub mean_error: f64,
    /// Number of repetitions averaged.
    pub runs: usize,
}

/// All outcomes of a benchmark run.
#[derive(Clone, Debug, Default)]
pub struct BenchmarkResults {
    /// One entry per (algorithm, dataset, ε, query).
    pub outcomes: Vec<ExperimentOutcome>,
    /// Algorithm names in suite order.
    pub algorithms: Vec<String>,
    /// Dataset names in input order.
    pub datasets: Vec<String>,
    /// The swept ε values.
    pub epsilons: Vec<f64>,
    /// The evaluated queries.
    pub queries: Vec<Query>,
}

impl BenchmarkResults {
    /// Looks up a cell's mean error.
    pub fn error(&self, algorithm: &str, dataset: &str, epsilon: f64, query: Query) -> Option<f64> {
        self.outcomes
            .iter()
            .find(|o| {
                o.algorithm == algorithm
                    && o.dataset == dataset
                    && (o.epsilon - epsilon).abs() < 1e-12
                    && o.query == query
            })
            .map(|o| o.mean_error)
    }

    /// Renders all outcomes as CSV (`algorithm,dataset,epsilon,query,metric,error,runs`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("algorithm,dataset,epsilon,query,metric,mean_error,runs\n");
        for o in &self.outcomes {
            out.push_str(&format!(
                "{},{},{},{},{},{:.6e},{}\n",
                o.algorithm,
                o.dataset,
                o.epsilon,
                o.query.symbol(),
                o.metric.name(),
                o.mean_error,
                o.runs
            ));
        }
        out
    }
}

/// Derives a deterministic per-cell RNG from the master seed — cells are
/// independent, so runs are reproducible regardless of thread scheduling.
fn cell_rng(seed: u64, dataset_idx: usize, algo_idx: usize, eps_idx: usize, rep: usize) -> StdRng {
    let mut h = seed ^ 0xA076_1D64_78BD_642F;
    for x in [dataset_idx as u64, algo_idx as u64, eps_idx as u64, rep as u64] {
        h ^= x.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(h << 6).wrapping_add(h >> 2);
        h = h.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    }
    StdRng::seed_from_u64(h)
}

/// Evaluates the configured queries on a graph.
fn evaluate_queries(
    g: &Graph,
    queries: &[Query],
    params: &QueryParams,
    rng: &mut StdRng,
) -> Vec<QueryValue> {
    queries.iter().map(|q| q.evaluate(g, params, rng)).collect()
}

/// Runs the full benchmark grid: every algorithm × dataset × ε, with
/// `config.repetitions` generations per cell, all queries evaluated per
/// generation, and errors averaged.
///
/// Work is distributed over `config.threads` workers (generation cells are
/// independent); results are deterministic for a fixed seed.
pub fn run_benchmark(
    algorithms: &[Box<dyn GraphGenerator>],
    datasets: &[(String, Graph)],
    config: &BenchmarkConfig,
) -> BenchmarkResults {
    // True query values per dataset, computed once.
    let true_values: Vec<Vec<QueryValue>> = datasets
        .iter()
        .enumerate()
        .map(|(di, (_, g))| {
            let mut rng = cell_rng(config.seed, di, usize::MAX, 0, 0);
            evaluate_queries(g, &config.queries, &config.query_params, &mut rng)
        })
        .collect();

    // Task grid: (dataset, algorithm, epsilon).
    let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
    for di in 0..datasets.len() {
        for ai in 0..algorithms.len() {
            for ei in 0..config.epsilons.len() {
                tasks.push((di, ai, ei));
            }
        }
    }
    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<ExperimentOutcome>> = Mutex::new(Vec::new());
    let workers = if config.threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        config.threads
    }
    .min(tasks.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= tasks.len() {
                    break;
                }
                let (di, ai, ei) = tasks[t];
                let (dataset_name, graph) = &datasets[di];
                let algorithm = &algorithms[ai];
                let epsilon = config.epsilons[ei];
                let mut error_sums = vec![0.0f64; config.queries.len()];
                let mut runs = 0usize;
                for rep in 0..config.repetitions.max(1) {
                    let mut rng = cell_rng(config.seed, di, ai, ei, rep);
                    let synthetic = match algorithm.generate(graph, epsilon, &mut rng) {
                        Ok(g) => g,
                        Err(_) => continue,
                    };
                    let values = evaluate_queries(
                        &synthetic,
                        &config.queries,
                        &config.query_params,
                        &mut rng,
                    );
                    for (qi, (q, v)) in config.queries.iter().zip(&values).enumerate() {
                        error_sums[qi] += compute_error(*q, &true_values[di][qi], v);
                    }
                    runs += 1;
                }
                if runs == 0 {
                    continue;
                }
                let mut local = Vec::with_capacity(config.queries.len());
                for (qi, q) in config.queries.iter().enumerate() {
                    local.push(ExperimentOutcome {
                        algorithm: algorithm.name().to_string(),
                        dataset: dataset_name.clone(),
                        epsilon,
                        query: *q,
                        metric: metric_for(*q),
                        mean_error: error_sums[qi] / runs as f64,
                        runs,
                    });
                }
                outcomes.lock().expect("no panics while holding lock").extend(local);
            });
        }
    });

    let mut outcomes = outcomes.into_inner().expect("lock intact");
    // Deterministic order for reports.
    outcomes.sort_by(|a, b| {
        (a.dataset.as_str(), a.algorithm.as_str())
            .cmp(&(b.dataset.as_str(), b.algorithm.as_str()))
            .then(a.epsilon.partial_cmp(&b.epsilon).expect("finite ε"))
            .then(a.query.id().cmp(&b.query.id()))
    });
    BenchmarkResults {
        outcomes,
        algorithms: algorithms.iter().map(|a| a.name().to_string()).collect(),
        datasets: datasets.iter().map(|(n, _)| n.clone()).collect(),
        epsilons: config.epsilons.clone(),
        queries: config.queries.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dgg, TmF};

    type Setup = (Vec<Box<dyn GraphGenerator>>, Vec<(String, Graph)>, BenchmarkConfig);

    fn tiny_setup() -> Setup {
        let mut rng = StdRng::seed_from_u64(500);
        let g = pgb_models::erdos_renyi_gnp(60, 0.1, &mut rng);
        let algorithms: Vec<Box<dyn GraphGenerator>> =
            vec![Box::new(TmF::default()), Box::new(Dgg::default())];
        let datasets = vec![("toy".to_string(), g)];
        let config = BenchmarkConfig {
            epsilons: vec![0.5, 5.0],
            repetitions: 2,
            queries: vec![Query::EdgeCount, Query::Triangles, Query::DegreeDistribution],
            seed: 1,
            threads: 2,
            ..Default::default()
        };
        (algorithms, datasets, config)
    }

    #[test]
    fn grid_is_complete() {
        let (algorithms, datasets, config) = tiny_setup();
        let results = run_benchmark(&algorithms, &datasets, &config);
        // 2 algorithms × 1 dataset × 2 ε × 3 queries.
        assert_eq!(results.outcomes.len(), 12);
        for o in &results.outcomes {
            assert!(o.mean_error.is_finite(), "{o:?}");
            assert_eq!(o.runs, 2);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (algorithms, datasets, mut config) = tiny_setup();
        config.threads = 1;
        let a = run_benchmark(&algorithms, &datasets, &config);
        config.threads = 4;
        let b = run_benchmark(&algorithms, &datasets, &config);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.algorithm, y.algorithm);
            assert_eq!(x.query, y.query);
            assert!((x.mean_error - y.mean_error).abs() < 1e-12, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn csv_byte_identical_across_thread_counts() {
        // Regression: `to_csv` output must be byte-identical between a
        // single worker and auto parallelism (threads = 0), because cell
        // RNGs are derived from the master seed, not from scheduling.
        let mut rng = StdRng::seed_from_u64(42);
        let datasets = vec![
            ("er".to_string(), pgb_models::erdos_renyi_gnp(50, 0.1, &mut rng)),
            ("ba".to_string(), pgb_models::barabasi_albert(50, 2, &mut rng)),
        ];
        let algorithms: Vec<Box<dyn GraphGenerator>> =
            vec![Box::new(TmF::default()), Box::new(Dgg::default())];
        let mut config = BenchmarkConfig {
            epsilons: vec![0.5, 5.0],
            repetitions: 2,
            queries: vec![Query::EdgeCount, Query::Triangles],
            seed: 42,
            threads: 1,
            ..Default::default()
        };
        let serial = run_benchmark(&algorithms, &datasets, &config).to_csv();
        config.threads = 0; // auto: available parallelism
        let auto = run_benchmark(&algorithms, &datasets, &config).to_csv();
        assert_eq!(serial, auto, "CSV must not depend on the thread count");
        // 2 datasets × 2 algorithms × 2 ε × 2 queries + header.
        assert_eq!(serial.lines().count(), 17);
    }

    #[test]
    fn error_lookup_and_csv() {
        let (algorithms, datasets, config) = tiny_setup();
        let results = run_benchmark(&algorithms, &datasets, &config);
        let e = results.error("TmF", "toy", 5.0, Query::EdgeCount);
        assert!(e.is_some());
        let csv = results.to_csv();
        assert!(csv.lines().count() == 13); // header + 12 rows
        assert!(csv.contains("TmF,toy"));
    }

    #[test]
    fn tmf_beats_noise_at_high_epsilon_on_edge_count() {
        let (algorithms, datasets, mut config) = tiny_setup();
        config.epsilons = vec![10.0];
        config.repetitions = 4;
        let results = run_benchmark(&algorithms, &datasets, &config);
        let tmf = results.error("TmF", "toy", 10.0, Query::EdgeCount).unwrap();
        // TmF controls |E| directly via m̃, so the RE must be small.
        assert!(tmf < 0.05, "TmF |E| error {tmf}");
    }
}
