//! The benchmark runner: executes the (M, G, P) grid, evaluates U, and
//! averages repeated runs.

use crate::benchmark::metric::{compute_error, metric_for, ErrorMetric};
use crate::generator::GraphGenerator;
use pgb_graph::Graph;
use pgb_queries::{Query, QueryParams, QuerySuite, QueryValue};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Configuration of a benchmark run: the P and U of the 4-tuple plus
/// execution knobs (M and G are passed to [`run_benchmark`] directly).
#[derive(Clone, Debug)]
pub struct BenchmarkConfig {
    /// The privacy budgets to sweep (the paper: {0.1, 0.5, 1, 2, 5, 10}).
    pub epsilons: Vec<f64>,
    /// Repetitions per cell, averaged (the paper: 10).
    pub repetitions: usize,
    /// The queries to evaluate (defaults to all 15).
    pub queries: Vec<Query>,
    /// Query-evaluation parameters (path mode, power-iteration caps).
    pub query_params: QueryParams,
    /// Master seed; every cell derives an independent deterministic
    /// stream from it.
    pub seed: u64,
    /// Total thread budget (0 ⇒ available parallelism), shared between
    /// cell-level workers and intra-cell generator parallelism: with `t`
    /// threads and `c` grid cells, `w = min(t, c)` workers run their
    /// generators under a [`crate::par`] budget of `t / w`, with the
    /// division remainder spread one extra thread over the first `t mod w`
    /// workers so the whole budget is in play — a 1-cell grid still
    /// saturates the machine. Results are byte-identical for every value
    /// of `threads` (the derived-stream discipline holds at both levels).
    pub threads: usize,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            epsilons: vec![0.1, 0.5, 1.0, 2.0, 5.0, 10.0],
            repetitions: 10,
            queries: Query::ALL.to_vec(),
            query_params: QueryParams::default(),
            seed: 0,
            threads: 0,
        }
    }
}

/// One averaged benchmark cell: an (algorithm, dataset, ε, query) tuple
/// with its mean error over the repetitions.
#[derive(Clone, Debug)]
pub struct ExperimentOutcome {
    /// Algorithm display name.
    pub algorithm: String,
    /// Dataset display name.
    pub dataset: String,
    /// Privacy budget ε.
    pub epsilon: f64,
    /// The evaluated query.
    pub query: Query,
    /// The metric the error is expressed in (lower is better).
    pub metric: ErrorMetric,
    /// Mean error over the repetitions; `NaN` when every repetition's
    /// generation failed (`runs == 0`), so the grid stays complete.
    pub mean_error: f64,
    /// Number of repetitions averaged.
    pub runs: usize,
}

/// All outcomes of a benchmark run.
///
/// [`run_benchmark`] always emits the *complete* grid in a fixed layout:
/// outcomes are ordered dataset-major, then algorithm, then ε, then query
/// (all in their configured input order), with one entry per cell even when
/// generation failed every repetition. [`BenchmarkResults::error`] exploits
/// the layout for O(1) positional lookup.
#[derive(Clone, Debug, Default)]
pub struct BenchmarkResults {
    /// One entry per (dataset, algorithm, ε, query), in grid order.
    pub outcomes: Vec<ExperimentOutcome>,
    /// Algorithm names in suite order.
    pub algorithms: Vec<String>,
    /// Dataset names in input order.
    pub datasets: Vec<String>,
    /// The swept ε values.
    pub epsilons: Vec<f64>,
    /// The evaluated queries.
    pub queries: Vec<Query>,
}

impl BenchmarkResults {
    /// Looks up a cell's mean error by position in the grid layout: the
    /// `(algorithm, dataset, ε, query)` coordinates are resolved to indices
    /// in their respective axis vectors and the outcome is read directly —
    /// no scan over the outcome list.
    ///
    /// Returns `None` for coordinates outside the grid. A cell whose every
    /// repetition failed is present with `mean_error = NaN`. Results whose
    /// `outcomes` were assembled by hand in some other order fall back to a
    /// linear scan.
    pub fn error(&self, algorithm: &str, dataset: &str, epsilon: f64, query: Query) -> Option<f64> {
        let matches = |o: &ExperimentOutcome| {
            o.algorithm == algorithm
                && o.dataset == dataset
                && (o.epsilon - epsilon).abs() < 1e-12
                && o.query == query
        };
        let positional = || {
            let ai = self.algorithms.iter().position(|a| a == algorithm)?;
            let di = self.datasets.iter().position(|d| d == dataset)?;
            let ei = self.epsilons.iter().position(|e| (e - epsilon).abs() < 1e-12)?;
            let qi = self.queries.iter().position(|&q| q == query)?;
            let idx = ((di * self.algorithms.len() + ai) * self.epsilons.len() + ei)
                * self.queries.len()
                + qi;
            self.outcomes.get(idx).filter(|o| matches(o))
        };
        positional()
            .map(|o| o.mean_error)
            .or_else(|| self.outcomes.iter().find(|o| matches(o)).map(|o| o.mean_error))
    }

    /// Renders all outcomes as CSV (`algorithm,dataset,epsilon,query,metric,error,runs`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("algorithm,dataset,epsilon,query,metric,mean_error,runs\n");
        for o in &self.outcomes {
            out.push_str(&format!(
                "{},{},{},{},{},{:.6e},{}\n",
                o.algorithm,
                o.dataset,
                o.epsilon,
                o.query.symbol(),
                o.metric.name(),
                o.mean_error,
                o.runs
            ));
        }
        out
    }
}

/// Derives a deterministic per-cell RNG from the master seed — cells are
/// independent, so runs are reproducible regardless of thread scheduling.
fn cell_rng(seed: u64, dataset_idx: usize, algo_idx: usize, eps_idx: usize, rep: usize) -> StdRng {
    let mut h = seed ^ 0xA076_1D64_78BD_642F;
    for x in [dataset_idx as u64, algo_idx as u64, eps_idx as u64, rep as u64] {
        h ^= x.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(h << 6).wrapping_add(h >> 2);
        h = h.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    }
    StdRng::seed_from_u64(h)
}

/// Runs the full benchmark grid: every algorithm × dataset × ε, with
/// `config.repetitions` generations per cell, all queries evaluated per
/// generation through the one-pass [`QuerySuite`] evaluator, and errors
/// averaged.
///
/// Work is distributed over `config.threads` workers (generation cells are
/// independent). Each worker publishes into its task's preallocated outcome
/// slot — an atomic [`OnceLock`] write, no shared mutex — and the slot
/// order *is* the grid order, so no post-hoc sorting pass is needed and
/// results are deterministic (byte-identical CSV) for a fixed seed
/// regardless of thread count.
///
/// Cells where every repetition's generation failed are still emitted, with
/// `runs = 0` and `NaN` errors, so downstream reports always see the
/// complete grid.
pub fn run_benchmark(
    algorithms: &[Box<dyn GraphGenerator>],
    datasets: &[(String, Graph)],
    config: &BenchmarkConfig,
) -> BenchmarkResults {
    // True query values per dataset, computed once.
    let true_values: Vec<Vec<QueryValue>> = datasets
        .iter()
        .enumerate()
        .map(|(di, (_, g))| {
            let mut rng = cell_rng(config.seed, di, usize::MAX, 0, 0);
            QuerySuite::evaluate_all(g, &config.queries, &config.query_params, &mut rng)
        })
        .collect();

    // Task grid: (dataset, algorithm, epsilon), in outcome order.
    let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
    for di in 0..datasets.len() {
        for ai in 0..algorithms.len() {
            for ei in 0..config.epsilons.len() {
                tasks.push((di, ai, ei));
            }
        }
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<Vec<ExperimentOutcome>>> =
        (0..tasks.len()).map(|_| OnceLock::new()).collect();
    // Split the thread budget: as many cell-level workers as there are
    // cells to keep busy, and the leftover handed to the workers as their
    // intra-cell generator parallelism (a 1-cell grid ⇒ 1 worker with the
    // whole budget). The division remainder is spread one thread at a time
    // over the first workers so the full budget is in play even when it
    // does not divide evenly. Neither split affects results.
    let budget =
        if config.threads == 0 { crate::par::available_parallelism() } else { config.threads };
    let workers = budget.min(tasks.len().max(1));
    let intra_threads = budget / workers; // ≥ 1: workers ≤ budget
    let intra_extra = budget % workers;

    std::thread::scope(|scope| {
        for w in 0..workers {
            let intra = intra_threads + usize::from(w < intra_extra);
            // `move` captures `intra` by value; everything shared is
            // re-bound as a reference so the workers still borrow it.
            let (next, tasks, slots, true_values) = (&next, &tasks, &slots, &true_values);
            scope.spawn(move || {
                crate::par::with_parallelism(intra, || loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= tasks.len() {
                        break;
                    }
                    let (di, ai, ei) = tasks[t];
                    let (dataset_name, graph) = &datasets[di];
                    let algorithm = &algorithms[ai];
                    let epsilon = config.epsilons[ei];
                    let mut error_sums = vec![0.0f64; config.queries.len()];
                    let mut runs = 0usize;
                    for rep in 0..config.repetitions.max(1) {
                        let mut rng = cell_rng(config.seed, di, ai, ei, rep);
                        let synthetic = match algorithm.generate(graph, epsilon, &mut rng) {
                            Ok(g) => g,
                            Err(_) => continue,
                        };
                        let values = QuerySuite::evaluate_all(
                            &synthetic,
                            &config.queries,
                            &config.query_params,
                            &mut rng,
                        );
                        for (qi, (q, v)) in config.queries.iter().zip(&values).enumerate() {
                            error_sums[qi] += compute_error(*q, &true_values[di][qi], v);
                        }
                        runs += 1;
                    }
                    let local: Vec<ExperimentOutcome> = config
                        .queries
                        .iter()
                        .enumerate()
                        .map(|(qi, q)| ExperimentOutcome {
                            algorithm: algorithm.name().to_string(),
                            dataset: dataset_name.clone(),
                            epsilon,
                            query: *q,
                            metric: metric_for(*q),
                            mean_error: if runs == 0 {
                                f64::NAN
                            } else {
                                error_sums[qi] / runs as f64
                            },
                            runs,
                        })
                        .collect();
                    slots[t].set(local).expect("the atomic cursor hands out each task once");
                });
            });
        }
    });

    let outcomes: Vec<ExperimentOutcome> = slots
        .into_iter()
        .flat_map(|slot| slot.into_inner().expect("every claimed task publishes its slot"))
        .collect();
    BenchmarkResults {
        outcomes,
        algorithms: algorithms.iter().map(|a| a.name().to_string()).collect(),
        datasets: datasets.iter().map(|(n, _)| n.clone()).collect(),
        epsilons: config.epsilons.clone(),
        queries: config.queries.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GenerateError;
    use crate::{Dgg, TmF};

    type Setup = (Vec<Box<dyn GraphGenerator>>, Vec<(String, Graph)>, BenchmarkConfig);

    /// A generator whose every run fails — exercises the complete-grid
    /// guarantee for `runs == 0` cells.
    struct AlwaysFails;

    impl GraphGenerator for AlwaysFails {
        fn name(&self) -> &'static str {
            "Fails"
        }

        fn generate(
            &self,
            _graph: &Graph,
            _epsilon: f64,
            _rng: &mut dyn rand::RngCore,
        ) -> Result<Graph, GenerateError> {
            Err(GenerateError::GraphTooSmall { required: usize::MAX, actual: 0 })
        }
    }

    fn tiny_setup() -> Setup {
        let mut rng = StdRng::seed_from_u64(500);
        let g = pgb_models::erdos_renyi_gnp(60, 0.1, &mut rng);
        let algorithms: Vec<Box<dyn GraphGenerator>> =
            vec![Box::new(TmF::default()), Box::new(Dgg::default())];
        let datasets = vec![("toy".to_string(), g)];
        let config = BenchmarkConfig {
            epsilons: vec![0.5, 5.0],
            repetitions: 2,
            queries: vec![Query::EdgeCount, Query::Triangles, Query::DegreeDistribution],
            seed: 1,
            threads: 2,
            ..Default::default()
        };
        (algorithms, datasets, config)
    }

    #[test]
    fn grid_is_complete() {
        let (algorithms, datasets, config) = tiny_setup();
        let results = run_benchmark(&algorithms, &datasets, &config);
        // 2 algorithms × 1 dataset × 2 ε × 3 queries.
        assert_eq!(results.outcomes.len(), 12);
        for o in &results.outcomes {
            assert!(o.mean_error.is_finite(), "{o:?}");
            assert_eq!(o.runs, 2);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (algorithms, datasets, mut config) = tiny_setup();
        config.threads = 1;
        let a = run_benchmark(&algorithms, &datasets, &config);
        config.threads = 4;
        let b = run_benchmark(&algorithms, &datasets, &config);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.algorithm, y.algorithm);
            assert_eq!(x.query, y.query);
            assert!((x.mean_error - y.mean_error).abs() < 1e-12, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn csv_byte_identical_across_thread_counts() {
        // Regression: `to_csv` output must be byte-identical at any thread
        // count, because cell RNGs are derived from the master seed and the
        // generators' intra-cell parallelism follows the same derived-stream
        // chunking discipline (`crate::par`), not scheduling order.
        // The algorithm set deliberately includes all four generators with
        // parallel perturbation/construction phases (TmF, DER, PrivSKG,
        // PrivGraph); the query set includes the Louvain-backed pair
        // (CD/Mod): their randomness comes from the suite evaluator's
        // derived per-intermediate streams and their float reductions are
        // ordered, so even they must reproduce bit-exactly.
        let mut rng = StdRng::seed_from_u64(42);
        let datasets = vec![
            ("er".to_string(), pgb_models::erdos_renyi_gnp(50, 0.1, &mut rng)),
            ("ba".to_string(), pgb_models::barabasi_albert(50, 2, &mut rng)),
        ];
        let algorithms: Vec<Box<dyn GraphGenerator>> = vec![
            Box::new(TmF::default()),
            Box::new(crate::Der::default()),
            Box::new(crate::PrivSkg::default()),
            Box::new(crate::PrivGraph::default()),
        ];
        let mut config = BenchmarkConfig {
            epsilons: vec![0.5, 5.0],
            repetitions: 2,
            queries: vec![
                Query::EdgeCount,
                Query::Triangles,
                Query::CommunityDetection,
                Query::Modularity,
            ],
            seed: 42,
            threads: 1,
            ..Default::default()
        };
        let serial = run_benchmark(&algorithms, &datasets, &config).to_csv();
        // 2 datasets × 4 algorithms × 2 ε × 4 queries + header.
        assert_eq!(serial.lines().count(), 65);
        for threads in [2, 8, 0] {
            config.threads = threads; // 0 ⇒ auto: available parallelism
            let other = run_benchmark(&algorithms, &datasets, &config).to_csv();
            assert_eq!(serial, other, "CSV must not depend on threads = {threads}");
        }
    }

    #[test]
    fn error_lookup_and_csv() {
        let (algorithms, datasets, config) = tiny_setup();
        let results = run_benchmark(&algorithms, &datasets, &config);
        let e = results.error("TmF", "toy", 5.0, Query::EdgeCount);
        assert!(e.is_some());
        let csv = results.to_csv();
        assert!(csv.lines().count() == 13); // header + 12 rows
        assert!(csv.contains("TmF,toy"));
    }

    #[test]
    fn positional_error_lookup_covers_the_whole_grid() {
        let (algorithms, datasets, config) = tiny_setup();
        let results = run_benchmark(&algorithms, &datasets, &config);
        // The positional lookup must agree with a plain scan on every cell.
        for algo in &results.algorithms {
            for ds in &results.datasets {
                for &eps in &results.epsilons {
                    for &q in &results.queries {
                        let scanned = results
                            .outcomes
                            .iter()
                            .find(|o| {
                                o.algorithm == *algo
                                    && o.dataset == *ds
                                    && (o.epsilon - eps).abs() < 1e-12
                                    && o.query == q
                            })
                            .map(|o| o.mean_error)
                            .expect("grid is complete");
                        assert_eq!(results.error(algo, ds, eps, q), Some(scanned));
                    }
                }
            }
        }
        // Off-grid coordinates miss cleanly.
        assert_eq!(results.error("NoSuchAlgo", "toy", 5.0, Query::EdgeCount), None);
        assert_eq!(results.error("TmF", "toy", 3.25, Query::EdgeCount), None);
        assert_eq!(results.error("TmF", "toy", 5.0, Query::Diameter), None);
    }

    #[test]
    fn error_lookup_falls_back_on_hand_assembled_results() {
        let (algorithms, datasets, config) = tiny_setup();
        let mut results = run_benchmark(&algorithms, &datasets, &config);
        // Scramble the grid order; lookups must still find every cell.
        results.outcomes.reverse();
        let e = results.error("TmF", "toy", 5.0, Query::EdgeCount);
        assert!(e.is_some());
    }

    #[test]
    fn failing_generator_still_emits_complete_grid() {
        let (_, datasets, config) = tiny_setup();
        let algorithms: Vec<Box<dyn GraphGenerator>> =
            vec![Box::new(AlwaysFails), Box::new(TmF::default())];
        let results = run_benchmark(&algorithms, &datasets, &config);
        // 2 algorithms × 1 dataset × 2 ε × 3 queries — nothing dropped.
        assert_eq!(results.outcomes.len(), 12);
        for o in &results.outcomes {
            if o.algorithm == "Fails" {
                assert_eq!(o.runs, 0, "{o:?}");
                assert!(o.mean_error.is_nan(), "{o:?}");
            } else {
                assert_eq!(o.runs, 2, "{o:?}");
                assert!(o.mean_error.is_finite(), "{o:?}");
            }
        }
        // The CSV grid is complete and marks the failed cells.
        let csv = results.to_csv();
        assert_eq!(csv.lines().count(), 13);
        assert!(csv.contains("NaN"), "{csv}");
        // Lookups surface the failed cell rather than pretending it ran.
        let e = results.error("Fails", "toy", 0.5, Query::EdgeCount).unwrap();
        assert!(e.is_nan());
    }

    #[test]
    fn tmf_beats_noise_at_high_epsilon_on_edge_count() {
        let (algorithms, datasets, mut config) = tiny_setup();
        config.epsilons = vec![10.0];
        config.repetitions = 4;
        let results = run_benchmark(&algorithms, &datasets, &config);
        let tmf = results.error("TmF", "toy", 10.0, Query::EdgeCount).unwrap();
        // TmF controls |E| directly via m̃, so the RE must be small.
        assert!(tmf < 0.05, "TmF |E| error {tmf}");
    }
}
