//! The benchmark runner: executes the (M, G, P) grid, evaluates U, and
//! averages repeated runs.

use crate::benchmark::metric::{compute_error, metric_for, ErrorMetric};
use crate::generator::{GraphGenerator, PrivateSynthesis};
use pgb_graph::Graph;
use pgb_queries::{Query, QueryParams, QuerySuite, QueryValue};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Configuration of a benchmark run: the P and U of the 4-tuple plus
/// execution knobs (M and G are passed to [`run_benchmark`] directly).
#[derive(Clone, Debug)]
pub struct BenchmarkConfig {
    /// The privacy budgets to sweep (the paper: {0.1, 0.5, 1, 2, 5, 10}).
    pub epsilons: Vec<f64>,
    /// Repetitions per cell, averaged (the paper: 10).
    pub repetitions: usize,
    /// The queries to evaluate (defaults to all 15).
    pub queries: Vec<Query>,
    /// Query-evaluation parameters (path mode, power-iteration caps).
    pub query_params: QueryParams,
    /// Master seed; every cell derives an independent deterministic
    /// stream from it.
    pub seed: u64,
    /// Total thread budget (0 ⇒ available parallelism), shared between
    /// task-level workers and intra-cell generator parallelism. How the
    /// budget is divided over the task queue is the [`Scheduler`]'s job
    /// (see [`BenchmarkConfig::sched`]); either way, results are
    /// byte-identical for every value of `threads` (the derived-stream
    /// discipline holds at both levels).
    pub threads: usize,
    /// How the thread budget follows the draining task queue — see
    /// [`Scheduler`]. Scheduling only: both variants produce byte-identical
    /// CSV for a fixed seed.
    pub sched: Scheduler,
    /// How often the mechanisms' measure phase runs — see [`MeasureReuse`].
    /// Unlike `sched`/`threads`, this knob *does* change the numbers:
    /// per-cell reuse correlates a cell's repetitions through one shared
    /// private intermediate.
    pub reuse: MeasureReuse,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            epsilons: vec![0.1, 0.5, 1.0, 2.0, 5.0, 10.0],
            repetitions: 10,
            queries: Query::ALL.to_vec(),
            query_params: QueryParams::default(),
            seed: 0,
            threads: 0,
            sched: Scheduler::default(),
            reuse: MeasureReuse::default(),
        }
    }
}

/// How [`run_benchmark`] amortises the mechanisms' two-phase split
/// ([`GraphGenerator::measure`] / [`PrivateSynthesis::sample`]) over a
/// cell's repetitions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MeasureReuse {
    /// The paper-faithful default: every repetition runs the full
    /// `measure` + `sample` pipeline on its own derived RNG stream —
    /// repetitions are independent end-to-end draws of the mechanism, and
    /// the CSV is byte-identical to the pre-split runner.
    #[default]
    PerRep,
    /// Measurement reuse (the Private-PGM pattern): `measure` runs **once
    /// per (dataset, algorithm, ε) cell** on a dedicated derived stream,
    /// and each repetition only re-`sample`s the shared private
    /// intermediate — free by DP post-processing invariance, and the
    /// amortisation a serving layer batches on. Repetitions then share the
    /// intermediate's noise, so per-cell averages estimate the *sampling*
    /// variance around one measurement rather than the full mechanism
    /// variance: numbers differ from [`MeasureReuse::PerRep`] by design
    /// (they remain byte-identical across thread counts and schedulers).
    PerCell,
}

impl MeasureReuse {
    /// CLI-facing name (`"rep"` / `"cell"`).
    pub fn name(self) -> &'static str {
        match self {
            MeasureReuse::PerRep => "rep",
            MeasureReuse::PerCell => "cell",
        }
    }
}

impl std::str::FromStr for MeasureReuse {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "rep" => Ok(MeasureReuse::PerRep),
            "cell" => Ok(MeasureReuse::PerCell),
            other => Err(format!("unknown reuse mode {other:?} (expected \"rep\" or \"cell\")")),
        }
    }
}

/// How [`run_benchmark`] divides [`BenchmarkConfig::threads`] over the
/// grid's task queue.
///
/// Both schedulers honour the same derived-stream discipline (every
/// repetition runs on `cell_rng(seed, dataset, algorithm, ε, rep)` and
/// per-cell errors reduce in repetition order), so **output is
/// byte-identical between the two** — the choice affects wall-clock only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Scheduler {
    /// The pre-elastic baseline: one task per (dataset, algorithm, ε) cell
    /// and an intra-cell budget of `threads / workers` computed **once at
    /// spawn**. Kept as an escape hatch for comparison; on grids slightly
    /// larger than the core count it strands the threads of finished
    /// workers while tail cells keep their small static share.
    Static,
    /// The default: the grid is split into (cell, repetition-block)
    /// sub-tasks claimed from a shared [`crate::par::BudgetLedger`], and
    /// every claim re-computes the worker's intra-cell budget from the
    /// *live* pool and remaining-task count — threads released by finished
    /// workers flow to the tail of the queue. Transient oversubscription
    /// is bounded by `threads + workers − 1`. Sub-tasks are handed out in
    /// **cost order** (largest first) rather than grid order, so the
    /// expensive DER/PrivHRG cells on large datasets start first and the
    /// queue's tail is made of cheap cells. The cost key is an online
    /// per-algorithm EWMA of observed cell times (see [`CostModel`]):
    /// algorithms without an observation yet rank first (exploration),
    /// ordered by the static [`algorithm_cost_weight`] seed, and once a
    /// sub-task of an algorithm completes, its measured time-per-n² takes
    /// over.
    #[default]
    Elastic,
}

impl Scheduler {
    /// CLI-facing name (`"static"` / `"elastic"`).
    pub fn name(self) -> &'static str {
        match self {
            Scheduler::Static => "static",
            Scheduler::Elastic => "elastic",
        }
    }
}

impl std::str::FromStr for Scheduler {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "static" => Ok(Scheduler::Static),
            "elastic" => Ok(Scheduler::Elastic),
            other => {
                Err(format!("unknown scheduler {other:?} (expected \"static\" or \"elastic\")"))
            }
        }
    }
}

/// One averaged benchmark cell: an (algorithm, dataset, ε, query) tuple
/// with its mean error over the repetitions.
#[derive(Clone, Debug)]
pub struct ExperimentOutcome {
    /// Algorithm display name.
    pub algorithm: String,
    /// Dataset display name.
    pub dataset: String,
    /// Privacy budget ε.
    pub epsilon: f64,
    /// The evaluated query.
    pub query: Query,
    /// The metric the error is expressed in (lower is better).
    pub metric: ErrorMetric,
    /// Mean error over the repetitions; `NaN` when every repetition's
    /// generation failed (`runs == 0`), so the grid stays complete.
    pub mean_error: f64,
    /// Number of repetitions averaged.
    pub runs: usize,
}

/// All outcomes of a benchmark run.
///
/// [`run_benchmark`] always emits the *complete* grid in a fixed layout:
/// outcomes are ordered dataset-major, then algorithm, then ε, then query
/// (all in their configured input order), with one entry per cell even when
/// generation failed every repetition. [`BenchmarkResults::error`] exploits
/// the layout for O(1) positional lookup.
#[derive(Clone, Debug, Default)]
pub struct BenchmarkResults {
    /// One entry per (dataset, algorithm, ε, query), in grid order.
    pub outcomes: Vec<ExperimentOutcome>,
    /// Algorithm names in suite order.
    pub algorithms: Vec<String>,
    /// Dataset names in input order.
    pub datasets: Vec<String>,
    /// The swept ε values.
    pub epsilons: Vec<f64>,
    /// The evaluated queries.
    pub queries: Vec<Query>,
}

impl BenchmarkResults {
    /// Looks up a cell's mean error by position in the grid layout: the
    /// `(algorithm, dataset, ε, query)` coordinates are resolved to indices
    /// in their respective axis vectors and the outcome is read directly —
    /// no scan over the outcome list.
    ///
    /// Returns `None` for coordinates outside the grid. A cell whose every
    /// repetition failed is present with `mean_error = NaN`. Results whose
    /// `outcomes` were assembled by hand in some other order fall back to a
    /// linear scan.
    pub fn error(&self, algorithm: &str, dataset: &str, epsilon: f64, query: Query) -> Option<f64> {
        let matches = |o: &ExperimentOutcome| {
            o.algorithm == algorithm
                && o.dataset == dataset
                && (o.epsilon - epsilon).abs() < 1e-12
                && o.query == query
        };
        let positional = || {
            let ai = self.algorithms.iter().position(|a| a == algorithm)?;
            let di = self.datasets.iter().position(|d| d == dataset)?;
            let ei = self.epsilons.iter().position(|e| (e - epsilon).abs() < 1e-12)?;
            let qi = self.queries.iter().position(|&q| q == query)?;
            let idx = ((di * self.algorithms.len() + ai) * self.epsilons.len() + ei)
                * self.queries.len()
                + qi;
            self.outcomes.get(idx).filter(|o| matches(o))
        };
        positional()
            .map(|o| o.mean_error)
            .or_else(|| self.outcomes.iter().find(|o| matches(o)).map(|o| o.mean_error))
    }

    /// Renders all outcomes as CSV (`algorithm,dataset,epsilon,query,metric,error,runs`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("algorithm,dataset,epsilon,query,metric,mean_error,runs\n");
        for o in &self.outcomes {
            out.push_str(&format!(
                "{},{},{},{},{},{:.6e},{}\n",
                o.algorithm,
                o.dataset,
                o.epsilon,
                o.query.symbol(),
                o.metric.name(),
                o.mean_error,
                o.runs
            ));
        }
        out
    }
}

/// Derives a deterministic per-cell RNG from the master seed — cells are
/// independent, so runs are reproducible regardless of thread scheduling.
/// Crate-visible so the temporal runner derives from the same family.
pub(crate) fn cell_rng(
    seed: u64,
    dataset_idx: usize,
    algo_idx: usize,
    eps_idx: usize,
    rep: usize,
) -> StdRng {
    let mut h = seed ^ 0xA076_1D64_78BD_642F;
    for x in [dataset_idx as u64, algo_idx as u64, eps_idx as u64, rep as u64] {
        h ^= x.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(h << 6).wrapping_add(h >> 2);
        h = h.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    }
    StdRng::seed_from_u64(h)
}

/// The dedicated measure stream of a cell under [`MeasureReuse::PerCell`]:
/// the `rep = usize::MAX` slot of the cell's derivation family, which no
/// real repetition can occupy — whichever worker performs the cell's one
/// measurement, it draws the same bytes.
pub(crate) fn measure_rng(
    seed: u64,
    dataset_idx: usize,
    algo_idx: usize,
    eps_idx: usize,
) -> StdRng {
    cell_rng(seed, dataset_idx, algo_idx, eps_idx, usize::MAX)
}

/// A cell's shared measurement under [`MeasureReuse::PerCell`]: the private
/// intermediate, or `None` when `measure` failed (every repetition of the
/// cell then skips, preserving the complete-grid `runs = 0` contract).
type MeasuredCell = Option<Box<dyn PrivateSynthesis>>;

/// Performs a cell's one shared measurement on its dedicated stream.
fn measure_cell(
    algorithm: &dyn GraphGenerator,
    graph: &Graph,
    config: &BenchmarkConfig,
    (di, ai, ei): (usize, usize, usize),
) -> MeasuredCell {
    let mut rng = measure_rng(config.seed, di, ai, ei);
    algorithm.measure(graph, config.epsilons[ei], &mut rng).ok()
}

/// One repetition of a cell: produce the synthetic graph on the rep's
/// derived RNG — the full `generate` pipeline per-rep, or an ε-free
/// `sample` of the cell's `shared` intermediate per-cell — evaluate the
/// query suite, and return the per-query errors, or `None` when generation
/// failed (the repetition is skipped, not averaged). Both schedulers run
/// repetitions through this one function, which is half of what makes
/// their output byte-identical (the other half is [`reduce_cell`]'s fixed
/// reduction order).
fn run_rep(
    algorithm: &dyn GraphGenerator,
    graph: &Graph,
    true_values: &[QueryValue],
    config: &BenchmarkConfig,
    (di, ai, ei): (usize, usize, usize),
    rep: usize,
    shared: Option<&MeasuredCell>,
) -> Option<Vec<f64>> {
    let mut rng = cell_rng(config.seed, di, ai, ei, rep);
    let synthetic = match shared {
        // Per-rep: the full measure + sample pipeline on the rep's stream.
        None => algorithm.generate(graph, config.epsilons[ei], &mut rng).ok()?,
        // Per-cell: ε-free re-sample of the cell's shared intermediate.
        Some(Some(measured)) => measured.sample(&mut rng),
        // Per-cell with a failed measurement: every rep of the cell skips.
        Some(None) => return None,
    };
    let values =
        QuerySuite::evaluate_all(&synthetic, &config.queries, &config.query_params, &mut rng);
    Some(
        config
            .queries
            .iter()
            .zip(&values)
            .enumerate()
            .map(|(qi, (q, v))| compute_error(*q, &true_values[qi], v))
            .collect(),
    )
}

/// Folds a cell's per-repetition error vectors — **in repetition order** —
/// into the averaged [`ExperimentOutcome`] row per query. The float
/// summation order is therefore fixed regardless of which worker computed
/// which repetition, and identical between the static and elastic
/// schedulers.
fn reduce_cell(
    algorithm: &str,
    dataset: &str,
    epsilon: f64,
    config: &BenchmarkConfig,
    rep_errors: impl Iterator<Item = Option<Vec<f64>>>,
) -> Vec<ExperimentOutcome> {
    let mut error_sums = vec![0.0f64; config.queries.len()];
    let mut runs = 0usize;
    for errors in rep_errors.flatten() {
        for (sum, e) in error_sums.iter_mut().zip(&errors) {
            *sum += e;
        }
        runs += 1;
    }
    config
        .queries
        .iter()
        .enumerate()
        .map(|(qi, q)| ExperimentOutcome {
            algorithm: algorithm.to_string(),
            dataset: dataset.to_string(),
            epsilon,
            query: *q,
            metric: metric_for(*q),
            mean_error: if runs == 0 { f64::NAN } else { error_sums[qi] / runs as f64 },
            runs,
        })
        .collect()
}

/// The static scheduler (PR-3 behaviour): one task per cell, and the
/// budget split `budget / workers` once at spawn, remainder spread one
/// extra thread over the first `budget mod workers` workers.
fn run_grid_static(
    algorithms: &[Box<dyn GraphGenerator>],
    datasets: &[(String, Graph)],
    config: &BenchmarkConfig,
    true_values: &[Vec<QueryValue>],
    tasks: &[(usize, usize, usize)],
    budget: usize,
) -> Vec<ExperimentOutcome> {
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<Vec<ExperimentOutcome>>> =
        (0..tasks.len()).map(|_| OnceLock::new()).collect();
    let workers = budget.min(tasks.len().max(1));
    let intra_threads = budget / workers; // ≥ 1: workers ≤ budget
    let intra_extra = budget % workers;

    std::thread::scope(|scope| {
        for w in 0..workers {
            let intra = intra_threads + usize::from(w < intra_extra);
            // `move` captures `intra` by value; everything shared is
            // re-bound as a reference so the workers still borrow it.
            let (next, slots) = (&next, &slots);
            scope.spawn(move || {
                crate::par::with_parallelism(intra, || loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= tasks.len() {
                        break;
                    }
                    let (di, ai, ei) = tasks[t];
                    let (dataset_name, graph) = &datasets[di];
                    let algorithm = &algorithms[ai];
                    // Static mode owns whole cells, so per-cell reuse needs
                    // no cross-worker sharing: measure locally, once.
                    let shared = (config.reuse == MeasureReuse::PerCell)
                        .then(|| measure_cell(algorithm.as_ref(), graph, config, (di, ai, ei)));
                    let local = reduce_cell(
                        algorithm.name(),
                        dataset_name,
                        config.epsilons[ei],
                        config,
                        (0..config.repetitions.max(1)).map(|rep| {
                            run_rep(
                                algorithm.as_ref(),
                                graph,
                                &true_values[di],
                                config,
                                (di, ai, ei),
                                rep,
                                shared.as_ref(),
                            )
                        }),
                    );
                    slots[t].set(local).expect("the atomic cursor hands out each task once");
                });
            });
        }
    });

    slots
        .into_iter()
        .flat_map(|slot| slot.into_inner().expect("every claimed task publishes its slot"))
        .collect()
}

/// Sub-tasks a worker aims to claim over the run, elastic mode: enough
/// over-partitioning that the queue's tail still spreads over the pool,
/// without per-repetition scheduling overhead on wide grids.
pub(crate) const ELASTIC_TASKS_PER_WORKER: usize = 4;

/// Static relative cost weight of one repetition of `algorithm` (matched
/// by display name), from the Table VIII / Table IX complexity and
/// measured-time ordering: the dense quadtree/MCMC mechanisms (DER,
/// PrivHRG) dominate, the community/moment mechanisms sit in the middle,
/// and the filter/degree mechanisms (TmF, DGG) are the cheapest per cell.
/// Unknown (user-supplied) algorithms get the middle weight.
///
/// This is the [`CostModel`]'s **cold-start seed**: it only decides claim
/// order among algorithms that have no observed cell time yet. As soon as
/// a sub-task of an algorithm completes, the model's EWMA of its measured
/// time-per-n² replaces the static guess. Scheduling only either way —
/// claim order cannot change any cell's RNG stream or reduction order, so
/// the CSV bytes are identical to grid-order claiming.
pub fn algorithm_cost_weight(name: &str) -> u32 {
    match name {
        "DER" | "PrivHRG" => 16,
        "PrivGraph" | "PrivSKG" | "DP-dK" | "DP-1K" => 4,
        "TmF" | "DGG" => 1,
        _ => 4,
    }
}

/// EWMA smoothing factor for observed cell times: recent observations get
/// 30% weight, so the model adapts within a few sub-tasks without letting
/// one outlier (a cold cache, a descheduled worker) dominate.
const EWMA_ALPHA: f64 = 0.3;

/// Online per-algorithm cost model behind the elastic claim order.
///
/// For every algorithm the model keeps an exponentially weighted moving
/// average of **observed seconds per repetition per n²** across completed
/// sub-tasks; [`CostModel::claim_key`] scales that back by n² to rank
/// pending sub-tasks. Until an algorithm has an observation it ranks
/// *above* every observed one (deterministic exploration-first: one
/// mispredicted claim is cheaper than running a whole grid on a stale
/// static guess), ordered among the unobserved by the static
/// [`algorithm_cost_weight`] seed.
///
/// The model is shared across workers behind per-slot mutexes; claim order
/// therefore depends on real measured times and is **not** deterministic —
/// which is fine, because it is scheduling only: repetitions keep their
/// derived RNG streams and the reduction order is fixed, so the CSV is
/// byte-identical to any other claim order.
pub struct CostModel {
    /// Static cold-start weights, one per algorithm index.
    seeds: Vec<u32>,
    /// EWMA of observed seconds/rep/n², `None` until first observation.
    observed: Vec<std::sync::Mutex<Option<f64>>>,
}

impl CostModel {
    /// A model over the algorithm roster, seeded from
    /// [`algorithm_cost_weight`] by display name.
    pub fn new<'a>(names: impl IntoIterator<Item = &'a str>) -> Self {
        let seeds: Vec<u32> = names.into_iter().map(algorithm_cost_weight).collect();
        let observed = seeds.iter().map(|_| std::sync::Mutex::new(None)).collect();
        CostModel { seeds, observed }
    }

    /// Folds one completed sub-task — `reps` repetitions of algorithm
    /// `ai` on an `n`-node dataset in `secs` seconds — into the EWMA.
    pub fn record(&self, ai: usize, n: usize, reps: usize, secs: f64) {
        let per = secs / reps.max(1) as f64 / n2(n);
        if !per.is_finite() {
            return;
        }
        let mut slot = self.observed[ai].lock().expect("cost slot never poisoned");
        *slot = Some(match *slot {
            None => per,
            Some(prev) => EWMA_ALPHA * per + (1.0 - EWMA_ALPHA) * prev,
        });
    }

    /// The descending claim key of a sub-task of algorithm `ai` on an
    /// `n`-node dataset: `(unobserved, cost)`, compared lexicographically
    /// so unobserved algorithms always outrank observed ones, and within
    /// each class the larger predicted cost (seed × n² or EWMA × n²) wins.
    pub fn claim_key(&self, ai: usize, n: usize) -> (bool, f64) {
        match *self.observed[ai].lock().expect("cost slot never poisoned") {
            None => (true, self.seeds[ai] as f64 * n2(n)),
            Some(ewma) => (false, ewma * n2(n)),
        }
    }
}

/// The n² scale factor shared by [`CostModel::record`] and
/// [`CostModel::claim_key`], clamped away from zero for empty graphs.
fn n2(n: usize) -> f64 {
    (n as f64 * n as f64).max(1.0)
}

/// Pops the index of the pending sub-task with the greatest claim key,
/// breaking exact key ties toward the smaller `tie` coordinate (grid
/// order). The pool must be non-empty — [`crate::exec::run_elastic`] hands
/// out exactly one ticket per sub-task.
pub(crate) fn pop_costliest<K>(pending: &std::sync::Mutex<Vec<usize>>, key: K) -> usize
where
    K: Fn(usize) -> ((bool, f64), (usize, usize)),
{
    let mut pool = pending.lock().expect("claim pool never poisoned");
    let at = pool
        .iter()
        .enumerate()
        .max_by(|&(_, &a), &(_, &b)| {
            let (ka, ta) = key(a);
            let (kb, tb) = key(b);
            // Claim keys are finite by construction, so partial_cmp only
            // falls through on exact ties, which the grid order settles.
            ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal).then_with(|| tb.cmp(&ta))
        })
        .map(|(i, _)| i)
        .expect("one ticket per sub-task: pool cannot be empty");
    pool.swap_remove(at)
}

/// The elastic scheduler: (cell, repetition-block) sub-tasks claimed from
/// a [`crate::par::BudgetLedger`], each claim re-granting the live pool share. Every
/// repetition publishes its error vector into a per-rep [`OnceLock`] slot;
/// cells are reduced in repetition order afterwards, so the output is
/// byte-identical to the static path.
fn run_grid_elastic(
    algorithms: &[Box<dyn GraphGenerator>],
    datasets: &[(String, Graph)],
    config: &BenchmarkConfig,
    true_values: &[Vec<QueryValue>],
    tasks: &[(usize, usize, usize)],
    budget: usize,
) -> Vec<ExperimentOutcome> {
    let reps = config.repetitions.max(1);
    let cells = tasks.len();
    // Block size: aim for ~ELASTIC_TASKS_PER_WORKER sub-tasks per worker,
    // never finer than one repetition per sub-task. Scheduling only — any
    // block size yields the same output.
    let worker_cap = budget.min(cells.saturating_mul(reps)).max(1);
    let blocks_per_cell =
        (worker_cap * ELASTIC_TASKS_PER_WORKER).div_ceil(cells.max(1)).clamp(1, reps);
    let block = reps.div_ceil(blocks_per_cell);
    let mut subtasks: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
    for cell in 0..cells {
        let mut start = 0;
        while start < reps {
            let end = (start + block).min(reps);
            subtasks.push((cell, start..end));
            start = end;
        }
    }
    // Cost-aware claim order: hand out predicted-expensive (cell,
    // repetition-block) sub-tasks first, so a DER cell on the largest
    // dataset cannot become a serial tail after the cheap cells drain. The
    // prediction is the live [`CostModel`]: unobserved algorithms first
    // (static-seed order), then measured EWMA × n² — each completed
    // sub-task feeds its wall time back in. Pure scheduling — each
    // sub-task's repetitions still run on their own derived cell RNG and
    // publish into cell-major slots reduced in grid order, so the CSV is
    // byte-identical to grid-order claiming (asserted in
    // `tests/scheduler.rs`).
    let model = CostModel::new(algorithms.iter().map(|a| a.name()));
    let pending: std::sync::Mutex<Vec<usize>> =
        std::sync::Mutex::new((0..subtasks.len()).collect());
    // One slot per (cell, repetition), cell-major — the reduction below
    // walks them in repetition order no matter who filled them when.
    let rep_slots: Vec<OnceLock<Option<Vec<f64>>>> =
        (0..cells * reps).map(|_| OnceLock::new()).collect();
    // Per-cell shared measurements (per-cell reuse only): a cell's
    // repetition blocks may land on different workers, so whichever worker
    // gets there first measures on the cell's dedicated stream and the
    // rest reuse it — `measure_rng` is a pure function of the cell
    // coordinates, so the race's winner does not affect the bytes.
    let measured: Vec<OnceLock<MeasuredCell>> = (0..cells).map(|_| OnceLock::new()).collect();

    // The worker/claim loop itself — ledger claims plus elastic per-task
    // grants that can grow mid-task as other workers release threads
    // (`BudgetLedger::regrant`, polled by `par_collect`) — is the shared
    // execution core `pgb-serve` also runs its request pipeline on.
    crate::exec::run_elastic(budget, subtasks.len(), |_ticket| {
        // Tickets are anonymous; each one claims whichever pending
        // sub-task the cost model currently predicts most expensive.
        let s = pop_costliest(&pending, |s| {
            let (cell, range) = &subtasks[s];
            let (di, ai, _) = tasks[*cell];
            (model.claim_key(ai, datasets[di].1.node_count()), (*cell, range.start))
        });
        let (cell, rep_range) = &subtasks[s];
        let (di, ai, ei) = tasks[*cell];
        let (_, graph) = &datasets[di];
        let started = std::time::Instant::now();
        let shared = (config.reuse == MeasureReuse::PerCell).then(|| {
            measured[*cell]
                .get_or_init(|| measure_cell(algorithms[ai].as_ref(), graph, config, (di, ai, ei)))
        });
        for rep in rep_range.clone() {
            let errors = run_rep(
                algorithms[ai].as_ref(),
                graph,
                &true_values[di],
                config,
                (di, ai, ei),
                rep,
                shared,
            );
            rep_slots[*cell * reps + rep]
                .set(errors)
                .expect("the ledger hands out each sub-task once");
        }
        model.record(ai, graph.node_count(), rep_range.len(), started.elapsed().as_secs_f64());
    });

    let mut rep_results: Vec<Option<Vec<f64>>> = rep_slots
        .into_iter()
        .map(|s| s.into_inner().expect("every claimed sub-task publishes its repetitions"))
        .collect();
    tasks
        .iter()
        .enumerate()
        .flat_map(|(t, &(di, ai, ei))| {
            reduce_cell(
                algorithms[ai].name(),
                &datasets[di].0,
                config.epsilons[ei],
                config,
                rep_results[t * reps..(t + 1) * reps].iter_mut().map(std::mem::take),
            )
        })
        .collect()
}

/// Runs the full benchmark grid: every algorithm × dataset × ε, with
/// `config.repetitions` generations per cell, all queries evaluated per
/// generation through the one-pass [`QuerySuite`] evaluator, and errors
/// averaged.
///
/// Work is distributed over `config.threads` total threads by the
/// configured [`Scheduler`] — elastic (cell, repetition-block) sub-tasks
/// with per-claim [`crate::par::BudgetLedger`] grants by default, or the static
/// whole-cell split via [`Scheduler::Static`]. Workers publish into
/// preallocated [`OnceLock`] slots — no shared mutex on the hot path —
/// and per-cell errors always reduce in repetition order, so results are
/// deterministic (byte-identical CSV) for a fixed seed regardless of
/// thread count *and* scheduler.
///
/// Under [`MeasureReuse::PerCell`] each cell's ε-consuming `measure` phase
/// runs once on a dedicated derived stream (shared across that cell's
/// repetitions via a [`OnceLock`]) and repetitions only re-`sample` — the
/// numbers differ from the per-rep default by design, but stay
/// byte-identical across thread counts and schedulers all the same.
///
/// Cells where every repetition's generation failed are still emitted, with
/// `runs = 0` and `NaN` errors, so downstream reports always see the
/// complete grid.
pub fn run_benchmark(
    algorithms: &[Box<dyn GraphGenerator>],
    datasets: &[(String, Graph)],
    config: &BenchmarkConfig,
) -> BenchmarkResults {
    let budget =
        if config.threads == 0 { crate::par::available_parallelism() } else { config.threads };
    // True query values per dataset, computed once — under the full thread
    // budget, since no cell workers are running yet and the suite's shared
    // passes (triangle, BFS, degree) parallelise on the ambient budget.
    let true_values: Vec<Vec<QueryValue>> = crate::par::with_parallelism(budget, || {
        datasets
            .iter()
            .enumerate()
            .map(|(di, (_, g))| {
                let mut rng = cell_rng(config.seed, di, usize::MAX, 0, 0);
                QuerySuite::evaluate_all(g, &config.queries, &config.query_params, &mut rng)
            })
            .collect()
    });

    // Task grid: (dataset, algorithm, epsilon), in outcome order.
    let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
    for di in 0..datasets.len() {
        for ai in 0..algorithms.len() {
            for ei in 0..config.epsilons.len() {
                tasks.push((di, ai, ei));
            }
        }
    }
    let outcomes = match config.sched {
        Scheduler::Static => {
            run_grid_static(algorithms, datasets, config, &true_values, &tasks, budget)
        }
        Scheduler::Elastic => {
            run_grid_elastic(algorithms, datasets, config, &true_values, &tasks, budget)
        }
    };
    BenchmarkResults {
        outcomes,
        algorithms: algorithms.iter().map(|a| a.name().to_string()).collect(),
        datasets: datasets.iter().map(|(n, _)| n.clone()).collect(),
        epsilons: config.epsilons.clone(),
        queries: config.queries.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GenerateError;
    use crate::{Dgg, TmF};

    type Setup = (Vec<Box<dyn GraphGenerator>>, Vec<(String, Graph)>, BenchmarkConfig);

    /// A generator whose every run fails — exercises the complete-grid
    /// guarantee for `runs == 0` cells.
    struct AlwaysFails;

    impl GraphGenerator for AlwaysFails {
        fn name(&self) -> &'static str {
            "Fails"
        }

        fn measure(
            &self,
            _graph: &Graph,
            _epsilon: f64,
            _rng: &mut dyn rand::RngCore,
        ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
            Err(GenerateError::GraphTooSmall { required: usize::MAX, actual: 0 })
        }
    }

    fn tiny_setup() -> Setup {
        let mut rng = StdRng::seed_from_u64(500);
        let g = pgb_models::erdos_renyi_gnp(60, 0.1, &mut rng);
        let algorithms: Vec<Box<dyn GraphGenerator>> =
            vec![Box::new(TmF::default()), Box::new(Dgg::default())];
        let datasets = vec![("toy".to_string(), g)];
        let config = BenchmarkConfig {
            epsilons: vec![0.5, 5.0],
            repetitions: 2,
            queries: vec![Query::EdgeCount, Query::Triangles, Query::DegreeDistribution],
            seed: 1,
            threads: 2,
            ..Default::default()
        };
        (algorithms, datasets, config)
    }

    #[test]
    fn grid_is_complete() {
        let (algorithms, datasets, config) = tiny_setup();
        let results = run_benchmark(&algorithms, &datasets, &config);
        // 2 algorithms × 1 dataset × 2 ε × 3 queries.
        assert_eq!(results.outcomes.len(), 12);
        for o in &results.outcomes {
            assert!(o.mean_error.is_finite(), "{o:?}");
            assert_eq!(o.runs, 2);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (algorithms, datasets, mut config) = tiny_setup();
        config.threads = 1;
        let a = run_benchmark(&algorithms, &datasets, &config);
        config.threads = 4;
        let b = run_benchmark(&algorithms, &datasets, &config);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.algorithm, y.algorithm);
            assert_eq!(x.query, y.query);
            assert!((x.mean_error - y.mean_error).abs() < 1e-12, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn csv_byte_identical_across_thread_counts() {
        // Regression: `to_csv` output must be byte-identical at any thread
        // count, because cell RNGs are derived from the master seed and the
        // generators' intra-cell parallelism follows the same derived-stream
        // chunking discipline (`crate::par`), not scheduling order.
        // The algorithm set deliberately includes all four generators with
        // parallel perturbation/construction phases (TmF, DER, PrivSKG,
        // PrivGraph); the query set includes the Louvain-backed pair
        // (CD/Mod): their randomness comes from the suite evaluator's
        // derived per-intermediate streams and their float reductions are
        // ordered, so even they must reproduce bit-exactly.
        let mut rng = StdRng::seed_from_u64(42);
        let datasets = vec![
            ("er".to_string(), pgb_models::erdos_renyi_gnp(50, 0.1, &mut rng)),
            ("ba".to_string(), pgb_models::barabasi_albert(50, 2, &mut rng)),
        ];
        let algorithms: Vec<Box<dyn GraphGenerator>> = vec![
            Box::new(TmF::default()),
            Box::new(crate::Der::default()),
            Box::new(crate::PrivSkg::default()),
            Box::new(crate::PrivGraph::default()),
        ];
        let mut config = BenchmarkConfig {
            epsilons: vec![0.5, 5.0],
            repetitions: 2,
            queries: vec![
                Query::EdgeCount,
                Query::Triangles,
                Query::CommunityDetection,
                Query::Modularity,
            ],
            seed: 42,
            threads: 1,
            ..Default::default()
        };
        let serial = run_benchmark(&algorithms, &datasets, &config).to_csv();
        // 2 datasets × 4 algorithms × 2 ε × 4 queries + header.
        assert_eq!(serial.lines().count(), 65);
        for sched in [Scheduler::Elastic, Scheduler::Static] {
            config.sched = sched;
            for threads in [2, 8, 0] {
                config.threads = threads; // 0 ⇒ auto: available parallelism
                let other = run_benchmark(&algorithms, &datasets, &config).to_csv();
                assert_eq!(
                    serial, other,
                    "CSV must not depend on threads = {threads}, sched = {sched:?}"
                );
            }
        }
    }

    #[test]
    fn csv_byte_identical_on_evaluation_heavy_grid() {
        // The evaluation-side mirror of the sweep above: a dense graph and
        // the full 15-query suite make `QuerySuite::evaluate_all` (triangle
        // pass, BFS sweep, Louvain, EVC) dominate each cell, and the cheap
        // generator keeps generation out of the picture. The parallel
        // shared passes must leave the CSV byte-identical across both
        // schedulers and every thread budget.
        let mut rng = StdRng::seed_from_u64(7);
        let datasets = vec![("dense".to_string(), pgb_models::erdos_renyi_gnp(120, 0.3, &mut rng))];
        let algorithms: Vec<Box<dyn GraphGenerator>> = vec![Box::new(TmF::default())];
        let mut config = BenchmarkConfig {
            epsilons: vec![0.5, 5.0],
            repetitions: 2,
            queries: Query::ALL.to_vec(),
            seed: 77,
            threads: 1,
            ..Default::default()
        };
        let serial = run_benchmark(&algorithms, &datasets, &config).to_csv();
        // 1 dataset × 1 algorithm × 2 ε × 15 queries + header.
        assert_eq!(serial.lines().count(), 31);
        for sched in [Scheduler::Elastic, Scheduler::Static] {
            config.sched = sched;
            for threads in [2, 8, 0] {
                config.threads = threads;
                let other = run_benchmark(&algorithms, &datasets, &config).to_csv();
                assert_eq!(
                    serial, other,
                    "evaluation-heavy CSV must not depend on threads = {threads}, sched = {sched:?}"
                );
            }
        }
    }

    #[test]
    fn approx_eval_csv_byte_identical_across_threads_and_schedulers() {
        // Sketch-backed evaluation rides the same determinism contract as
        // everything else: the sketches draw from derived per-intermediate
        // streams and their chunk merges are exact-integer or ordered, so
        // the CSV must be byte-identical at any thread budget and under
        // both schedulers. It must also differ from the exact CSV only in
        // the sketch-backed queries' rows (spot-checked via |E|).
        let (algorithms, datasets, mut config) = tiny_setup();
        config.queries = Query::ALL.to_vec();
        config.query_params.eval =
            pgb_queries::EvalMode::Approx(pgb_queries::ApproxConfig::default());
        config.threads = 1;
        let serial = run_benchmark(&algorithms, &datasets, &config).to_csv();
        assert_eq!(serial.lines().count(), 61); // 2 algos × 2 ε × 15 queries + header
        for sched in [Scheduler::Elastic, Scheduler::Static] {
            config.sched = sched;
            for threads in [2, 8, 0] {
                config.threads = threads;
                let other = run_benchmark(&algorithms, &datasets, &config).to_csv();
                assert_eq!(
                    serial, other,
                    "approx CSV must not depend on threads = {threads}, sched = {sched:?}"
                );
            }
        }
        // |E| does not go through a sketch: its rows match exact evaluation.
        config.query_params.eval = pgb_queries::EvalMode::Exact;
        config.threads = 1;
        config.sched = Scheduler::default();
        let exact = run_benchmark(&algorithms, &datasets, &config);
        let approx_results = run_benchmark(
            &algorithms,
            &datasets,
            &BenchmarkConfig {
                query_params: QueryParams {
                    eval: pgb_queries::EvalMode::Approx(pgb_queries::ApproxConfig::default()),
                    ..config.query_params
                },
                ..config.clone()
            },
        );
        assert_eq!(
            exact.error("TmF", "toy", 5.0, Query::EdgeCount),
            approx_results.error("TmF", "toy", 5.0, Query::EdgeCount),
        );
    }

    #[test]
    fn scheduler_parses_and_defaults_to_elastic() {
        assert_eq!(BenchmarkConfig::default().sched, Scheduler::Elastic);
        assert_eq!("static".parse::<Scheduler>(), Ok(Scheduler::Static));
        assert_eq!("elastic".parse::<Scheduler>(), Ok(Scheduler::Elastic));
        assert!("eager".parse::<Scheduler>().is_err());
        assert_eq!(Scheduler::Static.name(), "static");
        assert_eq!(Scheduler::Elastic.name(), "elastic");
    }

    #[test]
    fn measure_reuse_parses_and_defaults_to_per_rep() {
        assert_eq!(BenchmarkConfig::default().reuse, MeasureReuse::PerRep);
        assert_eq!("rep".parse::<MeasureReuse>(), Ok(MeasureReuse::PerRep));
        assert_eq!("cell".parse::<MeasureReuse>(), Ok(MeasureReuse::PerCell));
        assert!("once".parse::<MeasureReuse>().is_err());
        assert_eq!(MeasureReuse::PerRep.name(), "rep");
        assert_eq!(MeasureReuse::PerCell.name(), "cell");
    }

    #[test]
    fn per_cell_reuse_is_deterministic_across_threads_and_schedulers() {
        // Per-cell numbers legitimately differ from per-rep numbers, but
        // within the mode the full determinism contract must hold: the CSV
        // is byte-identical for every thread budget and both schedulers.
        let (algorithms, datasets, mut config) = tiny_setup();
        config.reuse = MeasureReuse::PerCell;
        config.threads = 1;
        let serial = run_benchmark(&algorithms, &datasets, &config).to_csv();
        assert_eq!(serial.lines().count(), 13);
        for sched in [Scheduler::Elastic, Scheduler::Static] {
            config.sched = sched;
            for threads in [2, 8, 0] {
                config.threads = threads;
                let other = run_benchmark(&algorithms, &datasets, &config).to_csv();
                assert_eq!(
                    serial, other,
                    "per-cell CSV must not depend on threads = {threads}, sched = {sched:?}"
                );
            }
        }
        // And every cell still completes: sampling a shared intermediate
        // succeeds wherever the full pipeline would have.
        let results = run_benchmark(&algorithms, &datasets, &config);
        for o in &results.outcomes {
            assert_eq!(o.runs, 2, "{o:?}");
            assert!(o.mean_error.is_finite(), "{o:?}");
        }
    }

    #[test]
    fn failing_generator_complete_grid_under_both_schedulers() {
        // The complete-grid guarantee (runs = 0, NaN cells) must hold for
        // the elastic rep-slot path too: a failed repetition publishes
        // `None` into its slot, and the reduction still emits the cell.
        let (_, datasets, mut config) = tiny_setup();
        let algorithms: Vec<Box<dyn GraphGenerator>> = vec![Box::new(AlwaysFails)];
        for sched in [Scheduler::Static, Scheduler::Elastic] {
            for reuse in [MeasureReuse::PerRep, MeasureReuse::PerCell] {
                config.sched = sched;
                config.reuse = reuse;
                let results = run_benchmark(&algorithms, &datasets, &config);
                assert_eq!(results.outcomes.len(), 6, "{sched:?} {reuse:?}");
                for o in &results.outcomes {
                    assert_eq!(o.runs, 0, "{sched:?} {reuse:?}: {o:?}");
                    assert!(o.mean_error.is_nan(), "{sched:?} {reuse:?}: {o:?}");
                }
            }
        }
    }

    #[test]
    fn error_lookup_and_csv() {
        let (algorithms, datasets, config) = tiny_setup();
        let results = run_benchmark(&algorithms, &datasets, &config);
        let e = results.error("TmF", "toy", 5.0, Query::EdgeCount);
        assert!(e.is_some());
        let csv = results.to_csv();
        assert!(csv.lines().count() == 13); // header + 12 rows
        assert!(csv.contains("TmF,toy"));
    }

    #[test]
    fn positional_error_lookup_covers_the_whole_grid() {
        let (algorithms, datasets, config) = tiny_setup();
        let results = run_benchmark(&algorithms, &datasets, &config);
        // The positional lookup must agree with a plain scan on every cell.
        for algo in &results.algorithms {
            for ds in &results.datasets {
                for &eps in &results.epsilons {
                    for &q in &results.queries {
                        let scanned = results
                            .outcomes
                            .iter()
                            .find(|o| {
                                o.algorithm == *algo
                                    && o.dataset == *ds
                                    && (o.epsilon - eps).abs() < 1e-12
                                    && o.query == q
                            })
                            .map(|o| o.mean_error)
                            .expect("grid is complete");
                        assert_eq!(results.error(algo, ds, eps, q), Some(scanned));
                    }
                }
            }
        }
        // Off-grid coordinates miss cleanly.
        assert_eq!(results.error("NoSuchAlgo", "toy", 5.0, Query::EdgeCount), None);
        assert_eq!(results.error("TmF", "toy", 3.25, Query::EdgeCount), None);
        assert_eq!(results.error("TmF", "toy", 5.0, Query::Diameter), None);
    }

    #[test]
    fn error_lookup_falls_back_on_hand_assembled_results() {
        let (algorithms, datasets, config) = tiny_setup();
        let mut results = run_benchmark(&algorithms, &datasets, &config);
        // Scramble the grid order; lookups must still find every cell.
        results.outcomes.reverse();
        let e = results.error("TmF", "toy", 5.0, Query::EdgeCount);
        assert!(e.is_some());
    }

    #[test]
    fn failing_generator_still_emits_complete_grid() {
        let (_, datasets, config) = tiny_setup();
        let algorithms: Vec<Box<dyn GraphGenerator>> =
            vec![Box::new(AlwaysFails), Box::new(TmF::default())];
        let results = run_benchmark(&algorithms, &datasets, &config);
        // 2 algorithms × 1 dataset × 2 ε × 3 queries — nothing dropped.
        assert_eq!(results.outcomes.len(), 12);
        for o in &results.outcomes {
            if o.algorithm == "Fails" {
                assert_eq!(o.runs, 0, "{o:?}");
                assert!(o.mean_error.is_nan(), "{o:?}");
            } else {
                assert_eq!(o.runs, 2, "{o:?}");
                assert!(o.mean_error.is_finite(), "{o:?}");
            }
        }
        // The CSV grid is complete and marks the failed cells.
        let csv = results.to_csv();
        assert_eq!(csv.lines().count(), 13);
        assert!(csv.contains("NaN"), "{csv}");
        // Lookups surface the failed cell rather than pretending it ran.
        let e = results.error("Fails", "toy", 0.5, Query::EdgeCount).unwrap();
        assert!(e.is_nan());
    }

    #[test]
    fn tmf_beats_noise_at_high_epsilon_on_edge_count() {
        let (algorithms, datasets, mut config) = tiny_setup();
        config.epsilons = vec![10.0];
        config.repetitions = 4;
        let results = run_benchmark(&algorithms, &datasets, &config);
        let tmf = results.error("TmF", "toy", 10.0, Query::EdgeCount).unwrap();
        // TmF controls |E| directly via m̃, so the RE must be small.
        assert!(tmf < 0.05, "TmF |E| error {tmf}");
    }

    #[test]
    fn cost_model_cold_start_ranks_by_static_seed() {
        let model = CostModel::new(["DER", "TmF"]);
        // Unobserved: the lexicographic (true, seed × n²) key preserves the
        // static ordering, and unobserved always outranks observed.
        assert!(model.claim_key(0, 90) > model.claim_key(1, 90));
        assert!(model.claim_key(1, 90) > model.claim_key(0, 20));
        model.record(0, 90, 1, 1.0);
        assert!(!model.claim_key(0, 90).0 && model.claim_key(1, 20).0);
        assert!(model.claim_key(1, 20) > model.claim_key(0, 90), "unobserved first");
    }

    #[test]
    fn cost_model_observations_flip_the_static_order() {
        // Static seeds say DER ≫ TmF; inject measurements saying the
        // opposite and the claim order must follow the evidence.
        let model = CostModel::new(["DER", "TmF"]);
        model.record(0, 100, 1, 0.001); // DER measured cheap
        model.record(1, 100, 1, 1.0); // TmF measured expensive
        assert!(model.claim_key(1, 100) > model.claim_key(0, 100));
        // And the EWMA tracks further observations with α = 0.3.
        model.record(1, 100, 1, 2.0);
        let expected = 0.3 * (2.0 / 1e4) + 0.7 * (1.0 / 1e4);
        let (_, cost) = model.claim_key(1, 100);
        assert!((cost - expected * 1e4).abs() < 1e-12, "{cost} vs {expected}");
    }

    #[test]
    fn cost_model_normalises_per_rep_and_per_n2() {
        // 4 reps on 10 nodes in 0.4 s and 1 rep on 20 nodes in 0.4 s are
        // the same 0.001 seconds/rep/n², so they predict the same cost on
        // any common dataset size.
        let model = CostModel::new(["A", "B"]);
        model.record(0, 10, 4, 0.4);
        model.record(1, 20, 1, 0.4);
        let (_, a) = model.claim_key(0, 20);
        let (_, b) = model.claim_key(1, 20);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        // Degenerate inputs never poison the model.
        model.record(0, 0, 0, 0.0);
        model.record(0, 10, 1, f64::INFINITY);
        assert!(model.claim_key(0, 10).1.is_finite());
    }

    #[test]
    fn pop_costliest_orders_and_breaks_ties_in_grid_order() {
        use std::sync::Mutex;
        let keys = [((false, 2.0), (1, 0)), ((true, 0.5), (2, 0)), ((false, 2.0), (0, 0))];
        let pending = Mutex::new(vec![0, 1, 2]);
        let pop = |pending: &Mutex<Vec<usize>>| pop_costliest(pending, |s| keys[s]);
        assert_eq!(pop(&pending), 1, "unobserved outranks any observed cost");
        assert_eq!(pop(&pending), 2, "exact ties resolve toward grid order");
        assert_eq!(pop(&pending), 0);
    }
}
