//! The PGB benchmark framework: the 4-tuple (M, G, P, U) turned into a
//! runnable experiment grid.
//!
//! * [`metric`] — the query → error-metric pairing of Table IV / §V-D.
//! * [`runner`] — executes algorithms × datasets × ε × repetitions and
//!   averages errors (the paper averages 10 runs per cell).
//! * [`temporal`] — the windowed variant of the grid: snapshot sequences ×
//!   algorithms × ε, one row per window plus a drift row per query.
//! * [`scoring`] — the best-performance counts of Definition 5 (Table VII)
//!   and Definition 6 (Table XII).
//! * [`report`] — plain-text table / CSV rendering used by the harness
//!   binaries.

pub mod metric;
pub mod report;
pub mod runner;
pub mod scoring;
pub mod temporal;

pub use metric::{compute_error, metric_for, ErrorMetric};
pub use report::TextTable;
pub use runner::{
    algorithm_cost_weight, run_benchmark, BenchmarkConfig, BenchmarkResults, CostModel,
    ExperimentOutcome, MeasureReuse, Scheduler,
};
pub use scoring::{best_counts_per_case, best_counts_per_query};
pub use temporal::{run_temporal_benchmark, TemporalBenchmarkResults, TemporalOutcome};
