//! PrivHRG (Xiao, Chen & Tan, KDD 2014): network release via structural
//! inference over hierarchical random graphs.
//!
//! Representation: a dendrogram (HRG). Perturbation: the dendrogram is
//! sampled by an MCMC whose stationary distribution is the **exponential
//! mechanism** over dendrograms with the log-likelihood as quality
//! (budget ε₁), then each internal node's edge count is perturbed with
//! the Laplace mechanism (budget ε₂; toggling one edge changes exactly
//! one `E_r` by 1, so the vector's L1 sensitivity is 1). Construction:
//! edges are drawn from the noisy connection probabilities.

use crate::generator::{
    check_epsilon, vec_heap_bytes, GenerateError, GraphGenerator, PrivateSynthesis,
};
use pgb_dp::laplace::sample_laplace;
use pgb_dp::BudgetAccountant;
use pgb_graph::Graph;
use pgb_models::hrg::Dendrogram;
use rand::RngCore;

/// The PrivHRG generator.
#[derive(Clone, Debug)]
pub struct PrivHrg {
    /// Fraction of ε spent on dendrogram sampling (ε₁); the paper's
    /// implementation splits evenly.
    pub structure_budget_fraction: f64,
    /// MCMC steps per node (total steps = `steps_per_node · n`, capped).
    pub steps_per_node: usize,
    /// Hard cap on total MCMC steps, so the benchmark's largest graphs
    /// stay tractable.
    pub max_steps: usize,
}

impl Default for PrivHrg {
    fn default() -> Self {
        PrivHrg { structure_budget_fraction: 0.5, steps_per_node: 200, max_steps: 2_000_000 }
    }
}

/// PrivHRG's private intermediate: the MCMC-sampled dendrogram together
/// with its Laplace-noised connection probabilities. Edge realisation
/// reads only these, so re-sampling is ε-free.
#[derive(Clone, Debug)]
pub struct HrgSynthesis {
    n: usize,
    dendrogram: Option<Dendrogram>,
    probs: Vec<f64>,
    epsilon: f64,
}

impl PrivateSynthesis for HrgSynthesis {
    fn name(&self) -> &'static str {
        "PrivHRG"
    }

    fn epsilon_spent(&self) -> f64 {
        self.epsilon
    }

    fn heap_bytes(&self) -> usize {
        self.dendrogram.as_ref().map_or(0, |d| d.heap_bytes()) + vec_heap_bytes(&self.probs)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Graph {
        match &self.dendrogram {
            Some(d) => d.sample_graph_with(&self.probs, rng),
            None => Graph::new(self.n),
        }
    }
}

impl GraphGenerator for PrivHrg {
    fn name(&self) -> &'static str {
        "PrivHRG"
    }

    fn measure(
        &self,
        graph: &Graph,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        check_epsilon(epsilon)?;
        let n = graph.node_count();
        if n < 2 {
            return Ok(Box::new(HrgSynthesis { n, dendrogram: None, probs: Vec::new(), epsilon }));
        }
        let mut acc = BudgetAccountant::new(epsilon)?;
        let eps1 = acc
            .spend("dendrogram MCMC", epsilon * self.structure_budget_fraction.clamp(0.05, 0.95))?;
        let eps2 = acc.spend_remaining("connection probabilities");

        // Δ logL under edge neighbouring: one edge toggle moves one E_r by
        // 1; the per-node likelihood term changes by at most ln(L·R) ≤
        // 2 ln n (the bound Xiao et al. calibrate with).
        let delta_log_l = 2.0 * (n as f64).ln().max(1.0);
        let factor = eps1 / (2.0 * delta_log_l);

        let mut dendrogram = Dendrogram::from_graph(graph, rng);
        let steps = self.steps_per_node.saturating_mul(n).min(self.max_steps);
        for _ in 0..steps {
            dendrogram.mcmc_step(graph, factor, rng);
        }

        // Noisy connection probabilities: Ẽ_r = E_r + Lap(1/ε₂), clamped
        // into the feasible probability range by the sampler.
        let probs: Vec<f64> = (0..dendrogram.internal_count() as u32)
            .map(|r| {
                let pairs = dendrogram.pairs_at(r).max(1) as f64;
                let noisy = dendrogram.edges_at(r) as f64 + sample_laplace(1.0 / eps2, rng);
                noisy / pairs
            })
            .collect();
        Ok(Box::new(HrgSynthesis { n, dendrogram: Some(dendrogram), probs, epsilon: acc.total() }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn community_graph(rng: &mut StdRng) -> Graph {
        // Two dense 30-node blobs plus a bridge.
        let mut edges = Vec::new();
        for base in [0u32, 30u32] {
            for i in 0..30 {
                for j in (i + 1)..30 {
                    if (i + j) % 3 != 0 {
                        edges.push((base + i, base + j));
                    }
                }
            }
        }
        edges.push((0, 30));
        let _ = rng;
        Graph::from_edges(60, edges).unwrap()
    }

    #[test]
    fn output_valid_and_same_node_count() {
        let mut rng = StdRng::seed_from_u64(440);
        let g = community_graph(&mut rng);
        let out = PrivHrg::default().generate(&g, 2.0, &mut rng).unwrap();
        assert_eq!(out.node_count(), 60);
        assert!(out.check_invariants());
    }

    #[test]
    fn high_epsilon_tracks_edge_count() {
        let mut rng = StdRng::seed_from_u64(441);
        let g = community_graph(&mut rng);
        let out = PrivHrg::default().generate(&g, 50.0, &mut rng).unwrap();
        let (m0, m1) = (g.edge_count() as f64, out.edge_count() as f64);
        assert!((m1 - m0).abs() / m0 < 0.3, "m0 {m0} m1 {m1}");
    }

    #[test]
    fn preserves_community_density_at_high_epsilon() {
        let mut rng = StdRng::seed_from_u64(442);
        let g = community_graph(&mut rng);
        let out = PrivHrg::default().generate(&g, 50.0, &mut rng).unwrap();
        // Edges inside the two blobs should dominate, as in the input.
        let intra = out.edges().filter(|&(u, v)| (u < 30) == (v < 30)).count() as f64;
        let total = out.edge_count().max(1) as f64;
        assert!(intra / total > 0.7, "intra fraction {}", intra / total);
    }

    #[test]
    fn low_epsilon_still_valid() {
        let mut rng = StdRng::seed_from_u64(443);
        let g = community_graph(&mut rng);
        let out = PrivHrg::default().generate(&g, 0.1, &mut rng).unwrap();
        assert!(out.check_invariants());
    }

    #[test]
    fn tiny_graphs_ok() {
        let mut rng = StdRng::seed_from_u64(444);
        assert_eq!(
            PrivHrg::default().generate(&Graph::new(1), 1.0, &mut rng).unwrap().node_count(),
            1
        );
        let out = PrivHrg::default().generate(&Graph::new(2), 1.0, &mut rng).unwrap();
        assert_eq!(out.node_count(), 2);
    }

    #[test]
    fn step_cap_respected() {
        // A generator with a tiny cap must still terminate fast and work.
        let mut rng = StdRng::seed_from_u64(445);
        let g = community_graph(&mut rng);
        let gen =
            PrivHrg { steps_per_node: usize::MAX / 1_000, max_steps: 100, ..Default::default() };
        let out = gen.generate(&g, 1.0, &mut rng).unwrap();
        assert!(out.check_invariants());
    }
}
