//! PrivGraph (Yuan et al., USENIX Security 2023): graph publication by
//! exploiting community information.
//!
//! Three phases, with the budget split ε = ε₁ + ε₂ + ε₃:
//!
//! 1. **Community initialisation (ε₁)** — nodes are grouped randomly into
//!    super-nodes; the super-graph's edge weights are perturbed with the
//!    Laplace mechanism; weighted Louvain partitions the noisy
//!    super-graph; finally each node is re-assigned individually with the
//!    **exponential mechanism** (quality = its true edge count into each
//!    candidate community; per-node budget ε₂ — see below).
//! 2. **Information extraction (ε₃ᵃ/ε₃ᵇ)** — intra-community degree
//!    sequences and inter-community edge counts get Laplace noise.
//! 3. **Reconstruction** — Chung–Lu inside each community from the noisy
//!    degrees; noisy edge counts placed uniformly between communities.
//!
//! Budget accounting: toggling one edge changes one super-edge weight by
//! 1 (phase 1: sensitivity 1); it appears in exactly two nodes' quality
//! vectors with Δq = 1 (refinement: each node's selection runs at ε₂/2,
//! so the two affected selections compose to ε₂); it changes the
//! degree-sequence/inter-count release by at most L1 = 2 (phase 2:
//! sensitivity 2). Total: ε₁ + ε₂ + ε₃ = ε.
//!
//! The measure/sample cut falls exactly on the paper's phase boundary:
//! `measure` runs phases 1 and 2 (partition + noisy block statistics) and
//! `sample` runs phase 3 (Chung–Lu wiring + uniform inter placement),
//! which reads only the noisy statistics — PrivGraph is the suite's
//! clearest example of the measure-then-realise split.

use crate::generator::{
    check_epsilon, vec_heap_bytes, GenerateError, GraphGenerator, PrivateSynthesis,
};
use crate::par;
use pgb_community::{louvain_weighted, LouvainParams, Partition, WeightedGraph};
use pgb_dp::exponential::exponential_mechanism_sparse;
use pgb_dp::laplace::sample_laplace;
use pgb_dp::BudgetAccountant;
use pgb_graph::{Graph, GraphBuilder, NodeId};
use pgb_models::chung_lu;
use rand::{Rng, RngCore};

/// The PrivGraph generator.
#[derive(Clone, Debug)]
pub struct PrivGraph {
    /// Budget weights for (community initialisation, exponential-mechanism
    /// refinement, information extraction). The reference implementation
    /// defaults to an even three-way split.
    pub budget_weights: [f64; 3],
    /// Nodes per random super-node in phase 1 (capped at `n/10` so small
    /// graphs still get a usable super-graph).
    pub supernode_size: usize,
    /// Community-adjustment rounds: each round reassigns every node with
    /// the exponential mechanism against the current labels (0 disables
    /// refinement; its budget then flows into information extraction).
    pub refine_rounds: usize,
}

impl Default for PrivGraph {
    fn default() -> Self {
        PrivGraph { budget_weights: [1.0, 1.0, 1.0], supernode_size: 20, refine_rounds: 1 }
    }
}

/// PrivGraph's private intermediate: the community partition plus the
/// noisy block statistics — per-community noisy intra-degree vectors and
/// capped noisy inter-community edge counts. Phase-3 reconstruction reads
/// only these, so re-sampling is ε-free.
#[derive(Clone, Debug)]
pub struct PrivGraphSynthesis {
    n: usize,
    /// Member lists of each community (the partition).
    communities: Vec<Vec<NodeId>>,
    /// Noisy intra-community degree of each member, parallel to
    /// `communities` (empty for communities too small to wire).
    noisy_degrees: Vec<Vec<f64>>,
    /// Surviving noisy inter-community counts `(a, c, count)`, already
    /// clamped to each pair's cell capacity.
    inter: Vec<(u32, u32, usize)>,
    epsilon: f64,
}

impl PrivateSynthesis for PrivGraphSynthesis {
    fn name(&self) -> &'static str {
        "PrivGraph"
    }

    fn epsilon_spent(&self) -> f64 {
        self.epsilon
    }

    fn heap_bytes(&self) -> usize {
        let members: usize = self.communities.iter().map(vec_heap_bytes).sum();
        let degrees: usize = self.noisy_degrees.iter().map(vec_heap_bytes).sum();
        vec_heap_bytes(&self.communities)
            + members
            + vec_heap_bytes(&self.noisy_degrees)
            + degrees
            + vec_heap_bytes(&self.inter)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Graph {
        if self.n < 2 {
            return Graph::new(self.n);
        }
        let communities = &self.communities;
        let noisy_degrees = &self.noisy_degrees;
        // ---- Phase 3: reconstruction ----
        // Intra: Chung–Lu per community on the stored noisy degrees.
        // Communities are independent wiring problems, so each is a work
        // item on its own derived stream; one item per chunk lets the
        // worker cursor balance the very uneven community sizes.
        let intra_pairs: Vec<(NodeId, NodeId)> =
            par::par_collect(communities.len(), 1, rng, |range, rng, out| {
                for ci in range {
                    let members = &communities[ci];
                    if members.len() < 2 {
                        continue;
                    }
                    let local = chung_lu(&noisy_degrees[ci], rng);
                    for (a, c) in local.edges() {
                        out.push((members[a as usize], members[c as usize]));
                    }
                }
            });
        // Inter: each surviving noisy count is placed uniformly between
        // its community pair; entries are independent and uneven, so one
        // item per chunk again.
        let inter = &self.inter;
        let inter_pairs: Vec<(NodeId, NodeId)> =
            par::par_collect(inter.len(), 1, rng, |range, rng, out| {
                for &(a, c, count) in &inter[range] {
                    let (ma, mc) = (&communities[a as usize], &communities[c as usize]);
                    for _ in 0..count {
                        let u = ma[rng.gen_range(0..ma.len())];
                        let v = mc[rng.gen_range(0..mc.len())];
                        out.push((u, v));
                    }
                }
            });
        let mut b = GraphBuilder::with_capacity(self.n, intra_pairs.len() + inter_pairs.len());
        b.extend(intra_pairs);
        b.extend(inter_pairs);
        b.build_parallel(par::current_parallelism()).expect("ids bounded by n")
    }
}

impl GraphGenerator for PrivGraph {
    fn name(&self) -> &'static str {
        "PrivGraph"
    }

    fn measure(
        &self,
        graph: &Graph,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        check_epsilon(epsilon)?;
        let n = graph.node_count();
        if n < 2 {
            return Ok(Box::new(PrivGraphSynthesis {
                n,
                communities: Vec::new(),
                noisy_degrees: Vec::new(),
                inter: Vec::new(),
                epsilon,
            }));
        }
        let mut acc = BudgetAccountant::new(epsilon)?;
        let refine = self.refine_rounds > 0;
        let (eps1, eps2, eps3) = if refine {
            let shares = acc.split(&[
                ("community initialisation", self.budget_weights[0]),
                ("exponential-mechanism refinement", self.budget_weights[1]),
                ("information extraction", self.budget_weights[2]),
            ])?;
            (shares[0], Some(shares[1]), shares[2])
        } else {
            let shares = acc.split(&[
                ("community initialisation", self.budget_weights[0]),
                ("information extraction", self.budget_weights[1] + self.budget_weights[2]),
            ])?;
            (shares[0], None, shares[1])
        };

        // ---- Phase 1: noisy super-graph + weighted Louvain ----
        let t = self.supernode_size.clamp(2, (n / 10).max(2));
        let s = n.div_ceil(t);
        let mut shuffled: Vec<NodeId> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let mut super_of = vec![0u32; n];
        for (idx, &u) in shuffled.iter().enumerate() {
            super_of[u as usize] = (idx / t) as u32;
        }
        // True super-edge weights (intra super-node mass goes to loops).
        let mut weights_matrix: std::collections::HashMap<(u32, u32), f64> =
            std::collections::HashMap::new();
        for (u, v) in graph.edges() {
            let (a, b) = (super_of[u as usize], super_of[v as usize]);
            let key = if a <= b { (a, b) } else { (b, a) };
            *weights_matrix.entry(key).or_insert(0.0) += 1.0;
        }
        // Laplace on every super-pair (including empty ones — required for
        // DP; sensitivity 1). The s²/2 draws are independent, so rows are
        // chunked over derived streams; surviving super-edges come back in
        // deterministic row order.
        const SUPER_ROW_CHUNK: usize = 64;
        let surviving: Vec<(u32, u32, f64)> =
            par::par_collect(s, SUPER_ROW_CHUNK, rng, |rows, rng, out| {
                for a in rows {
                    for b in a..s {
                        let key = (a as u32, b as u32);
                        let true_w = weights_matrix.get(&key).copied().unwrap_or(0.0);
                        let w = true_w + sample_laplace(1.0 / eps1, rng);
                        if w > 0.5 {
                            out.push((key.0, key.1, w.round()));
                        }
                    }
                }
            });
        let mut noisy_super = WeightedGraph::new(s);
        for (a, b, w) in surviving {
            noisy_super.add_edge(a, b, w);
        }
        let super_partition = louvain_weighted(&noisy_super, &LouvainParams::default(), rng);
        let mut labels: Vec<u32> =
            (0..n as u32).map(|u| super_partition.label(super_of[u as usize])).collect();
        {
            let mut comm = Partition::from_labels(labels);
            // The adjustment rounds below can merge communities but never
            // split them, so a coarse partition must start fine-grained
            // enough to contain the real structure. When the noisy
            // super-graph Louvain collapses to a handful of (blob-mixed)
            // communities, restart from singletons and let the rounds
            // self-organise, label-propagation style.
            if comm.normalize() < (n / 8).max(2) {
                comm = Partition::singletons(n);
            }
            labels = comm.labels().to_vec();
        }

        // ---- Community adjustment: exponential-mechanism rounds ----
        // Each round reassigns every node to the community holding most of
        // its neighbours, selected with the (sparse) exponential mechanism.
        // One edge appears in exactly two nodes' score vectors per round,
        // so `rounds` rounds at per-node budget ε₂/(2·rounds) compose to
        // ε₂ overall.
        if let Some(eps2) = eps2 {
            let rounds = self.refine_rounds;
            let per_node_eps = eps2 / (2.0 * rounds as f64);
            let mut scores: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
            let mut sparse: Vec<(usize, f64)> = Vec::new();
            for _ in 0..rounds {
                let mut comm = Partition::from_labels(labels.clone());
                let k = comm.normalize();
                labels = comm.labels().to_vec();
                if k < 2 {
                    break;
                }
                // Asynchronous updates (each node sees its predecessors'
                // fresh labels) converge in far fewer rounds than
                // synchronous sweeps and avoid label oscillation.
                for u in 0..n as u32 {
                    scores.clear();
                    for &v in graph.neighbors(u) {
                        *scores.entry(labels[v as usize]).or_insert(0.0) += 1.0;
                    }
                    sparse.clear();
                    sparse.extend(scores.iter().map(|(&c, &s)| (c as usize, s)));
                    sparse.sort_unstable_by_key(|a| a.0); // determinism
                    let choice = exponential_mechanism_sparse(&sparse, k, 1.0, per_node_eps, rng);
                    labels[u as usize] = choice as u32;
                }
            }
        }
        // Cap the community count (label-only post-processing, so no
        // budget cost): on weak-community graphs the adjustment can leave
        // thousands of micro-communities, which would make the
        // inter-community phase quadratic in k. The reference pipeline's
        // Louvain-scale community counts are what the k² loop is sized
        // for, so merge the tail round-robin into a bounded bucket set.
        let k_max = (n / 100).max(8);
        let mut comm = Partition::from_labels(labels);
        let k = comm.normalize();
        if k > k_max {
            let mut sizes: Vec<(usize, u32)> = vec![(0, 0); k];
            for (c, slot) in sizes.iter_mut().enumerate() {
                slot.1 = c as u32;
            }
            for u in 0..n {
                sizes[comm.label(u as u32) as usize].0 += 1;
            }
            sizes.sort_unstable_by(|a, b| b.cmp(a));
            let keep = k_max / 2;
            let buckets = (k_max - keep).max(1);
            let mut remap = vec![0u32; k];
            for (rank, &(_, c)) in sizes.iter().enumerate() {
                remap[c as usize] =
                    if rank < keep { rank as u32 } else { (keep + (rank - keep) % buckets) as u32 };
            }
            let merged: Vec<u32> = (0..n).map(|u| remap[comm.label(u as u32) as usize]).collect();
            comm = Partition::from_labels(merged);
            comm.normalize();
        }
        let k = comm.community_count();
        let labels = comm.labels().to_vec();
        let communities = comm.communities();

        // ---- Phase 2: noisy intra degrees + inter counts (Δ1 = 2) ----
        let noise_scale = 2.0 / eps3;
        // Intra-community degree of each node.
        let mut intra_degree = vec![0.0f64; n];
        let mut inter_counts: std::collections::HashMap<(u32, u32), f64> =
            std::collections::HashMap::new();
        for (u, v) in graph.edges() {
            let (cu, cv) = (labels[u as usize], labels[v as usize]);
            if cu == cv {
                intra_degree[u as usize] += 1.0;
                intra_degree[v as usize] += 1.0;
            } else {
                let key = if cu < cv { (cu, cv) } else { (cv, cu) };
                *inter_counts.entry(key).or_insert(0.0) += 1.0;
            }
        }

        // Noise pass over the extracted statistics — the tail of phase 2.
        // Intra: Laplace on every member's intra degree, one community per
        // work item on its own derived stream (communities are independent
        // noise problems just as they are independent wiring problems).
        let noisy_degrees: Vec<Vec<f64>> =
            par::par_collect(communities.len(), 1, rng, |range, rng, out| {
                for ci in range {
                    let members = &communities[ci];
                    if members.len() < 2 {
                        out.push(Vec::new());
                        continue;
                    }
                    out.push(
                        members
                            .iter()
                            .map(|&u| {
                                (intra_degree[u as usize] + sample_laplace(noise_scale, rng))
                                    .max(0.0)
                            })
                            .collect(),
                    );
                }
            });
        // Inter: Laplace on every community pair (including empty ones —
        // required for DP). The k²/2 pairs are independent; chunk over
        // rows of the pair triangle. Only surviving counts are stored,
        // clamped to the pair's cell capacity.
        const INTER_ROW_CHUNK: usize = 16;
        let inter: Vec<(u32, u32, usize)> =
            par::par_collect(k, INTER_ROW_CHUNK, rng, |rows, rng, out| {
                for a in rows {
                    for c in (a + 1)..k {
                        let true_w =
                            inter_counts.get(&(a as u32, c as u32)).copied().unwrap_or(0.0);
                        let w = (true_w + sample_laplace(noise_scale, rng)).round();
                        if w <= 0.0 {
                            continue;
                        }
                        let cap = (communities[a].len() * communities[c].len()) as f64;
                        out.push((a as u32, c as u32, w.min(cap) as usize));
                    }
                }
            });
        Ok(Box::new(PrivGraphSynthesis {
            n,
            communities,
            noisy_degrees,
            inter,
            epsilon: acc.total(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn community_graph(rng: &mut StdRng) -> Graph {
        let mut edges = Vec::new();
        for base in [0u32, 40u32, 80u32] {
            for i in 0..40 {
                for j in (i + 1)..40 {
                    if rng.gen_bool(0.3) {
                        edges.push((base + i, base + j));
                    }
                }
            }
        }
        for _ in 0..20 {
            let u = rng.gen_range(0..120u32);
            let v = rng.gen_range(0..120u32);
            if u != v {
                edges.push((u.min(v), u.max(v)));
            }
        }
        Graph::from_edges(120, edges).unwrap()
    }

    #[test]
    fn output_valid_same_nodes() {
        let mut rng = StdRng::seed_from_u64(450);
        let g = community_graph(&mut rng);
        let out = PrivGraph::default().generate(&g, 2.0, &mut rng).unwrap();
        assert_eq!(out.node_count(), 120);
        assert!(out.check_invariants());
    }

    #[test]
    fn high_epsilon_tracks_edge_count() {
        let mut rng = StdRng::seed_from_u64(451);
        let g = community_graph(&mut rng);
        let out = PrivGraph::default().generate(&g, 100.0, &mut rng).unwrap();
        let (m0, m1) = (g.edge_count() as f64, out.edge_count() as f64);
        assert!((m1 - m0).abs() / m0 < 0.3, "m0 {m0} m1 {m1}");
    }

    #[test]
    fn preserves_community_structure_at_high_epsilon() {
        let mut rng = StdRng::seed_from_u64(452);
        let g = community_graph(&mut rng);
        let out = PrivGraph::default().generate(&g, 50.0, &mut rng).unwrap();
        // Blob-intra edges should dominate in the synthetic graph too.
        let intra = out.edges().filter(|&(u, v)| u / 40 == v / 40).count() as f64;
        let frac = intra / out.edge_count().max(1) as f64;
        assert!(frac > 0.7, "intra fraction {frac}");
    }

    #[test]
    fn refinement_off_still_works() {
        let mut rng = StdRng::seed_from_u64(453);
        let g = community_graph(&mut rng);
        let gen = PrivGraph { refine_rounds: 0, ..Default::default() };
        let out = gen.generate(&g, 2.0, &mut rng).unwrap();
        assert!(out.check_invariants());
    }

    #[test]
    fn low_epsilon_valid() {
        let mut rng = StdRng::seed_from_u64(454);
        let g = community_graph(&mut rng);
        let out = PrivGraph::default().generate(&g, 0.1, &mut rng).unwrap();
        assert!(out.check_invariants());
    }

    #[test]
    fn small_graphs_ok() {
        let mut rng = StdRng::seed_from_u64(455);
        let out = PrivGraph::default().generate(&Graph::new(1), 1.0, &mut rng).unwrap();
        assert_eq!(out.node_count(), 1);
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let out = PrivGraph::default().generate(&g, 1.0, &mut rng).unwrap();
        assert_eq!(out.node_count(), 3);
    }
}
