//! DP-dK (Wang & Wu, Transactions on Data Privacy 2013): degree-correlation
//! based generation.
//!
//! * **dK-1**: the degree histogram is perturbed with the Laplace
//!   mechanism (toggling an edge moves two nodes between histogram bins —
//!   L1 sensitivity 4) and realised with Havel–Hakimi, the construction
//!   the paper's verification appendix names.
//! * **dK-2**: the joint degree distribution is perturbed with noise
//!   calibrated to **smooth sensitivity** (the paper: "noise is calibrated
//!   based on smooth sensitivity rather than global sensitivity, resulting
//!   in noise of a smaller magnitude"), giving (ε, δ)-DP with δ = 0.01,
//!   and realised with the dK-2 stub-wiring constructor.

use crate::generator::{
    check_epsilon, vec_heap_bytes, GenerateError, GraphGenerator, PrivateSynthesis,
};
use pgb_dp::laplace::sample_laplace;
use pgb_dp::sensitivity::{dk2_local_sensitivity_at, smooth_sensitivity, SmoothParams};
use pgb_dp::BudgetAccountant;
use pgb_graph::degree::{degree_histogram, joint_degree_distribution, JointDegreeDistribution};
use pgb_graph::Graph;
use pgb_models::dk::{dk1_construct, dk2_construct};
use rand::{Rng, RngCore};

/// Which dK series DP-dK targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DkVariant {
    /// Degree histogram (Laplace, pure ε-DP).
    Dk1,
    /// Joint degree distribution (smooth sensitivity, (ε, δ)-DP).
    Dk2,
}

/// The DP-dK generator.
#[derive(Clone, Debug)]
pub struct DpDk {
    /// Series variant (the paper's headline configuration is dK-2).
    pub variant: DkVariant,
    /// δ of the smooth-sensitivity guarantee (dK-2 only); 0.01 in §V-C.
    pub delta: f64,
}

impl Default for DpDk {
    fn default() -> Self {
        DpDk { variant: DkVariant::Dk2, delta: 0.01 }
    }
}

/// L1 sensitivity of the degree histogram under edge neighbouring: two
/// nodes each move one unit of mass between two bins.
const DK1_SENSITIVITY: f64 = 4.0;

/// DP-dK's private intermediate: the noisy dK series — a rescaled degree
/// histogram for dK-1, a renormalised joint degree distribution for dK-2.
/// The stub-wiring constructors and the node-count projection read only
/// this series, so re-sampling is ε-free.
#[derive(Clone, Debug)]
pub struct DkSynthesis {
    series: DkSeries,
    n: usize,
    epsilon: f64,
}

#[derive(Clone, Debug)]
enum DkSeries {
    Dk1(Vec<u64>),
    Dk2(JointDegreeDistribution),
}

impl PrivateSynthesis for DkSynthesis {
    fn name(&self) -> &'static str {
        match self.series {
            DkSeries::Dk1(_) => "DP-1K",
            DkSeries::Dk2(_) => "DP-dK",
        }
    }

    fn epsilon_spent(&self) -> f64 {
        self.epsilon
    }

    fn heap_bytes(&self) -> usize {
        match &self.series {
            DkSeries::Dk1(hist) => vec_heap_bytes(hist),
            // HashMap buckets hold (key, value) plus control bytes.
            DkSeries::Dk2(jdd) => jdd.capacity() * (std::mem::size_of::<((u32, u32), u64)>() + 1),
        }
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Graph {
        let out = match &self.series {
            DkSeries::Dk1(hist) => dk1_construct(hist),
            DkSeries::Dk2(jdd) => dk2_construct(jdd, rng),
        };
        conform_node_count(out, self.n, rng)
    }
}

impl DpDk {
    fn measure_dk1(&self, graph: &Graph, epsilon: f64, rng: &mut dyn RngCore) -> DkSeries {
        let hist = degree_histogram(graph);
        let n = graph.node_count() as f64;
        let mut noisy: Vec<u64> = hist
            .iter()
            .map(|&c| {
                let v = c as f64 + sample_laplace(DK1_SENSITIVITY / epsilon, rng);
                v.round().max(0.0) as u64
            })
            .collect();
        // Post-processing: rescale the histogram mass back to n nodes so
        // the construction has the right order (the reference code does
        // the same normalisation).
        let total: u64 = noisy.iter().sum();
        if total > 0 {
            let scale = n / total as f64;
            for c in &mut noisy {
                *c = ((*c as f64) * scale).round() as u64;
            }
        }
        DkSeries::Dk1(noisy)
    }

    fn measure_dk2(
        &self,
        graph: &Graph,
        eps_count: f64,
        eps_jdd: f64,
        rng: &mut dyn RngCore,
    ) -> DkSeries {
        // Budget split: a small share estimates the edge total (global
        // sensitivity 1); the rest perturbs the dK-2 *distribution*. The
        // noisy distribution is renormalised to the noisy total — DP-2K
        // treats the dK-2 series as a distribution over degree pairs, and
        // without the renormalisation the positive halves of thousands of
        // Laplace draws at hub-degree smooth sensitivity would inflate the
        // edge mass by orders of magnitude (the paper's Table XI shows
        // ~1.7× inflation at ε = 0.2, not 300×).
        let m_tilde =
            (graph.edge_count() as f64 + sample_laplace(1.0 / eps_count, rng)).round().max(0.0);

        let jdd = joint_degree_distribution(graph);
        let d_max = graph.max_degree();
        let params = SmoothParams::for_laplace(eps_jdd, self.delta);
        let s = smooth_sensitivity(
            |k| dk2_local_sensitivity_at(d_max, k),
            params.beta,
            graph.node_count().max(1),
        );
        let scale = 2.0 * s / eps_jdd;
        // Perturb in sorted key order: HashMap iteration order varies
        // between instances, and the noise stream must be reproducible.
        let mut sorted: Vec<(&(u32, u32), &u64)> = jdd.iter().collect();
        sorted.sort_unstable_by_key(|(k, _)| **k);
        let mut noisy: Vec<((u32, u32), f64)> = sorted
            .into_iter()
            .map(|(&key, &count)| (key, (count as f64 + sample_laplace(scale, rng)).max(0.0)))
            .collect();
        let total: f64 = noisy.iter().map(|&(_, v)| v).sum();
        let mut target = JointDegreeDistribution::new();
        if total > 0.0 && m_tilde > 0.0 {
            let rescale = m_tilde / total;
            for (key, v) in &mut noisy {
                let count = (*v * rescale).round() as u64;
                if count > 0 {
                    target.insert(*key, count);
                }
            }
        }
        DkSeries::Dk2(target)
    }
}

impl GraphGenerator for DpDk {
    fn name(&self) -> &'static str {
        match self.variant {
            DkVariant::Dk1 => "DP-1K",
            DkVariant::Dk2 => "DP-dK",
        }
    }

    fn delta(&self) -> f64 {
        match self.variant {
            DkVariant::Dk1 => 0.0,
            DkVariant::Dk2 => self.delta,
        }
    }

    fn measure(
        &self,
        graph: &Graph,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        check_epsilon(epsilon)?;
        let mut acc = BudgetAccountant::new(epsilon)?;
        let series = match self.variant {
            DkVariant::Dk1 => {
                let eps = acc.spend_remaining("degree histogram");
                self.measure_dk1(graph, eps, rng)
            }
            DkVariant::Dk2 => {
                // Budget split as in `measure_dk2`'s header comment: a small
                // share estimates the edge total, the rest perturbs the JDD.
                let eps_count = acc.spend("edge count", 0.1 * epsilon)?;
                let eps_jdd = acc.spend_remaining("joint degree distribution");
                self.measure_dk2(graph, eps_count, eps_jdd, rng)
            }
        };
        Ok(Box::new(DkSynthesis { series, n: graph.node_count(), epsilon: acc.total() }))
    }
}

/// Projects a realised dK graph onto exactly `n` nodes — the benchmark's
/// pipeline invariant (the node set is public under Edge CDP, so this is
/// free post-processing). The dK constructors size their output from the
/// *noisy* series: isolated nodes vanish from a JDD and noisy histogram
/// mass rounds away from `n`, so the realisation can come back smaller or
/// larger. Deficits are padded with isolated nodes; surpluses are removed
/// by a uniform induced subsample — the same projection PrivSKG applies
/// after Kronecker sampling.
fn conform_node_count(g: Graph, n: usize, rng: &mut dyn RngCore) -> Graph {
    match g.node_count().cmp(&n) {
        std::cmp::Ordering::Equal => g,
        std::cmp::Ordering::Less => {
            Graph::from_edges(n, g.edge_vec()).expect("ids bounded by the larger n")
        }
        std::cmp::Ordering::Greater => {
            let mut ids: Vec<u32> = (0..g.node_count() as u32).collect();
            for i in 0..n {
                let j = rng.gen_range(i..ids.len());
                ids.swap(i, j);
            }
            ids.truncate(n);
            ids.sort_unstable();
            g.induced_subgraph(&ids).0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_metrics::kl_divergence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_graph(rng: &mut StdRng) -> Graph {
        pgb_models::barabasi_albert(400, 4, rng)
    }

    #[test]
    fn dk1_output_valid() {
        let mut rng = StdRng::seed_from_u64(420);
        let g = toy_graph(&mut rng);
        let gen = DpDk { variant: DkVariant::Dk1, delta: 0.0 };
        let out = gen.generate(&g, 1.0, &mut rng).unwrap();
        assert!(out.check_invariants());
        assert!(out.node_count() > 0);
    }

    #[test]
    fn dk2_output_valid() {
        let mut rng = StdRng::seed_from_u64(421);
        let g = toy_graph(&mut rng);
        let out = DpDk::default().generate(&g, 2.0, &mut rng).unwrap();
        assert!(out.check_invariants());
    }

    #[test]
    fn dk1_high_epsilon_preserves_degree_distribution() {
        let mut rng = StdRng::seed_from_u64(422);
        let g = toy_graph(&mut rng);
        let gen = DpDk { variant: DkVariant::Dk1, delta: 0.0 };
        let out = gen.generate(&g, 100.0, &mut rng).unwrap();
        let kl = kl_divergence(
            &pgb_graph::degree::degree_distribution(&g),
            &pgb_graph::degree::degree_distribution(&out),
        );
        assert!(kl < 0.05, "KL {kl}");
    }

    #[test]
    fn dk2_high_epsilon_preserves_edges() {
        let mut rng = StdRng::seed_from_u64(423);
        let g = toy_graph(&mut rng);
        // The paper's own observation: DP-dK needs a *large* ε before its
        // smooth-sensitivity noise becomes negligible.
        let out = DpDk::default().generate(&g, 2000.0, &mut rng).unwrap();
        let (m0, m1) = (g.edge_count() as f64, out.edge_count() as f64);
        assert!((m1 - m0).abs() / m0 < 0.35, "m0 {m0} m1 {m1}");
    }

    #[test]
    fn dk2_low_epsilon_inflates_or_deflates_gracefully() {
        let mut rng = StdRng::seed_from_u64(424);
        let g = toy_graph(&mut rng);
        let out = DpDk::default().generate(&g, 0.1, &mut rng).unwrap();
        assert!(out.check_invariants());
    }

    #[test]
    fn deltas_reported_correctly() {
        assert_eq!(DpDk::default().delta(), 0.01);
        assert_eq!(DpDk { variant: DkVariant::Dk1, delta: 0.01 }.delta(), 0.0);
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(DpDk::default().name(), "DP-dK");
        assert_eq!(DpDk { variant: DkVariant::Dk1, delta: 0.0 }.name(), "DP-1K");
    }

    #[test]
    fn empty_graph_ok() {
        let mut rng = StdRng::seed_from_u64(425);
        let out = DpDk::default().generate(&Graph::new(0), 1.0, &mut rng).unwrap();
        assert_eq!(out.edge_count(), 0);
        assert_eq!(out.node_count(), 0);
    }

    #[test]
    fn both_variants_preserve_node_count() {
        // The noisy dK series can realise to more or fewer nodes than the
        // input; the projection back to n is part of the generator
        // contract (the runner's pipeline invariant).
        let mut rng = StdRng::seed_from_u64(426);
        let g = toy_graph(&mut rng);
        for variant in [DkVariant::Dk1, DkVariant::Dk2] {
            for eps in [0.1, 1.0, 100.0] {
                let gen = DpDk { variant, delta: 0.01 };
                let out = gen.generate(&g, eps, &mut rng).unwrap();
                assert_eq!(out.node_count(), g.node_count(), "{} at ε={eps}", gen.name());
                assert!(out.check_invariants());
            }
        }
    }
}
