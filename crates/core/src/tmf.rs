//! TmF — Top-m Filter (Nguyen, Imine & Rusinowitch, ASONAM 2015).
//!
//! Representation: the adjacency matrix. Perturbation: Laplace noise on
//! every cell plus a noisy edge count m̃. Construction: keep the m̃ cells
//! whose noisy value clears a *high-pass threshold* θ.
//!
//! The defining trick — and why the paper credits TmF with "linear cost"
//! (Remark after Table VIII) — is that the noisy matrix is never
//! materialised. Because all N₀ zero-cells are i.i.d., the number that
//! clears θ is a Binomial draw, and the surviving 1-cells are a Binomial
//! subsample of the true edges. This implementation realises exactly that
//! distribution in `O(m + m̃)`.

use crate::generator::{check_epsilon, GenerateError, GraphGenerator};
use pgb_dp::laplace::sample_laplace;
use pgb_graph::{Graph, GraphBuilder};
use pgb_models::sampling::{random_pair, sample_binomial};
use rand::{Rng, RngCore};

/// The TmF generator.
#[derive(Clone, Debug)]
pub struct TmF {
    /// Fraction of ε spent on the cell noise (ε₁); the remainder (ε₂)
    /// protects the edge count. The TmF paper's default is an even split
    /// weighted towards the cells.
    pub cell_budget_fraction: f64,
}

impl Default for TmF {
    fn default() -> Self {
        TmF { cell_budget_fraction: 0.9 }
    }
}

/// `P(Lap(1/ε) > t)` — upper tail of the Laplace distribution.
fn laplace_tail(t: f64, epsilon: f64) -> f64 {
    if t >= 0.0 {
        0.5 * (-t * epsilon).exp()
    } else {
        1.0 - 0.5 * (t * epsilon).exp()
    }
}

impl TmF {
    /// Solves for the high-pass threshold θ such that the expected number
    /// of passing cells equals the noisy target m̃:
    /// `m · P(1 + Lap > θ) + N₀ · P(Lap > θ) = m̃`.
    /// The left side is strictly decreasing in θ, so bisection converges.
    fn solve_threshold(m: f64, zeros: f64, m_tilde: f64, eps1: f64) -> f64 {
        let expected =
            |theta: f64| m * laplace_tail(theta - 1.0, eps1) + zeros * laplace_tail(theta, eps1);
        let (mut lo, mut hi) = (-2.0, 1.0 + 60.0 / eps1);
        if expected(lo) < m_tilde {
            return lo; // target larger than everything can pass
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if expected(mid) > m_tilde {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

impl GraphGenerator for TmF {
    fn name(&self) -> &'static str {
        "TmF"
    }

    fn generate(
        &self,
        graph: &Graph,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Graph, GenerateError> {
        check_epsilon(epsilon)?;
        let n = graph.node_count();
        if n < 2 {
            return Ok(Graph::new(n));
        }
        let mut budget = pgb_dp::Budget::new(epsilon)?;
        let eps1 = budget.spend(epsilon * self.cell_budget_fraction.clamp(0.05, 0.95))?;
        let eps2 = budget.spend_remaining();

        let m = graph.edge_count();
        let cells = n as u64 * (n as u64 - 1) / 2;
        let zeros = cells - m as u64;

        // Noisy edge count (sensitivity 1 under edge neighbouring).
        let m_tilde =
            (m as f64 + sample_laplace(1.0 / eps2, rng)).round().clamp(0.0, cells as f64) as u64;
        if m_tilde == 0 {
            return Ok(Graph::new(n));
        }

        let theta = Self::solve_threshold(m as f64, zeros as f64, m_tilde as f64, eps1);
        let p1 = laplace_tail(theta - 1.0, eps1);
        let p0 = laplace_tail(theta, eps1);

        // Surviving true edges: a Binomial(m, p1) subsample.
        let keep_true = sample_binomial(m as u64, p1.clamp(0.0, 1.0), rng) as usize;
        // False positives: Binomial(N₀, p0) fresh cells.
        let keep_false = sample_binomial(zeros, p0.clamp(0.0, 1.0), rng) as usize;

        // The filter passes ≈ m̃ cells in expectation; enforce the top-m̃
        // cap by trimming false positives first (their noisy values are
        // stochastically smaller), then true survivors.
        let (keep_true, keep_false) = if keep_true + keep_false > m_tilde as usize {
            let t = keep_true.min(m_tilde as usize);
            (t, m_tilde as usize - t)
        } else {
            (keep_true, keep_false)
        };

        let mut b = GraphBuilder::with_capacity(n, keep_true + keep_false);
        // Reservoir-free subsample of true edges: partial Fisher–Yates on
        // the edge list.
        let mut edges = graph.edge_vec();
        for i in 0..keep_true {
            let j = rng.gen_range(i..edges.len());
            edges.swap(i, j);
            let (u, v) = edges[i];
            b.push(u, v);
        }
        // False positives: uniform non-edges (rejection; the graphs PGB
        // works with are sparse, so collisions are rare).
        let mut placed = 0usize;
        let mut attempts = 0usize;
        let max_attempts = keep_false.saturating_mul(20) + 1000;
        let mut seen: std::collections::HashSet<(u32, u32)> =
            std::collections::HashSet::with_capacity(keep_false * 2);
        while placed < keep_false && attempts < max_attempts {
            attempts += 1;
            let (u, v) = random_pair(n, rng);
            if !graph.has_edge(u, v) && seen.insert((u, v)) {
                b.push(u, v);
                placed += 1;
            }
        }
        Ok(b.build().expect("ids bounded by n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_graph(rng: &mut StdRng) -> Graph {
        pgb_models::erdos_renyi_gnp(400, 0.03, rng)
    }

    #[test]
    fn threshold_solves_expectation() {
        let (m, zeros, m_tilde, eps1) = (1000.0, 99_000.0, 1000.0, 1.0);
        let theta = TmF::solve_threshold(m, zeros, m_tilde, eps1);
        let expected = m * laplace_tail(theta - 1.0, eps1) + zeros * laplace_tail(theta, eps1);
        assert!((expected - m_tilde).abs() < 1.0, "expected {expected}");
        assert!(theta > 0.0 && theta < 1.0 + 60.0);
    }

    #[test]
    fn output_edge_count_tracks_m_tilde() {
        let mut rng = StdRng::seed_from_u64(410);
        let g = toy_graph(&mut rng);
        let out = TmF::default().generate(&g, 2.0, &mut rng).unwrap();
        let (m0, m1) = (g.edge_count() as f64, out.edge_count() as f64);
        // m̃ is m ± Lap(1/0.2ε); the filter then holds |E| near m̃.
        assert!((m1 - m0).abs() / m0 < 0.1, "m0 {m0} m1 {m1}");
        assert!(out.check_invariants());
    }

    #[test]
    fn high_epsilon_recovers_most_true_edges() {
        let mut rng = StdRng::seed_from_u64(411);
        let g = toy_graph(&mut rng);
        let out = TmF::default().generate(&g, 20.0, &mut rng).unwrap();
        let common = out.edges().filter(|&(u, v)| g.has_edge(u, v)).count();
        let recall = common as f64 / g.edge_count() as f64;
        assert!(recall > 0.85, "recall {recall}");
    }

    #[test]
    fn low_epsilon_loses_most_true_edges() {
        let mut rng = StdRng::seed_from_u64(412);
        let g = toy_graph(&mut rng);
        let out = TmF::default().generate(&g, 0.1, &mut rng).unwrap();
        let common = out.edges().filter(|&(u, v)| g.has_edge(u, v)).count();
        let recall = common as f64 / g.edge_count() as f64;
        // The paper's critique: "most of the true edges cannot be retained
        // ... especially when ε is small".
        assert!(recall < 0.5, "recall {recall}");
    }

    #[test]
    fn tiny_graphs() {
        let mut rng = StdRng::seed_from_u64(413);
        assert_eq!(TmF::default().generate(&Graph::new(0), 1.0, &mut rng).unwrap().node_count(), 0);
        let out = TmF::default().generate(&Graph::new(1), 1.0, &mut rng).unwrap();
        assert_eq!(out.node_count(), 1);
    }

    #[test]
    fn rejects_bad_epsilon() {
        let mut rng = StdRng::seed_from_u64(414);
        assert!(TmF::default().generate(&Graph::new(5), f64::NAN, &mut rng).is_err());
    }
}
