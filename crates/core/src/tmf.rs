//! TmF — Top-m Filter (Nguyen, Imine & Rusinowitch, ASONAM 2015).
//!
//! Representation: the adjacency matrix. Perturbation: Laplace noise on
//! every cell plus a noisy edge count m̃. Construction: keep the m̃ cells
//! whose noisy value clears a *high-pass threshold* θ.
//!
//! The defining trick — and why the paper credits TmF with "linear cost"
//! (Remark after Table VIII) — is that the noisy matrix is never
//! materialised. Because all N₀ zero-cells are i.i.d., the number that
//! clears θ is a Binomial draw, and the surviving 1-cells are a Binomial
//! subsample of the true edges. This implementation realises exactly that
//! distribution in `O(m + m̃)`.

use crate::generator::{
    check_epsilon, vec_heap_bytes, GenerateError, GraphGenerator, PrivateSynthesis,
};
use crate::par;
use pgb_dp::laplace::sample_laplace;
use pgb_dp::BudgetAccountant;
use pgb_graph::{Graph, GraphBuilder};
use pgb_models::sampling::sample_binomial;
use rand::{Rng, RngCore};

/// The TmF generator.
#[derive(Clone, Debug)]
pub struct TmF {
    /// Fraction of ε spent on the cell noise (ε₁); the remainder (ε₂)
    /// protects the edge count. The TmF paper's default is an even split
    /// weighted towards the cells.
    pub cell_budget_fraction: f64,
}

impl Default for TmF {
    fn default() -> Self {
        TmF { cell_budget_fraction: 0.9 }
    }
}

/// `P(Lap(1/ε) > t)` — upper tail of the Laplace distribution.
fn laplace_tail(t: f64, epsilon: f64) -> f64 {
    if t >= 0.0 {
        0.5 * (-t * epsilon).exp()
    } else {
        1.0 - 0.5 * (t * epsilon).exp()
    }
}

impl TmF {
    /// Solves for the high-pass threshold θ such that the expected number
    /// of passing cells equals the noisy target m̃:
    /// `m · P(1 + Lap > θ) + N₀ · P(Lap > θ) = m̃`.
    /// The left side is strictly decreasing in θ, so bisection converges.
    fn solve_threshold(m: f64, zeros: f64, m_tilde: f64, eps1: f64) -> f64 {
        let expected =
            |theta: f64| m * laplace_tail(theta - 1.0, eps1) + zeros * laplace_tail(theta, eps1);
        let (mut lo, mut hi) = (-2.0, 1.0 + 60.0 / eps1);
        if expected(lo) < m_tilde {
            return lo; // target larger than everything can pass
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if expected(mid) > m_tilde {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// TmF's private intermediate: the perturbed edge set — surviving true
/// edges and flipped-in false positives — plus the noisy cap m̃. Sampling
/// only applies the top-m̃ trim and builds the CSR, so it is ε-free.
#[derive(Clone, Debug)]
pub struct TmfSynthesis {
    n: usize,
    m_tilde: u64,
    kept_true: Vec<(u32, u32)>,
    false_pos: Vec<(u32, u32)>,
    epsilon: f64,
}

impl PrivateSynthesis for TmfSynthesis {
    fn name(&self) -> &'static str {
        "TmF"
    }

    fn epsilon_spent(&self) -> f64 {
        self.epsilon
    }

    fn heap_bytes(&self) -> usize {
        vec_heap_bytes(&self.kept_true) + vec_heap_bytes(&self.false_pos)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Graph {
        if self.n < 2 || self.m_tilde == 0 {
            return Graph::new(self.n);
        }
        let mut kept_true = self.kept_true.clone();
        let mut false_pos = self.false_pos.clone();
        // The filter passes ≈ m̃ cells in expectation; enforce the top-m̃
        // cap by trimming false positives first (their noisy values are
        // stochastically smaller), then true survivors. Each trimmed list
        // must stay a *uniform* subset — the lists are in chunk order, so a
        // plain prefix would bias survivors toward low node ids; a partial
        // Fisher–Yates on a derived stream keeps the subset uniform and the
        // trim decision (and the caller's RNG position) thread-invariant.
        let m_tilde = self.m_tilde as usize;
        let (keep_true, keep_false) = if kept_true.len() + false_pos.len() > m_tilde {
            let t = kept_true.len().min(m_tilde);
            (t, m_tilde - t)
        } else {
            (kept_true.len(), false_pos.len())
        };
        if keep_true < kept_true.len() || keep_false < false_pos.len() {
            let mut trim_rng = par::derive_stream(rng.next_u64(), 0);
            for (list, keep) in [(&mut kept_true, keep_true), (&mut false_pos, keep_false)] {
                if keep >= list.len() {
                    continue; // this list survives whole; only the other is cut
                }
                for i in 0..keep {
                    let j = trim_rng.gen_range(i..list.len());
                    list.swap(i, j);
                }
                list.truncate(keep);
            }
        }
        let mut b = GraphBuilder::with_capacity(self.n, keep_true + keep_false);
        b.extend(kept_true);
        b.extend(false_pos);
        b.build_parallel(par::current_parallelism()).expect("ids bounded by n")
    }
}

impl TmfSynthesis {
    /// The degenerate intermediate for graphs the filter cannot act on
    /// (n < 2, or a noisy edge count of zero): samples to an empty graph
    /// without drawing from the RNG.
    fn empty(n: usize, epsilon: f64) -> Self {
        TmfSynthesis { n, m_tilde: 0, kept_true: Vec::new(), false_pos: Vec::new(), epsilon }
    }
}

impl GraphGenerator for TmF {
    fn name(&self) -> &'static str {
        "TmF"
    }

    fn measure(
        &self,
        graph: &Graph,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        check_epsilon(epsilon)?;
        let n = graph.node_count();
        if n < 2 {
            return Ok(Box::new(TmfSynthesis::empty(n, epsilon)));
        }
        let mut acc = BudgetAccountant::new(epsilon)?;
        let eps1 =
            acc.spend("adjacency cells", epsilon * self.cell_budget_fraction.clamp(0.05, 0.95))?;
        let eps2 = acc.spend_remaining("edge count");

        let m = graph.edge_count();
        let cells = n as u64 * (n as u64 - 1) / 2;
        let zeros = cells - m as u64;

        // Noisy edge count (sensitivity 1 under edge neighbouring).
        let m_tilde =
            (m as f64 + sample_laplace(1.0 / eps2, rng)).round().clamp(0.0, cells as f64) as u64;
        if m_tilde == 0 {
            return Ok(Box::new(TmfSynthesis::empty(n, acc.total())));
        }

        let theta = Self::solve_threshold(m as f64, zeros as f64, m_tilde as f64, eps1);
        let p1 = laplace_tail(theta - 1.0, eps1);
        let p0 = laplace_tail(theta, eps1);

        let (p1, p0) = (p1.clamp(0.0, 1.0), p0.clamp(0.0, 1.0));

        // Surviving true edges: keeping each true edge independently with
        // probability p1 realises the Binomial(m, p1) survivor law — and is
        // embarrassingly parallel over fixed edge-list chunks, each on its
        // own derived stream, so the output is thread-count-invariant.
        let edges = graph.edge_vec();
        let kept_true: Vec<(u32, u32)> =
            par::par_collect(edges.len(), par::DEFAULT_CHUNK, rng, |range, rng, out| {
                for &(u, v) in &edges[range] {
                    if rng.gen_bool(p1) {
                        out.push((u, v));
                    }
                }
            });

        // False positives: each of the N₀ zero-cells clears θ independently
        // with probability p0. Rows of the upper triangle are chunked; a
        // chunk counts its own zero-cells exactly, draws its Binomial share
        // (independent Binomials over a partition sum to Binomial(N₀, p0)),
        // and rejection-samples that many distinct non-edge cells within its
        // rows. Disjoint row ranges keep cells distinct across chunks.
        const ROW_CHUNK: usize = 1024;
        let false_pos: Vec<(u32, u32)> =
            par::par_collect(n.saturating_sub(1), ROW_CHUNK, rng, |rows, rng, out| {
                // Per-row upper-triangle cell counts, prefix-summed so a
                // uniform cell index maps back to (row, column).
                let mut prefix: Vec<u64> = Vec::with_capacity(rows.len() + 1);
                prefix.push(0);
                let mut zeros_chunk = 0u64;
                for i in rows.clone() {
                    let row_cells = (n - 1 - i) as u64;
                    let nbrs = graph.neighbors(i as u32);
                    let row_ones = (nbrs.len() - nbrs.partition_point(|&v| v <= i as u32)) as u64;
                    zeros_chunk += row_cells - row_ones;
                    prefix.push(prefix.last().unwrap() + row_cells);
                }
                let cells_chunk = *prefix.last().unwrap();
                let target = sample_binomial(zeros_chunk, p0, rng);
                if target == 0 || cells_chunk == 0 {
                    return;
                }
                let mut seen: std::collections::HashSet<(u32, u32)> =
                    std::collections::HashSet::with_capacity(target as usize * 2);
                let mut placed = 0u64;
                let mut attempts = 0u64;
                let max_attempts = target.saturating_mul(20) + 1000;
                while placed < target && attempts < max_attempts {
                    attempts += 1;
                    let t = rng.gen_range(0..cells_chunk);
                    let li = prefix.partition_point(|&p| p <= t) - 1;
                    let i = (rows.start + li) as u32;
                    let j = i + 1 + (t - prefix[li]) as u32;
                    if !graph.has_edge(i, j) && seen.insert((i, j)) {
                        out.push((i, j));
                        placed += 1;
                    }
                }
            });

        Ok(Box::new(TmfSynthesis { n, m_tilde, kept_true, false_pos, epsilon: acc.total() }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_graph(rng: &mut StdRng) -> Graph {
        pgb_models::erdos_renyi_gnp(400, 0.03, rng)
    }

    #[test]
    fn threshold_solves_expectation() {
        let (m, zeros, m_tilde, eps1) = (1000.0, 99_000.0, 1000.0, 1.0);
        let theta = TmF::solve_threshold(m, zeros, m_tilde, eps1);
        let expected = m * laplace_tail(theta - 1.0, eps1) + zeros * laplace_tail(theta, eps1);
        assert!((expected - m_tilde).abs() < 1.0, "expected {expected}");
        assert!(theta > 0.0 && theta < 1.0 + 60.0);
    }

    #[test]
    fn output_edge_count_tracks_m_tilde() {
        let mut rng = StdRng::seed_from_u64(410);
        let g = toy_graph(&mut rng);
        let out = TmF::default().generate(&g, 2.0, &mut rng).unwrap();
        let (m0, m1) = (g.edge_count() as f64, out.edge_count() as f64);
        // m̃ is m ± Lap(1/0.2ε); the filter then holds |E| near m̃.
        assert!((m1 - m0).abs() / m0 < 0.1, "m0 {m0} m1 {m1}");
        assert!(out.check_invariants());
    }

    #[test]
    fn high_epsilon_recovers_most_true_edges() {
        let mut rng = StdRng::seed_from_u64(411);
        let g = toy_graph(&mut rng);
        let out = TmF::default().generate(&g, 20.0, &mut rng).unwrap();
        let common = out.edges().filter(|&(u, v)| g.has_edge(u, v)).count();
        let recall = common as f64 / g.edge_count() as f64;
        assert!(recall > 0.85, "recall {recall}");
    }

    #[test]
    fn low_epsilon_loses_most_true_edges() {
        let mut rng = StdRng::seed_from_u64(412);
        let g = toy_graph(&mut rng);
        let out = TmF::default().generate(&g, 0.1, &mut rng).unwrap();
        let common = out.edges().filter(|&(u, v)| g.has_edge(u, v)).count();
        let recall = common as f64 / g.edge_count() as f64;
        // The paper's critique: "most of the true edges cannot be retained
        // ... especially when ε is small".
        assert!(recall < 0.5, "recall {recall}");
    }

    #[test]
    fn tiny_graphs() {
        let mut rng = StdRng::seed_from_u64(413);
        assert_eq!(TmF::default().generate(&Graph::new(0), 1.0, &mut rng).unwrap().node_count(), 0);
        let out = TmF::default().generate(&Graph::new(1), 1.0, &mut rng).unwrap();
        assert_eq!(out.node_count(), 1);
    }

    #[test]
    fn rejects_bad_epsilon() {
        let mut rng = StdRng::seed_from_u64(414);
        assert!(TmF::default().generate(&Graph::new(5), f64::NAN, &mut rng).is_err());
    }
}
