//! Property-based tests over the graph constructors: every generator must
//! emit a structurally valid simple graph, and constructors with exactness
//! guarantees must honour them.

use pgb_graph::degree::degree_sequence;
use pgb_models::havel_hakimi::{havel_hakimi, is_graphical};
use pgb_models::{
    barabasi_albert, bter, chung_lu, configuration_model, erdos_renyi_gnm, erdos_renyi_gnp,
    grid_graph, watts_strogatz, BterParams,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gnp_always_valid(n in 0usize..120, p in 0.0f64..=1.0, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_gnp(n, p, &mut rng);
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.check_invariants());
        let max = n.saturating_mul(n.saturating_sub(1)) / 2;
        prop_assert!(g.edge_count() <= max);
    }

    #[test]
    fn gnm_exact_edge_count(n in 2usize..60, frac in 0.0f64..1.0, seed in 0u64..1000) {
        let m = ((n * (n - 1) / 2) as f64 * frac) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_gnm(n, m, &mut rng);
        prop_assert_eq!(g.edge_count(), m);
        prop_assert!(g.check_invariants());
    }

    #[test]
    fn ba_structure(n in 3usize..150, seed in 0u64..1000) {
        let m = 1 + seed as usize % ((n - 1).min(5));
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n, m, &mut rng);
        prop_assert_eq!(g.edge_count(), (n - m) * m);
        prop_assert!(g.check_invariants());
    }

    #[test]
    fn hh_realises_graphical(degrees in proptest::collection::vec(0u32..6, 2..40)) {
        let g = havel_hakimi(&degrees);
        prop_assert!(g.check_invariants());
        let realised = degree_sequence(&g);
        if is_graphical(&degrees) {
            prop_assert_eq!(realised, degrees);
        } else {
            // Best effort never overshoots a target.
            for (got, want) in realised.iter().zip(&degrees) {
                prop_assert!(got <= want);
            }
        }
    }

    #[test]
    fn config_model_bounded(degrees in proptest::collection::vec(0u32..8, 0..60), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = configuration_model(&degrees, &mut rng);
        prop_assert!(g.check_invariants());
        for (u, &d) in degrees.iter().enumerate() {
            prop_assert!(g.degree(u as u32) as u32 <= d);
        }
    }

    #[test]
    fn chung_lu_valid(weights in proptest::collection::vec(0.0f64..10.0, 0..80), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = chung_lu(&weights, &mut rng);
        prop_assert_eq!(g.node_count(), weights.len());
        prop_assert!(g.check_invariants());
    }

    #[test]
    fn bter_valid(degrees in proptest::collection::vec(0u32..10, 2..80), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = bter(&degrees, &BterParams::default(), &mut rng);
        prop_assert_eq!(g.node_count(), degrees.len());
        prop_assert!(g.check_invariants());
    }

    #[test]
    fn ws_valid(n in 5usize..80, half_k in 1usize..3, beta in 0.0f64..=1.0, seed in 0u64..1000) {
        let k = 2 * half_k;
        prop_assume!(k < n);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = watts_strogatz(n, k, beta, &mut rng);
        prop_assert_eq!(g.edge_count(), n * k / 2);
        prop_assert!(g.check_invariants());
    }

    #[test]
    fn grid_valid(rows in 1usize..15, cols in 1usize..15) {
        let g = grid_graph(rows, cols);
        prop_assert_eq!(g.node_count(), rows * cols);
        let expected = rows * (cols.saturating_sub(1)) + cols * (rows.saturating_sub(1));
        prop_assert_eq!(g.edge_count(), expected);
        prop_assert!(g.check_invariants());
    }
}

#[test]
fn hrg_mcmc_long_run_consistency() {
    // A longer, deterministic MCMC soak: incremental edge counts must stay
    // equal to recomputed ones across hundreds of accepted restructures.
    use pgb_models::hrg::Dendrogram;
    let mut rng = StdRng::seed_from_u64(999);
    let g = erdos_renyi_gnp(60, 0.1, &mut rng);
    let mut d = Dendrogram::from_graph(&g, &mut rng);
    for _ in 0..2_000 {
        d.mcmc_step(&g, 1.0, &mut rng);
    }
    assert!(d.check_invariants());
    let mut fresh = d.clone();
    fresh.recompute_edge_counts(&g);
    for r in 0..d.internal_count() as u32 {
        assert_eq!(d.edges_at(r), fresh.edges_at(r), "internal node {r}");
    }
    let sum: u64 = (0..d.internal_count() as u32).map(|r| d.edges_at(r)).sum();
    assert_eq!(sum, g.edge_count() as u64);
}

#[test]
fn kronecker_moment_consistency_across_parameters() {
    use pgb_models::{Initiator, KroneckerModel};
    // Moments must be monotone in each initiator entry and consistent
    // between the exact sampler and the closed forms across a grid.
    for &(a, b, c) in &[(0.9, 0.5, 0.1), (0.7, 0.3, 0.6), (0.99, 0.4, 0.2), (0.5, 0.5, 0.5)] {
        let m = KroneckerModel { initiator: Initiator::new(a, b, c), k: 7 };
        let mut rng = StdRng::seed_from_u64(7);
        let reps = 8;
        let mean = (0..reps).map(|_| m.sample_exact(&mut rng).edge_count() as f64).sum::<f64>()
            / reps as f64;
        let expected = m.expected_edges();
        assert!(
            (mean - expected).abs() / expected.max(1.0) < 0.15,
            "({a},{b},{c}): mean {mean} vs {expected}"
        );
    }
}
