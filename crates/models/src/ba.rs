//! Barabási–Albert preferential attachment.
//!
//! The paper's BA dataset (Table VI) is `n = 10000`, `m = 5`, giving
//! `(n − m) · m = 49 975` edges and a power-law degree distribution.

use pgb_graph::{Graph, GraphBuilder};
use rand::Rng;

/// Grows a Barabási–Albert graph: starting from `m` isolated seed nodes,
/// each arriving node attaches to `m` distinct existing nodes chosen with
/// probability proportional to their degree (uniformly while no edges
/// exist). This matches the NetworkX construction the paper's datasets use,
/// so the edge count is exactly `(n − m) · m`.
///
/// # Panics
/// Panics unless `1 ≤ m < n`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1 && m < n, "need 1 <= m < n, got m={m}, n={n}");
    let mut b = GraphBuilder::with_capacity(n, (n - m) * m);
    ba_stream(n, m, rng, &mut |u, v| b.push(u, v));
    b.build().expect("ids bounded by n")
}

/// Grows the same graph as [`barabasi_albert`] through the streaming CSR
/// build path: the attachment process runs twice from a cloned RNG state
/// (the BA stream is a deterministic function of the RNG), so the builder
/// never materialises the unsorted edge list. The caller's RNG advances by
/// exactly one generation's worth of draws, and the resulting graph is
/// byte-identical to `barabasi_albert` at the same RNG state.
///
/// # Panics
/// Panics unless `1 ≤ m < n`.
pub fn barabasi_albert_streaming<R: Rng + Clone>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1 && m < n, "need 1 <= m < n, got m={m}, n={n}");
    let mut replay = rng.clone();
    let mut pass = 0;
    GraphBuilder::build_streaming(n, |sink| {
        pass += 1;
        if pass == 1 {
            ba_stream(n, m, &mut replay, sink);
        } else {
            ba_stream(n, m, rng, sink);
        }
    })
    .expect("ids bounded by n")
}

/// The shared attachment loop, emitting each edge through `sink`.
fn ba_stream<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R, sink: &mut dyn FnMut(u32, u32)) {
    // One entry per edge endpoint: sampling uniformly from this list is
    // degree-proportional sampling.
    let mut repeated: Vec<u32> = Vec::with_capacity(2 * (n - m) * m);
    // The first arriving node connects to all m seeds (uniform choice among
    // degree-0 nodes is the whole seed set).
    let mut targets: Vec<u32> = (0..m as u32).collect();
    for source in m as u32..n as u32 {
        for &t in &targets {
            sink(source, t);
            repeated.push(source);
            repeated.push(t);
        }
        // Next round's targets: m distinct degree-proportional draws.
        // (Kept in draw order — a HashSet drain here would make the
        // construction depend on hash iteration order.)
        targets.clear();
        while targets.len() < m {
            let pick = repeated[rng.gen_range(0..repeated.len())];
            if !targets.contains(&pick) {
                targets.push(pick);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(70);
        let g = barabasi_albert(1000, 5, &mut rng);
        assert_eq!(g.edge_count(), 995 * 5);
        assert!(g.check_invariants());
    }

    #[test]
    fn paper_dataset_edge_count() {
        let mut rng = StdRng::seed_from_u64(71);
        let g = barabasi_albert(10_000, 5, &mut rng);
        assert_eq!(g.edge_count(), 49_975); // Table VI's BA row
    }

    #[test]
    fn min_degree_is_m() {
        let mut rng = StdRng::seed_from_u64(72);
        let g = barabasi_albert(500, 3, &mut rng);
        for u in g.nodes() {
            assert!(g.degree(u) >= 3, "node {u} degree {}", g.degree(u));
        }
    }

    #[test]
    fn heavy_tail_emerges() {
        let mut rng = StdRng::seed_from_u64(73);
        let g = barabasi_albert(3_000, 2, &mut rng);
        // A BA hub should far exceed the mean degree of ~4.
        assert!(g.max_degree() > 40, "max degree {}", g.max_degree());
    }

    #[test]
    fn streaming_matches_accumulating_build() {
        let mut rng_a = StdRng::seed_from_u64(76);
        let mut rng_b = rng_a.clone();
        let a = barabasi_albert(800, 4, &mut rng_a);
        let b = barabasi_albert_streaming(800, 4, &mut rng_b);
        assert_eq!(a.csr(), b.csr());
        // Both paths consume the same number of RNG draws.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn m_one_gives_tree() {
        let mut rng = StdRng::seed_from_u64(74);
        let g = barabasi_albert(200, 1, &mut rng);
        assert_eq!(g.edge_count(), 199);
        assert!(pgb_graph::traversal::is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "need 1 <= m < n")]
    fn invalid_m_panics() {
        let mut rng = StdRng::seed_from_u64(75);
        barabasi_albert(5, 5, &mut rng);
    }
}
